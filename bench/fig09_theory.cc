/**
 * @file
 * Figure 9: the closed-form upper bound on the probability that an
 * input tuple becomes a false positive, for a 1% candidate threshold.
 * One row per table count (1..16), one column per total-entry budget
 * (500 / 1000 / 2000 / 4000 / 8000), exactly the paper's curves.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/theory.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Figure 9",
                  "theoretical false-positive probability, 1% threshold");

    const uint64_t budgets[] = {500, 1000, 2000, 4000, 8000};

    TablePrinter table({"tables", "500e", "1000e", "2000e", "4000e",
                        "8000e"});
    for (unsigned n = 1; n <= 16; ++n) {
        std::vector<std::string> row{std::to_string(n)};
        for (const uint64_t z : budgets) {
            row.push_back(TablePrinter::num(
                100.0 * falsePositiveProbability(z, n, 1.0), 4));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("fig09_theory", table);

    std::printf("\nOptimal table count by budget: ");
    for (const uint64_t z : budgets)
        std::printf("%llue->%u  ", static_cast<unsigned long long>(z),
                    optimalTableCount(z, 1.0));
    std::printf("\n\nShape check: more tables help up to a point, then "
                "hurt;\nthe 1000-entry curve degrades beyond 4 tables "
                "(paper Section 6.2).\n");
    return 0;
}
