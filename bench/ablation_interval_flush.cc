/**
 * @file
 * Ablation: flushing the hash tables at interval boundaries.
 *
 * The paper specifies "At the end of an interval, the hash table is
 * flushed" (Section 5.2). This ablation disables the flush: counts
 * accumulated in earlier intervals leak across the boundary, so noise
 * that took several intervals to pile up promotes tuples that were
 * never candidates within any single interval — false positives that
 * grow over time. The flush is what makes interval-relative frequency
 * (the candidate threshold) meaningful.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/factory.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

int
main()
{
    using namespace mhp;
    bench::banner("Ablation: interval flush",
                  "hash tables flushed vs carried across intervals");

    const uint64_t intervals = bench::scaledIntervals(30);

    std::vector<bench::LabelledConfig> configs;
    for (const bool flush : {true, false}) {
        ProfilerConfig sh = bestSingleHashConfig(10'000, 0.01);
        sh.flushHashTables = flush;
        configs.push_back(
            {std::string("sh-R1P1,flush=") + (flush ? "1" : "0"), sh});
        ProfilerConfig mh = bestMultiHashConfig(10'000, 0.01);
        mh.flushHashTables = flush;
        configs.push_back(
            {std::string("mh4-C1R0,flush=") + (flush ? "1" : "0"), mh});
    }

    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             {"gcc", "go", "li", "sis"}, false, configs, intervals))
        bench::addErrorRows(table, rows);
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("ablation_interval_flush", table);
    std::printf("\nClaim check: without the flush, cross-interval "
                "noise accumulation\ninflates FP%% over the run; with "
                "it, every interval starts clean.\n");
    return 0;
}
