/**
 * @file
 * Figure 11: the Figure 10 design space under severe pressure — 1M
 * interval / 0.1% threshold / 2K total entries, gcc and go. Shape
 * claim: C1-R0 again best; without conservative update errors stay
 * enormous on go even with resetting.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Figure 11",
                  "multi-hash C/R design space, 1M @ 0.1%, gcc & go");

    const auto configs =
        bench::multiHashCrSweep(1'000'000, 0.001, {1, 2, 4, 8});
    const uint64_t intervals = bench::scaledIntervals(4);

    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             {"gcc", "go"}, false, configs, intervals))
        bench::addErrorRows(table, rows);
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("fig11_multihash_1m", table);
    std::printf("\nShape check: C1,R0 best; with C0 the error on go "
                "remains enormous\n(the paper reports ~100%% or more "
                "without conservative update).\n");
    return 0;
}
