/**
 * @file
 * Figure 5: number of unique candidate tuples per interval for 1%
 * (top) and 0.1% (bottom) thresholds, per benchmark and interval
 * length. The paper's claim: candidate counts stay roughly flat as the
 * interval grows, so the signal-to-noise ratio falls.
 */

#include <cstdio>
#include <iostream>

#include "analysis/candidate_stats.h"
#include "common.h"
#include "support/parallel.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

namespace {

void
runThreshold(double thresholdFraction, const char *label)
{
    using namespace mhp;
    std::printf("--- candidate threshold %s ---\n", label);

    struct IntervalSetting
    {
        uint64_t length;
        uint64_t intervals;
    };
    const IntervalSetting settings[] = {
        {10'000, bench::scaledIntervals(20)},
        {100'000, bench::scaledIntervals(8)},
        {1'000'000, bench::scaledIntervals(3)},
    };

    TablePrinter table({"benchmark", "10K", "100K", "1M"});
    const auto &names = benchmarkNames();
    std::vector<std::vector<std::string>> rows(names.size());
    parallelFor(names.size(), [&](size_t i) {
        std::vector<std::string> row{names[i]};
        for (const auto &setting : settings) {
            auto workload = makeValueWorkload(names[i]);
            const auto threshold = static_cast<uint64_t>(
                static_cast<double>(setting.length) *
                thresholdFraction);
            const CandidateAnalysis a = analyzeCandidates(
                *workload, setting.length,
                threshold == 0 ? 1 : threshold, setting.intervals);
            row.push_back(
                TablePrinter::num(a.candidatesPerInterval.mean(), 1));
        }
        rows[i] = std::move(row);
    });
    for (auto &row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);
    mhp::bench::maybeWriteCsv(
        std::string("fig05_candidates_") +
            (thresholdFraction >= 0.01 ? "1pct" : "0.1pct"),
        table);
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace mhp;
    bench::banner("Figure 5",
                  "unique candidate tuples per interval");
    runThreshold(0.01, "1%");
    runThreshold(0.001, "0.1%");
    std::printf("Shape check: candidate counts stay roughly flat with "
                "interval length,\nwhile Figure 4's distinct tuples "
                "grow ~proportionally.\n");
    return 0;
}
