/**
 * @file
 * Section 4.2 baseline: the Stratified Sampler (Sastry et al.) versus
 * the paper's hardware-only profilers. Reports, per benchmark:
 *
 *  - the baseline's interval error (plain and tagged variants);
 *  - its software cost: messages and OS interrupts per 1M events
 *    (the overhead the paper's design eliminates — Sastry et al.
 *    report ~5% run-time overhead from this path);
 *  - the best multi-hash profiler's error at the same area budget,
 *    with zero software interaction.
 */

#include <cstdio>
#include <iostream>

#include "analysis/interval_runner.h"
#include "common.h"
#include "core/factory.h"
#include "core/hotspot_detector.h"
#include "core/query_coprocessor.h"
#include "core/sampling_profiler.h"
#include "core/stratified_sampler.h"
#include "core/value_table_profiler.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

int
main()
{
    using namespace mhp;
    bench::banner("Baseline",
                  "stratified sampler vs hardware-only multi-hash");

    const uint64_t interval_length = 10'000;
    const uint64_t threshold = 100; // 1%
    const uint64_t intervals = bench::scaledIntervals(30);

    TablePrinter table({"benchmark", "profiler", "total-err%",
                        "area-KB", "msgs/1M-events",
                        "interrupts/1M-events"});

    for (const auto &name : benchmarkNames()) {
        StratifiedSamplerConfig plain_cfg;
        plain_cfg.entries = 2048;
        plain_cfg.samplingThreshold = 32;
        auto tagged_cfg = plain_cfg;
        tagged_cfg.tagged = true;

        StratifiedSampler plain(plain_cfg, threshold);
        StratifiedSampler tagged(tagged_cfg, threshold);
        // DCPI-class periodic sampler (Section 4.1.2).
        SamplingProfiler sampler(32, threshold);
        // Merten-class tagged table profiler (Section 4.1.3).
        HotSpotConfig hs_cfg;
        hs_cfg.entries = 1024; // ~same area ballpark as 2K counters
        HotSpotDetector hotspot(hs_cfg, threshold);
        // Calder-class per-PC value table (Section 4.1.1),
        // area-equalized with mh4 (~7 KB): 128 PCs x 55 B. Note the
        // TVPT stores full tags AND full 64-bit values per slot, and
        // only answers value-profiling queries; the multi-hash gets
        // the same area out of untagged 3-byte counters and is
        // event-type agnostic.
        ValueTableConfig vt_cfg;
        vt_cfg.pcEntries = 128;
        vt_cfg.valuesPerPc = 4;
        ValueTableProfiler tvpt(vt_cfg, threshold);
        // Zilles-class programmable co-processor (Section 4.1.4):
        // count-all query, half the event bandwidth.
        CoprocessorConfig cp_cfg;
        cp_cfg.queueEntries = 64;
        cp_cfg.processRate = 0.5;
        QueryCoprocessor coproc(cp_cfg, threshold);
        auto multihash =
            makeProfiler(bestMultiHashConfig(interval_length, 0.01));

        auto workload = makeValueWorkload(name);
        const RunOutput out = runIntervals(
            *workload,
            {&plain, &tagged, &sampler, &hotspot, &tvpt, &coproc,
             multihash.get()},
            interval_length, threshold, intervals);

        const double events =
            static_cast<double>(out.eventsConsumed) / 1e6;
        auto addRow = [&](const char *label, size_t idx,
                          const HardwareProfiler &hw, double msgs,
                          double irqs) {
            table.addRow(
                {name, label,
                 TablePrinter::num(
                     out.results[idx].averageErrorPercent(), 2),
                 TablePrinter::num(
                     static_cast<double>(hw.areaBytes()) / 1024.0, 1),
                 TablePrinter::num(msgs / events, 0),
                 TablePrinter::num(irqs / events, 1)});
        };
        addRow("stratified", 0, plain,
               static_cast<double>(plain.messagesSent()),
               static_cast<double>(plain.interrupts()));
        addRow("stratified-tagged", 1, tagged,
               static_cast<double>(tagged.messagesSent()),
               static_cast<double>(tagged.interrupts()));
        // Every periodic sample interrupts-or-buffers to software;
        // charge one message per sample.
        addRow("periodic-sampler", 2, sampler,
               static_cast<double>(sampler.samplesTaken()),
               static_cast<double>(sampler.samplesTaken()) / 100.0);
        addRow("merten-hotspot", 3, hotspot, 0.0, 0.0);
        addRow("calder-tvpt", 4, tvpt, 0.0, 0.0);
        // The co-processor's per-event processing is software-like
        // work; charge its processed events as messages.
        addRow("zilles-coproc", 5, coproc,
               static_cast<double>(coproc.processed()), 0.0);
        addRow("mh4-C1R0 (hw only)", 6, *multihash, 0.0, 0.0);
    }
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("baseline_stratified", table);
    std::printf("\nClaim check: the multi-hash profiler needs zero "
                "messages/interrupts\nwhile matching or beating the "
                "baseline's accuracy.\n");
    return 0;
}
