/**
 * @file
 * Figure 7: single-hash profiler error rates across the
 * retaining (P) x resetting (R) design space, 2K hash entries,
 * split into FP/FN/NP/NN components.
 *
 * Left of the paper's figure: 10K interval @ 1%. Right: 1M @ 0.1%.
 * Shape claims: both optimizations reduce total error; P1R1 is best
 * overall; resetting trades FP for some FN (visible on vortex).
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

namespace {

void
runSetting(uint64_t intervalLength, double threshold,
           uint64_t intervals, const char *label)
{
    using namespace mhp;
    std::printf("--- interval %s (%llu intervals/benchmark) ---\n",
                label, static_cast<unsigned long long>(intervals));
    const auto configs =
        bench::singleHashPrSweep(intervalLength, threshold);
    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             benchmarkNames(), false, configs, intervals))
        bench::addErrorRows(table, rows);
    table.print(std::cout);
    mhp::bench::maybeWriteCsv(
        std::string("fig07_single_hash_") +
            (intervalLength == 10'000 ? "10k" : "1m"),
        table);
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace mhp;
    bench::banner("Figure 7",
                  "single-hash error, retaining x resetting sweep");
    runSetting(10'000, 0.01, bench::scaledIntervals(30),
               "10K @ 1%");
    runSetting(1'000'000, 0.001, bench::scaledIntervals(4),
               "1M @ 0.1%");
    std::printf(
        "Shape check: P1,R1 lowest total error on most programs;\n"
        "R1 cuts FP%% sharply but can add FN%% (e.g. vortex).\n");
    return 0;
}
