/**
 * @file
 * Figure 13: per-interval error across execution, 1M interval @ 0.1%,
 * 2K entries, retaining on: best single-hash with resetting (left
 * panel) versus the best multi-hash (4 tables, C1, R0; right panel).
 *
 * Shape claims: the multi-hash profiler removes most error spikes
 * (especially gcc's early-execution spikes); a burg-style spike can
 * remain under conservative update without resetting.
 */

#include <cstdio>
#include <iostream>

#include "analysis/interval_runner.h"
#include "common.h"
#include "core/factory.h"
#include "support/parallel.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

namespace {

void
runPanel(const mhp::ProfilerConfig &cfg, uint64_t intervals,
         const char *label)
{
    using namespace mhp;
    std::printf("--- %s ---\n", label);
    TablePrinter table([&] {
        std::vector<std::string> header{"cycle"};
        for (const auto &name : benchmarkNames())
            header.push_back(name);
        return header;
    }());

    // One column per benchmark: collect each series (benchmarks are
    // independent, so they run on worker threads).
    const auto &names = benchmarkNames();
    std::vector<std::vector<double>> series(names.size());
    parallelFor(names.size(), [&](size_t i) {
        auto workload = makeValueWorkload(names[i]);
        auto profiler = makeProfiler(cfg);
        const RunOutput out =
            runIntervals(*workload, *profiler, cfg.intervalLength,
                         cfg.thresholdCount(), intervals);
        std::vector<double> errs;
        for (const auto &score : out.results[0].intervals)
            errs.push_back(score.breakdown.total() * 100.0);
        series[i] = std::move(errs);
    });

    for (uint64_t iv = 0; iv < intervals; ++iv) {
        std::vector<std::string> row{std::to_string(iv)};
        for (const auto &s : series) {
            row.push_back(iv < s.size() ? TablePrinter::num(s[iv], 1)
                                        : "-");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    mhp::bench::maybeWriteCsv(
        std::string("fig13_series_") +
            (cfg.numHashTables == 1 ? "bsh" : "mh4"),
        table);
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace mhp;
    bench::banner("Figure 13",
                  "per-interval error, 1M @ 0.1% (profile cycles)");
    const uint64_t intervals = bench::scaledIntervals(12);

    runPanel(bestSingleHashConfig(1'000'000, 0.001), intervals,
             "left panel: best single hash (R1,P1)");
    runPanel(bestMultiHashConfig(1'000'000, 0.001), intervals,
             "right panel: best multi-hash (4 tables, C1,R0,P1)");

    std::printf("Shape check: the multi-hash panel has far fewer and "
                "smaller spikes\n(gcc's early intervals especially); "
                "a rare burg spike may remain.\n");
    return 0;
}
