/**
 * @file
 * Shared plumbing for the figure-reproduction bench binaries.
 *
 * Every bench prints: a header naming the paper figure it regenerates,
 * the experiment parameters (after MHP_SCALE), and its result table.
 * runBenchmarkConfigs() is the common "one stream, many profiler
 * configurations" driver used by Figures 7 and 10-14.
 */

#ifndef MHP_BENCH_COMMON_H
#define MHP_BENCH_COMMON_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/interval_runner.h"
#include "core/config.h"
#include "core/profiler.h"
#include "support/table_printer.h"
#include "trace/source.h"

namespace mhp {
namespace bench {

/** Print the standard bench banner. */
void banner(const std::string &figure, const std::string &what);

/**
 * The kernel's current wall-clock source (e.g. "tsc", "hpet",
 * "arch_sys_counter"), read from sysfs; "unknown" when unreadable.
 * A non-TSC clocksource makes fine-grained timings untrustworthy, so
 * perf_throughput embeds this in its JSON context.
 */
std::string clockSource();

/**
 * The cpufreq scaling governor of cpu0 ("performance", "powersave",
 * ...), or "none" when the platform exposes no cpufreq (fixed-clock
 * VMs); "unknown" when unreadable. Anything other than
 * "performance"/"none" means results can wobble with clock scaling.
 */
std::string cpuScalingGovernor();

/**
 * True when frequency scaling could perturb measurements: a cpufreq
 * governor is present and is not "performance".
 */
bool cpuScalingActive();

/**
 * Print the one-line timing-environment report (clock source,
 * governor, repetitions). Every timing bench should emit this so a
 * log is never silently missing its measurement conditions.
 */
void reportTimingEnvironment(unsigned repetitions);

/** Intervals to run after MHP_SCALE (default baseIntervals). */
uint64_t scaledIntervals(uint64_t baseIntervals);

/** A labelled profiler configuration in a sweep. */
struct LabelledConfig
{
    std::string label;
    ProfilerConfig config;
};

/** One row of a sweep result. */
struct SweepRow
{
    std::string benchmark;
    std::string label;
    ErrorBreakdown error; ///< averaged over intervals, as fractions
    double hardwareCandidates = 0.0;
    double perfectCandidates = 0.0;
};

/**
 * Run every config against one benchmark's value (or edge) stream and
 * return one row per config. The stream is generated once.
 *
 * @param benchmark Benchmark name from the suite.
 * @param edges Use the edge workload instead of the value workload.
 * @param configs The profiler configurations to evaluate together.
 * @param intervals Number of profile intervals to run.
 */
std::vector<SweepRow> runBenchmarkConfigs(
    const std::string &benchmark, bool edges,
    const std::vector<LabelledConfig> &configs, uint64_t intervals);

/**
 * Run every config against every named benchmark, one worker thread
 * per benchmark (cells are independent; output order is fixed, so the
 * result is identical to the serial loop). Returns one row vector per
 * benchmark, in input order.
 */
std::vector<std::vector<SweepRow>> runSuiteConfigs(
    const std::vector<std::string> &benchmarks, bool edges,
    const std::vector<LabelledConfig> &configs, uint64_t intervals);

/** Append sweep rows to a table with the standard error columns. */
void addErrorRows(TablePrinter &table,
                  const std::vector<SweepRow> &rows);

/** The standard error-table header. */
std::vector<std::string> errorHeader();

/**
 * If MHP_CSV_DIR is set, also dump a table as CSV into that directory
 * (file <name>.csv); otherwise do nothing. Lets users replot figures
 * without parsing the text tables.
 */
void maybeWriteCsv(const std::string &name, const TablePrinter &table);

/** The four P/R single-hash configurations of Figure 7. */
std::vector<LabelledConfig>
singleHashPrSweep(uint64_t intervalLength, double threshold);

/** The C/R multi-hash design space of Figures 10/11. */
std::vector<LabelledConfig>
multiHashCrSweep(uint64_t intervalLength, double threshold,
                 const std::vector<unsigned> &tableCounts);

/** BSH + multi-hash table-count sweep of Figures 12/14. */
std::vector<LabelledConfig>
bestConfigSweep(uint64_t intervalLength, double threshold,
                const std::vector<unsigned> &tableCounts);

} // namespace bench
} // namespace mhp

#endif // MHP_BENCH_COMMON_H
