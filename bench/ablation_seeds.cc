/**
 * @file
 * Ablation: hash-seed sensitivity.
 *
 * The multi-hash design's guarantees are probabilistic over the choice
 * of random tables. A hardware implementation hardwires ONE choice, so
 * the error must be stable across seeds — a design whose accuracy
 * depends on a lucky seed would be unshippable. This sweep runs the
 * best single-hash and multi-hash profilers under 8 different
 * hash-function seeds against identical streams.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/factory.h"
#include "support/stats.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Ablation: hash-seed sensitivity",
                  "error across 8 random-table seeds, 10K @ 1%");

    const uint64_t intervals = bench::scaledIntervals(20);
    const int num_seeds = 8;

    TablePrinter table({"benchmark", "profiler", "mean-err%",
                        "min-err%", "max-err%", "stddev"});

    for (const std::string name : {"gcc", "go", "vortex"}) {
        for (const bool multi : {false, true}) {
            RunningStats errs;
            for (int s = 0; s < num_seeds; ++s) {
                ProfilerConfig c =
                    multi ? bestMultiHashConfig(10'000, 0.01)
                          : bestSingleHashConfig(10'000, 0.01);
                c.seed = 0x1000 + static_cast<uint64_t>(s) * 7919;
                const auto rows = bench::runBenchmarkConfigs(
                    name, false, {{multi ? "mh4" : "bsh", c}},
                    intervals);
                errs.add(rows[0].error.total() * 100.0);
            }
            table.addRow({name, multi ? "mh4-C1R0" : "BSH(R1P1)",
                          TablePrinter::num(errs.mean(), 3),
                          TablePrinter::num(errs.min(), 3),
                          TablePrinter::num(errs.max(), 3),
                          TablePrinter::num(errs.stddev(), 3)});
        }
    }
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("ablation_seeds", table);
    std::printf("\nClaim check: the multi-hash error is both lower and "
                "tighter across\nseeds than the single-hash error — no "
                "lucky-seed dependence.\n");
    return 0;
}
