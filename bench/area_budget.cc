/**
 * @file
 * Section 7 area accounting: the paper's 7-16 KB hardware budget.
 * Prints the byte breakdown (hash tables + accumulator) for the two
 * evaluated configurations and a sweep over counter widths and
 * thresholds.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/area_model.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Area budget (Section 7)",
                  "hardware storage of the evaluated configurations");

    TablePrinter table({"config", "hash-bytes", "accum-bytes",
                        "total-bytes", "total-KB"});

    auto addRow = [&](const char *label, const ProfilerConfig &c) {
        const AreaEstimate a = estimateArea(c);
        table.addRow({label, TablePrinter::num(a.hashTableBytes),
                      TablePrinter::num(a.accumulatorBytes),
                      TablePrinter::num(a.total()),
                      TablePrinter::num(
                          static_cast<double>(a.total()) / 1024.0, 2)});
    };

    ProfilerConfig paper1;
    paper1.totalHashEntries = 2048;
    paper1.counterBits = 24;
    paper1.intervalLength = 10'000;
    paper1.candidateThreshold = 0.01;
    addRow("paper 10K @ 1% (2K x 3B + 100-entry accum)", paper1);

    ProfilerConfig paper2 = paper1;
    paper2.intervalLength = 1'000'000;
    paper2.candidateThreshold = 0.001;
    addRow("paper 1M @ 0.1% (2K x 3B + 1000-entry accum)", paper2);

    // Width/threshold sensitivity.
    for (unsigned bits : {16u, 24u, 32u}) {
        ProfilerConfig c = paper1;
        c.counterBits = bits;
        const std::string label =
            "counterBits=" + std::to_string(bits) + " @ 1%";
        addRow(label.c_str(), c);
    }

    table.print(std::cout);
    mhp::bench::maybeWriteCsv("area_budget", table);
    std::printf("\nClaim check: totals fall in the paper's 7-16 KB "
                "range for the two\nevaluated configurations.\n");
    return 0;
}
