/**
 * @file
 * Ablation: accumulator-table capacity.
 *
 * Section 5.1 bounds the accumulator at 1/threshold entries (100 for
 * 1%) so it can never overflow with true candidates. Undersizing it
 * drops promotions (false negatives); oversizing buys nothing. This
 * sweep verifies the bound is exactly the knee.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Ablation: accumulator capacity",
                  "error vs accumulator entries, mh4-C1R0, 10K @ 1%");

    const uint64_t intervals = bench::scaledIntervals(30);

    std::vector<bench::LabelledConfig> configs;
    for (const uint64_t entries : {5u, 10u, 25u, 50u, 100u, 200u}) {
        ProfilerConfig c;
        c.intervalLength = 10'000;
        c.candidateThreshold = 0.01;
        c.totalHashEntries = 2048;
        c.numHashTables = 4;
        c.conservativeUpdate = true;
        c.resetOnPromote = false;
        c.retaining = true;
        c.accumulatorEntries = entries;
        configs.push_back({std::to_string(entries) + "e" +
                               (entries == 100 ? " (bound)" : ""),
                           c});
    }

    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             {"go", "m88ksim", "vortex"}, false, configs, intervals))
        bench::addErrorRows(table, rows);
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("ablation_accumulator", table);
    std::printf("\nClaim check: error (FN) rises once capacity falls "
                "below the program's\ncandidate count; at the Section "
                "5.1 bound (100 entries for 1%%) nothing is\never "
                "dropped, and extra capacity changes nothing.\n");
    return 0;
}
