/**
 * @file
 * Figure 12: the best multi-hash configuration (C1, R0, retaining) for
 * value profiling across the whole suite — best-single-hash (BSH)
 * versus 1/2/4/8/16 tables at 2K total entries, for both paper
 * configurations (10K @ 1% and 1M @ 0.1%).
 *
 * Shape claims: 4 tables consistently best; large win over BSH on gcc
 * and go; suite-average error under ~1%.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

namespace {

void
runSetting(uint64_t intervalLength, double threshold,
           uint64_t intervals, const char *label)
{
    using namespace mhp;
    std::printf("--- interval %s ---\n", label);
    const auto configs =
        bench::bestConfigSweep(intervalLength, threshold,
                               {1, 2, 4, 8, 16});

    TablePrinter table(bench::errorHeader());
    double mh4_total = 0.0;
    double bsh_total = 0.0;
    for (const auto &rows : bench::runSuiteConfigs(
             benchmarkNames(), false, configs, intervals)) {
        bench::addErrorRows(table, rows);
        for (const auto &row : rows) {
            if (row.label == "4t")
                mh4_total += row.error.total();
            if (row.label == "BSH")
                bsh_total += row.error.total();
        }
    }
    table.print(std::cout);
    mhp::bench::maybeWriteCsv(
        std::string("fig12_best_multihash_") +
            (intervalLength == 10'000 ? "10k" : "1m"),
        table);
    const double n = static_cast<double>(benchmarkNames().size());
    std::printf("\nsuite average total error: BSH %.2f%%, mh4-C1R0 "
                "%.2f%%\n\n",
                100.0 * bsh_total / n, 100.0 * mh4_total / n);
}

} // namespace

int
main()
{
    using namespace mhp;
    bench::banner("Figure 12",
                  "best multi-hash (C1,R0) vs BSH, value profiling");
    runSetting(10'000, 0.01, bench::scaledIntervals(30), "10K @ 1%");
    runSetting(1'000'000, 0.001, bench::scaledIntervals(4),
               "1M @ 0.1%");
    std::printf("Shape check: 4 tables consistently outperforms other "
                "configurations\nincluding BSH; the multi-hash average "
                "is under ~1%%.\n");
    return 0;
}
