/**
 * @file
 * google-benchmark microbenchmarks: event throughput of each profiler
 * architecture (events/second a software implementation sustains) and
 * the cost of the hash function itself. Not a paper figure — the
 * paper's profiler is hardware with zero run-time overhead — but
 * essential for anyone using this library for trace analysis.
 */

#include <benchmark/benchmark.h>

#include "core/factory.h"
#include "core/hash_function.h"
#include "core/perfect_profiler.h"
#include "core/stratified_sampler.h"
#include "trace/transforms.h"
#include "workload/benchmarks.h"

namespace {

using namespace mhp;

/** A reusable pre-generated stream (generation excluded from timing). */
const std::vector<Tuple> &
stream()
{
    static const std::vector<Tuple> tuples = [] {
        auto workload = makeValueWorkload("gcc");
        return collect(*workload, 200'000);
    }();
    return tuples;
}

void
BM_HashFunction(benchmark::State &state)
{
    TupleHasher hasher(1, 2048);
    const auto &tuples = stream();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hasher.index(tuples[i]));
        i = (i + 1) % tuples.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashFunction);

void
BM_Profiler(benchmark::State &state, unsigned numTables)
{
    ProfilerConfig cfg = bestMultiHashConfig(10'000, 0.01);
    cfg.numHashTables = numTables;
    if (numTables == 1) {
        cfg = bestSingleHashConfig(10'000, 0.01);
    }
    auto profiler = makeProfiler(cfg);
    const auto &tuples = stream();
    size_t i = 0;
    uint64_t in_interval = 0;
    for (auto _ : state) {
        profiler->onEvent(tuples[i]);
        i = (i + 1) % tuples.size();
        if (++in_interval == cfg.intervalLength) {
            benchmark::DoNotOptimize(profiler->endInterval());
            in_interval = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Profiler, single_hash, 1u);
BENCHMARK_CAPTURE(BM_Profiler, multi_hash_2, 2u);
BENCHMARK_CAPTURE(BM_Profiler, multi_hash_4, 4u);
BENCHMARK_CAPTURE(BM_Profiler, multi_hash_8, 8u);

void
BM_PerfectProfiler(benchmark::State &state)
{
    PerfectProfiler profiler(100);
    const auto &tuples = stream();
    size_t i = 0;
    uint64_t in_interval = 0;
    for (auto _ : state) {
        profiler.onEvent(tuples[i]);
        i = (i + 1) % tuples.size();
        if (++in_interval == 10'000) {
            benchmark::DoNotOptimize(profiler.endInterval());
            in_interval = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerfectProfiler);

void
BM_StratifiedSampler(benchmark::State &state)
{
    StratifiedSamplerConfig cfg;
    cfg.entries = 2048;
    cfg.samplingThreshold = 32;
    StratifiedSampler sampler(cfg, 100);
    const auto &tuples = stream();
    size_t i = 0;
    uint64_t in_interval = 0;
    for (auto _ : state) {
        sampler.onEvent(tuples[i]);
        i = (i + 1) % tuples.size();
        if (++in_interval == 10'000) {
            benchmark::DoNotOptimize(sampler.endInterval());
            in_interval = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StratifiedSampler);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto workload = makeValueWorkload("go");
    for (auto _ : state)
        benchmark::DoNotOptimize(workload->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

} // namespace
