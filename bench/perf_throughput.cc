/**
 * @file
 * google-benchmark microbenchmarks: event throughput of each profiler
 * architecture (events/second a software implementation sustains),
 * per-event vs. batched ingestion, and the cost of the hash function
 * itself. Not a paper figure — the paper's profiler is hardware with
 * zero run-time overhead — but essential for anyone using this library
 * for trace analysis.
 *
 * Unless --benchmark_out is given, results are also written as JSON to
 * BENCH_throughput.json (override the path with MHP_BENCH_JSON) so CI
 * can archive the throughput trajectory. Debug builds refuse that
 * default dump and tag any explicit output "invalid": a debug-build
 * number must never become a comparison baseline (docs/PERF.md). The
 * honest-measurement context keys (mhp_build_type, clock source,
 * scaling governor) are embedded in the JSON so tools/bench_check.py
 * can verify a file's provenance before trusting it.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/interval_runner.h"
#include "common.h"
#include "core/factory.h"
#include "core/hash_function.h"
#include "core/ingest_kernels.h"
#include "core/perfect_profiler.h"
#include "core/stratified_sampler.h"
#include "support/cpu.h"
#include "support/panic.h"
#include "trace/trace_io.h"
#include "trace/trace_map.h"
#include "trace/transforms.h"
#include "trace/tuple_span.h"
#include "workload/benchmarks.h"

namespace {

using namespace mhp;

/** A reusable pre-generated stream (generation excluded from timing). */
const std::vector<Tuple> &
stream()
{
    static const std::vector<Tuple> tuples = [] {
        auto workload = makeValueWorkload("gcc");
        return collect(*workload, 200'000);
    }();
    return tuples;
}

void
BM_HashFunction(benchmark::State &state)
{
    TupleHasher hasher(1, 2048);
    const auto &tuples = stream();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hasher.index(tuples[i]));
        i = (i + 1) % tuples.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashFunction);

void
BM_Profiler(benchmark::State &state, unsigned numTables,
            uint64_t intervalLength)
{
    ProfilerConfig cfg = bestMultiHashConfig(intervalLength, 0.01);
    cfg.numHashTables = numTables;
    if (numTables == 1) {
        cfg = bestSingleHashConfig(intervalLength, 0.01);
    }
    auto profiler = makeProfiler(cfg);
    const auto &tuples = stream();
    size_t i = 0;
    uint64_t in_interval = 0;
    for (auto _ : state) {
        profiler->onEvent(tuples[i]);
        i = (i + 1) % tuples.size();
        if (++in_interval == cfg.intervalLength) {
            benchmark::DoNotOptimize(profiler->endInterval());
            in_interval = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Profiler, single_hash, 1u, 10'000);
BENCHMARK_CAPTURE(BM_Profiler, multi_hash_2, 2u, 10'000);
BENCHMARK_CAPTURE(BM_Profiler, multi_hash_4, 4u, 10'000);
BENCHMARK_CAPTURE(BM_Profiler, multi_hash_8, 8u, 10'000);
// Figure 11's regime: 1M-event intervals. The 10'000-count threshold
// makes promotions rare, so nearly every event runs the full hash
// pipeline — the regime where batched ingest helps most.
BENCHMARK_CAPTURE(BM_Profiler, multi_hash_4_1m, 4u, 1'000'000);

/**
 * The batched ingest path: same stream, same interval cadence, but
 * events are delivered through onEvents() in blocks so the profiler
 * pays one virtual dispatch per block and runs its flag-specialized
 * kernel. One benchmark iteration processes one block.
 */
void
BM_ProfilerBatched(benchmark::State &state, unsigned numTables,
                   size_t batchSize, uint64_t intervalLength)
{
    ProfilerConfig cfg = bestMultiHashConfig(intervalLength, 0.01);
    cfg.numHashTables = numTables;
    if (numTables == 1) {
        cfg = bestSingleHashConfig(intervalLength, 0.01);
    }
    auto profiler = makeProfiler(cfg);
    const auto &tuples = stream();
    size_t pos = 0;
    uint64_t in_interval = 0;
    int64_t events = 0;
    for (auto _ : state) {
        // One block, clipped to the stream end and interval boundary.
        size_t n = std::min(batchSize, tuples.size() - pos);
        n = std::min<size_t>(n, cfg.intervalLength - in_interval);
        profiler->onEvents(tuples.data() + pos, n);
        pos += n;
        if (pos == tuples.size())
            pos = 0;
        in_interval += n;
        if (in_interval == cfg.intervalLength) {
            benchmark::DoNotOptimize(profiler->endInterval());
            in_interval = 0;
        }
        events += static_cast<int64_t>(n);
    }
    state.SetItemsProcessed(events);
}
BENCHMARK_CAPTURE(BM_ProfilerBatched, single_hash, 1u, 4096, 10'000);
BENCHMARK_CAPTURE(BM_ProfilerBatched, multi_hash_2, 2u, 4096, 10'000);
BENCHMARK_CAPTURE(BM_ProfilerBatched, multi_hash_4, 4u, 4096, 10'000);
BENCHMARK_CAPTURE(BM_ProfilerBatched, multi_hash_8, 8u, 4096, 10'000);
BENCHMARK_CAPTURE(BM_ProfilerBatched, multi_hash_4_b256, 4u, 256,
                  10'000);
BENCHMARK_CAPTURE(BM_ProfilerBatched, multi_hash_4_1m, 4u, 4096,
                  1'000'000);

void
BM_PerfectProfiler(benchmark::State &state)
{
    PerfectProfiler profiler(100);
    const auto &tuples = stream();
    size_t i = 0;
    uint64_t in_interval = 0;
    for (auto _ : state) {
        profiler.onEvent(tuples[i]);
        i = (i + 1) % tuples.size();
        if (++in_interval == 10'000) {
            benchmark::DoNotOptimize(profiler.endInterval());
            in_interval = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerfectProfiler);

void
BM_StratifiedSampler(benchmark::State &state)
{
    StratifiedSamplerConfig cfg;
    cfg.entries = 2048;
    cfg.samplingThreshold = 32;
    StratifiedSampler sampler(cfg, 100);
    const auto &tuples = stream();
    size_t i = 0;
    uint64_t in_interval = 0;
    for (auto _ : state) {
        sampler.onEvent(tuples[i]);
        i = (i + 1) % tuples.size();
        if (++in_interval == 10'000) {
            benchmark::DoNotOptimize(sampler.endInterval());
            in_interval = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StratifiedSampler);

void
BM_PerfectProfilerBatched(benchmark::State &state)
{
    PerfectProfiler profiler(100);
    const auto &tuples = stream();
    constexpr size_t kBatch = 4096;
    constexpr uint64_t kInterval = 10'000;
    size_t pos = 0;
    uint64_t in_interval = 0;
    int64_t events = 0;
    for (auto _ : state) {
        size_t n = std::min(kBatch, tuples.size() - pos);
        n = std::min<size_t>(n, kInterval - in_interval);
        profiler.onEvents(tuples.data() + pos, n);
        pos += n;
        if (pos == tuples.size())
            pos = 0;
        in_interval += n;
        if (in_interval == kInterval) {
            benchmark::DoNotOptimize(profiler.endInterval());
            in_interval = 0;
        }
        events += static_cast<int64_t>(n);
    }
    state.SetItemsProcessed(events);
}
BENCHMARK(BM_PerfectProfilerBatched);

/** A temp .mht trace recorded once for the ingest benches. */
const std::string &
tracePath()
{
    static const std::string path = [] {
        const std::string p =
            (std::filesystem::temp_directory_path() /
             "mhp_bench_ingest.mht")
                .string();
        TraceWriter writer(p, ProfileKind::Value);
        auto workload = makeValueWorkload("gcc");
        pump(*workload, writer, 200'000);
        const Status closed = writer.close();
        MHP_REQUIRE(closed.isOk(), "cannot record ingest bench trace");
        return p;
    }();
    return path;
}

/**
 * End-to-end trace ingest through the streaming interval pipeline:
 * open the trace, deliver every record to an mh4 profiler at 10K
 * intervals. The vector leg materializes the whole file through the
 * buffered reader first (the pre-streaming data plane); the mmap leg
 * serves zero-copy chunks straight from the mapping. One benchmark
 * iteration replays the whole trace.
 */
void
BM_TraceIngest(benchmark::State &state, bool mapped)
{
    constexpr uint64_t kIntervalLength = 10'000;
    const ProfilerConfig cfg =
        bestMultiHashConfig(kIntervalLength, 0.01);
    const std::string &path = tracePath();
    int64_t events = 0;
    for (auto _ : state) {
        auto profiler = makeProfiler(cfg);
        const std::vector<HardwareProfiler *> one{profiler.get()};
        RunOutput out;
        if (mapped) {
            auto map = TraceMap::open(path);
            MHP_REQUIRE(map.isOk(), "cannot map ingest bench trace");
            TraceMapSource cursor(*map);
            out = runIntervalsStream(cursor, one, kIntervalLength,
                                     cfg.thresholdCount(),
                                     cursor.size() / kIntervalLength);
        } else {
            auto reader = TraceReader::open(path);
            MHP_REQUIRE(reader.isOk(),
                        "cannot open ingest bench trace");
            std::vector<Tuple> all;
            all.reserve((*reader)->totalEvents());
            while (!(*reader)->done())
                all.push_back((*reader)->next());
            TupleSpanSource cursor(TupleSpan(all.data(), all.size()));
            out = runIntervalsStream(cursor, one, kIntervalLength,
                                     cfg.thresholdCount(),
                                     all.size() / kIntervalLength);
        }
        benchmark::DoNotOptimize(out.intervalsCompleted);
        events += static_cast<int64_t>(out.eventsConsumed);
    }
    state.SetItemsProcessed(events);
}
BENCHMARK_CAPTURE(BM_TraceIngest, vector, false);
BENCHMARK_CAPTURE(BM_TraceIngest, mmap, true);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto workload = makeValueWorkload("go");
    for (auto _ : state)
        benchmark::DoNotOptimize(workload->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

/** A pre-generated Ball–Larus path-tuple stream. */
const std::vector<Tuple> &
pathStream()
{
    static const std::vector<Tuple> tuples = [] {
        auto workload = makePathWorkload("gcc");
        return collect(*workload, 200'000);
    }();
    return tuples;
}

/**
 * The mh4 profiler over path tuples: the same ingest pipeline as
 * BM_Profiler but a different key distribution (dense small path ids
 * against sparse 64-bit PCs), so the path event class gets its own
 * throughput series in BENCH_throughput.json.
 */
void
BM_ProfilerPathTuples(benchmark::State &state)
{
    const ProfilerConfig cfg = bestMultiHashConfig(10'000, 0.01);
    auto profiler = makeProfiler(cfg);
    const auto &tuples = pathStream();
    size_t i = 0;
    uint64_t in_interval = 0;
    for (auto _ : state) {
        profiler->onEvent(tuples[i]);
        i = (i + 1) % tuples.size();
        if (++in_interval == cfg.intervalLength) {
            benchmark::DoNotOptimize(profiler->endInterval());
            in_interval = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerPathTuples);

void
BM_PathWorkloadGeneration(benchmark::State &state)
{
    auto workload = makePathWorkload("go");
    for (auto _ : state)
        benchmark::DoNotOptimize(workload->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathWorkloadGeneration);

/**
 * Per-ISA-tier batched ingest: the mh4 profiler driven through
 * onEvents() with its kernel table pinned to one tier. Registered at
 * runtime for every tier this binary + CPU can run, so one JSON file
 * carries e.g. BM_IsaBatchedIngest/mh4/scalar next to .../avx2 —
 * tools/bench_check.py asserts the SIMD ≥ 1.5× scalar speedup on
 * exactly these series. Profilers capture their kernel table at
 * construction, so the pin wraps construction only.
 */
void
BM_IsaBatchedIngest(benchmark::State &state, IsaTier tier)
{
    constexpr size_t kBatch = 4096;
    ProfilerConfig cfg = bestMultiHashConfig(10'000, 0.01);
    cfg.numHashTables = 4;
    setIsaTierForTesting(tier);
    auto profiler = makeProfiler(cfg);
    setIsaTierForTesting(std::nullopt);
    const auto &tuples = stream();
    size_t pos = 0;
    uint64_t in_interval = 0;
    int64_t events = 0;
    for (auto _ : state) {
        size_t n = std::min(kBatch, tuples.size() - pos);
        n = std::min<size_t>(n, cfg.intervalLength - in_interval);
        profiler->onEvents(tuples.data() + pos, n);
        pos += n;
        if (pos == tuples.size())
            pos = 0;
        in_interval += n;
        if (in_interval == cfg.intervalLength) {
            benchmark::DoNotOptimize(profiler->endInterval());
            in_interval = 0;
        }
        events += static_cast<int64_t>(n);
    }
    state.SetItemsProcessed(events);
}

/**
 * Per-ISA-tier hash-pipeline kernel: hashBlock over 256-tuple blocks
 * through one hasher (the stage the tier difference is made of,
 * without profiler bookkeeping around it).
 */
void
BM_IsaHashBlock(benchmark::State &state, IsaTier tier)
{
    const IngestKernels *kern = ingestKernelsFor(tier);
    MHP_REQUIRE(kern != nullptr, "tier not runnable here");
    constexpr size_t kBlock = 256;
    const TupleHasher hasher(1, 2048);
    const auto &tuples = stream();
    std::vector<uint32_t> out(kBlock);
    size_t pos = 0;
    int64_t events = 0;
    for (auto _ : state) {
        const size_t n = std::min(kBlock, tuples.size() - pos);
        kern->hashBlock(hasher.tableWords(), hasher.indexBits(),
                        tuples.data() + pos, nullptr, n, out.data(), 1,
                        0);
        benchmark::DoNotOptimize(out.data());
        pos += n;
        if (pos == tuples.size())
            pos = 0;
        events += static_cast<int64_t>(n);
    }
    state.SetItemsProcessed(events);
}

/** Register the per-tier series for every runnable tier. */
void
registerIsaTierBenches()
{
    const IsaTier tiers[] = {IsaTier::Scalar, IsaTier::Sse42,
                             IsaTier::Avx2, IsaTier::Neon,
                             IsaTier::Avx512};
    for (const IsaTier tier : tiers) {
        if (ingestKernelsFor(tier) == nullptr)
            continue;
        const std::string name = isaTierName(tier);
        benchmark::RegisterBenchmark(
            ("BM_IsaBatchedIngest/mh4/" + name).c_str(),
            [tier](benchmark::State &s) { BM_IsaBatchedIngest(s, tier); });
        benchmark::RegisterBenchmark(
            ("BM_IsaHashBlock/" + name).c_str(),
            [tier](benchmark::State &s) { BM_IsaHashBlock(s, tier); });
    }
}

/**
 * STREAM-style peak-bandwidth probes, sized far beyond the last-level
 * cache so they measure DRAM, not cache. items_per_second in the JSON
 * is bytes/second; tools/bench_check.py divides the mh4 batched-ingest
 * event bandwidth (16 bytes/event of streamed tuples) by the read
 * roofline to report how close ingest runs to the memory wall
 * (docs/PERF.md). Four probes because "peak" depends on the access
 * pattern: pure streaming reads (the ingest stream's own pattern),
 * copy and triad (the classic STREAM kernels, read+write mixes), and
 * dependent-free random gathers (the counter banks' pattern when they
 * spill past the caches).
 */
constexpr size_t kRooflineWords = size_t{8} << 20; // 64 MiB per array

const std::vector<uint64_t> &
rooflineSrc()
{
    static const std::vector<uint64_t> buf = [] {
        std::vector<uint64_t> b(kRooflineWords);
        for (size_t i = 0; i < b.size(); ++i)
            b[i] = i * 0x9e3779b97f4a7c15ULL;
        return b;
    }();
    return buf;
}

void
BM_RooflineRead(benchmark::State &state)
{
    const std::vector<uint64_t> &src = rooflineSrc();
    uint64_t acc = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < src.size(); ++i)
            acc += src[i];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(src.size() * 8));
}
BENCHMARK(BM_RooflineRead);

void
BM_RooflineCopy(benchmark::State &state)
{
    const std::vector<uint64_t> &src = rooflineSrc();
    std::vector<uint64_t> dst(src.size());
    for (auto _ : state) {
        std::copy(src.begin(), src.end(), dst.begin());
        benchmark::DoNotOptimize(dst.data());
        benchmark::ClobberMemory();
    }
    // Read + write traffic.
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(src.size() * 16));
}
BENCHMARK(BM_RooflineCopy);

void
BM_RooflineTriad(benchmark::State &state)
{
    const std::vector<uint64_t> &b = rooflineSrc();
    std::vector<uint64_t> a(b.size());
    std::vector<uint64_t> c(b.size(), 3);
    for (auto _ : state) {
        for (size_t i = 0; i < b.size(); ++i)
            a[i] = b[i] + 3 * c[i];
        benchmark::DoNotOptimize(a.data());
        benchmark::ClobberMemory();
    }
    // Two streams read, one written.
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(b.size() * 24));
}
BENCHMARK(BM_RooflineTriad);

void
BM_RooflineGather(benchmark::State &state)
{
    const std::vector<uint64_t> &src = rooflineSrc();
    // Independent pseudo-random positions (no pointer chase): peak
    // *parallel* random-access bandwidth, the counter banks' pattern.
    static const std::vector<uint32_t> pos = [] {
        std::vector<uint32_t> p(1 << 20);
        uint64_t s = 0x2545f4914f6cdd1dULL;
        for (auto &v : p) {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            v = static_cast<uint32_t>(s & (kRooflineWords - 1));
        }
        return p;
    }();
    uint64_t acc = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < pos.size(); ++i)
            acc += src[pos[i]];
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(pos.size() * 8));
}
BENCHMARK(BM_RooflineGather);

} // namespace

int
main(int argc, char **argv)
{
    // This binary's own build type is what decides whether its numbers
    // may become a baseline. (The installed benchmark *library* build
    // type — the library_build_type context key — says nothing about
    // how our hot loops were compiled.)
#ifdef NDEBUG
    const bool releaseBuild = true;
#else
    const bool releaseBuild = false;
#endif

    std::vector<char *> args(argv, argv + argc);
    bool haveOut = false;
    bool haveReps = false;
    std::string outPath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg.rfind("--benchmark_out=", 0) == 0) {
            haveOut = true;
            outPath = arg.substr(16);
        }
        if (arg.rfind("--benchmark_repetitions=", 0) == 0)
            haveReps = true;
    }

    // MHP_BENCH_REPS pass-through: an explicit --benchmark_repetitions
    // flag wins, otherwise the environment can request repetitions
    // (CI sets it without touching the command line).
    std::string repsFlag;
    unsigned repetitions = 1;
    if (haveReps) {
        for (int i = 1; i < argc; ++i) {
            const std::string arg(argv[i]);
            if (arg.rfind("--benchmark_repetitions=", 0) == 0)
                repetitions = static_cast<unsigned>(std::max(
                    1L, std::strtol(arg.c_str() + 24, nullptr, 10)));
        }
    } else if (const char *reps = std::getenv("MHP_BENCH_REPS");
               reps != nullptr && *reps != '\0') {
        repetitions = static_cast<unsigned>(
            std::max(1L, std::strtol(reps, nullptr, 10)));
        repsFlag = "--benchmark_repetitions=" +
                   std::to_string(repetitions);
        args.push_back(repsFlag.data());
    }

    // Default a JSON dump to BENCH_throughput.json (or MHP_BENCH_JSON)
    // so every Release run leaves a machine-readable record; explicit
    // --benchmark_out flags win. Debug builds REFUSE the default dump:
    // a debug number silently landing in BENCH_throughput.json is how
    // the repo's baseline went stale once already.
    std::string outFlag;
    std::string formatFlag = "--benchmark_out_format=json";
    if (!haveOut) {
        if (releaseBuild) {
            const char *path = std::getenv("MHP_BENCH_JSON");
            outPath = (path != nullptr && *path != '\0')
                          ? path
                          : "BENCH_throughput.json";
            outFlag = std::string("--benchmark_out=") + outPath;
            args.push_back(outFlag.data());
            args.push_back(formatFlag.data());
        } else {
            std::fprintf(
                stderr,
                "perf_throughput: debug build — refusing the default "
                "BENCH_throughput.json dump (results are not a valid "
                "baseline; pass --benchmark_out=... to keep them, "
                "tagged \"invalid\").\n");
        }
    }

    // Provenance + timing-environment context, embedded in the JSON so
    // tools/bench_check.py can verify a file before trusting it.
    benchmark::AddCustomContext("mhp_build_type",
                                releaseBuild ? "release" : "debug");
    benchmark::AddCustomContext("invalid",
                                releaseBuild ? "false" : "true");
    benchmark::AddCustomContext("mhp_clock_source",
                                mhp::bench::clockSource());
    benchmark::AddCustomContext("mhp_cpu_governor",
                                mhp::bench::cpuScalingGovernor());
    benchmark::AddCustomContext(
        "mhp_cpu_scaling_active",
        mhp::bench::cpuScalingActive() ? "true" : "false");
    benchmark::AddCustomContext("mhp_repetitions",
                                std::to_string(repetitions));
    benchmark::AddCustomContext("mhp_isa_active",
                                isaTierName(activeIsaTier()));
    benchmark::AddCustomContext("mhp_isa_best",
                                isaTierName(bestIsaTier()));

    mhp::bench::reportTimingEnvironment(repetitions);
    registerIsaTierBenches();

    int argcEff = static_cast<int>(args.size());
    benchmark::Initialize(&argcEff, args.data());
    if (benchmark::ReportUnrecognizedArguments(argcEff, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // benchmark::AddCustomContext can only carry strings, which used
    // to leave "invalid" in the JSON as the *string* "false" — easy
    // for a consumer to mis-read as truthy. Rewrite the validity flag
    // as a real JSON boolean after the library has written the file
    // (tools/bench_check.py rejects the stringly form outright).
    if (!outPath.empty()) {
        if (std::FILE *f = std::fopen(outPath.c_str(), "rb")) {
            std::string text;
            char buf[1 << 16];
            size_t got;
            while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
                text.append(buf, got);
            std::fclose(f);
            bool changed = false;
            for (const char *boolean : {"false", "true"}) {
                const std::string from =
                    std::string("\"invalid\": \"") + boolean + "\"";
                const std::string to =
                    std::string("\"invalid\": ") + boolean;
                for (size_t at = text.find(from);
                     at != std::string::npos; at = text.find(from, at)) {
                    text.replace(at, from.size(), to);
                    changed = true;
                }
            }
            if (changed) {
                if (std::FILE *out = std::fopen(outPath.c_str(), "wb")) {
                    std::fwrite(text.data(), 1, text.size(), out);
                    std::fclose(out);
                }
            }
        }
    }
    return 0;
}
