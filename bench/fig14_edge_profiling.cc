/**
 * @file
 * Figure 14: the best multi-hash profiler applied to EDGE profiling —
 * BSH vs 1/2/4/8 tables (C1, R0), 2K entries, for both paper interval
 * configurations. Shape claim: the value-profiling conclusions carry
 * over; 4 tables significantly outperforms the alternatives.
 *
 * An extra "cfg-walk" row repeats the sweep on a correlated CFG
 * random-walk stream (edges arrive in loop runs, not i.i.d. draws) as
 * a structural realism check.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "analysis/interval_runner.h"
#include "common.h"
#include "core/factory.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"
#include "workload/cfg_walk_workload.h"

namespace {

/** The same sweep on a correlated CFG-random-walk edge stream. */
std::vector<mhp::bench::SweepRow>
runCfgWalk(const std::vector<mhp::bench::LabelledConfig> &configs,
           uint64_t intervalLength, uint64_t threshold,
           uint64_t intervals)
{
    using namespace mhp;
    CfgWalkConfig wcfg;
    wcfg.seed = 17;
    wcfg.nodes = 1500;
    CfgWalkWorkload workload(wcfg);

    std::vector<std::unique_ptr<HardwareProfiler>> profilers;
    std::vector<HardwareProfiler *> raw;
    for (const auto &lc : configs) {
        profilers.push_back(makeProfiler(lc.config));
        raw.push_back(profilers.back().get());
    }
    const RunOutput out =
        runIntervals(workload, raw, intervalLength, threshold,
                     intervals);
    std::vector<bench::SweepRow> rows;
    for (size_t i = 0; i < configs.size(); ++i) {
        bench::SweepRow row;
        row.benchmark = "cfg-walk";
        row.label = configs[i].label;
        row.error = out.results[i].averageError();
        row.hardwareCandidates =
            out.results[i].meanHardwareCandidates();
        row.perfectCandidates =
            out.results[i].meanPerfectCandidates();
        rows.push_back(row);
    }
    return rows;
}

void
runSetting(uint64_t intervalLength, double threshold,
           uint64_t intervals, const char *label)
{
    using namespace mhp;
    std::printf("--- interval %s ---\n", label);
    const auto configs = bench::bestConfigSweep(intervalLength,
                                                threshold, {1, 2, 4, 8});
    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             benchmarkNames(), /*edges=*/true, configs, intervals))
        bench::addErrorRows(table, rows);
    const auto threshold_count = static_cast<uint64_t>(
        static_cast<double>(intervalLength) * threshold);
    bench::addErrorRows(
        table, runCfgWalk(configs, intervalLength,
                          threshold_count == 0 ? 1 : threshold_count,
                          intervals));
    table.print(std::cout);
    mhp::bench::maybeWriteCsv(
        std::string("fig14_edges_") +
            (intervalLength == 10'000 ? "10k" : "1m"),
        table);
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace mhp;
    bench::banner("Figure 14", "best multi-hash for edge profiling");
    runSetting(10'000, 0.01, bench::scaledIntervals(30), "10K @ 1%");
    runSetting(1'000'000, 0.001, bench::scaledIntervals(4),
               "1M @ 0.1%");
    std::printf("Shape check: same conclusions as value profiling; "
                "edge streams have\nfewer distinct tuples, so errors "
                "are smaller overall.\n");
    return 0;
}
