/**
 * @file
 * Figure 4: number of distinct tuples seen in an interval, on average,
 * for value profiling, per benchmark and interval length (10K / 100K /
 * 1M). The paper's claim: distinct tuples grow roughly proportionally
 * with interval length (noise scales, signal does not).
 */

#include <cstdio>
#include <iostream>

#include "analysis/candidate_stats.h"
#include "common.h"
#include "support/env.h"
#include "support/parallel.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

int
main()
{
    using namespace mhp;
    bench::banner("Figure 4",
                  "distinct tuples per interval (value profiling)");

    struct IntervalSetting
    {
        uint64_t length;
        uint64_t intervals;
    };
    const IntervalSetting settings[] = {
        {10'000, bench::scaledIntervals(20)},
        {100'000, bench::scaledIntervals(8)},
        {1'000'000, bench::scaledIntervals(3)},
    };

    TablePrinter table({"benchmark", "10K", "100K", "1M"});
    const auto &names = benchmarkNames();
    std::vector<std::vector<std::string>> rows(names.size());
    parallelFor(names.size(), [&](size_t i) {
        std::vector<std::string> row{names[i]};
        for (const auto &setting : settings) {
            auto workload = makeValueWorkload(names[i]);
            // The threshold is irrelevant for distinct-tuple counting;
            // use the paper's 1%.
            const uint64_t threshold = setting.length / 100;
            const CandidateAnalysis a = analyzeCandidates(
                *workload, setting.length, threshold,
                setting.intervals);
            row.push_back(
                TablePrinter::num(a.distinctPerInterval.mean(), 0));
        }
        rows[i] = std::move(row);
    });
    for (auto &row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("fig04_distinct_tuples", table);

    std::printf("\nShape check: distinct tuples should grow with the "
                "interval length\n(the paper shows roughly "
                "proportional growth on a log scale).\n");
    return 0;
}
