#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "analysis/sweep_runner.h"
#include "core/factory.h"
#include "support/env.h"
#include "support/panic.h"
#include "workload/benchmarks.h"

namespace mhp {
namespace bench {

void
banner(const std::string &figure, const std::string &what)
{
    std::printf("=== %s: %s ===\n", figure.c_str(), what.c_str());
    std::printf("(synthetic workloads; MHP_SCALE=%.3g; shapes, not "
                "absolute numbers, are the reproduction target)\n\n",
                experimentScale());
}

uint64_t
scaledIntervals(uint64_t baseIntervals)
{
    return scaledCount(baseIntervals, 2);
}

namespace {

/** First line of a sysfs file, or empty when unreadable. */
std::string
readSysfsLine(const char *path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::string line;
    std::getline(in, line);
    return line;
}

} // namespace

std::string
clockSource()
{
    const std::string source = readSysfsLine(
        "/sys/devices/system/clocksource/clocksource0/"
        "current_clocksource");
    return source.empty() ? "unknown" : source;
}

std::string
cpuScalingGovernor()
{
    // No cpufreq directory at all (fixed-clock VMs, many containers)
    // means no scaling; distinguish that from an unreadable governor.
    const char *dir = "/sys/devices/system/cpu/cpu0/cpufreq";
    std::error_code ec;
    if (!std::filesystem::exists(dir, ec))
        return "none";
    const std::string governor = readSysfsLine(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
    return governor.empty() ? "unknown" : governor;
}

bool
cpuScalingActive()
{
    const std::string governor = cpuScalingGovernor();
    return governor != "none" && governor != "performance";
}

void
reportTimingEnvironment(unsigned repetitions)
{
    std::printf("timing environment: clocksource=%s governor=%s "
                "scaling=%s repetitions=%u\n",
                clockSource().c_str(), cpuScalingGovernor().c_str(),
                cpuScalingActive() ? "ACTIVE (results may wobble)"
                                   : "inactive",
                repetitions);
}

std::vector<SweepRow>
runBenchmarkConfigs(const std::string &benchmark, bool edges,
                    const std::vector<LabelledConfig> &configs,
                    uint64_t intervals)
{
    MHP_REQUIRE(!configs.empty(), "no configurations");
    const uint64_t interval_length = configs[0].config.intervalLength;
    const uint64_t threshold = configs[0].config.thresholdCount();
    for (const auto &lc : configs) {
        MHP_REQUIRE(lc.config.intervalLength == interval_length,
                    "sweep configs must share the interval length");
        MHP_REQUIRE(lc.config.thresholdCount() == threshold,
                    "sweep configs must share the threshold");
    }

    std::vector<std::unique_ptr<HardwareProfiler>> profilers;
    std::vector<HardwareProfiler *> raw;
    profilers.reserve(configs.size());
    for (const auto &lc : configs) {
        profilers.push_back(makeProfiler(lc.config));
        raw.push_back(profilers.back().get());
    }

    std::unique_ptr<EventSource> source;
    if (edges)
        source = makeEdgeWorkload(benchmark);
    else
        source = makeValueWorkload(benchmark);

    // Batched adapter of the streaming core: one virtual dispatch per
    // block instead of per event, scores bit-identical to the
    // per-event run (the onEvents == onEvent contract).
    const RunOutput out =
        runIntervalsBatched(*source, raw, interval_length, threshold,
                            intervals);

    std::vector<SweepRow> rows;
    rows.reserve(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        SweepRow row;
        row.benchmark = benchmark;
        row.label = configs[i].label;
        row.error = out.results[i].averageError();
        row.hardwareCandidates =
            out.results[i].meanHardwareCandidates();
        row.perfectCandidates =
            out.results[i].meanPerfectCandidates();
        rows.push_back(row);
    }
    return rows;
}

std::vector<std::vector<SweepRow>>
runSuiteConfigs(const std::vector<std::string> &benchmarks, bool edges,
                const std::vector<LabelledConfig> &configs,
                uint64_t intervals)
{
    // Shard at (benchmark x config) granularity through the sweep
    // engine. Every cell regenerates the same seeded stream the shared
    // pump used to produce, so the rows are identical to the old
    // one-thread-per-benchmark driver — there are just more,
    // better-balanced cells to schedule.
    SweepPlan plan;
    plan.benchmarks = benchmarks;
    plan.kind = edges ? ProfileKind::Edge : ProfileKind::Value;
    plan.configs.reserve(configs.size());
    for (const auto &lc : configs)
        plan.configs.push_back({lc.label, lc.config});
    plan.intervals = intervals;

    const SweepRunner runner(std::move(plan));
    const std::vector<SweepCellResult> cells = runner.run();

    std::vector<std::vector<SweepRow>> out(benchmarks.size());
    for (auto &rows : out)
        rows.reserve(configs.size());
    for (const auto &cell : cells) {
        SweepRow row;
        row.benchmark = cell.benchmark;
        row.label = cell.configLabel;
        row.error = cell.run.averageError();
        row.hardwareCandidates = cell.run.meanHardwareCandidates();
        row.perfectCandidates = cell.run.meanPerfectCandidates();
        out[cell.benchmarkIndex].push_back(std::move(row));
    }
    return out;
}

std::vector<std::string>
errorHeader()
{
    return {"benchmark", "config",  "total%", "FP%",
            "FN%",       "NP%",     "NN%",    "hwCand"};
}

void
addErrorRows(TablePrinter &table, const std::vector<SweepRow> &rows)
{
    for (const auto &row : rows) {
        table.addRow({
            row.benchmark,
            row.label,
            TablePrinter::num(row.error.total() * 100.0, 2),
            TablePrinter::num(row.error.falsePositive * 100.0, 2),
            TablePrinter::num(row.error.falseNegative * 100.0, 2),
            TablePrinter::num(row.error.neutralPositive * 100.0, 2),
            TablePrinter::num(row.error.neutralNegative * 100.0, 2),
            TablePrinter::num(row.hardwareCandidates, 1),
        });
    }
}

void
maybeWriteCsv(const std::string &name, const TablePrinter &table)
{
    const char *dir = std::getenv("MHP_CSV_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    const std::string path = std::string(dir) + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    table.printCsv(out);
    std::printf("(csv written to %s)\n", path.c_str());
}

std::vector<LabelledConfig>
singleHashPrSweep(uint64_t intervalLength, double threshold)
{
    std::vector<LabelledConfig> out;
    for (const bool retain : {false, true}) {
        for (const bool reset : {false, true}) {
            ProfilerConfig c;
            c.intervalLength = intervalLength;
            c.candidateThreshold = threshold;
            c.totalHashEntries = 2048;
            c.numHashTables = 1;
            c.conservativeUpdate = false;
            c.resetOnPromote = reset;
            c.retaining = retain;
            out.push_back({std::string("P") + (retain ? "1" : "0") +
                               ",R" + (reset ? "1" : "0"),
                           c});
        }
    }
    return out;
}

std::vector<LabelledConfig>
multiHashCrSweep(uint64_t intervalLength, double threshold,
                 const std::vector<unsigned> &tableCounts)
{
    std::vector<LabelledConfig> out;
    for (const unsigned n : tableCounts) {
        for (const bool conservative : {false, true}) {
            for (const bool reset : {false, true}) {
                ProfilerConfig c;
                c.intervalLength = intervalLength;
                c.candidateThreshold = threshold;
                c.totalHashEntries = 2048;
                c.numHashTables = n;
                c.conservativeUpdate = conservative;
                c.resetOnPromote = reset;
                c.retaining = true; // paper: retaining on throughout 6.3
                out.push_back({std::to_string(n) + "t,C" +
                                   (conservative ? "1" : "0") + ",R" +
                                   (reset ? "1" : "0"),
                               c});
            }
        }
    }
    return out;
}

std::vector<LabelledConfig>
bestConfigSweep(uint64_t intervalLength, double threshold,
                const std::vector<unsigned> &tableCounts)
{
    std::vector<LabelledConfig> out;
    {
        ProfilerConfig bsh =
            bestSingleHashConfig(intervalLength, threshold);
        out.push_back({"BSH", bsh});
    }
    for (const unsigned n : tableCounts) {
        ProfilerConfig c = bestMultiHashConfig(intervalLength, threshold);
        c.numHashTables = n;
        out.push_back({std::to_string(n) + "t", c});
    }
    return out;
}

} // namespace bench
} // namespace mhp
