/**
 * @file
 * Figure 6: percentage variation of candidate tuples between
 * consecutive profile intervals, as a per-benchmark distribution
 * (the paper plots "x% of intervals see less than y% variation").
 *
 * Printed as variation quantiles per benchmark for the two paper
 * configurations: 10K interval @ 1% and 1M interval @ 0.1%.
 *
 * Shape claims: m88ksim/vortex vary much more at 10K than at 1M
 * (bursty mid-period reuse); deltablue varies more at 1M than its 10K
 * behaviour suggests (large-scale phases).
 */

#include <cstdio>
#include <iostream>

#include "analysis/candidate_stats.h"
#include "common.h"
#include "support/parallel.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

namespace {

void
runSetting(uint64_t intervalLength, double thresholdFraction,
           uint64_t intervals, const char *label)
{
    using namespace mhp;
    std::printf("--- interval %s ---\n", label);

    TablePrinter table({"benchmark", "p10", "p25", "p50", "p75", "p90",
                        "mean-candidates"});
    const auto &names = benchmarkNames();
    std::vector<std::vector<std::string>> rows(names.size());
    parallelFor(names.size(), [&](size_t i) {
        auto workload = makeValueWorkload(names[i]);
        const auto threshold = static_cast<uint64_t>(
            static_cast<double>(intervalLength) * thresholdFraction);
        const CandidateAnalysis a =
            analyzeCandidates(*workload, intervalLength,
                              threshold == 0 ? 1 : threshold,
                              intervals);
        rows[i] = {
            names[i],
            TablePrinter::num(a.variationQuantile(0.10), 1),
            TablePrinter::num(a.variationQuantile(0.25), 1),
            TablePrinter::num(a.variationQuantile(0.50), 1),
            TablePrinter::num(a.variationQuantile(0.75), 1),
            TablePrinter::num(a.variationQuantile(0.90), 1),
            TablePrinter::num(a.candidatesPerInterval.mean(), 1),
        };
    });
    for (auto &row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);
    mhp::bench::maybeWriteCsv(
        std::string("fig06_variation_") +
            (intervalLength == 10'000 ? "10k" : "1m"),
        table);
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace mhp;
    bench::banner(
        "Figure 6",
        "candidate variation between consecutive intervals (%)");
    runSetting(10'000, 0.01, bench::scaledIntervals(100),
               "10K events, 1% threshold");
    runSetting(1'000'000, 0.001, bench::scaledIntervals(8),
               "1M events, 0.1% threshold");
    std::printf(
        "Shape check: m88ksim/vortex vary far more at 10K than at 1M;\n"
        "deltablue's phase behaviour makes it vary strongly at 1M.\n");
    return 0;
}
