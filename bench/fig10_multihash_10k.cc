/**
 * @file
 * Figure 10: multi-hash design space at 10K interval / 1% threshold /
 * 2K total entries, on gcc and go (the noisiest programs): 1/2/4/8
 * tables x conservative-update (C) x immediate-reset (R), retaining
 * always on. Shape claim: C1-R0 performs best.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Figure 10",
                  "multi-hash C/R design space, 10K @ 1%, gcc & go");

    const auto configs =
        bench::multiHashCrSweep(10'000, 0.01, {1, 2, 4, 8});
    const uint64_t intervals = bench::scaledIntervals(30);

    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             {"gcc", "go"}, false, configs, intervals))
        bench::addErrorRows(table, rows);
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("fig10_multihash_10k", table);
    std::printf("\nShape check: C1,R0 is the best configuration at "
                "every table count;\nimmediate reset (R1) adds false "
                "negatives.\n");
    return 0;
}
