/**
 * @file
 * Ablation: shielding (Section 5.2). With shielding on, tuples already
 * in the accumulator stop pressuring the hash tables; turning it off
 * keeps them hammering the counters, creating extra aliasing and false
 * positives. The paper always shields; this quantifies why.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/factory.h"
#include "support/table_printer.h"
#include "workload/benchmarks.h"

int
main()
{
    using namespace mhp;
    bench::banner("Ablation: shielding",
                  "accumulator hits bypass the hash tables (on/off)");

    const uint64_t interval_length = 10'000;
    const double threshold = 0.01;
    const uint64_t intervals = bench::scaledIntervals(30);

    std::vector<bench::LabelledConfig> configs;
    for (const bool shield : {true, false}) {
        // Single-hash shows the effect most clearly (one table takes
        // all the extra pressure); include mh4 for the best config.
        ProfilerConfig sh = bestSingleHashConfig(interval_length,
                                                 threshold);
        sh.shielding = shield;
        configs.push_back(
            {std::string("sh-R1P1,shield=") + (shield ? "1" : "0"),
             sh});
        ProfilerConfig mh = bestMultiHashConfig(interval_length,
                                                threshold);
        mh.shielding = shield;
        configs.push_back(
            {std::string("mh4-C1R0,shield=") + (shield ? "1" : "0"),
             mh});
    }

    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             benchmarkNames(), false, configs, intervals))
        bench::addErrorRows(table, rows);
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("ablation_shielding", table);
    std::printf("\nClaim check: disabling shielding raises FP%% "
                "(candidate tuples keep\ninflating counters that other "
                "tuples alias into).\n");
    return 0;
}
