/**
 * @file
 * Ablation: hash-counter width (the paper uses 3-byte counters).
 *
 * A counter must be able to reach the candidate threshold; at 1M
 * events and 0.1% the threshold is 1000, so an 8-bit counter (max 255)
 * saturates below it and the profiler can never promote anything —
 * 100% false negatives. 10 bits (max 1023) barely clears it; the
 * paper's 24 bits leaves a wide margin. This quantifies the cliff and
 * why 3-byte counters are the right area/robustness trade.
 */

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/area_model.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Ablation: counter width",
                  "error vs counter bits, mh4-C1R0, 1M @ 0.1%");

    const uint64_t intervals = bench::scaledIntervals(3);

    std::vector<bench::LabelledConfig> configs;
    for (const unsigned bits : {8u, 10u, 12u, 16u, 24u}) {
        ProfilerConfig c;
        c.intervalLength = 1'000'000;
        c.candidateThreshold = 0.001;
        c.totalHashEntries = 2048;
        c.numHashTables = 4;
        c.conservativeUpdate = true;
        c.resetOnPromote = false;
        c.retaining = true;
        c.counterBits = bits;
        ProfilerConfig area = c;
        configs.push_back({std::to_string(bits) + "b/" +
                               TablePrinter::num(estimateArea(area)
                                                     .hashTableBytes),
                           c});
    }

    TablePrinter table(bench::errorHeader());
    for (const auto &rows : bench::runSuiteConfigs(
             {"gcc", "li"}, false, configs, intervals))
        bench::addErrorRows(table, rows);
    table.print(std::cout);
    mhp::bench::maybeWriteCsv("ablation_counter_width", table);
    std::printf("\nClaim check: widths whose saturation point is below "
                "the threshold\n(8 bits: max 255 < 1000) produce ~100%% "
                "FN; 24 bits costs 6 KB and is safe\nfor any interval "
                "the paper considers.\n");
    return 0;
}
