/**
 * @file
 * End-to-end motivation check (paper Section 2): the four hardware
 * optimizations the profiler enables, each measured on the mini-CPU:
 *
 *  - frequent-value capture: what fraction of loads the profiled
 *    value set covers (Zhang et al.'s compression opportunity);
 *  - trace formation: what fraction of hot-edge mass the greedy
 *    traces absorb;
 *  - profile-guided prefetch: demand-miss reduction from prefetching
 *    only the profiled delinquent loads;
 *  - multipath selection: what fraction of all mispredictions the
 *    profiled top-8 problem branches cover.
 */

#include <cstdio>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "cache/miss_probe.h"
#include "cache/prefetcher.h"
#include "common.h"
#include "core/factory.h"
#include "opt/frequent_value_set.h"
#include "opt/multipath_selector.h"
#include "opt/trace_formation.h"
#include "sim/codegen.h"
#include "sim/probes.h"
#include "support/env.h"
#include "support/table_printer.h"

namespace {

using namespace mhp;

Program
program(uint64_t seed)
{
    CodegenConfig gen;
    gen.seed = seed;
    gen.numFunctions = 10;
    gen.numArrays = 8;
    gen.arrayLen = 2048;
    gen.ifProbability = 0.8;
    return generateProgram(gen);
}

/** Profile one interval of a source through the best multi-hash. */
IntervalSnapshot
profileOnce(EventSource &source, uint64_t events)
{
    ProfilerConfig cfg = bestMultiHashConfig(events, 0.01);
    auto profiler = makeProfiler(cfg);
    for (uint64_t i = 0; i < events && !source.done(); ++i)
        profiler->onEvent(source.next());
    return profiler->endInterval();
}

} // namespace

int
main()
{
    using namespace mhp;
    bench::banner("Section 2 applications",
                  "profiler-enabled optimizations, end to end");
    const uint64_t events = scaledCount(100'000, 10'000);

    TablePrinter table({"optimization", "profiled-candidates",
                        "payoff-metric", "value"});

    // --- 1. Frequent-value capture. --------------------------------
    {
        Machine machine(program(2), 1 << 16);
        ValueProbe probe(machine);
        const IntervalSnapshot snap = profileOnce(probe, events);
        FrequentValueSet fv(snap, 10);

        // Measure coverage on the NEXT window of execution.
        std::vector<uint64_t> next_values;
        machine.setLoadHook([&](uint64_t, uint64_t v) {
            next_values.push_back(v);
        });
        machine.run(200'000);
        table.addRow({"frequent-value set (10 regs)",
                      TablePrinter::num(
                          static_cast<uint64_t>(snap.size())),
                      "next-window load coverage %",
                      TablePrinter::num(
                          100.0 * fv.coverage(next_values), 1)});
    }

    // --- 2. Trace formation. ---------------------------------------
    {
        Machine machine(program(3), 1 << 16);
        EdgeProbe probe(machine);
        const IntervalSnapshot snap = profileOnce(probe, events);
        TraceFormationEngine engine;
        const auto traces = engine.form(snap);
        table.addRow(
            {"trace formation (8 traces)",
             TablePrinter::num(static_cast<uint64_t>(snap.size())),
             "hot-edge mass in traces %",
             TablePrinter::num(
                 100.0 * TraceFormationEngine::coverage(traces, snap),
                 1)});
    }

    // --- 3. Profile-guided prefetch. -------------------------------
    {
        CacheConfig ccfg;
        ccfg.sizeBytes = 8 * 1024;
        ccfg.lineBytes = 64;
        ccfg.ways = 2;

        IntervalSnapshot delinquent;
        uint64_t base_accesses = 0, base_misses = 0;
        {
            Machine machine(program(4), 1 << 18);
            Cache cache(ccfg);
            CacheMissProbe probe(machine, cache, true,
                                 MissNaming::PcOnly);
            delinquent = profileOnce(probe, events);
            base_accesses = cache.stats().accesses;
            base_misses = cache.stats().misses;
        }
        Machine machine(program(4), 1 << 18);
        Cache cache(ccfg);
        ProfileGuidedPrefetcher prefetcher(cache, 2);
        prefetcher.retrain(delinquent);
        machine.setMemHook([&](uint64_t pc, uint64_t addr, bool store) {
            cache.access(addr);
            if (!store)
                prefetcher.onAccess(pc, addr);
        });
        while (cache.stats().accesses < base_accesses &&
               machine.step()) {
        }
        const double reduction =
            base_misses == 0
                ? 0.0
                : 100.0 * (1.0 - static_cast<double>(
                                     cache.stats().misses) /
                                     static_cast<double>(base_misses));
        table.addRow({"profile-guided prefetch (deg 2)",
                      TablePrinter::num(static_cast<uint64_t>(
                          delinquent.size())),
                      "demand-miss reduction %",
                      TablePrinter::num(reduction, 1)});
    }

    // --- 4. Multipath selection. ------------------------------------
    {
        Machine machine(program(5), 1 << 16);
        BimodalPredictor predictor(4096);
        MispredictProbe probe(machine, predictor);

        ProfilerConfig cfg = bestMultiHashConfig(10'000, 0.01);
        auto profiler = makeProfiler(cfg);
        std::unordered_map<uint64_t, uint64_t> truth;
        IntervalSnapshot last;
        for (uint64_t i = 1; i <= events && !probe.done(); ++i) {
            const Tuple t = probe.next();
            profiler->onEvent(t);
            ++truth[t.first];
            if (i % cfg.intervalLength == 0)
                last = profiler->endInterval();
        }
        MultipathConfig mcfg;
        mcfg.maxBranches = 8;
        const auto chosen =
            MultipathSelector(mcfg).fromMispredictProfile(last);
        uint64_t total = 0, covered = 0;
        for (const auto &[pc, n] : truth)
            total += n;
        for (const auto &choice : chosen) {
            const auto it = truth.find(choice.branchPc);
            covered += it == truth.end() ? 0 : it->second;
        }
        table.addRow(
            {"multipath selection (8 forks)",
             TablePrinter::num(static_cast<uint64_t>(last.size())),
             "mispredictions covered %",
             TablePrinter::num(total == 0
                                   ? 0.0
                                   : 100.0 *
                                         static_cast<double>(covered) /
                                         static_cast<double>(total),
                               1)});
    }

    table.print(std::cout);
    mhp::bench::maybeWriteCsv("app_optimizations", table);
    std::printf("\nClaim check: every Section 2 optimization gets a "
                "usable, concentrated\nsignal from the hardware "
                "profiler alone.\n");
    return 0;
}
