/**
 * @file
 * Ablation: the paper's randomize/flip/xor-fold hash function versus a
 * naive truncation hash (index = (pc ^ value) mod size). DESIGN.md
 * calls out hash quality as a load-bearing design choice; this bench
 * quantifies it by hashing the set of DISTINCT tuples a real
 * instruction stream produces (mini-CPU probe output, where PCs are
 * 4-byte aligned addresses in a small code segment and values are
 * small program data — exactly the structured, low-entropy inputs the
 * paper's randomize step exists for).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <unordered_set>
#include <vector>

#include "common.h"
#include "core/hash_function.h"
#include "sim/codegen.h"
#include "sim/machine.h"
#include "sim/probes.h"
#include "support/table_printer.h"

int
main()
{
    using namespace mhp;
    bench::banner("Ablation: hash function",
                  "paper hash vs naive xor-mod on structured tuples");

    const uint64_t table_size = 256;

    TablePrinter table({"tuple-source", "hash", "distinct", "max-load",
                        "empty%", "chi2/dof"});

    auto evaluate = [&](const char *source, const char *label,
                        const std::vector<Tuple> &distinct,
                        auto &&indexOf) {
        std::vector<uint64_t> buckets(table_size, 0);
        for (const auto &t : distinct)
            ++buckets[indexOf(t)];
        const double mean =
            static_cast<double>(distinct.size()) / table_size;
        uint64_t maxLoad = 0, empty = 0;
        double chi2 = 0.0;
        for (uint64_t b : buckets) {
            maxLoad = std::max(maxLoad, b);
            empty += b == 0 ? 1 : 0;
            const double d = static_cast<double>(b) - mean;
            chi2 += d * d / mean;
        }
        table.addRow({source, label,
                      TablePrinter::num(
                          static_cast<uint64_t>(distinct.size())),
                      TablePrinter::num(maxLoad),
                      TablePrinter::num(
                          100.0 * static_cast<double>(empty) /
                              table_size,
                          1),
                      TablePrinter::num(chi2 / (table_size - 1), 2)});
    };

    auto runBoth = [&](const char *source,
                       const std::vector<Tuple> &distinct) {
        TupleHasher paper(1234, table_size);
        evaluate(source, "paper", distinct,
                 [&](const Tuple &t) { return paper.index(t); });
        evaluate(source, "naive", distinct, [&](const Tuple &t) {
            return (t.first ^ t.second) % table_size;
        });
    };

    auto distinctOf = [](EventSource &src, uint64_t events) {
        std::unordered_set<Tuple, TupleHash> seen;
        for (uint64_t i = 0; i < events && !src.done(); ++i)
            seen.insert(src.next());
        return std::vector<Tuple>(seen.begin(), seen.end());
    };

    // Source 1: value tuples from an executing mini-CPU program.
    {
        CodegenConfig cfg;
        cfg.seed = 7;
        cfg.numFunctions = 10;
        cfg.numArrays = 6;
        cfg.arrayLen = 512;
        Machine machine(generateProgram(cfg), 1 << 14);
        ValueProbe probe(machine);
        runBoth("sim-values", distinctOf(probe, 300'000));
    }

    // Source 2: edge tuples from the same style of program.
    {
        CodegenConfig cfg;
        cfg.seed = 8;
        cfg.numFunctions = 10;
        cfg.numArrays = 6;
        cfg.arrayLen = 512;
        Machine machine(generateProgram(cfg), 1 << 14);
        EdgeProbe probe(machine);
        runBoth("sim-edges", distinctOf(probe, 300'000));
    }

    // Source 3: worst-case structure — a few load PCs whose values
    // are page-aligned heap pointers. All the variation is ABOVE the
    // index bits, so a truncating hash collapses every tuple of a PC
    // onto one bucket; the randomize step exists for exactly this.
    {
        std::vector<Tuple> aligned;
        for (uint64_t pc = 0; pc < 8; ++pc) {
            for (uint64_t k = 0; k < 512; ++k) {
                aligned.push_back({0x140000000ULL + pc * 4,
                                   0x7f0000000000ULL + k * 4096});
            }
        }
        runBoth("aligned-ptrs", aligned);
    }

    table.print(std::cout);
    mhp::bench::maybeWriteCsv("ablation_hash", table);
    std::printf("\nClaim check: the paper hash's chi2/dof stays near 1 "
                "(uniform) on all\nsources; the naive hash collapses "
                "structured tuples onto few buckets\n(huge max-load "
                "and chi2, many empty buckets).\n");
    return 0;
}
