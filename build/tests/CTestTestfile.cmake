# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(tools_smoke "sh" "/root/repo/tests/tools_smoke.sh" "/root/repo/build/tools")
set_tests_properties(tools_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;99;add_test;/root/repo/tests/CMakeLists.txt;0;")
