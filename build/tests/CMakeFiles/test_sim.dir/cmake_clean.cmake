file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_codegen.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_codegen.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_machine.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_probes.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_probes.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_program.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_program.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
