file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/test_bit_util.cc.o"
  "CMakeFiles/test_support.dir/support/test_bit_util.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_cli.cc.o"
  "CMakeFiles/test_support.dir/support/test_cli.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_csv_env.cc.o"
  "CMakeFiles/test_support.dir/support/test_csv_env.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_discrete_distribution.cc.o"
  "CMakeFiles/test_support.dir/support/test_discrete_distribution.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_histogram.cc.o"
  "CMakeFiles/test_support.dir/support/test_histogram.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_parallel.cc.o"
  "CMakeFiles/test_support.dir/support/test_parallel.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_rng.cc.o"
  "CMakeFiles/test_support.dir/support/test_rng.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_saturating_counter.cc.o"
  "CMakeFiles/test_support.dir/support/test_saturating_counter.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_stats.cc.o"
  "CMakeFiles/test_support.dir/support/test_stats.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_table_printer.cc.o"
  "CMakeFiles/test_support.dir/support/test_table_printer.cc.o.d"
  "CMakeFiles/test_support.dir/support/test_zipf.cc.o"
  "CMakeFiles/test_support.dir/support/test_zipf.cc.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
