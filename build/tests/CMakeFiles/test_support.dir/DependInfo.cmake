
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/test_bit_util.cc" "tests/CMakeFiles/test_support.dir/support/test_bit_util.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_bit_util.cc.o.d"
  "/root/repo/tests/support/test_cli.cc" "tests/CMakeFiles/test_support.dir/support/test_cli.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_cli.cc.o.d"
  "/root/repo/tests/support/test_csv_env.cc" "tests/CMakeFiles/test_support.dir/support/test_csv_env.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_csv_env.cc.o.d"
  "/root/repo/tests/support/test_discrete_distribution.cc" "tests/CMakeFiles/test_support.dir/support/test_discrete_distribution.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_discrete_distribution.cc.o.d"
  "/root/repo/tests/support/test_histogram.cc" "tests/CMakeFiles/test_support.dir/support/test_histogram.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_histogram.cc.o.d"
  "/root/repo/tests/support/test_parallel.cc" "tests/CMakeFiles/test_support.dir/support/test_parallel.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_parallel.cc.o.d"
  "/root/repo/tests/support/test_rng.cc" "tests/CMakeFiles/test_support.dir/support/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_rng.cc.o.d"
  "/root/repo/tests/support/test_saturating_counter.cc" "tests/CMakeFiles/test_support.dir/support/test_saturating_counter.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_saturating_counter.cc.o.d"
  "/root/repo/tests/support/test_stats.cc" "tests/CMakeFiles/test_support.dir/support/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_stats.cc.o.d"
  "/root/repo/tests/support/test_table_printer.cc" "tests/CMakeFiles/test_support.dir/support/test_table_printer.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_table_printer.cc.o.d"
  "/root/repo/tests/support/test_zipf.cc" "tests/CMakeFiles/test_support.dir/support/test_zipf.cc.o" "gcc" "tests/CMakeFiles/test_support.dir/support/test_zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mhp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mhp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mhp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mhp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
