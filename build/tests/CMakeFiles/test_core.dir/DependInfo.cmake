
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_accumulator_table.cc" "tests/CMakeFiles/test_core.dir/core/test_accumulator_table.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_accumulator_table.cc.o.d"
  "/root/repo/tests/core/test_adaptive_interval.cc" "tests/CMakeFiles/test_core.dir/core/test_adaptive_interval.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_adaptive_interval.cc.o.d"
  "/root/repo/tests/core/test_area_model.cc" "tests/CMakeFiles/test_core.dir/core/test_area_model.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_area_model.cc.o.d"
  "/root/repo/tests/core/test_config.cc" "tests/CMakeFiles/test_core.dir/core/test_config.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cc.o.d"
  "/root/repo/tests/core/test_counter_table.cc" "tests/CMakeFiles/test_core.dir/core/test_counter_table.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_counter_table.cc.o.d"
  "/root/repo/tests/core/test_factory.cc" "tests/CMakeFiles/test_core.dir/core/test_factory.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_factory.cc.o.d"
  "/root/repo/tests/core/test_hash_function.cc" "tests/CMakeFiles/test_core.dir/core/test_hash_function.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hash_function.cc.o.d"
  "/root/repo/tests/core/test_hotspot_detector.cc" "tests/CMakeFiles/test_core.dir/core/test_hotspot_detector.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hotspot_detector.cc.o.d"
  "/root/repo/tests/core/test_multi_hash_profiler.cc" "tests/CMakeFiles/test_core.dir/core/test_multi_hash_profiler.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_multi_hash_profiler.cc.o.d"
  "/root/repo/tests/core/test_perfect_profiler.cc" "tests/CMakeFiles/test_core.dir/core/test_perfect_profiler.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_perfect_profiler.cc.o.d"
  "/root/repo/tests/core/test_query_coprocessor.cc" "tests/CMakeFiles/test_core.dir/core/test_query_coprocessor.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_query_coprocessor.cc.o.d"
  "/root/repo/tests/core/test_random_table.cc" "tests/CMakeFiles/test_core.dir/core/test_random_table.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_random_table.cc.o.d"
  "/root/repo/tests/core/test_reference_model.cc" "tests/CMakeFiles/test_core.dir/core/test_reference_model.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_reference_model.cc.o.d"
  "/root/repo/tests/core/test_sampling_profiler.cc" "tests/CMakeFiles/test_core.dir/core/test_sampling_profiler.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sampling_profiler.cc.o.d"
  "/root/repo/tests/core/test_single_hash_profiler.cc" "tests/CMakeFiles/test_core.dir/core/test_single_hash_profiler.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_single_hash_profiler.cc.o.d"
  "/root/repo/tests/core/test_stratified_sampler.cc" "tests/CMakeFiles/test_core.dir/core/test_stratified_sampler.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stratified_sampler.cc.o.d"
  "/root/repo/tests/core/test_theory.cc" "tests/CMakeFiles/test_core.dir/core/test_theory.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_theory.cc.o.d"
  "/root/repo/tests/core/test_value_table_profiler.cc" "tests/CMakeFiles/test_core.dir/core/test_value_table_profiler.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_value_table_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mhp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mhp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mhp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mhp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
