file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_candidate_stats.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_candidate_stats.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_error_metrics.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_error_metrics.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_interval_runner.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_interval_runner.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_profile_io.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_profile_io.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_simpoint.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_simpoint.cc.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
