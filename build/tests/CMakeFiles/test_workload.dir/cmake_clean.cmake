file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_benchmarks.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_cfg_walk_workload.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_cfg_walk_workload.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_edge_workload.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_edge_workload.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_tuple_naming.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_tuple_naming.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_value_workload.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_value_workload.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
