file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/test_trace_io.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_trace_io.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_transforms.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_transforms.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_tuple.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_tuple.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_tuple_builder.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_tuple_builder.cc.o.d"
  "CMakeFiles/test_trace.dir/trace/test_vector_source.cc.o"
  "CMakeFiles/test_trace.dir/trace/test_vector_source.cc.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
