# Empty compiler generated dependencies file for mhprof_dump.
# This may be replaced when dependencies are built.
