file(REMOVE_RECURSE
  "CMakeFiles/mhprof_dump.dir/mhprof_dump.cc.o"
  "CMakeFiles/mhprof_dump.dir/mhprof_dump.cc.o.d"
  "mhprof_dump"
  "mhprof_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhprof_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
