# Empty dependencies file for mhprof_run.
# This may be replaced when dependencies are built.
