file(REMOVE_RECURSE
  "CMakeFiles/mhprof_run.dir/mhprof_run.cc.o"
  "CMakeFiles/mhprof_run.dir/mhprof_run.cc.o.d"
  "mhprof_run"
  "mhprof_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhprof_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
