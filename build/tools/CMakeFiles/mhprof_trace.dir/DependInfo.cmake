
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mhprof_trace.cc" "tools/CMakeFiles/mhprof_trace.dir/mhprof_trace.cc.o" "gcc" "tools/CMakeFiles/mhprof_trace.dir/mhprof_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mhp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mhp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mhp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mhp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
