# Empty dependencies file for mhprof_trace.
# This may be replaced when dependencies are built.
