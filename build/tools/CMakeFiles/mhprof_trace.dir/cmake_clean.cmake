file(REMOVE_RECURSE
  "CMakeFiles/mhprof_trace.dir/mhprof_trace.cc.o"
  "CMakeFiles/mhprof_trace.dir/mhprof_trace.cc.o.d"
  "mhprof_trace"
  "mhprof_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhprof_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
