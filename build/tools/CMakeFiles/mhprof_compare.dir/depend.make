# Empty dependencies file for mhprof_compare.
# This may be replaced when dependencies are built.
