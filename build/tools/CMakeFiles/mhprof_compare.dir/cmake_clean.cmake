file(REMOVE_RECURSE
  "CMakeFiles/mhprof_compare.dir/mhprof_compare.cc.o"
  "CMakeFiles/mhprof_compare.dir/mhprof_compare.cc.o.d"
  "mhprof_compare"
  "mhprof_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhprof_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
