file(REMOVE_RECURSE
  "CMakeFiles/area_budget.dir/area_budget.cc.o"
  "CMakeFiles/area_budget.dir/area_budget.cc.o.d"
  "area_budget"
  "area_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
