# Empty dependencies file for area_budget.
# This may be replaced when dependencies are built.
