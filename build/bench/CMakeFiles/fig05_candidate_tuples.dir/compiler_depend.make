# Empty compiler generated dependencies file for fig05_candidate_tuples.
# This may be replaced when dependencies are built.
