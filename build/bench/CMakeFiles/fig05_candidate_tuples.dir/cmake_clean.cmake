file(REMOVE_RECURSE
  "CMakeFiles/fig05_candidate_tuples.dir/fig05_candidate_tuples.cc.o"
  "CMakeFiles/fig05_candidate_tuples.dir/fig05_candidate_tuples.cc.o.d"
  "fig05_candidate_tuples"
  "fig05_candidate_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_candidate_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
