# Empty dependencies file for fig11_multihash_1m.
# This may be replaced when dependencies are built.
