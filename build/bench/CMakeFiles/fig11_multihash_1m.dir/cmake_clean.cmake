file(REMOVE_RECURSE
  "CMakeFiles/fig11_multihash_1m.dir/fig11_multihash_1m.cc.o"
  "CMakeFiles/fig11_multihash_1m.dir/fig11_multihash_1m.cc.o.d"
  "fig11_multihash_1m"
  "fig11_multihash_1m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_multihash_1m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
