# Empty dependencies file for ablation_accumulator.
# This may be replaced when dependencies are built.
