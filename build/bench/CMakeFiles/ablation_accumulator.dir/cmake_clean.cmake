file(REMOVE_RECURSE
  "CMakeFiles/ablation_accumulator.dir/ablation_accumulator.cc.o"
  "CMakeFiles/ablation_accumulator.dir/ablation_accumulator.cc.o.d"
  "ablation_accumulator"
  "ablation_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
