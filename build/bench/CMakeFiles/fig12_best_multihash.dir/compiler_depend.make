# Empty compiler generated dependencies file for fig12_best_multihash.
# This may be replaced when dependencies are built.
