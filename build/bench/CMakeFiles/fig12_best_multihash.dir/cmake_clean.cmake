file(REMOVE_RECURSE
  "CMakeFiles/fig12_best_multihash.dir/fig12_best_multihash.cc.o"
  "CMakeFiles/fig12_best_multihash.dir/fig12_best_multihash.cc.o.d"
  "fig12_best_multihash"
  "fig12_best_multihash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_best_multihash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
