file(REMOVE_RECURSE
  "CMakeFiles/perf_throughput.dir/perf_throughput.cc.o"
  "CMakeFiles/perf_throughput.dir/perf_throughput.cc.o.d"
  "perf_throughput"
  "perf_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
