# Empty dependencies file for ablation_interval_flush.
# This may be replaced when dependencies are built.
