file(REMOVE_RECURSE
  "CMakeFiles/ablation_interval_flush.dir/ablation_interval_flush.cc.o"
  "CMakeFiles/ablation_interval_flush.dir/ablation_interval_flush.cc.o.d"
  "ablation_interval_flush"
  "ablation_interval_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
