file(REMOVE_RECURSE
  "CMakeFiles/fig07_single_hash.dir/fig07_single_hash.cc.o"
  "CMakeFiles/fig07_single_hash.dir/fig07_single_hash.cc.o.d"
  "fig07_single_hash"
  "fig07_single_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_single_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
