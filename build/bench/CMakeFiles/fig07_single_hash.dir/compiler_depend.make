# Empty compiler generated dependencies file for fig07_single_hash.
# This may be replaced when dependencies are built.
