# Empty compiler generated dependencies file for fig06_candidate_variation.
# This may be replaced when dependencies are built.
