file(REMOVE_RECURSE
  "CMakeFiles/fig06_candidate_variation.dir/fig06_candidate_variation.cc.o"
  "CMakeFiles/fig06_candidate_variation.dir/fig06_candidate_variation.cc.o.d"
  "fig06_candidate_variation"
  "fig06_candidate_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_candidate_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
