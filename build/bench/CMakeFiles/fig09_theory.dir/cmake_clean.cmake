file(REMOVE_RECURSE
  "CMakeFiles/fig09_theory.dir/fig09_theory.cc.o"
  "CMakeFiles/fig09_theory.dir/fig09_theory.cc.o.d"
  "fig09_theory"
  "fig09_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
