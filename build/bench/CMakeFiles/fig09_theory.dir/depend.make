# Empty dependencies file for fig09_theory.
# This may be replaced when dependencies are built.
