# Empty compiler generated dependencies file for app_optimizations.
# This may be replaced when dependencies are built.
