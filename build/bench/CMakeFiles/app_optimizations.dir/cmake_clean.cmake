file(REMOVE_RECURSE
  "CMakeFiles/app_optimizations.dir/app_optimizations.cc.o"
  "CMakeFiles/app_optimizations.dir/app_optimizations.cc.o.d"
  "app_optimizations"
  "app_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
