# Empty compiler generated dependencies file for fig14_edge_profiling.
# This may be replaced when dependencies are built.
