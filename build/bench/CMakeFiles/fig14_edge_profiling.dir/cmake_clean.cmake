file(REMOVE_RECURSE
  "CMakeFiles/fig14_edge_profiling.dir/fig14_edge_profiling.cc.o"
  "CMakeFiles/fig14_edge_profiling.dir/fig14_edge_profiling.cc.o.d"
  "fig14_edge_profiling"
  "fig14_edge_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_edge_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
