file(REMOVE_RECURSE
  "../lib/libmhp_bench_common.a"
  "../lib/libmhp_bench_common.pdb"
  "CMakeFiles/mhp_bench_common.dir/common.cc.o"
  "CMakeFiles/mhp_bench_common.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
