# Empty compiler generated dependencies file for mhp_bench_common.
# This may be replaced when dependencies are built.
