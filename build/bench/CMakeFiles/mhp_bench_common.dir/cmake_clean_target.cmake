file(REMOVE_RECURSE
  "../lib/libmhp_bench_common.a"
)
