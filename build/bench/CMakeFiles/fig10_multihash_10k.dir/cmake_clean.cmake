file(REMOVE_RECURSE
  "CMakeFiles/fig10_multihash_10k.dir/fig10_multihash_10k.cc.o"
  "CMakeFiles/fig10_multihash_10k.dir/fig10_multihash_10k.cc.o.d"
  "fig10_multihash_10k"
  "fig10_multihash_10k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multihash_10k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
