# Empty dependencies file for fig10_multihash_10k.
# This may be replaced when dependencies are built.
