# Empty dependencies file for baseline_stratified.
# This may be replaced when dependencies are built.
