file(REMOVE_RECURSE
  "CMakeFiles/baseline_stratified.dir/baseline_stratified.cc.o"
  "CMakeFiles/baseline_stratified.dir/baseline_stratified.cc.o.d"
  "baseline_stratified"
  "baseline_stratified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_stratified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
