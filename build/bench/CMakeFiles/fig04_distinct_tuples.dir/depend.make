# Empty dependencies file for fig04_distinct_tuples.
# This may be replaced when dependencies are built.
