file(REMOVE_RECURSE
  "CMakeFiles/fig04_distinct_tuples.dir/fig04_distinct_tuples.cc.o"
  "CMakeFiles/fig04_distinct_tuples.dir/fig04_distinct_tuples.cc.o.d"
  "fig04_distinct_tuples"
  "fig04_distinct_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_distinct_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
