file(REMOVE_RECURSE
  "CMakeFiles/fig13_interval_series.dir/fig13_interval_series.cc.o"
  "CMakeFiles/fig13_interval_series.dir/fig13_interval_series.cc.o.d"
  "fig13_interval_series"
  "fig13_interval_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_interval_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
