# Empty compiler generated dependencies file for multipath_selection.
# This may be replaced when dependencies are built.
