file(REMOVE_RECURSE
  "CMakeFiles/multipath_selection.dir/multipath_selection.cc.o"
  "CMakeFiles/multipath_selection.dir/multipath_selection.cc.o.d"
  "multipath_selection"
  "multipath_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipath_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
