# Empty dependencies file for adaptive_interval.
# This may be replaced when dependencies are built.
