file(REMOVE_RECURSE
  "CMakeFiles/adaptive_interval.dir/adaptive_interval.cc.o"
  "CMakeFiles/adaptive_interval.dir/adaptive_interval.cc.o.d"
  "adaptive_interval"
  "adaptive_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
