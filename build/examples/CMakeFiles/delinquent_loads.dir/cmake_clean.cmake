file(REMOVE_RECURSE
  "CMakeFiles/delinquent_loads.dir/delinquent_loads.cc.o"
  "CMakeFiles/delinquent_loads.dir/delinquent_loads.cc.o.d"
  "delinquent_loads"
  "delinquent_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delinquent_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
