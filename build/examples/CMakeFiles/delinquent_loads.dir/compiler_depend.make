# Empty compiler generated dependencies file for delinquent_loads.
# This may be replaced when dependencies are built.
