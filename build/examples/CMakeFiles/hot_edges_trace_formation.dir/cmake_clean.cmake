file(REMOVE_RECURSE
  "CMakeFiles/hot_edges_trace_formation.dir/hot_edges_trace_formation.cc.o"
  "CMakeFiles/hot_edges_trace_formation.dir/hot_edges_trace_formation.cc.o.d"
  "hot_edges_trace_formation"
  "hot_edges_trace_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_edges_trace_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
