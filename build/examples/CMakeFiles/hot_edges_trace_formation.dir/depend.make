# Empty dependencies file for hot_edges_trace_formation.
# This may be replaced when dependencies are built.
