file(REMOVE_RECURSE
  "CMakeFiles/value_profile_fvc.dir/value_profile_fvc.cc.o"
  "CMakeFiles/value_profile_fvc.dir/value_profile_fvc.cc.o.d"
  "value_profile_fvc"
  "value_profile_fvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_profile_fvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
