# Empty compiler generated dependencies file for value_profile_fvc.
# This may be replaced when dependencies are built.
