file(REMOVE_RECURSE
  "CMakeFiles/cpu_sim_profile.dir/cpu_sim_profile.cc.o"
  "CMakeFiles/cpu_sim_profile.dir/cpu_sim_profile.cc.o.d"
  "cpu_sim_profile"
  "cpu_sim_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_sim_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
