# Empty compiler generated dependencies file for cpu_sim_profile.
# This may be replaced when dependencies are built.
