file(REMOVE_RECURSE
  "libmhp_trace.a"
)
