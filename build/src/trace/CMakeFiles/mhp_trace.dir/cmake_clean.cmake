file(REMOVE_RECURSE
  "CMakeFiles/mhp_trace.dir/trace_io.cc.o"
  "CMakeFiles/mhp_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/mhp_trace.dir/transforms.cc.o"
  "CMakeFiles/mhp_trace.dir/transforms.cc.o.d"
  "CMakeFiles/mhp_trace.dir/vector_source.cc.o"
  "CMakeFiles/mhp_trace.dir/vector_source.cc.o.d"
  "libmhp_trace.a"
  "libmhp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
