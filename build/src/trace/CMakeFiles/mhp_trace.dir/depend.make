# Empty dependencies file for mhp_trace.
# This may be replaced when dependencies are built.
