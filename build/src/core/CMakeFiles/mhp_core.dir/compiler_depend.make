# Empty compiler generated dependencies file for mhp_core.
# This may be replaced when dependencies are built.
