
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accumulator_table.cc" "src/core/CMakeFiles/mhp_core.dir/accumulator_table.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/accumulator_table.cc.o.d"
  "/root/repo/src/core/adaptive_interval.cc" "src/core/CMakeFiles/mhp_core.dir/adaptive_interval.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/adaptive_interval.cc.o.d"
  "/root/repo/src/core/area_model.cc" "src/core/CMakeFiles/mhp_core.dir/area_model.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/area_model.cc.o.d"
  "/root/repo/src/core/counter_table.cc" "src/core/CMakeFiles/mhp_core.dir/counter_table.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/counter_table.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/core/CMakeFiles/mhp_core.dir/factory.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/factory.cc.o.d"
  "/root/repo/src/core/hash_function.cc" "src/core/CMakeFiles/mhp_core.dir/hash_function.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/hash_function.cc.o.d"
  "/root/repo/src/core/hotspot_detector.cc" "src/core/CMakeFiles/mhp_core.dir/hotspot_detector.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/hotspot_detector.cc.o.d"
  "/root/repo/src/core/multi_hash_profiler.cc" "src/core/CMakeFiles/mhp_core.dir/multi_hash_profiler.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/multi_hash_profiler.cc.o.d"
  "/root/repo/src/core/perfect_profiler.cc" "src/core/CMakeFiles/mhp_core.dir/perfect_profiler.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/perfect_profiler.cc.o.d"
  "/root/repo/src/core/query_coprocessor.cc" "src/core/CMakeFiles/mhp_core.dir/query_coprocessor.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/query_coprocessor.cc.o.d"
  "/root/repo/src/core/random_table.cc" "src/core/CMakeFiles/mhp_core.dir/random_table.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/random_table.cc.o.d"
  "/root/repo/src/core/sampling_profiler.cc" "src/core/CMakeFiles/mhp_core.dir/sampling_profiler.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/sampling_profiler.cc.o.d"
  "/root/repo/src/core/single_hash_profiler.cc" "src/core/CMakeFiles/mhp_core.dir/single_hash_profiler.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/single_hash_profiler.cc.o.d"
  "/root/repo/src/core/stratified_sampler.cc" "src/core/CMakeFiles/mhp_core.dir/stratified_sampler.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/stratified_sampler.cc.o.d"
  "/root/repo/src/core/theory.cc" "src/core/CMakeFiles/mhp_core.dir/theory.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/theory.cc.o.d"
  "/root/repo/src/core/value_table_profiler.cc" "src/core/CMakeFiles/mhp_core.dir/value_table_profiler.cc.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/value_table_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
