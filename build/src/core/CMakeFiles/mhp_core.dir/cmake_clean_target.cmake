file(REMOVE_RECURSE
  "libmhp_core.a"
)
