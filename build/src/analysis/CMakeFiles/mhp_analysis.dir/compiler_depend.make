# Empty compiler generated dependencies file for mhp_analysis.
# This may be replaced when dependencies are built.
