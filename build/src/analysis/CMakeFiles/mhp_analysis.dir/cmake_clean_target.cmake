file(REMOVE_RECURSE
  "libmhp_analysis.a"
)
