
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/candidate_stats.cc" "src/analysis/CMakeFiles/mhp_analysis.dir/candidate_stats.cc.o" "gcc" "src/analysis/CMakeFiles/mhp_analysis.dir/candidate_stats.cc.o.d"
  "/root/repo/src/analysis/error_metrics.cc" "src/analysis/CMakeFiles/mhp_analysis.dir/error_metrics.cc.o" "gcc" "src/analysis/CMakeFiles/mhp_analysis.dir/error_metrics.cc.o.d"
  "/root/repo/src/analysis/interval_runner.cc" "src/analysis/CMakeFiles/mhp_analysis.dir/interval_runner.cc.o" "gcc" "src/analysis/CMakeFiles/mhp_analysis.dir/interval_runner.cc.o.d"
  "/root/repo/src/analysis/profile_io.cc" "src/analysis/CMakeFiles/mhp_analysis.dir/profile_io.cc.o" "gcc" "src/analysis/CMakeFiles/mhp_analysis.dir/profile_io.cc.o.d"
  "/root/repo/src/analysis/simpoint.cc" "src/analysis/CMakeFiles/mhp_analysis.dir/simpoint.cc.o" "gcc" "src/analysis/CMakeFiles/mhp_analysis.dir/simpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
