file(REMOVE_RECURSE
  "CMakeFiles/mhp_analysis.dir/candidate_stats.cc.o"
  "CMakeFiles/mhp_analysis.dir/candidate_stats.cc.o.d"
  "CMakeFiles/mhp_analysis.dir/error_metrics.cc.o"
  "CMakeFiles/mhp_analysis.dir/error_metrics.cc.o.d"
  "CMakeFiles/mhp_analysis.dir/interval_runner.cc.o"
  "CMakeFiles/mhp_analysis.dir/interval_runner.cc.o.d"
  "CMakeFiles/mhp_analysis.dir/profile_io.cc.o"
  "CMakeFiles/mhp_analysis.dir/profile_io.cc.o.d"
  "CMakeFiles/mhp_analysis.dir/simpoint.cc.o"
  "CMakeFiles/mhp_analysis.dir/simpoint.cc.o.d"
  "libmhp_analysis.a"
  "libmhp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
