file(REMOVE_RECURSE
  "CMakeFiles/mhp_sim.dir/codegen.cc.o"
  "CMakeFiles/mhp_sim.dir/codegen.cc.o.d"
  "CMakeFiles/mhp_sim.dir/machine.cc.o"
  "CMakeFiles/mhp_sim.dir/machine.cc.o.d"
  "CMakeFiles/mhp_sim.dir/probes.cc.o"
  "CMakeFiles/mhp_sim.dir/probes.cc.o.d"
  "CMakeFiles/mhp_sim.dir/program.cc.o"
  "CMakeFiles/mhp_sim.dir/program.cc.o.d"
  "libmhp_sim.a"
  "libmhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
