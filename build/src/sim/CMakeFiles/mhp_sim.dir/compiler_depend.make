# Empty compiler generated dependencies file for mhp_sim.
# This may be replaced when dependencies are built.
