
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/codegen.cc" "src/sim/CMakeFiles/mhp_sim.dir/codegen.cc.o" "gcc" "src/sim/CMakeFiles/mhp_sim.dir/codegen.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/mhp_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/mhp_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/probes.cc" "src/sim/CMakeFiles/mhp_sim.dir/probes.cc.o" "gcc" "src/sim/CMakeFiles/mhp_sim.dir/probes.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/sim/CMakeFiles/mhp_sim.dir/program.cc.o" "gcc" "src/sim/CMakeFiles/mhp_sim.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
