file(REMOVE_RECURSE
  "CMakeFiles/mhp_cache.dir/branch_predictor.cc.o"
  "CMakeFiles/mhp_cache.dir/branch_predictor.cc.o.d"
  "CMakeFiles/mhp_cache.dir/cache.cc.o"
  "CMakeFiles/mhp_cache.dir/cache.cc.o.d"
  "CMakeFiles/mhp_cache.dir/miss_probe.cc.o"
  "CMakeFiles/mhp_cache.dir/miss_probe.cc.o.d"
  "CMakeFiles/mhp_cache.dir/prefetcher.cc.o"
  "CMakeFiles/mhp_cache.dir/prefetcher.cc.o.d"
  "libmhp_cache.a"
  "libmhp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
