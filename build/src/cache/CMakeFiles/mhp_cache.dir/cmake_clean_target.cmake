file(REMOVE_RECURSE
  "libmhp_cache.a"
)
