
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/branch_predictor.cc" "src/cache/CMakeFiles/mhp_cache.dir/branch_predictor.cc.o" "gcc" "src/cache/CMakeFiles/mhp_cache.dir/branch_predictor.cc.o.d"
  "/root/repo/src/cache/cache.cc" "src/cache/CMakeFiles/mhp_cache.dir/cache.cc.o" "gcc" "src/cache/CMakeFiles/mhp_cache.dir/cache.cc.o.d"
  "/root/repo/src/cache/miss_probe.cc" "src/cache/CMakeFiles/mhp_cache.dir/miss_probe.cc.o" "gcc" "src/cache/CMakeFiles/mhp_cache.dir/miss_probe.cc.o.d"
  "/root/repo/src/cache/prefetcher.cc" "src/cache/CMakeFiles/mhp_cache.dir/prefetcher.cc.o" "gcc" "src/cache/CMakeFiles/mhp_cache.dir/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
