# Empty dependencies file for mhp_cache.
# This may be replaced when dependencies are built.
