
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmarks.cc" "src/workload/CMakeFiles/mhp_workload.dir/benchmarks.cc.o" "gcc" "src/workload/CMakeFiles/mhp_workload.dir/benchmarks.cc.o.d"
  "/root/repo/src/workload/cfg_walk_workload.cc" "src/workload/CMakeFiles/mhp_workload.dir/cfg_walk_workload.cc.o" "gcc" "src/workload/CMakeFiles/mhp_workload.dir/cfg_walk_workload.cc.o.d"
  "/root/repo/src/workload/edge_workload.cc" "src/workload/CMakeFiles/mhp_workload.dir/edge_workload.cc.o" "gcc" "src/workload/CMakeFiles/mhp_workload.dir/edge_workload.cc.o.d"
  "/root/repo/src/workload/tuple_naming.cc" "src/workload/CMakeFiles/mhp_workload.dir/tuple_naming.cc.o" "gcc" "src/workload/CMakeFiles/mhp_workload.dir/tuple_naming.cc.o.d"
  "/root/repo/src/workload/value_workload.cc" "src/workload/CMakeFiles/mhp_workload.dir/value_workload.cc.o" "gcc" "src/workload/CMakeFiles/mhp_workload.dir/value_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
