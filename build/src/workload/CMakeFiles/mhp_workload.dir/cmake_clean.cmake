file(REMOVE_RECURSE
  "CMakeFiles/mhp_workload.dir/benchmarks.cc.o"
  "CMakeFiles/mhp_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/mhp_workload.dir/cfg_walk_workload.cc.o"
  "CMakeFiles/mhp_workload.dir/cfg_walk_workload.cc.o.d"
  "CMakeFiles/mhp_workload.dir/edge_workload.cc.o"
  "CMakeFiles/mhp_workload.dir/edge_workload.cc.o.d"
  "CMakeFiles/mhp_workload.dir/tuple_naming.cc.o"
  "CMakeFiles/mhp_workload.dir/tuple_naming.cc.o.d"
  "CMakeFiles/mhp_workload.dir/value_workload.cc.o"
  "CMakeFiles/mhp_workload.dir/value_workload.cc.o.d"
  "libmhp_workload.a"
  "libmhp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
