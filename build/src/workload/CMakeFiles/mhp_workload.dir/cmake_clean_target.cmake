file(REMOVE_RECURSE
  "libmhp_workload.a"
)
