# Empty compiler generated dependencies file for mhp_workload.
# This may be replaced when dependencies are built.
