file(REMOVE_RECURSE
  "libmhp_support.a"
)
