# Empty dependencies file for mhp_support.
# This may be replaced when dependencies are built.
