
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cc" "src/support/CMakeFiles/mhp_support.dir/cli.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/cli.cc.o.d"
  "/root/repo/src/support/csv.cc" "src/support/CMakeFiles/mhp_support.dir/csv.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/csv.cc.o.d"
  "/root/repo/src/support/discrete_distribution.cc" "src/support/CMakeFiles/mhp_support.dir/discrete_distribution.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/discrete_distribution.cc.o.d"
  "/root/repo/src/support/env.cc" "src/support/CMakeFiles/mhp_support.dir/env.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/env.cc.o.d"
  "/root/repo/src/support/histogram.cc" "src/support/CMakeFiles/mhp_support.dir/histogram.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/histogram.cc.o.d"
  "/root/repo/src/support/parallel.cc" "src/support/CMakeFiles/mhp_support.dir/parallel.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/parallel.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/support/CMakeFiles/mhp_support.dir/rng.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/support/CMakeFiles/mhp_support.dir/stats.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/stats.cc.o.d"
  "/root/repo/src/support/table_printer.cc" "src/support/CMakeFiles/mhp_support.dir/table_printer.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/table_printer.cc.o.d"
  "/root/repo/src/support/zipf.cc" "src/support/CMakeFiles/mhp_support.dir/zipf.cc.o" "gcc" "src/support/CMakeFiles/mhp_support.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
