file(REMOVE_RECURSE
  "CMakeFiles/mhp_support.dir/cli.cc.o"
  "CMakeFiles/mhp_support.dir/cli.cc.o.d"
  "CMakeFiles/mhp_support.dir/csv.cc.o"
  "CMakeFiles/mhp_support.dir/csv.cc.o.d"
  "CMakeFiles/mhp_support.dir/discrete_distribution.cc.o"
  "CMakeFiles/mhp_support.dir/discrete_distribution.cc.o.d"
  "CMakeFiles/mhp_support.dir/env.cc.o"
  "CMakeFiles/mhp_support.dir/env.cc.o.d"
  "CMakeFiles/mhp_support.dir/histogram.cc.o"
  "CMakeFiles/mhp_support.dir/histogram.cc.o.d"
  "CMakeFiles/mhp_support.dir/parallel.cc.o"
  "CMakeFiles/mhp_support.dir/parallel.cc.o.d"
  "CMakeFiles/mhp_support.dir/rng.cc.o"
  "CMakeFiles/mhp_support.dir/rng.cc.o.d"
  "CMakeFiles/mhp_support.dir/stats.cc.o"
  "CMakeFiles/mhp_support.dir/stats.cc.o.d"
  "CMakeFiles/mhp_support.dir/table_printer.cc.o"
  "CMakeFiles/mhp_support.dir/table_printer.cc.o.d"
  "CMakeFiles/mhp_support.dir/zipf.cc.o"
  "CMakeFiles/mhp_support.dir/zipf.cc.o.d"
  "libmhp_support.a"
  "libmhp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
