file(REMOVE_RECURSE
  "libmhp_opt.a"
)
