
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/frequent_value_set.cc" "src/opt/CMakeFiles/mhp_opt.dir/frequent_value_set.cc.o" "gcc" "src/opt/CMakeFiles/mhp_opt.dir/frequent_value_set.cc.o.d"
  "/root/repo/src/opt/multipath_selector.cc" "src/opt/CMakeFiles/mhp_opt.dir/multipath_selector.cc.o" "gcc" "src/opt/CMakeFiles/mhp_opt.dir/multipath_selector.cc.o.d"
  "/root/repo/src/opt/trace_formation.cc" "src/opt/CMakeFiles/mhp_opt.dir/trace_formation.cc.o" "gcc" "src/opt/CMakeFiles/mhp_opt.dir/trace_formation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mhp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mhp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
