file(REMOVE_RECURSE
  "CMakeFiles/mhp_opt.dir/frequent_value_set.cc.o"
  "CMakeFiles/mhp_opt.dir/frequent_value_set.cc.o.d"
  "CMakeFiles/mhp_opt.dir/multipath_selector.cc.o"
  "CMakeFiles/mhp_opt.dir/multipath_selector.cc.o.d"
  "CMakeFiles/mhp_opt.dir/trace_formation.cc.o"
  "CMakeFiles/mhp_opt.dir/trace_formation.cc.o.d"
  "libmhp_opt.a"
  "libmhp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
