# Empty compiler generated dependencies file for mhp_opt.
# This may be replaced when dependencies are built.
