/**
 * @file
 * Tooling demo: record a workload to a .mht trace file, then replay it
 * through two different profiler configurations and compare them on
 * exactly the same input — the workflow for tuning profiler
 * parameters offline (the role ATOM trace files played for the paper).
 */

#include <cstdio>
#include <string>

#include "analysis/interval_runner.h"
#include "core/factory.h"
#include "support/cli.h"
#include "trace/trace_io.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("record a trace, replay through two configurations");
    cli.addString("benchmark", "gcc", "workload model to record");
    cli.addString("trace", "/tmp/mhprof_example.mht", "trace path");
    cli.addInt("intervals", 5, "intervals of 10K events to record");
    cli.parse(argc, argv);

    const std::string path = cli.getString("trace");
    const auto intervals =
        static_cast<uint64_t>(cli.getInt("intervals"));
    const uint64_t interval_length = 10'000;

    // Record.
    {
        auto workload = makeValueWorkload(cli.getString("benchmark"));
        TraceWriter writer(path, ProfileKind::Value);
        if (!writer.ok()) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        pump(*workload, writer, intervals * interval_length);
        if (const Status bad = writer.close(); !bad.isOk()) {
            std::fprintf(stderr, "%s\n", bad.toString().c_str());
            return 1;
        }
        std::printf("recorded %llu events to %s\n",
                    static_cast<unsigned long long>(
                        writer.eventsWritten()),
                    path.c_str());
    }

    // Replay through two configurations on the identical stream.
    auto replay = [&](const ProfilerConfig &cfg) {
        auto reader = TraceReader::open(path);
        if (!reader.isOk()) {
            std::fprintf(stderr, "%s\n",
                         reader.status().toString().c_str());
            std::exit(1);
        }
        auto profiler = makeProfiler(cfg);
        const RunOutput out =
            runIntervals(**reader, *profiler, interval_length,
                         cfg.thresholdCount(), intervals);
        std::printf("  %-10s error %.2f%% (FP %.2f%%, FN %.2f%%), "
                    "%.1f candidates/interval\n",
                    profiler->name().c_str(),
                    out.results[0].averageErrorPercent(),
                    100.0 * out.results[0].averageError().falsePositive,
                    100.0 * out.results[0].averageError().falseNegative,
                    out.results[0].meanHardwareCandidates());
    };

    std::printf("\nreplaying the same trace through both designs:\n");
    replay(bestSingleHashConfig(interval_length, 0.01));
    replay(bestMultiHashConfig(interval_length, 0.01));

    std::printf("\nSame input, different hardware: the multi-hash "
                "design's advantage is\nisolated from workload "
                "variance because both replays saw every event.\n");
    return 0;
}
