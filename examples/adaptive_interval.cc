/**
 * @file
 * Use case: adaptive interval-length selection (the future-work idea
 * at the end of paper Section 5.6.1: "one can potentially adaptively
 * pick the appropriate interval length for a given program").
 *
 * Strategy: run profilers at several interval lengths simultaneously;
 * measure the candidate variation between consecutive intervals at
 * each length; pick the longest interval whose variation stays under a
 * target (stable enough to optimize against, timely as possible).
 */

#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/factory.h"
#include "support/cli.h"
#include "workload/benchmarks.h"

namespace {

using namespace mhp;

/** Variation (Jaccard distance, %) between consecutive snapshots. */
class VariationTracker
{
  public:
    double
    update(const IntervalSnapshot &snap)
    {
        std::unordered_set<Tuple, TupleHash> cur;
        for (const auto &cand : snap)
            cur.insert(cand.tuple);
        double variation = 0.0;
        if (started && !(prev.empty() && cur.empty())) {
            uint64_t inter = 0;
            for (const auto &t : cur)
                inter += prev.count(t);
            const uint64_t uni = prev.size() + cur.size() - inter;
            variation = 100.0 * (1.0 - static_cast<double>(inter) /
                                           static_cast<double>(uni));
        }
        prev = std::move(cur);
        started = true;
        sum += variation;
        ++samples;
        return variation;
    }

    double
    mean() const
    {
        return samples <= 1 ? 0.0 : sum / static_cast<double>(samples - 1);
    }

  private:
    std::unordered_set<Tuple, TupleHash> prev;
    bool started = false;
    double sum = 0.0;
    uint64_t samples = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("adaptive interval-length selection");
    cli.addString("benchmark", "deltablue", "workload model");
    cli.addInt("events", 4'000'000, "events to profile");
    cli.addDouble("target", 30.0, "max acceptable mean variation (%)");
    cli.parse(argc, argv);

    const std::vector<uint64_t> lengths = {10'000, 50'000, 200'000,
                                           1'000'000};
    std::vector<std::unique_ptr<HardwareProfiler>> profilers;
    std::vector<VariationTracker> trackers(lengths.size());
    for (const uint64_t len : lengths) {
        // Keep the absolute candidate bar comparable: 1% of 10K (100
        // occurrences) at every length.
        ProfilerConfig c = bestMultiHashConfig(len, 0.01);
        c.candidateThreshold = 100.0 / static_cast<double>(len);
        profilers.push_back(makeProfiler(c));
    }

    auto workload = makeValueWorkload(cli.getString("benchmark"));
    const auto events = static_cast<uint64_t>(cli.getInt("events"));
    std::printf("profiling %s at %zu interval lengths "
                "simultaneously...\n\n",
                workload->name().c_str(), lengths.size());

    for (uint64_t i = 1; i <= events; ++i) {
        const Tuple t = workload->next();
        for (size_t k = 0; k < lengths.size(); ++k) {
            profilers[k]->onEvent(t);
            if (i % lengths[k] == 0)
                trackers[k].update(profilers[k]->endInterval());
        }
    }

    std::printf("%-12s %-18s\n", "interval", "mean variation %");
    size_t chosen = 0;
    const double target = cli.getDouble("target");
    for (size_t k = 0; k < lengths.size(); ++k) {
        std::printf("%-12llu %-18.1f\n",
                    static_cast<unsigned long long>(lengths[k]),
                    trackers[k].mean());
        if (trackers[k].mean() <= target)
            chosen = k; // longest stable length wins
    }
    std::printf("\nchosen interval length: %llu events (longest whose "
                "candidate set stays\nstable within %.0f%% between "
                "intervals -- Section 5.6.1's adaptive idea).\n",
                static_cast<unsigned long long>(lengths[chosen]),
                target);
    return 0;
}
