/**
 * @file
 * Quickstart: the five-minute tour of the public API.
 *
 *  1. Build a profiler from a ProfilerConfig (the paper's best
 *     configuration: 4 hash tables, conservative update, retaining).
 *  2. Feed it profiling events (<pc, value> tuples).
 *  3. Read back the captured candidates at each interval boundary.
 *
 * Run: ./quickstart [--events=N]
 */

#include <cstdio>

#include "core/factory.h"
#include "support/cli.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("mhprof quickstart: profile a synthetic workload");
    cli.addInt("events", 50'000, "events to profile");
    cli.addString("benchmark", "li", "workload model to profile");
    cli.parse(argc, argv);

    // 1. Configure: 10K-event intervals, 1% candidate threshold,
    //    2K counters over 4 tables -- ~7 KB of "hardware".
    const ProfilerConfig config = bestMultiHashConfig(10'000, 0.01);
    auto profiler = makeProfiler(config);
    std::printf("profiler: %s, area %llu bytes, threshold %llu "
                "occurrences/interval\n\n",
                profiler->name().c_str(),
                static_cast<unsigned long long>(profiler->areaBytes()),
                static_cast<unsigned long long>(config.thresholdCount()));

    // 2. Profile a stream. Any EventSource works; here, a synthetic
    //    benchmark model. Plug in your own by implementing EventSource
    //    or calling profiler->onEvent(tuple) directly.
    auto workload = makeValueWorkload(cli.getString("benchmark"));
    const auto events = static_cast<uint64_t>(cli.getInt("events"));

    uint64_t interval = 0;
    for (uint64_t i = 1; i <= events; ++i) {
        profiler->onEvent(workload->next());

        // 3. Harvest candidates at each interval boundary.
        if (i % config.intervalLength == 0) {
            const IntervalSnapshot snap = profiler->endInterval();
            std::printf("interval %llu: %zu candidates\n",
                        static_cast<unsigned long long>(interval++),
                        snap.size());
            const size_t show = snap.size() < 5 ? snap.size() : 5;
            for (size_t k = 0; k < show; ++k) {
                std::printf("  %-28s x%llu\n",
                            snap[k].tuple.toString().c_str(),
                            static_cast<unsigned long long>(
                                snap[k].count));
            }
        }
    }
    std::printf("\nDone. See examples/value_profile_fvc.cc and "
                "examples/cpu_sim_profile.cc for real use cases.\n");
    return 0;
}
