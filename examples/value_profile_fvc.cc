/**
 * @file
 * Use case: frequent-value cache compression (paper Section 2,
 * "Value based optimizations").
 *
 * Zhang et al. observed that ~10 distinct values dominate about half
 * of all memory accesses, and built a compressed data cache around
 * them — but left open how to capture those values dynamically. This
 * example closes that loop with the Multi-Hash profiler: it profiles
 * <loadPC, value> tuples, aggregates the captured candidates by VALUE,
 * and reports the frequent-value set a hardware FVC would load for the
 * next interval, along with the hit rate that set would achieve.
 */

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "core/factory.h"
#include "support/cli.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("frequent-value set capture for cache compression");
    cli.addString("benchmark", "m88ksim", "workload model");
    cli.addInt("intervals", 8, "profile intervals to run");
    cli.addInt("fvc-size", 8, "frequent-value register count");
    cli.parse(argc, argv);

    const ProfilerConfig config = bestMultiHashConfig(10'000, 0.01);
    auto profiler = makeProfiler(config);
    auto workload = makeValueWorkload(cli.getString("benchmark"));
    const auto fvc_size = static_cast<size_t>(cli.getInt("fvc-size"));
    const auto intervals =
        static_cast<uint64_t>(cli.getInt("intervals"));

    std::printf("capturing a %zu-entry frequent-value set from %s "
                "(%llu intervals)\n\n",
                fvc_size, workload->name().c_str(),
                static_cast<unsigned long long>(intervals));

    std::vector<uint64_t> fv_set; // the set loaded into the "FVC"
    for (uint64_t iv = 0; iv < intervals; ++iv) {
        // Run one profile interval, measuring how the *previous*
        // interval's frequent-value set would have performed — the
        // profile-then-optimize-next-interval loop of Section 5.6.1.
        uint64_t hits = 0;
        for (uint64_t i = 0; i < config.intervalLength; ++i) {
            const Tuple t = workload->next();
            profiler->onEvent(t);
            if (std::find(fv_set.begin(), fv_set.end(), t.second) !=
                fv_set.end())
                ++hits;
        }
        const IntervalSnapshot snap = profiler->endInterval();

        // Aggregate candidates by value: several load PCs may share a
        // frequent value.
        std::unordered_map<uint64_t, uint64_t> by_value;
        for (const auto &cand : snap)
            by_value[cand.tuple.second] += cand.count;
        std::vector<std::pair<uint64_t, uint64_t>> ranked(
            by_value.begin(), by_value.end());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });

        if (iv > 0) {
            std::printf("interval %llu: FVC hit rate with previous "
                        "set: %.1f%%\n",
                        static_cast<unsigned long long>(iv),
                        100.0 * static_cast<double>(hits) /
                            static_cast<double>(config.intervalLength));
        }
        fv_set.clear();
        for (size_t k = 0; k < ranked.size() && k < fvc_size; ++k)
            fv_set.push_back(ranked[k].first);

        std::printf("interval %llu captured %zu candidate tuples -> "
                    "%zu frequent values:",
                    static_cast<unsigned long long>(iv), snap.size(),
                    fv_set.size());
        for (uint64_t v : fv_set)
            std::printf(" %#llx", static_cast<unsigned long long>(v));
        std::printf("\n");
    }

    std::printf("\nThe captured set is what a frequent-value cache "
                "would preload each\ninterval -- captured entirely in "
                "hardware, no software sampling.\n");
    return 0;
}
