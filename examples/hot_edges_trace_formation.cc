/**
 * @file
 * Use case: trace formation (paper Section 2, "Trace Formation").
 *
 * A trace cache wants the hot control-flow paths. This example edge-
 * profiles a workload with the Multi-Hash profiler, then chains the
 * captured hot edges into straight-line "traces" (following the
 * hottest successor of each branch), which is exactly the layout
 * decision a hardware trace-formation engine makes.
 */

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "core/factory.h"
#include "support/cli.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("hot-edge capture and greedy trace formation");
    cli.addString("benchmark", "li", "workload model");
    cli.addInt("intervals", 5, "profile intervals");
    cli.addInt("max-traces", 4, "traces to form");
    cli.parse(argc, argv);

    const ProfilerConfig config = bestMultiHashConfig(10'000, 0.01);
    auto profiler = makeProfiler(config);
    auto workload = makeEdgeWorkload(cli.getString("benchmark"));

    // Profile several intervals; accumulate the final interval's
    // candidate edges for trace formation.
    IntervalSnapshot hot_edges;
    const auto intervals = static_cast<uint64_t>(cli.getInt("intervals"));
    for (uint64_t iv = 0; iv < intervals; ++iv) {
        for (uint64_t i = 0; i < config.intervalLength; ++i)
            profiler->onEvent(workload->next());
        hot_edges = profiler->endInterval();
        std::printf("interval %llu: %zu hot edges captured\n",
                    static_cast<unsigned long long>(iv),
                    hot_edges.size());
    }

    // Greedy trace formation: start from the hottest edge; repeatedly
    // follow the hottest captured outgoing edge of the current block.
    std::unordered_map<uint64_t, std::vector<CandidateCount>> outgoing;
    for (const auto &edge : hot_edges)
        outgoing[edge.tuple.first].push_back(edge);
    for (auto &[pc, edges] : outgoing) {
        std::sort(edges.begin(), edges.end(),
                  [](const auto &a, const auto &b) {
                      return a.count > b.count;
                  });
    }

    std::printf("\ngreedy traces from the hottest edges:\n");
    std::vector<bool> used(hot_edges.size(), false);
    const auto max_traces = static_cast<int>(cli.getInt("max-traces"));
    int formed = 0;
    for (size_t seed = 0;
         seed < hot_edges.size() && formed < max_traces; ++seed) {
        if (used[seed])
            continue;
        ++formed;
        std::printf("  trace %d:", formed);
        uint64_t pc = hot_edges[seed].tuple.first;
        for (int hops = 0; hops < 8; ++hops) {
            const auto it = outgoing.find(pc);
            if (it == outgoing.end())
                break;
            const auto &edge = it->second.front();
            std::printf(" %#llx->%#llx(x%llu)",
                        static_cast<unsigned long long>(edge.tuple.first),
                        static_cast<unsigned long long>(
                            edge.tuple.second),
                        static_cast<unsigned long long>(edge.count));
            // Mark the seed edge used so each trace has a fresh start.
            for (size_t k = 0; k < hot_edges.size(); ++k) {
                if (hot_edges[k].tuple == edge.tuple)
                    used[k] = true;
            }
            pc = edge.tuple.second;
        }
        std::printf("\n");
    }

    std::printf("\nEach chain is a candidate trace-cache line: the "
                "layout a run-time\ntrace-formation engine would pick "
                "from this interval's profile.\n");
    return 0;
}
