/**
 * @file
 * End-to-end demo: profile an actually-executing program.
 *
 * A random structured program is generated for the mini-CPU, executed
 * by the interpreter, and its instrumentation hooks (ATOM-style) feed
 * the Multi-Hash profiler — the full pipeline the paper's methodology
 * used, with the mini-CPU standing in for an Alpha under ATOM.
 */

#include <cstdio>

#include "analysis/interval_runner.h"
#include "core/factory.h"
#include "sim/codegen.h"
#include "sim/machine.h"
#include "sim/probes.h"
#include "support/cli.h"
#include "trace/event_class.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("profile a program running on the mini-CPU");
    cli.addInt("seed", 2023, "program-generator seed");
    cli.addInt("intervals", 5, "profile intervals (10K events each)");
    cli.addBool("edges", false, "edge-profile instead of value-profile");
    cli.parse(argc, argv);

    // Generate and load a program.
    CodegenConfig gen;
    gen.seed = static_cast<uint64_t>(cli.getInt("seed"));
    gen.numFunctions = 10;
    gen.numArrays = 6;
    gen.arrayLen = 512;
    const Program program = generateProgram(gen);
    Machine machine(program, 1 << 16);
    std::printf("generated program: %zu instructions, %zu data words\n",
                program.code.size(), program.dataInit.size());

    // Attach the requested probe and the profiler.
    const ProfilerConfig config = bestMultiHashConfig(10'000, 0.01);
    auto profiler = makeProfiler(config);
    const auto intervals =
        static_cast<uint64_t>(cli.getInt("intervals"));

    std::unique_ptr<EventSource> probe;
    if (cli.getBool("edges"))
        probe = std::make_unique<EdgeProbe>(machine);
    else
        probe = std::make_unique<ValueProbe>(machine);
    std::printf("profiling %s events through %s (%llu bytes of "
                "hardware)\n\n",
                profileKindName(probe->kind()),
                profiler->name().c_str(),
                static_cast<unsigned long long>(profiler->areaBytes()));

    // Score against the perfect profiler as the paper does.
    const RunOutput out =
        runIntervals(*probe, *profiler, config.intervalLength,
                     config.thresholdCount(), intervals);

    for (size_t iv = 0; iv < out.results[0].intervals.size(); ++iv) {
        const IntervalScore &s = out.results[0].intervals[iv];
        std::printf("interval %zu: %llu true candidates, %llu "
                    "captured, error %.2f%%\n",
                    iv,
                    static_cast<unsigned long long>(
                        s.perfectCandidates),
                    static_cast<unsigned long long>(
                        s.hardwareCandidates),
                    100.0 * s.breakdown.total());
    }
    std::printf("\nmachine executed %llu instructions; average error "
                "%.2f%%\n",
                static_cast<unsigned long long>(
                    machine.instructionsExecuted()),
                out.results[0].averageErrorPercent());
    return 0;
}
