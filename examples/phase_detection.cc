/**
 * @file
 * Use case: program-phase detection from hardware profiles.
 *
 * The paper's methodology leans on SimPoint (Sherwood et al.) to pick
 * representative regions; here the loop is closed the other way: the
 * Multi-Hash profiler's own interval snapshots are clustered
 * SimPoint-style to discover a program's phases — no basic-block
 * vectors or software instrumentation, just the profiles the hardware
 * already produces.
 *
 * deltablue's workload model cycles through 5 scheduled phases of 2M
 * events; the discovered clusters are printed against that ground
 * truth, and the snapshots are also written to a .mhp profile you can
 * re-inspect with: tools/mhprof_dump out.mhp --phases=5
 */

#include <cstdio>
#include <vector>

#include "analysis/profile_io.h"
#include "analysis/simpoint.h"
#include "core/factory.h"
#include "support/cli.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("discover program phases from hardware profiles");
    cli.addString("benchmark", "deltablue", "workload model");
    cli.addInt("intervals", 10, "1M-event intervals to profile");
    cli.addInt("max-phases", 5, "cluster budget (k)");
    cli.addString("out", "/tmp/mhprof_phases.mhp", "profile output");
    cli.parse(argc, argv);

    const ProfilerConfig cfg = bestMultiHashConfig(1'000'000, 0.001);
    auto profiler = makeProfiler(cfg);
    auto workload = makeValueWorkload(cli.getString("benchmark"));

    std::printf("profiling %s: %lld intervals of 1M events...\n",
                workload->name().c_str(),
                static_cast<long long>(cli.getInt("intervals")));

    ProfileWriter writer(cli.getString("out"), ProfileKind::Value,
                         cfg.intervalLength, cfg.thresholdCount());
    std::vector<IntervalSnapshot> snapshots;
    const auto intervals =
        static_cast<uint64_t>(cli.getInt("intervals"));
    for (uint64_t iv = 0; iv < intervals; ++iv) {
        for (uint64_t i = 0; i < cfg.intervalLength; ++i)
            profiler->onEvent(workload->next());
        snapshots.push_back(profiler->endInterval());
        if (writer.ok() &&
            !writer.writeInterval(snapshots.back()).isOk()) {
            std::fprintf(stderr, "warning: profile write failed\n");
        }
    }
    if (const Status bad = writer.close(); !bad.isOk())
        std::fprintf(stderr, "warning: %s\n", bad.toString().c_str());

    SimpointAnalysis sp(
        static_cast<unsigned>(cli.getInt("max-phases")));
    const auto phases = sp.analyze(snapshots);

    std::printf("\ndiscovered %zu phases:\n", phases.size());
    for (size_t p = 0; p < phases.size(); ++p) {
        std::printf("  phase %zu  weight %4.0f%%  representative "
                    "interval %2u  members:",
                    p, 100.0 * phases[p].weight,
                    phases[p].representative);
        for (uint32_t m : phases[p].intervals)
            std::printf(" %u", m);
        std::printf("\n");
    }

    std::printf("\nA run-time system would now apply each phase's "
                "optimizations when the\ncurrent interval classifies "
                "into it; profile written to %s\n",
                cli.getString("out").c_str());
    return 0;
}
