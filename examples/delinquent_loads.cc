/**
 * @file
 * Use case: delinquent-load capture and profile-guided prefetching
 * (paper Section 2, "Cache Replacement and Prefetching").
 *
 * "In many cases a large percentage of data cache misses are caused by
 * a very small number of instructions." This example demonstrates the
 * full loop:
 *
 *   1. run a generated program on the mini-CPU through a data cache;
 *   2. profile <loadPC, missedLine> tuples with the Multi-Hash
 *      profiler (one interval);
 *   3. hand the captured delinquent loads to a profile-guided stride
 *      prefetcher;
 *   4. re-run and compare the demand miss rate with and without the
 *      profile-guided prefetching.
 */

#include <cstdio>

#include "cache/miss_probe.h"
#include "cache/prefetcher.h"
#include "core/factory.h"
#include "sim/codegen.h"
#include "support/cli.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("delinquent-load capture + profile-guided prefetch");
    cli.addInt("seed", 99, "program-generator seed");
    cli.addInt("events", 200'000, "cache-miss events to profile");
    cli.addInt("degree", 2, "prefetch degree");
    cli.parse(argc, argv);

    CodegenConfig gen;
    gen.seed = static_cast<uint64_t>(cli.getInt("seed"));
    gen.numFunctions = 10;
    gen.numArrays = 8;
    gen.arrayLen = 4096; // big arrays so scans exceed the cache
    const Program program = generateProgram(gen);

    CacheConfig cache_cfg;
    cache_cfg.sizeBytes = 8 * 1024;
    cache_cfg.lineBytes = 64;
    cache_cfg.ways = 2;

    // --- Pass 1: profile the miss stream. -------------------------
    const auto events = static_cast<uint64_t>(cli.getInt("events"));
    ProfilerConfig pcfg = bestMultiHashConfig(events, 0.01);
    auto profiler = makeProfiler(pcfg);
    IntervalSnapshot delinquent;
    uint64_t baseline_accesses, baseline_misses;
    {
        Machine machine(program, 1 << 18);
        Cache cache(cache_cfg);
        // PcOnly naming: the delinquent event is "this load missed",
        // regardless of which line it missed on.
        CacheMissProbe probe(machine, cache, true, MissNaming::PcOnly);
        for (uint64_t i = 0; i < events && !probe.done(); ++i)
            profiler->onEvent(probe.next());
        delinquent = profiler->endInterval();
        baseline_accesses = cache.stats().accesses;
        baseline_misses = cache.stats().misses;
    }
    std::printf("pass 1 (profiling): %llu accesses, %llu misses "
                "(%.1f%%)\n",
                static_cast<unsigned long long>(baseline_accesses),
                static_cast<unsigned long long>(baseline_misses),
                100.0 * static_cast<double>(baseline_misses) /
                    static_cast<double>(baseline_accesses));
    std::printf("captured %zu delinquent <loadPC, line> candidates; "
                "top offenders:\n",
                delinquent.size());
    for (size_t i = 0; i < delinquent.size() && i < 5; ++i) {
        std::printf("  pc %#llx  x%llu misses\n",
                    static_cast<unsigned long long>(
                        delinquent[i].tuple.first),
                    static_cast<unsigned long long>(
                        delinquent[i].count));
    }

    // --- Pass 2: same program, prefetching the profiled PCs. ------
    {
        Machine machine(program, 1 << 18);
        Cache cache(cache_cfg);
        ProfileGuidedPrefetcher prefetcher(
            cache, static_cast<unsigned>(cli.getInt("degree")));
        prefetcher.retrain(delinquent);
        machine.setMemHook(
            [&](uint64_t pc, uint64_t addr, bool store) {
                cache.access(addr);
                if (!store)
                    prefetcher.onAccess(pc, addr);
            });
        // Execute the same amount of work as pass 1 measured.
        while (cache.stats().accesses < baseline_accesses &&
               machine.step()) {
        }
        const auto &s = cache.stats();
        std::printf("\npass 2 (prefetching %zu PCs, degree %lld): "
                    "%llu accesses, %llu misses (%.1f%%)\n",
                    prefetcher.delinquentPcs(),
                    static_cast<long long>(cli.getInt("degree")),
                    static_cast<unsigned long long>(s.accesses),
                    static_cast<unsigned long long>(s.misses),
                    100.0 * s.missRate());
        std::printf("prefetches issued: %llu, prefetched lines hit by "
                    "demand: %llu\n",
                    static_cast<unsigned long long>(
                        prefetcher.prefetchesIssued()),
                    static_cast<unsigned long long>(s.prefetchHits));
        const double reduction =
            100.0 *
            (1.0 - static_cast<double>(s.misses) /
                       static_cast<double>(baseline_misses));
        std::printf("\ndemand-miss reduction from the profile: "
                    "%.1f%%\n",
                    reduction);
    }
    return 0;
}
