/**
 * @file
 * Use case: selecting branches for Multiple Path Execution (paper
 * Section 2, "Multiple Path Execution").
 *
 * A mini-CPU program runs through a real branch predictor; the
 * profiler captures the <branchPC, actualTarget> tuples of the
 * MISPREDICTIONS (not all branches — exactly the filtering a hardware
 * profiler exists for). The MultipathSelector then picks the top
 * problematic branches, and we measure what fraction of all
 * mispredictions those few branches cover — the payoff a multipath
 * engine with a small fork budget would get.
 */

#include <cstdio>
#include <unordered_map>

#include "cache/miss_probe.h"
#include "core/factory.h"
#include "opt/multipath_selector.h"
#include "sim/codegen.h"
#include "support/cli.h"

int
main(int argc, char **argv)
{
    using namespace mhp;

    CliParser cli("profile mispredictions, select multipath branches");
    cli.addInt("seed", 11, "program-generator seed");
    cli.addInt("events", 100'000, "mispredict events to profile");
    cli.addInt("budget", 8, "multipath fork budget (branches)");
    cli.parse(argc, argv);

    CodegenConfig gen;
    gen.seed = static_cast<uint64_t>(cli.getInt("seed"));
    gen.numFunctions = 12;
    gen.numArrays = 6;
    gen.arrayLen = 512;
    gen.ifProbability = 0.9; // plenty of data-dependent branches
    Machine machine(generateProgram(gen), 1 << 16);

    BimodalPredictor predictor(4096);
    MispredictProbe probe(machine, predictor);

    const auto events = static_cast<uint64_t>(cli.getInt("events"));
    ProfilerConfig pcfg = bestMultiHashConfig(10'000, 0.01);
    auto profiler = makeProfiler(pcfg);

    // Track ground truth alongside (for the coverage number).
    std::unordered_map<uint64_t, uint64_t> truth;
    IntervalSnapshot last;
    for (uint64_t i = 1; i <= events && !probe.done(); ++i) {
        const Tuple t = probe.next();
        profiler->onEvent(t);
        ++truth[t.first];
        if (i % pcfg.intervalLength == 0)
            last = profiler->endInterval();
    }

    std::printf("predictor: %s, %llu predictions, %.1f%% mispredict "
                "rate\n",
                predictor.name().c_str(),
                static_cast<unsigned long long>(
                    predictor.stats().predictions),
                100.0 * predictor.stats().mispredictRate());
    std::printf("profiler captured %zu hot mispredicting branches in "
                "the last interval\n\n",
                last.size());

    MultipathConfig mcfg;
    mcfg.maxBranches = static_cast<unsigned>(cli.getInt("budget"));
    const auto chosen =
        MultipathSelector(mcfg).fromMispredictProfile(last);

    uint64_t total_mispredicts = 0;
    for (const auto &[pc, n] : truth)
        total_mispredicts += n;
    uint64_t covered = 0;
    std::printf("selected for multipath (budget %u):\n",
                mcfg.maxBranches);
    for (const auto &choice : chosen) {
        const auto it = truth.find(choice.branchPc);
        const uint64_t actual = it == truth.end() ? 0 : it->second;
        covered += actual;
        std::printf("  pc %#llx  profiled x%llu  actual mispredicts "
                    "x%llu\n",
                    static_cast<unsigned long long>(choice.branchPc),
                    static_cast<unsigned long long>(choice.weight),
                    static_cast<unsigned long long>(actual));
    }
    std::printf("\n%zu branches out of %zu mispredicting ones cover "
                "%.1f%% of all mispredictions\n",
                chosen.size(), truth.size(),
                100.0 * static_cast<double>(covered) /
                    static_cast<double>(total_mispredicts));
    std::printf("-- the skew a multipath engine exploits, found "
                "entirely in hardware.\n");
    return 0;
}
