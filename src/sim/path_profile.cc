#include "sim/path_profile.h"

#include <algorithm>

#include "support/panic.h"

namespace mhp {

namespace {

/** a * b, saturating at kMaxPathsPerRoutine. */
uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a != 0 && b > kMaxPathsPerRoutine / a)
        return kMaxPathsPerRoutine + 1;
    const uint64_t p = a * b;
    return p > kMaxPathsPerRoutine ? kMaxPathsPerRoutine + 1 : p;
}

/** a + b, saturating at kMaxPathsPerRoutine. */
uint64_t
satAdd(uint64_t a, uint64_t b)
{
    const uint64_t s = a + b;
    return (s < a || s > kMaxPathsPerRoutine) ? kMaxPathsPerRoutine + 1
                                              : s;
}

bool
endsBlock(Opcode op)
{
    return isConditionalBranch(op) || op == Opcode::Jmp ||
           op == Opcode::JmpReg || op == Opcode::Call ||
           op == Opcode::Ret || op == Opcode::Halt;
}

} // namespace

BallLarusNumbering::BallLarusNumbering(const Program &program,
                                       unsigned kIterations)
{
    MHP_REQUIRE(!program.code.empty(), "empty program");
    MHP_REQUIRE(kIterations >= 1, "kIterations must be >= 1");
    std::vector<uint8_t> leader(program.code.size(), 0);
    findLeaders(program, leader);
    buildBlocks(program, leader);
    buildEdges(program);
    removeBackEdges();
    numberPaths(kIterations);
}

void
BallLarusNumbering::findLeaders(const Program &program,
                                std::vector<uint8_t> &leader) const
{
    const uint64_t n = program.code.size();
    leader[0] = 1;
    leader[program.entry] = 1;
    for (uint64_t i = 0; i < n; ++i) {
        const Instruction &inst = program.code[i];
        // Direct targets begin blocks; so does the instruction after
        // any control transfer (it can be reached by falling past a
        // not-taken branch or by a return continuation).
        if (isConditionalBranch(inst.op) || inst.op == Opcode::Jmp ||
            inst.op == Opcode::Call) {
            const uint64_t target = static_cast<uint64_t>(inst.imm);
            if (target < n)
                leader[target] = 1;
        }
        if (endsBlock(inst.op) && i + 1 < n)
            leader[i + 1] = 1;
        // A LoadImm of a code address is a jump-table entry (see
        // ProgramBuilder::loadLabel): the named block can be entered
        // by an indirect jump, so it must start a block.
        if (inst.op == Opcode::LoadImm) {
            const uint64_t target = static_cast<uint64_t>(inst.imm);
            if (target < n)
                leader[target] = 1;
        }
    }
}

void
BallLarusNumbering::buildBlocks(const Program &program,
                                const std::vector<uint8_t> &leader)
{
    const uint64_t n = program.code.size();

    // Routine entries: instruction 0, the program entry, and every
    // call target. Generated code lays each routine out contiguously,
    // so the region between consecutive entries is one routine.
    routineEntries = {0, program.entry};
    for (uint64_t i = 0; i < n; ++i) {
        const Instruction &inst = program.code[i];
        if (inst.op == Opcode::Call) {
            const uint64_t target = static_cast<uint64_t>(inst.imm);
            if (target < n)
                routineEntries.push_back(target);
        }
    }
    std::sort(routineEntries.begin(), routineEntries.end());
    routineEntries.erase(
        std::unique(routineEntries.begin(), routineEntries.end()),
        routineEntries.end());

    // Routine entries are leaders too (a block never spans routines).
    std::vector<uint8_t> isLeader = leader;
    for (uint64_t entry : routineEntries)
        isLeader[entry] = 1;

    routineList.resize(routineEntries.size());
    for (size_t r = 0; r < routineEntries.size(); ++r)
        routineList[r].entry = routineEntries[r];

    blockOf.assign(n, 0);
    for (uint64_t i = 0; i < n; ++i) {
        if (isLeader[i]) {
            Block b;
            b.first = i;
            const auto it =
                std::upper_bound(routineEntries.begin(),
                                 routineEntries.end(), i);
            b.routine = static_cast<uint32_t>(
                (it - routineEntries.begin()) - 1);
            blockList.push_back(b);
        }
        blockOf[i] = static_cast<uint32_t>(blockList.size() - 1);
    }
    for (size_t b = 0; b < blockList.size(); ++b) {
        blockList[b].last = (b + 1 < blockList.size())
                                ? blockList[b + 1].first - 1
                                : n - 1;
        blockList[b].termOp = program.code[blockList[b].last].op;
    }
    for (size_t r = 0; r < routineList.size(); ++r) {
        routineList[r].firstBlock =
            blockOf[routineList[r].entry];
        routineList[r].lastBlock =
            (r + 1 < routineList.size())
                ? blockOf[routineList[r + 1].entry] - 1
                : static_cast<uint32_t>(blockList.size() - 1);
    }
}

void
BallLarusNumbering::buildEdges(const Program &program)
{
    const uint64_t n = program.code.size();
    auto addEdge = [&](Block &u, uint64_t targetIndex) {
        // Successors outside the routine (the entry stub's jump to
        // main, a tail jump) terminate the path instead.
        if (targetIndex >= n) {
            u.isEnd = true;
            return;
        }
        const uint32_t v = blockOf[targetIndex];
        if (blockList[v].routine != u.routine) {
            u.isEnd = true;
            return;
        }
        for (const auto &[existing, val] : u.succ) {
            (void)val;
            if (existing == v)
                return; // branch to the fallthrough: one edge
        }
        u.succ.emplace_back(v, 0);
    };

    for (Block &u : blockList) {
        const Instruction &term = program.code[u.last];
        switch (term.op) {
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
            addEdge(u, static_cast<uint64_t>(term.imm));
            addEdge(u, u.last + 1);
            break;
          case Opcode::Jmp:
            addEdge(u, static_cast<uint64_t>(term.imm));
            break;
          case Opcode::Call:
            // The caller's path continues at the return continuation;
            // the callee is a separate activation (see PathTracker).
            addEdge(u, u.last + 1);
            break;
          case Opcode::JmpReg:
          case Opcode::Ret:
          case Opcode::Halt:
            u.isEnd = true;
            break;
          default:
            // Fallthrough into the next leader.
            addEdge(u, u.last + 1);
            break;
        }
    }

    // Start blocks: routine entries, and blocks no direct edge
    // reaches (indirect-jump landing pads like jump-table stubs).
    std::vector<uint32_t> inDegree(blockList.size(), 0);
    for (const Block &u : blockList) {
        for (const auto &[v, val] : u.succ) {
            (void)val;
            ++inDegree[v];
        }
    }
    for (const Routine &r : routineList)
        blockList[blockOf[r.entry]].isStart = true;
    for (size_t b = 0; b < blockList.size(); ++b) {
        if (inDegree[b] == 0)
            blockList[b].isStart = true;
    }
}

void
BallLarusNumbering::removeBackEdges()
{
    // Iterative DFS over every block (in index order, so stubs that
    // no static edge reaches are covered); an edge to a gray node is
    // retreating — removed from the DAG, its target becomes a path
    // start, its source a path end.
    std::vector<uint8_t> color(blockList.size(), 0); // 0 w, 1 g, 2 b
    std::vector<std::pair<uint32_t, size_t>> stack;
    std::vector<std::pair<uint32_t, uint32_t>> retreating;

    for (uint32_t root = 0; root < blockList.size(); ++root) {
        if (color[root] != 0)
            continue;
        stack.emplace_back(root, 0);
        color[root] = 1;
        while (!stack.empty()) {
            auto &[u, next] = stack.back();
            if (next < blockList[u].succ.size()) {
                const uint32_t v = blockList[u].succ[next].first;
                ++next;
                if (color[v] == 0) {
                    color[v] = 1;
                    stack.emplace_back(v, 0);
                } else if (color[v] == 1) {
                    retreating.emplace_back(u, v);
                }
            } else {
                color[u] = 2;
                stack.pop_back();
            }
        }
    }

    for (const auto &[u, v] : retreating) {
        Block &from = blockList[u];
        from.succ.erase(
            std::remove_if(from.succ.begin(), from.succ.end(),
                           [v = v](const auto &e) {
                               return e.first == v;
                           }),
            from.succ.end());
        from.retreatSucc.push_back(v);
        from.isEnd = true;
        blockList[v].isStart = true;
    }

    // A block with no remaining successors ends every path through it.
    for (Block &u : blockList) {
        if (u.succ.empty())
            u.isEnd = true;
    }
}

void
BallLarusNumbering::numberPaths(unsigned kIterations)
{
    std::vector<uint64_t> numPathsOf(blockList.size(), 0);

    for (Routine &routine : routineList) {
        const uint32_t lo = routine.firstBlock;
        const uint32_t hi = routine.lastBlock;

        // Reverse-topological order via Kahn's algorithm.
        std::vector<uint32_t> inDeg(hi - lo + 1, 0);
        for (uint32_t b = lo; b <= hi; ++b) {
            for (const auto &[v, val] : blockList[b].succ) {
                (void)val;
                ++inDeg[v - lo];
            }
        }
        std::vector<uint32_t> order;
        order.reserve(hi - lo + 1);
        for (uint32_t b = lo; b <= hi; ++b) {
            if (inDeg[b - lo] == 0)
                order.push_back(b);
        }
        for (size_t i = 0; i < order.size(); ++i) {
            for (const auto &[v, val] : blockList[order[i]].succ) {
                (void)val;
                if (--inDeg[v - lo] == 0)
                    order.push_back(v);
            }
        }
        MHP_ASSERT(order.size() == hi - lo + 1u,
                   "cycle left after back-edge removal");

        // Visit in reverse topological order: every successor's count
        // is known before its predecessors; edge increments are the
        // classic prefix sums, with the dummy EXIT edge ordered last.
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            Block &u = blockList[*it];
            std::sort(u.succ.begin(), u.succ.end());
            uint64_t running = 0;
            for (auto &[v, val] : u.succ) {
                val = running;
                running = satAdd(running, numPathsOf[v]);
            }
            if (u.isEnd) {
                u.exitVal = running;
                running = satAdd(running, 1);
            }
            numPathsOf[*it] = running;
        }

        // Start blocks partition the id space: paths from start s get
        // ids [startOffset(s), startOffset(s) + numPaths(s)).
        uint64_t total = 0;
        for (uint32_t b = lo; b <= hi; ++b) {
            if (!blockList[b].isStart)
                continue;
            blockList[b].startOffset = total;
            total = satAdd(total, numPathsOf[b]);
        }
        routine.numPaths = total;
        routine.overflowed = total > kMaxPathsPerRoutine;

        // Clamp the iteration depth so composites stay decodable.
        routine.effectiveK = 1;
        routine.compositeSpan = total;
        if (total <= 1) {
            routine.effectiveK = kIterations;
            routine.compositeSpan = 1;
        } else if (!routine.overflowed) {
            uint64_t span = total;
            while (routine.effectiveK < kIterations &&
                   span <= kMaxCompositeId / total) {
                span *= total;
                ++routine.effectiveK;
            }
            routine.compositeSpan = span;
        }
    }
}

int
BallLarusNumbering::routineByPc(uint64_t pc) const
{
    for (size_t r = 0; r < routineList.size(); ++r) {
        if (Machine::pcAddress(routineList[r].entry) == pc)
            return static_cast<int>(r);
    }
    return -1;
}

std::vector<uint32_t>
BallLarusNumbering::decodePath(uint32_t routine, uint64_t pathId) const
{
    std::vector<uint32_t> path;
    const Routine &r = routineList[routine];
    if (r.overflowed || pathId >= r.numPaths)
        return path;

    // Find the start block owning this id (offsets ascend with block
    // id), then greedily follow the largest increment that fits —
    // the inverse of the prefix-sum assignment.
    uint32_t start = kExit;
    for (uint32_t b = r.firstBlock; b <= r.lastBlock; ++b) {
        if (blockList[b].isStart && blockList[b].startOffset <= pathId)
            start = b;
    }
    MHP_ASSERT(start != kExit, "path id owned by no start block");

    uint64_t residual = pathId - blockList[start].startOffset;
    uint32_t u = start;
    for (size_t guard = 0; guard <= blockList.size(); ++guard) {
        path.push_back(u);
        const Block &blk = blockList[u];
        uint32_t bestTarget = kExit;
        uint64_t bestVal = 0;
        bool found = false;
        for (const auto &[v, val] : blk.succ) {
            if (val <= residual) {
                bestTarget = v;
                bestVal = val;
                found = true;
            }
        }
        if (blk.isEnd && blk.exitVal <= residual) {
            bestTarget = kExit;
            bestVal = blk.exitVal;
            found = true;
        }
        MHP_ASSERT(found, "path id decodes past every successor");
        residual -= bestVal;
        if (bestTarget == kExit)
            return path;
        u = bestTarget;
    }
    MHP_PANIC("path decode exceeded block count");
}

std::vector<Tuple>
BallLarusNumbering::decodePathEdges(uint32_t routine,
                                    uint64_t pathId) const
{
    std::vector<Tuple> edges;
    const std::vector<uint32_t> path = decodePath(routine, pathId);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
        const Block &u = blockList[path[i]];
        if (isConditionalBranch(u.termOp)) {
            edges.push_back(
                Tuple{Machine::pcAddress(u.last),
                      Machine::pcAddress(blockList[path[i + 1]].first)});
        }
    }
    return edges;
}

uint64_t
BallLarusNumbering::pathInstructions(uint32_t routine,
                                     uint64_t pathId) const
{
    uint64_t instructions = 0;
    for (uint32_t b : decodePath(routine, pathId))
        instructions += blockList[b].last - blockList[b].first + 1;
    return instructions;
}

PathTracker::PathTracker(const BallLarusNumbering &numbering)
    : num(numbering)
{
}

void
PathTracker::emitPath(uint64_t endExitVal)
{
    const BallLarusNumbering::Routine &routine =
        num.routineList[curRoutine];
    const uint64_t id = pathStart + reg + endExitVal;
    window.push_back(id);
    if (window.size() > routine.effectiveK)
        window.erase(window.begin());

    // Fold the last <= k acyclic ids into one composite (plain
    // Ball-Larus when k == 1: composite == id).
    uint64_t composite = 0;
    if (routine.numPaths > 1) {
        for (uint64_t w : window)
            composite = composite * routine.numPaths + w;
    }
    out.push_back(Tuple{num.routinePc(curRoutine), composite});
    ++emittedCount;
}

void
PathTracker::beginAt(uint32_t block)
{
    tracking = true;
    curRoutine = num.blockList[block].routine;
    curBlock = block;
    reg = 0;
    pathStart = num.blockList[block].startOffset;
    window.clear();
}

void
PathTracker::goUntracked()
{
    tracking = false;
    stack.clear();
    window.clear();
    reg = 0;
}

void
PathTracker::onStep(uint64_t instrIndex)
{
    const std::vector<BallLarusNumbering::Block> &blocks =
        num.blockList;

    if (!tracking) {
        const uint32_t b = num.blockOf[instrIndex];
        if (blocks[b].first == instrIndex && blocks[b].isStart &&
            !num.routineList[blocks[b].routine].overflowed)
            beginAt(b);
        prevIndex = instrIndex;
        havePrev = true;
        return;
    }

    const BallLarusNumbering::Block &prev = blocks[curBlock];
    if (prevIndex != prev.last) {
        // Mid-block: straight-line fall through to the next index.
        if (instrIndex != prevIndex + 1) {
            ++broken;
            goUntracked();
            onStep(instrIndex); // may restart at a start block
            return;
        }
        prevIndex = instrIndex;
        return;
    }

    // Block boundary: classify the transition the terminator took.
    const uint32_t land = num.blockOf[instrIndex];
    const bool landsLeader = blocks[land].first == instrIndex;

    if (prev.termOp == Opcode::Call) {
        if (stack.size() >= 256) {
            ++broken;
            goUntracked();
        } else if (landsLeader && blocks[land].isStart &&
                   !num.routineList[blocks[land].routine].overflowed) {
            stack.push_back(Frame{curRoutine, curBlock, reg,
                                  pathStart, std::move(window)});
            beginAt(land);
        } else {
            ++broken;
            goUntracked();
        }
        prevIndex = instrIndex;
        havePrev = true;
        return;
    }

    if (prev.termOp == Opcode::Ret) {
        emitPath(prev.exitVal);
        bool resumed = false;
        if (!stack.empty()) {
            Frame frame = std::move(stack.back());
            stack.pop_back();
            const BallLarusNumbering::Block &callBlock =
                num.blockList[frame.callBlock];
            for (const auto &[v, val] : callBlock.succ) {
                if (blocks[v].first == instrIndex) {
                    curRoutine = frame.routine;
                    curBlock = v;
                    reg = frame.reg + val;
                    pathStart = frame.pathStart;
                    window = std::move(frame.window);
                    resumed = true;
                    break;
                }
            }
            if (!resumed) {
                ++broken;
                goUntracked();
            }
        } else {
            // Clean callee end with no suspended caller (tracking
            // began mid-call); wait for the next start block.
            tracking = false;
            window.clear();
            if (landsLeader && blocks[land].isStart &&
                !num.routineList[blocks[land].routine].overflowed)
                beginAt(land);
        }
        prevIndex = instrIndex;
        return;
    }

    // Direct DAG successor?
    for (const auto &[v, val] : prev.succ) {
        if (v == land && landsLeader) {
            reg += val;
            curBlock = v;
            prevIndex = instrIndex;
            return;
        }
    }

    // Loop back edge: complete this iteration's path, start the next
    // one in the same activation (the k-iteration window persists).
    for (uint32_t v : prev.retreatSucc) {
        if (v == land && landsLeader) {
            emitPath(prev.exitVal);
            curBlock = v;
            reg = 0;
            pathStart = blocks[v].startOffset;
            prevIndex = instrIndex;
            return;
        }
    }

    if (prev.isEnd) {
        // Indirect or cross-routine jump: the path ends cleanly; a
        // landing on a start block begins a new one (same activation
        // if we stayed in the routine — a switch dispatch).
        emitPath(prev.exitVal);
        if (landsLeader && blocks[land].isStart &&
            !num.routineList[blocks[land].routine].overflowed) {
            if (blocks[land].routine != curRoutine) {
                window.clear();
                curRoutine = blocks[land].routine;
            }
            curBlock = land;
            reg = 0;
            pathStart = blocks[land].startOffset;
        } else {
            goUntracked();
        }
        prevIndex = instrIndex;
        return;
    }

    ++broken;
    goUntracked();
    onStep(instrIndex);
}

void
PathTracker::finish()
{
    if (finished)
        return;
    finished = true;
    if (tracking && havePrev) {
        const BallLarusNumbering::Block &blk = num.blockList[curBlock];
        // Only a path sitting on its terminating instruction (Halt)
        // is complete; anything else was cut mid-flight.
        if (prevIndex == blk.last && blk.termOp == Opcode::Halt &&
            blk.isEnd)
            emitPath(blk.exitVal);
    }
    tracking = false;
    stack.clear();
}

} // namespace mhp
