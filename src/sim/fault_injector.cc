#include "sim/fault_injector.h"

#include <cmath>

#include "core/accumulator_table.h"
#include "core/counter_table.h"
#include "core/profiler.h"
#include "support/panic.h"

namespace mhp {

FaultInjector::FaultInjector(const FaultInjectorConfig &config)
    : rate(config.faultsPerEvent < 0.0   ? 0.0
           : config.faultsPerEvent > 1.0 ? 1.0
                                         : config.faultsPerEvent),
      rng(config.seed)
{
}

void
FaultInjector::attach(HardwareProfiler &profiler)
{
    const FaultTargets targets = profiler.faultTargets();
    for (CounterTable *table : targets.counterTables)
        attach(*table);
    if (targets.accumulator != nullptr)
        attach(*targets.accumulator);
}

void
FaultInjector::attach(CounterTable &table)
{
    counters.push_back(&table);
}

void
FaultInjector::attach(AccumulatorTable &table)
{
    accumulators.push_back(&table);
}

uint64_t
FaultInjector::targetBits() const
{
    uint64_t bits = 0;
    for (const CounterTable *table : counters)
        bits += table->size() * table->counterBits();
    for (const AccumulatorTable *table : accumulators)
        bits += table->capacity() * 64;
    return bits;
}

uint64_t
FaultInjector::nextGap()
{
    // Geometric(p) gap between Bernoulli successes, sampled inline
    // (std::geometric_distribution is implementation-defined, which
    // would break cross-platform reproducibility of fault streams).
    if (rate >= 1.0)
        return 1;
    double u = rng.nextDouble();
    if (u <= 0.0)
        u = 1e-300;
    const double gap = std::floor(std::log(u) / std::log1p(-rate));
    if (gap >= 1e18)
        return UINT64_MAX;
    return 1 + static_cast<uint64_t>(gap);
}

void
FaultInjector::injectOne()
{
    const uint64_t total = targetBits();
    MHP_ASSERT(total > 0, "fault injection with no attached targets");
    uint64_t site = rng.nextBelow(total);
    for (CounterTable *table : counters) {
        const uint64_t bits = table->size() * table->counterBits();
        if (site < bits) {
            table->flipBit(site / table->counterBits(),
                           static_cast<unsigned>(site %
                                                 table->counterBits()));
            ++injected;
            return;
        }
        site -= bits;
    }
    for (AccumulatorTable *table : accumulators) {
        const uint64_t bits = table->capacity() * 64;
        if (site < bits) {
            table->flipCountBit(site / 64,
                                static_cast<unsigned>(site % 64));
            ++injected;
            return;
        }
        site -= bits;
    }
    MHP_PANIC("fault site fell outside attached targets");
}

uint64_t
FaultInjector::advance(uint64_t events)
{
    if (rate <= 0.0 || (counters.empty() && accumulators.empty()))
        return 0;
    uint64_t now = 0;
    if (eventsUntilNext == 0)
        eventsUntilNext = nextGap();
    while (events >= eventsUntilNext) {
        events -= eventsUntilNext;
        injectOne();
        ++now;
        eventsUntilNext = nextGap();
    }
    eventsUntilNext -= events;
    return now;
}

} // namespace mhp
