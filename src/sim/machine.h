/**
 * @file
 * The mini-CPU interpreter with ATOM-style instrumentation hooks.
 *
 * The machine executes a Program one instruction at a time. Two hook
 * points mirror the instrumentation the paper's methodology used:
 *
 *  - every Load fires onLoad(pcAddress, loadedValue) — the raw
 *    material of value profiling;
 *  - every conditional branch fires onEdge(pcAddress, targetAddress)
 *    with the *actual* control-flow target — edge profiling.
 *
 * Instruction indices are presented to the hooks as byte addresses
 * (index * 4 + code base) so the tuples look like real PCs.
 */

#ifndef MHP_SIM_MACHINE_H
#define MHP_SIM_MACHINE_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/program.h"

namespace mhp {

/** Base byte address the code segment is presented at. */
constexpr uint64_t kCodeBase = 0x0000000140000000ULL;

/** Sequential interpreter for the toy ISA. */
class Machine
{
  public:
    using LoadHook = std::function<void(uint64_t pc, uint64_t value)>;
    using EdgeHook = std::function<void(uint64_t pc, uint64_t target)>;
    /** Fires on every load/store with the BYTE address touched. */
    using MemHook =
        std::function<void(uint64_t pc, uint64_t byteAddr, bool store)>;
    /**
     * Fires before every instruction executes with its INDEX (not
     * byte address) — the raw control-flow trace path profiling
     * consumes. Fires for Halt too, so a tracker sees the final block.
     */
    using StepHook = std::function<void(uint64_t index)>;

    /**
     * @param program The executable (copied in).
     * @param memoryWords Memory size; must cover program.dataInit.
     */
    explicit Machine(Program program, uint64_t memoryWords = 1 << 20);

    /** Install instrumentation (pass nullptr to remove). */
    void setLoadHook(LoadHook hook) { onLoad = std::move(hook); }
    void setEdgeHook(EdgeHook hook) { onEdge = std::move(hook); }
    void setMemHook(MemHook hook) { onMem = std::move(hook); }
    void setStepHook(StepHook hook) { onStep = std::move(hook); }

    /** The executable this machine runs (for CFG analysis). */
    const Program &programImage() const { return program; }

    /**
     * Execute one instruction.
     * @return false once halted (further calls remain halted).
     */
    bool step();

    /**
     * Execute up to maxSteps instructions.
     * @return instructions actually executed (less only if halted).
     */
    uint64_t run(uint64_t maxSteps);

    bool halted() const { return isHalted; }
    uint64_t pc() const { return pcIndex; }
    uint64_t instructionsExecuted() const { return executed; }

    uint64_t reg(unsigned r) const { return regs[r]; }
    void setReg(unsigned r, uint64_t v);

    uint64_t memWord(uint64_t addr) const;
    void setMemWord(uint64_t addr, uint64_t v);
    uint64_t memorySize() const { return memory.size(); }

    /** Byte address shown to hooks for an instruction index. */
    static uint64_t
    pcAddress(uint64_t index)
    {
        return kCodeBase + index * 4;
    }

    /** Restart at the entry point with a fresh memory image. */
    void reset();

  private:
    uint64_t memIndex(uint64_t addr) const;

    Program program;
    std::array<uint64_t, kNumRegs> regs{};
    std::vector<uint64_t> memory;
    uint64_t memoryWords;
    uint64_t pcIndex = 0;
    uint64_t executed = 0;
    bool isHalted = false;

    LoadHook onLoad;
    EdgeHook onEdge;
    MemHook onMem;
    StepHook onStep;
};

} // namespace mhp

#endif // MHP_SIM_MACHINE_H
