#include "sim/codegen.h"

#include <string>
#include <vector>

#include "support/panic.h"
#include "support/rng.h"
#include "support/zipf.h"

namespace mhp {

namespace {

// Register conventions for generated code (see isa.h for r0/r31).
constexpr unsigned rScratchA = 1;  // loop counter
constexpr unsigned rScratchB = 2;  // index computation
constexpr unsigned rScratchC = 3;  // loaded value
constexpr unsigned rScratchD = 4;  // comparison constant
constexpr unsigned rBase = 5;      // array base
constexpr unsigned rLimit = 6;     // loop bound
constexpr unsigned rScratchE = 7;  // dispatch target computation
constexpr unsigned rScratchF = 8;  // dispatch base address
constexpr unsigned rGlobal = 20;   // main-loop iteration counter

} // namespace

Program
generateProgram(const CodegenConfig &config)
{
    MHP_REQUIRE(config.numFunctions >= 1, "need at least one function");
    MHP_REQUIRE(config.numArrays >= 1, "need at least one array");
    MHP_REQUIRE(config.arrayLen >= 2, "arrays need at least two words");
    MHP_REQUIRE(config.valuesPerArray >= 1, "need at least one value");
    MHP_REQUIRE(config.minTrip >= 1 && config.minTrip <= config.maxTrip,
                "bad trip-count range");
    MHP_REQUIRE(config.loadsPerLoop >= 1 && config.loadsPerLoop <= 4,
                "loadsPerLoop out of range");

    Rng rng(config.seed);
    ProgramBuilder b;

    // --- Data segment: arrays with frequent-value contents. ---------
    std::vector<uint64_t> data(config.numArrays * config.arrayLen);
    ZipfDistribution valuePick(config.valuesPerArray, config.valueSkew);
    for (unsigned a = 0; a < config.numArrays; ++a) {
        // Each array draws from its own small value set; values are
        // small-integer-biased like real program data.
        std::vector<uint64_t> values(config.valuesPerArray);
        for (auto &v : values) {
            v = rng.nextBool(0.5) ? rng.nextBelow(256)
                                  : (rng.next() >> 16);
        }
        for (uint64_t i = 0; i < config.arrayLen; ++i)
            data[a * config.arrayLen + i] = values[valuePick.sample(rng)];
    }
    b.setData(std::move(data));

    // --- Entry: jump over the functions to main. --------------------
    b.jmp("main");

    // --- Leaf functions. ---------------------------------------------
    for (unsigned f = 0; f < config.numFunctions; ++f) {
        const std::string fn = "func" + std::to_string(f);
        const std::string loop = fn + "_loop";
        const std::string done = fn + "_done";
        b.label(fn);

        const unsigned array = rng.nextBelow(config.numArrays);
        const uint64_t base =
            static_cast<uint64_t>(array) * config.arrayLen;
        const unsigned trip =
            config.minTrip +
            rng.nextBelow(config.maxTrip - config.minTrip + 1);
        const unsigned stride = 1 + rng.nextBelow(7);

        b.loadImm(rScratchA, 0);
        b.loadImm(rLimit, trip);
        b.loadImm(rBase, static_cast<int64_t>(base));
        b.label(loop);

        // Index = (counter * stride + globalCounter) % arrayLen via
        // masking when arrayLen is a power of two, else a cheap mix.
        b.loadImm(rScratchB, stride);
        b.mul(rScratchB, rScratchA, rScratchB);
        b.add(rScratchB, rScratchB, rGlobal);
        // Keep the index inside the array (memory also wraps, but a
        // bounded index makes locality deliberate, not accidental).
        b.loadImm(rScratchD,
                  static_cast<int64_t>(config.arrayLen - 1));
        b.emit({Opcode::And, rScratchB, rScratchB, rScratchD, 0});
        b.add(rScratchB, rScratchB, rBase);

        for (unsigned l = 0; l < config.loadsPerLoop; ++l) {
            const int64_t offset = static_cast<int64_t>(
                rng.nextBelow(config.arrayLen / 2));
            b.load(rScratchC, rScratchB, offset);
            if (l == 0 && rng.nextBool(config.ifProbability)) {
                // Data-dependent if: bias comes from the skewed array
                // contents.
                const std::string skip =
                    fn + "_skip" + std::to_string(f * 8 + l);
                b.loadImm(rScratchD, static_cast<int64_t>(
                                         rng.nextBelow(256)));
                b.blt(rScratchC, rScratchD, skip);
                b.xorReg(rScratchC, rScratchC, rGlobal);
                b.addImm(rScratchC, rScratchC, 3);
                b.label(skip);
            }
        }

        // Occasionally write back, so stores exist in the mix.
        if (rng.nextBool(0.4))
            b.store(rScratchC, rScratchB, 0);

        // Computed 4-way dispatch on the loaded value (a switch):
        // each case is a fixed-size 2-instruction stub, so the target
        // is disp_base + (value & 3) * 2. Indirect jumps emit edge
        // events with up to 4 distinct targets from one pc.
        if (rng.nextBool(config.switchProbability)) {
            const std::string disp = fn + "_disp";
            const std::string join = fn + "_join";
            b.loadImm(rScratchD, 3);
            b.emit({Opcode::And, rScratchE, rScratchC, rScratchD, 0});
            b.add(rScratchE, rScratchE, rScratchE); // *2 (stub size)
            b.loadLabel(rScratchF, disp);
            b.add(rScratchE, rScratchE, rScratchF);
            b.jmpReg(rScratchE);
            b.label(disp);
            for (int c = 0; c < 4; ++c) {
                b.addImm(rScratchC, rScratchC, c + 1);
                b.jmp(join);
            }
            b.label(join);
        }

        b.addImm(rScratchA, rScratchA, 1);
        b.blt(rScratchA, rLimit, loop); // mostly-taken back edge
        b.label(done);
        b.ret();
    }

    // --- Main: cycle through every function forever. ----------------
    b.label("main");
    b.loadImm(rGlobal, 1);
    b.label("main_loop");
    for (unsigned f = 0; f < config.numFunctions; ++f)
        b.call("func" + std::to_string(f));
    b.addImm(rGlobal, rGlobal, 7);
    b.jmp("main_loop");

    b.setEntry("main");
    return b.build();
}

} // namespace mhp
