/**
 * @file
 * Adapters turning the machine's instrumentation hooks into
 * EventSources the profilers can consume.
 *
 * A probe pulls tuples: each next() steps the machine until the
 * instruction stream produces the requested kind of event (a load for
 * value profiling, a conditional branch for edge profiling) or the
 * machine halts.
 */

#ifndef MHP_SIM_PROBES_H
#define MHP_SIM_PROBES_H

#include <cstddef>
#include <optional>
#include <string>

#include "sim/machine.h"
#include "sim/path_profile.h"
#include "trace/source.h"

namespace mhp {

/** EventSource of <loadPC, value> tuples from a running machine. */
class ValueProbe : public EventSource
{
  public:
    /** @param machine The machine to drive (not owned). */
    explicit ValueProbe(Machine &machine);
    ~ValueProbe() override;

    Tuple next() override;
    bool done() const override;
    ProfileKind kind() const override { return ProfileKind::Value; }
    std::string name() const override { return "sim-values"; }

  private:
    Machine &machine;
    std::optional<Tuple> pending;
};

/** EventSource of <branchPC, targetPC> tuples from a running machine. */
class EdgeProbe : public EventSource
{
  public:
    /** @param machine The machine to drive (not owned). */
    explicit EdgeProbe(Machine &machine);
    ~EdgeProbe() override;

    Tuple next() override;
    bool done() const override;
    ProfileKind kind() const override { return ProfileKind::Edge; }
    std::string name() const override { return "sim-edges"; }

  private:
    Machine &machine;
    std::optional<Tuple> pending;
};

/**
 * EventSource of <routineEntryPC, pathId> tuples: Ball–Larus path
 * profiling of a running machine (see sim/path_profile.h for the
 * numbering and the k-iteration composite scheme).
 */
class PathProbe : public EventSource
{
  public:
    /**
     * @param machine The machine to drive (not owned).
     * @param numbering CFG numbering of the machine's program (not
     *        owned; must outlive the probe).
     */
    PathProbe(Machine &machine, const BallLarusNumbering &numbering);
    ~PathProbe() override;

    Tuple next() override;
    bool done() const override;
    ProfileKind kind() const override { return ProfileKind::Path; }
    std::string name() const override { return "sim-paths"; }

    /** Transitions the tracker could not explain (paths dropped). */
    uint64_t brokenPaths() const { return tracker.brokenPaths(); }

  private:
    Machine &machine;
    PathTracker tracker;
    size_t consumed = 0; ///< tuples taken from tracker.emitted()
    bool flushed = false;
};

} // namespace mhp

#endif // MHP_SIM_PROBES_H
