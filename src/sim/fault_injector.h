/**
 * @file
 * Soft-error injection into profiler hardware state.
 *
 * Raw hardware counters can silently mislead (CounterPoint; Röhl et
 * al.): particle strikes and marginal cells flip bits in SRAM. The
 * profiler architectures keep all their state in two structures — the
 * untagged counter tables and the tagged accumulator — so a realistic
 * soft-error model is "flip a uniformly random physical bit of that
 * state at some rate per profiled event". This injector implements
 * exactly that, deterministically from a seed, so fault experiments
 * are reproducible and the mhprof_faults tool can sweep rates and
 * quantify how gracefully each architecture's FP/FN error degrades.
 *
 * Fault arrivals are a Bernoulli process per event, sampled with
 * geometric gaps so advancing over millions of fault-free events
 * costs O(faults), not O(events).
 */

#ifndef MHP_SIM_FAULT_INJECTOR_H
#define MHP_SIM_FAULT_INJECTOR_H

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace mhp {

class AccumulatorTable;
class CounterTable;
class HardwareProfiler;

/** Knobs of the soft-error model. */
struct FaultInjectorConfig
{
    /**
     * Probability that one profiled event is accompanied by one bit
     * flip somewhere in the attached state. Clamped to [0, 1];
     * 0 disables injection entirely.
     */
    double faultsPerEvent = 0.0;

    /** Seed for the fault arrival/location stream. */
    uint64_t seed = 1;
};

/** Flips bits in attached counter/accumulator state at a set rate. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultInjectorConfig &config);

    /** Attach every fault target a profiler exposes. */
    void attach(HardwareProfiler &profiler);

    /** Attach one counter table (entries x counterBits fault sites). */
    void attach(CounterTable &table);

    /** Attach an accumulator (capacity x 64 count-bit fault sites). */
    void attach(AccumulatorTable &table);

    /**
     * Account for `events` profiled events, injecting however many
     * faults the model schedules in that span.
     * @return Faults injected by this call.
     */
    uint64_t advance(uint64_t events);

    /** Faults injected since construction. */
    uint64_t faultsInjected() const { return injected; }

    /** Total attached physical bits a fault can land on. */
    uint64_t targetBits() const;

  private:
    void injectOne();
    uint64_t nextGap();

    double rate;
    Rng rng;
    uint64_t injected = 0;
    uint64_t eventsUntilNext = 0; ///< countdown; 0 = not yet sampled
    std::vector<CounterTable *> counters;
    std::vector<AccumulatorTable *> accumulators;
};

} // namespace mhp

#endif // MHP_SIM_FAULT_INJECTOR_H
