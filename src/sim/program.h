/**
 * @file
 * Programs for the mini-CPU: code, initial data image, and a small
 * builder with label fix-ups.
 */

#ifndef MHP_SIM_PROGRAM_H
#define MHP_SIM_PROGRAM_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/isa.h"

namespace mhp {

/** A complete executable: code plus initial memory contents. */
struct Program
{
    std::vector<Instruction> code;
    std::vector<uint64_t> dataInit; ///< initial memory image (words)
    uint64_t entry = 0;             ///< starting instruction index

    /** Disassemble the whole program (tests and debugging). */
    std::string disassemble() const;
};

/**
 * Incremental program construction with named labels.
 *
 * Branch/jump/call targets may reference labels that are only placed
 * later; build() resolves all fix-ups and verifies nothing dangles.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder() = default;

    /** Append an instruction; returns its index. */
    uint64_t emit(Instruction inst);

    /** Convenience emitters. */
    uint64_t loadImm(unsigned rd, int64_t imm);
    uint64_t add(unsigned rd, unsigned rs1, unsigned rs2);
    uint64_t addImm(unsigned rd, unsigned rs1, int64_t imm);
    uint64_t sub(unsigned rd, unsigned rs1, unsigned rs2);
    uint64_t mul(unsigned rd, unsigned rs1, unsigned rs2);
    uint64_t xorReg(unsigned rd, unsigned rs1, unsigned rs2);
    uint64_t shrImm(unsigned rd, unsigned rs1, int64_t imm);
    uint64_t load(unsigned rd, unsigned rs1, int64_t offset);
    uint64_t store(unsigned rs2, unsigned rs1, int64_t offset);
    uint64_t nop();
    uint64_t halt();

    /** Emit a control-flow instruction targeting a label. */
    uint64_t beq(unsigned rs1, unsigned rs2, const std::string &label);
    uint64_t bne(unsigned rs1, unsigned rs2, const std::string &label);
    uint64_t blt(unsigned rs1, unsigned rs2, const std::string &label);
    uint64_t jmp(const std::string &label);
    /** Indirect jump through a register holding an instruction index. */
    uint64_t jmpReg(unsigned rs1);
    uint64_t call(const std::string &label);
    uint64_t ret();

    /**
     * Emit a LoadImm of a label's address into rd (resolved at
     * build()); used to build jump tables for jmpReg.
     */
    uint64_t loadLabel(unsigned rd, const std::string &label);

    /** Place a label at the next instruction index. */
    void label(const std::string &name);

    /** Set the initial memory image. */
    void setData(std::vector<uint64_t> data);

    /** Set the entry point to a label (default: instruction 0). */
    void setEntry(const std::string &label);

    /** Current next-instruction index. */
    uint64_t here() const { return code.size(); }

    /** Resolve fix-ups and return the program; fatal on dangling labels. */
    Program build();

  private:
    uint64_t emitBranch(Opcode op, unsigned rs1, unsigned rs2,
                        const std::string &label);

    std::vector<Instruction> code;
    std::vector<uint64_t> data;
    std::unordered_map<std::string, uint64_t> labels;
    std::vector<std::pair<uint64_t, std::string>> fixups;
    std::string entryLabel;
};

} // namespace mhp

#endif // MHP_SIM_PROGRAM_H
