/**
 * @file
 * Random structured program generation for the mini-CPU.
 *
 * Generates programs that look like the paper's workloads from the
 * profiler's point of view: functions containing loops whose loads hit
 * arrays with skewed (frequent-value) contents and whose branches have
 * per-site bias. The main routine cycles through the functions forever
 * so a machine can be run for any number of instructions.
 *
 * Everything is a pure function of the config (including the seed), so
 * generated programs are reproducible.
 */

#ifndef MHP_SIM_CODEGEN_H
#define MHP_SIM_CODEGEN_H

#include <cstdint>

#include "sim/program.h"

namespace mhp {

/** Shape parameters of a generated program. */
struct CodegenConfig
{
    uint64_t seed = 42;

    /** Number of generated leaf functions. */
    unsigned numFunctions = 12;

    /** Number of data arrays in the initial image. */
    unsigned numArrays = 8;

    /** Words per data array. */
    uint64_t arrayLen = 1024;

    /**
     * Distinct values a single array's cells are drawn from; small
     * numbers give strong value locality (Zhang et al. observe ~10
     * values dominating 50% of accesses).
     */
    unsigned valuesPerArray = 12;

    /** Zipf skew of the per-array value distribution. */
    double valueSkew = 1.2;

    /** Loop trip counts are drawn from [minTrip, maxTrip]. */
    unsigned minTrip = 4;
    unsigned maxTrip = 48;

    /** Loads emitted per loop body, [1, 4]. */
    unsigned loadsPerLoop = 2;

    /** Probability a loop body includes a data-dependent if. */
    double ifProbability = 0.6;

    /**
     * Probability a function ends its loop body with a 4-way computed
     * dispatch (switch on the loaded value via an indirect jump) —
     * the source of multi-target edge-profiling tuples.
     */
    double switchProbability = 0.3;
};

/** Generate a program from the config. */
Program generateProgram(const CodegenConfig &config);

} // namespace mhp

#endif // MHP_SIM_CODEGEN_H
