#include "sim/probes.h"

#include "support/panic.h"

namespace mhp {

ValueProbe::ValueProbe(Machine &machine_) : machine(machine_)
{
    machine.setLoadHook([this](uint64_t pc, uint64_t value) {
        pending = Tuple{pc, value};
    });
}

ValueProbe::~ValueProbe()
{
    machine.setLoadHook(nullptr);
}

bool
ValueProbe::done() const
{
    // Look ahead: run the machine until it either produces a load or
    // halts. The hook writes into `pending`, which next() consumes.
    auto *self = const_cast<ValueProbe *>(this);
    while (!self->pending.has_value()) {
        if (!self->machine.step())
            return true;
    }
    return false;
}

Tuple
ValueProbe::next()
{
    const bool dry = done(); // fills `pending` if possible
    MHP_ASSERT(!dry, "next() on a halted machine");
    const Tuple t = *pending;
    pending.reset();
    return t;
}

EdgeProbe::EdgeProbe(Machine &machine_) : machine(machine_)
{
    machine.setEdgeHook([this](uint64_t pc, uint64_t target) {
        pending = Tuple{pc, target};
    });
}

EdgeProbe::~EdgeProbe()
{
    machine.setEdgeHook(nullptr);
}

bool
EdgeProbe::done() const
{
    auto *self = const_cast<EdgeProbe *>(this);
    while (!self->pending.has_value()) {
        if (!self->machine.step())
            return true;
    }
    return false;
}

Tuple
EdgeProbe::next()
{
    const bool dry = done();
    MHP_ASSERT(!dry, "next() on a halted machine");
    const Tuple t = *pending;
    pending.reset();
    return t;
}

PathProbe::PathProbe(Machine &machine_,
                     const BallLarusNumbering &numbering)
    : machine(machine_), tracker(numbering)
{
    machine.setStepHook(
        [this](uint64_t index) { tracker.onStep(index); });
}

PathProbe::~PathProbe()
{
    machine.setStepHook(nullptr);
}

bool
PathProbe::done() const
{
    auto *self = const_cast<PathProbe *>(this);
    while (self->consumed == self->tracker.emitted().size()) {
        // Completed tuples accumulate in the tracker; recycle the
        // buffer whenever it is fully drained so a long run stays at
        // O(1) memory.
        self->tracker.emitted().clear();
        self->consumed = 0;
        if (!self->machine.step()) {
            // Halted: the in-flight path (ending at the Halt block)
            // still needs to flush, exactly once.
            if (!self->flushed) {
                self->flushed = true;
                self->tracker.finish();
                continue;
            }
            return self->consumed == self->tracker.emitted().size();
        }
    }
    return false;
}

Tuple
PathProbe::next()
{
    const bool dry = done();
    MHP_ASSERT(!dry, "next() on a halted machine");
    return tracker.emitted()[consumed++];
}

} // namespace mhp
