/**
 * @file
 * Ball–Larus path profiling for mini-CPU programs.
 *
 * ATOM-style instrumentation over the program's CFG: basic blocks are
 * recovered from the code, each routine's acyclic paths are numbered
 * with the Ball–Larus scheme (every acyclic path from a start block
 * to a path terminator gets a unique id in [0, numPaths)), and a
 * runtime tracker folds the machine's instruction stream into
 * <routineEntryPC, pathId> tuples that flow through the profilers
 * like any other event class.
 *
 * Two extensions over the textbook algorithm:
 *
 *  - Multi-iteration paths (D'Elia–Demetrescu, "Ball-Larus Path
 *    Profiling Across Multiple Loop Iterations"): with kIterations
 *    k > 1, the emitted id is a composite folding the last up-to-k
 *    acyclic ids of the current routine activation
 *    (c = ((id0 * N) + id1) * N + ... with N = numPaths), so
 *    consecutive loop iterations are distinguished. Each routine
 *    clamps k to the largest power that keeps the composite below
 *    kMaxCompositeId; the plain acyclic id is always composite % N.
 *
 *  - Interprocedural execution: paths are intraprocedural (a call
 *    does not break the caller's path — the tracker suspends the
 *    caller on a shadow stack and resumes it across the matching
 *    Ret), while indirect jumps and cross-routine jumps terminate
 *    the current path and restart tracking at the landing block if
 *    it is a legal path start. Transitions the static CFG cannot
 *    explain drop the in-flight path and are counted in
 *    brokenPaths() instead of emitting a bogus id.
 *
 * The numbering is a pure function of the Program (and k), so a
 * profile recorded on one machine can be decoded on another — the
 * decoder reconstructs the block sequence (and the taken branch
 * edges) of any emitted id, which is what the opt/ layer consumes.
 */

#ifndef MHP_SIM_PATH_PROFILE_H
#define MHP_SIM_PATH_PROFILE_H

#include <cstdint>
#include <vector>

#include "sim/machine.h"
#include "sim/program.h"
#include "trace/tuple.h"

namespace mhp {

/** Routines whose acyclic-path count exceeds this are not tracked. */
constexpr uint64_t kMaxPathsPerRoutine = 1ULL << 48;

/** Composite (k-iteration) ids stay below this bound. */
constexpr uint64_t kMaxCompositeId = 1ULL << 40;

/** Static Ball–Larus numbering of one program's CFG. */
class BallLarusNumbering
{
  public:
    /** Sentinel successor: the path terminates after this block. */
    static constexpr uint32_t kExit = UINT32_MAX;

    struct Block
    {
        uint64_t first = 0; ///< index of the leader instruction
        uint64_t last = 0;  ///< index of the final instruction
        uint32_t routine = 0;
        bool isStart = false; ///< a path may begin here
        bool isEnd = false;   ///< has a dummy edge to EXIT
        /** Id offset of paths beginning at this start block. */
        uint64_t startOffset = 0;
        /** Ball–Larus increment of the dummy edge to EXIT. */
        uint64_t exitVal = 0;
        /** DAG successors (block id, edge increment), EXIT excluded. */
        std::vector<std::pair<uint32_t, uint64_t>> succ;
        /** Loop back-edge targets (removed from the DAG). */
        std::vector<uint32_t> retreatSucc;
        /** Opcode of the final instruction (drives runtime tracking). */
        Opcode termOp = Opcode::Nop;
    };

    struct Routine
    {
        uint64_t entry = 0; ///< instruction index of the routine entry
        uint32_t firstBlock = 0;
        uint32_t lastBlock = 0; ///< inclusive
        uint64_t numPaths = 0;  ///< acyclic paths across all starts
        unsigned effectiveK = 1;
        /** numPaths^effectiveK — the composite-id span. */
        uint64_t compositeSpan = 1;
        /** Too many paths to track (numPaths saturated). */
        bool overflowed = false;
    };

    /**
     * Analyze a program.
     * @param kIterations Requested iteration depth k >= 1; each
     *        routine clamps it so numPaths^k <= kMaxCompositeId.
     */
    explicit BallLarusNumbering(const Program &program,
                                unsigned kIterations = 1);

    const std::vector<Block> &blocks() const { return blockList; }
    const std::vector<Routine> &routines() const { return routineList; }

    /** Block containing an instruction index. */
    uint32_t blockAt(uint64_t instrIndex) const
    {
        return blockOf[instrIndex];
    }

    /** The PC stamped into tuples for a routine (its entry address). */
    uint64_t routinePc(uint32_t routine) const
    {
        return Machine::pcAddress(routineList[routine].entry);
    }

    /** Routine whose entry PC is `pc`, or -1 if no routine starts there. */
    int routineByPc(uint64_t pc) const;

    /** Total acyclic paths of the routine (0 if overflowed). */
    uint64_t numPaths(uint32_t routine) const
    {
        return routineList[routine].overflowed
                   ? 0
                   : routineList[routine].numPaths;
    }

    /**
     * Reconstruct the block sequence of an acyclic path id (NOT a
     * composite; pass composite % numPaths). Empty if the id is out
     * of range or the routine overflowed.
     */
    std::vector<uint32_t> decodePath(uint32_t routine,
                                     uint64_t pathId) const;

    /**
     * The <branchPC, targetPC> edge tuples a path's conditional
     * branches and taken control transfers would produce — the bridge
     * from path profiles back to the edge-profile consumers in opt/.
     */
    std::vector<Tuple> decodePathEdges(uint32_t routine,
                                       uint64_t pathId) const;

    /** Instructions executed along a decoded path. */
    uint64_t pathInstructions(uint32_t routine, uint64_t pathId) const;

  private:
    friend class PathTracker;

    void findLeaders(const Program &program,
                     std::vector<uint8_t> &leader) const;
    void buildBlocks(const Program &program,
                     const std::vector<uint8_t> &leader);
    void buildEdges(const Program &program);
    void removeBackEdges();
    void numberPaths(unsigned kIterations);

    std::vector<Block> blockList;
    std::vector<Routine> routineList;
    std::vector<uint32_t> blockOf; ///< instruction index -> block id
    std::vector<uint64_t> routineEntries;
};

/**
 * Runtime path accumulator: feed it every executed instruction index
 * (Machine::StepHook) and it emits completed path tuples.
 */
class PathTracker
{
  public:
    explicit PathTracker(const BallLarusNumbering &numbering);

    /** Observe the next executed instruction index. */
    void onStep(uint64_t instrIndex);

    /** Flush the in-flight path after the machine halted. */
    void finish();

    /** Completed paths, oldest first; consumed by the caller. */
    std::vector<Tuple> &emitted() { return out; }

    uint64_t pathsEmitted() const { return emittedCount; }

    /** Transitions the static CFG could not explain (paths dropped). */
    uint64_t brokenPaths() const { return broken; }

  private:
    struct Frame
    {
        uint32_t routine;
        uint32_t callBlock;
        uint64_t reg;
        uint64_t pathStart;
        std::vector<uint64_t> window;
    };

    void emitPath(uint64_t endExitVal);
    void beginAt(uint32_t block);
    void goUntracked();

    const BallLarusNumbering &num;
    bool tracking = false;
    bool finished = false;
    uint32_t curRoutine = 0;
    uint32_t curBlock = 0;
    uint64_t reg = 0;
    uint64_t pathStart = 0; ///< startOffset of the in-flight path
    uint64_t prevIndex = 0;
    bool havePrev = false;
    /** Last <= effectiveK acyclic ids of the current activation. */
    std::vector<uint64_t> window;
    std::vector<Frame> stack;
    std::vector<Tuple> out;
    uint64_t emittedCount = 0;
    uint64_t broken = 0;
};

} // namespace mhp

#endif // MHP_SIM_PATH_PROFILE_H
