#include "sim/machine.h"

#include <algorithm>

#include "support/panic.h"

namespace mhp {

Machine::Machine(Program program_, uint64_t memoryWords_)
    : program(std::move(program_)), memoryWords(memoryWords_)
{
    MHP_REQUIRE(!program.code.empty(), "empty program");
    MHP_REQUIRE(program.dataInit.size() <= memoryWords,
                "data image exceeds memory");
    MHP_REQUIRE(program.entry < program.code.size(),
                "entry point out of range");
    reset();
}

void
Machine::reset()
{
    regs.fill(0);
    memory.assign(memoryWords, 0);
    std::copy(program.dataInit.begin(), program.dataInit.end(),
              memory.begin());
    pcIndex = program.entry;
    executed = 0;
    isHalted = false;
}

void
Machine::setReg(unsigned r, uint64_t v)
{
    MHP_ASSERT(r < kNumRegs, "register out of range");
    if (r != 0)
        regs[r] = v;
}

uint64_t
Machine::memIndex(uint64_t addr) const
{
    // Wrap rather than fault: generated programs may compute indices
    // modulo a table size, and a hardware profiler must tolerate any
    // address stream anyway.
    return addr % memory.size();
}

uint64_t
Machine::memWord(uint64_t addr) const
{
    return memory[memIndex(addr)];
}

void
Machine::setMemWord(uint64_t addr, uint64_t v)
{
    memory[memIndex(addr)] = v;
}

bool
Machine::step()
{
    if (isHalted)
        return false;
    MHP_ASSERT(pcIndex < program.code.size(), "pc out of range");

    if (onStep)
        onStep(pcIndex);

    const Instruction &inst = program.code[pcIndex];
    const uint64_t cur = pcIndex;
    uint64_t next = pcIndex + 1;
    const uint64_t a = regs[inst.rs1];
    const uint64_t b = regs[inst.rs2];

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        isHalted = true;
        ++executed;
        return false;
      case Opcode::LoadImm:
        setReg(inst.rd, static_cast<uint64_t>(inst.imm));
        break;
      case Opcode::Add:
        setReg(inst.rd, a + b);
        break;
      case Opcode::AddImm:
        setReg(inst.rd, a + static_cast<uint64_t>(inst.imm));
        break;
      case Opcode::Sub:
        setReg(inst.rd, a - b);
        break;
      case Opcode::Mul:
        setReg(inst.rd, a * b);
        break;
      case Opcode::And:
        setReg(inst.rd, a & b);
        break;
      case Opcode::Or:
        setReg(inst.rd, a | b);
        break;
      case Opcode::Xor:
        setReg(inst.rd, a ^ b);
        break;
      case Opcode::ShrImm:
        setReg(inst.rd, a >> (inst.imm & 63));
        break;
      case Opcode::Load: {
        const uint64_t addr = a + static_cast<uint64_t>(inst.imm);
        const uint64_t value = memWord(addr);
        setReg(inst.rd, value);
        if (onLoad)
            onLoad(pcAddress(cur), value);
        if (onMem)
            onMem(pcAddress(cur), memIndex(addr) * 8, false);
        break;
      }
      case Opcode::Store: {
        const uint64_t addr = a + static_cast<uint64_t>(inst.imm);
        setMemWord(addr, b);
        if (onMem)
            onMem(pcAddress(cur), memIndex(addr) * 8, true);
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt: {
        bool taken = false;
        if (inst.op == Opcode::Beq)
            taken = a == b;
        else if (inst.op == Opcode::Bne)
            taken = a != b;
        else
            taken = static_cast<int64_t>(a) < static_cast<int64_t>(b);
        if (taken)
            next = static_cast<uint64_t>(inst.imm);
        if (onEdge)
            onEdge(pcAddress(cur), pcAddress(next));
        break;
      }
      case Opcode::Jmp:
        next = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::JmpReg:
        // Indirect jump (switch dispatch, virtual call): the actual
        // target is data-dependent, so it IS an edge-profiling event.
        next = a;
        if (onEdge)
            onEdge(pcAddress(cur), pcAddress(next));
        break;
      case Opcode::Call:
        setReg(kLinkReg, pcIndex + 1);
        next = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Ret:
        next = regs[kLinkReg];
        break;
    }

    MHP_ASSERT(next < program.code.size(), "control transfer out of range");
    pcIndex = next;
    ++executed;
    return true;
}

uint64_t
Machine::run(uint64_t maxSteps)
{
    const uint64_t before = executed;
    for (uint64_t i = 0; i < maxSteps; ++i) {
        if (!step())
            break; // the Halt itself still counted via `executed`
    }
    return executed - before;
}

} // namespace mhp
