/**
 * @file
 * The toy RISC ISA executed by the mini-CPU simulator.
 *
 * The simulator plays the role ATOM + an Alpha played for the paper:
 * a real instruction stream whose loads and branches are instrumented
 * into profiling tuples. The ISA is deliberately small — enough to
 * express loops, calls, loads with value locality, and biased
 * branches — because the profiler only ever sees the event stream.
 *
 * Conventions:
 *  - 32 general-purpose 64-bit registers; r0 reads as zero.
 *  - r31 is the link register written by CALL.
 *  - Memory is a flat array of 64-bit words addressed by word index.
 *  - Branch/jump targets are absolute instruction indices.
 */

#ifndef MHP_SIM_ISA_H
#define MHP_SIM_ISA_H

#include <cstdint>
#include <string>

namespace mhp {

/** Number of architectural registers. */
constexpr unsigned kNumRegs = 32;

/** The link register used by CALL/RET. */
constexpr unsigned kLinkReg = 31;

/** Operation codes of the toy ISA. */
enum class Opcode : uint8_t
{
    Nop,
    Halt,
    LoadImm, ///< rd = imm
    Add,     ///< rd = rs1 + rs2
    AddImm,  ///< rd = rs1 + imm
    Sub,     ///< rd = rs1 - rs2
    Mul,     ///< rd = rs1 * rs2
    And,     ///< rd = rs1 & rs2
    Or,      ///< rd = rs1 | rs2
    Xor,     ///< rd = rs1 ^ rs2
    ShrImm,  ///< rd = rs1 >> imm
    Load,    ///< rd = mem[rs1 + imm]        (emits a load-value event)
    Store,   ///< mem[rs1 + imm] = rs2
    Beq,     ///< if (rs1 == rs2) pc = imm   (emits an edge event)
    Bne,     ///< if (rs1 != rs2) pc = imm   (emits an edge event)
    Blt,     ///< if (rs1 <  rs2) pc = imm   (emits an edge event)
    Jmp,     ///< pc = imm
    JmpReg,  ///< pc = rs1 (indirect; emits an edge event)
    Call,    ///< r31 = pc + 1; pc = imm
    Ret,     ///< pc = r31
};

/** Printable mnemonic. */
const char *opcodeName(Opcode op);

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;

    /** Disassemble for debugging. */
    std::string toString() const;
};

/** True for the three conditional-branch opcodes. */
constexpr bool
isConditionalBranch(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Blt;
}

/** True for opcodes that report an edge event (profiled transfers). */
constexpr bool
emitsEdgeEvent(Opcode op)
{
    return isConditionalBranch(op) || op == Opcode::JmpReg;
}

} // namespace mhp

#endif // MHP_SIM_ISA_H
