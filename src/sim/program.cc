#include "sim/program.h"

#include <cstdio>

#include "support/panic.h"

namespace mhp {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::LoadImm: return "li";
      case Opcode::Add: return "add";
      case Opcode::AddImm: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::ShrImm: return "shri";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Jmp: return "jmp";
      case Opcode::JmpReg: return "jmpr";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%-5s rd=%u rs1=%u rs2=%u imm=%lld",
                  opcodeName(op), rd, rs1, rs2,
                  static_cast<long long>(imm));
    return buf;
}

std::string
Program::disassemble() const
{
    std::string out;
    char line[128];
    for (size_t i = 0; i < code.size(); ++i) {
        std::snprintf(line, sizeof(line), "%5zu: %s\n", i,
                      code[i].toString().c_str());
        out += line;
    }
    return out;
}

uint64_t
ProgramBuilder::emit(Instruction inst)
{
    code.push_back(inst);
    return code.size() - 1;
}

uint64_t
ProgramBuilder::loadImm(unsigned rd, int64_t imm)
{
    return emit({Opcode::LoadImm, static_cast<uint8_t>(rd), 0, 0, imm});
}

uint64_t
ProgramBuilder::add(unsigned rd, unsigned rs1, unsigned rs2)
{
    return emit({Opcode::Add, static_cast<uint8_t>(rd),
                 static_cast<uint8_t>(rs1), static_cast<uint8_t>(rs2), 0});
}

uint64_t
ProgramBuilder::addImm(unsigned rd, unsigned rs1, int64_t imm)
{
    return emit({Opcode::AddImm, static_cast<uint8_t>(rd),
                 static_cast<uint8_t>(rs1), 0, imm});
}

uint64_t
ProgramBuilder::sub(unsigned rd, unsigned rs1, unsigned rs2)
{
    return emit({Opcode::Sub, static_cast<uint8_t>(rd),
                 static_cast<uint8_t>(rs1), static_cast<uint8_t>(rs2), 0});
}

uint64_t
ProgramBuilder::mul(unsigned rd, unsigned rs1, unsigned rs2)
{
    return emit({Opcode::Mul, static_cast<uint8_t>(rd),
                 static_cast<uint8_t>(rs1), static_cast<uint8_t>(rs2), 0});
}

uint64_t
ProgramBuilder::xorReg(unsigned rd, unsigned rs1, unsigned rs2)
{
    return emit({Opcode::Xor, static_cast<uint8_t>(rd),
                 static_cast<uint8_t>(rs1), static_cast<uint8_t>(rs2), 0});
}

uint64_t
ProgramBuilder::shrImm(unsigned rd, unsigned rs1, int64_t imm)
{
    return emit({Opcode::ShrImm, static_cast<uint8_t>(rd),
                 static_cast<uint8_t>(rs1), 0, imm});
}

uint64_t
ProgramBuilder::load(unsigned rd, unsigned rs1, int64_t offset)
{
    return emit({Opcode::Load, static_cast<uint8_t>(rd),
                 static_cast<uint8_t>(rs1), 0, offset});
}

uint64_t
ProgramBuilder::store(unsigned rs2, unsigned rs1, int64_t offset)
{
    return emit({Opcode::Store, 0, static_cast<uint8_t>(rs1),
                 static_cast<uint8_t>(rs2), offset});
}

uint64_t
ProgramBuilder::nop()
{
    return emit({Opcode::Nop, 0, 0, 0, 0});
}

uint64_t
ProgramBuilder::halt()
{
    return emit({Opcode::Halt, 0, 0, 0, 0});
}

uint64_t
ProgramBuilder::emitBranch(Opcode op, unsigned rs1, unsigned rs2,
                           const std::string &label)
{
    const uint64_t idx = emit({op, 0, static_cast<uint8_t>(rs1),
                               static_cast<uint8_t>(rs2), 0});
    fixups.emplace_back(idx, label);
    return idx;
}

uint64_t
ProgramBuilder::beq(unsigned rs1, unsigned rs2, const std::string &label)
{
    return emitBranch(Opcode::Beq, rs1, rs2, label);
}

uint64_t
ProgramBuilder::bne(unsigned rs1, unsigned rs2, const std::string &label)
{
    return emitBranch(Opcode::Bne, rs1, rs2, label);
}

uint64_t
ProgramBuilder::blt(unsigned rs1, unsigned rs2, const std::string &label)
{
    return emitBranch(Opcode::Blt, rs1, rs2, label);
}

uint64_t
ProgramBuilder::jmp(const std::string &label)
{
    return emitBranch(Opcode::Jmp, 0, 0, label);
}

uint64_t
ProgramBuilder::call(const std::string &label)
{
    return emitBranch(Opcode::Call, 0, 0, label);
}

uint64_t
ProgramBuilder::jmpReg(unsigned rs1)
{
    return emit({Opcode::JmpReg, 0, static_cast<uint8_t>(rs1), 0, 0});
}

uint64_t
ProgramBuilder::loadLabel(unsigned rd, const std::string &label)
{
    const uint64_t idx =
        emit({Opcode::LoadImm, static_cast<uint8_t>(rd), 0, 0, 0});
    fixups.emplace_back(idx, label);
    return idx;
}

uint64_t
ProgramBuilder::ret()
{
    return emit({Opcode::Ret, 0, 0, 0, 0});
}

void
ProgramBuilder::label(const std::string &name)
{
    MHP_REQUIRE(labels.find(name) == labels.end(), "duplicate label");
    labels.emplace(name, code.size());
}

void
ProgramBuilder::setData(std::vector<uint64_t> data_)
{
    data = std::move(data_);
}

void
ProgramBuilder::setEntry(const std::string &label_)
{
    entryLabel = label_;
}

Program
ProgramBuilder::build()
{
    for (const auto &[idx, name] : fixups) {
        const auto it = labels.find(name);
        MHP_REQUIRE(it != labels.end(), "dangling label reference");
        code[idx].imm = static_cast<int64_t>(it->second);
    }
    Program p;
    p.code = std::move(code);
    p.dataInit = std::move(data);
    if (!entryLabel.empty()) {
        const auto it = labels.find(entryLabel);
        MHP_REQUIRE(it != labels.end(), "unknown entry label");
        p.entry = it->second;
    }
    MHP_REQUIRE(!p.code.empty(), "empty program");
    return p;
}

} // namespace mhp
