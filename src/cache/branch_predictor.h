/**
 * @file
 * Branch predictors: bimodal (2-bit counters) and gshare.
 *
 * Substrate for the paper's Section 2 motivation "Multiple Path
 * Execution": selecting branches for multipath requires knowing which
 * branches actually mispredict. The predictors consume the mini-CPU's
 * edge hook (branch pc + taken/not-taken) and expose misprediction
 * statistics; MispredictProbe in miss_probe.h turns mispredictions
 * into profiling tuples.
 */

#ifndef MHP_CACHE_BRANCH_PREDICTOR_H
#define MHP_CACHE_BRANCH_PREDICTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace mhp {

/** Prediction statistics. */
struct PredictorStats
{
    uint64_t predictions = 0;
    uint64_t mispredictions = 0;

    double
    mispredictRate() const
    {
        return predictions == 0
                   ? 0.0
                   : static_cast<double>(mispredictions) /
                         static_cast<double>(predictions);
    }
};

/** Abstract taken/not-taken predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict, then update with the actual outcome.
     * @return true if the prediction was correct.
     */
    virtual bool predictAndUpdate(uint64_t pc, bool taken) = 0;

    virtual std::string name() const = 0;

    const PredictorStats &stats() const { return statistics; }
    void resetStats() { statistics = PredictorStats{}; }

  protected:
    PredictorStats statistics;
};

/** Classic bimodal predictor: a table of 2-bit saturating counters. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param entries Counter-table entries (power of two). */
    explicit BimodalPredictor(uint64_t entries = 4096);

    bool predictAndUpdate(uint64_t pc, bool taken) override;
    std::string name() const override { return "bimodal"; }

  private:
    std::vector<uint8_t> counters; // 0..3, >=2 predicts taken
    uint64_t mask;
};

/** gshare: global history xor pc indexes the counter table. */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param entries Counter-table entries (power of two).
     * @param historyBits Global-history length.
     */
    explicit GsharePredictor(uint64_t entries = 4096,
                             unsigned historyBits = 12);

    bool predictAndUpdate(uint64_t pc, bool taken) override;
    std::string name() const override { return "gshare"; }

  private:
    std::vector<uint8_t> counters;
    uint64_t mask;
    uint64_t history = 0;
    uint64_t historyMask;
};

} // namespace mhp

#endif // MHP_CACHE_BRANCH_PREDICTOR_H
