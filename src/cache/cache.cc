#include "cache/cache.h"

#include "support/bit_util.h"
#include "support/panic.h"

namespace mhp {

Cache::Cache(const CacheConfig &config_) : config(config_)
{
    MHP_REQUIRE(isPowerOfTwo(config.lineBytes),
                "line size must be a power of two");
    MHP_REQUIRE(config.ways >= 1, "cache needs at least one way");
    MHP_REQUIRE(config.sizeBytes >= config.lineBytes * config.ways,
                "cache smaller than one set");
    sets = config.sizeBytes / (config.lineBytes * config.ways);
    MHP_REQUIRE(sets >= 1 && isPowerOfTwo(sets),
                "set count must be a power of two");
    lineMask = config.lineBytes - 1;
    lineShift = floorLog2(config.lineBytes);
    waysStorage.resize(sets * config.ways);
}

uint64_t
Cache::setIndex(uint64_t address) const
{
    return (address >> lineShift) & (sets - 1);
}

uint64_t
Cache::tagOf(uint64_t address) const
{
    return address >> lineShift;
}

Cache::Way *
Cache::findWay(uint64_t address)
{
    const uint64_t set = setIndex(address);
    const uint64_t tag = tagOf(address);
    Way *base = &waysStorage[set * config.ways];
    for (unsigned w = 0; w < config.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Way *
Cache::findWay(uint64_t address) const
{
    return const_cast<Cache *>(this)->findWay(address);
}

Cache::Way &
Cache::victimWay(uint64_t address)
{
    const uint64_t set = setIndex(address);
    Way *base = &waysStorage[set * config.ways];
    Way *victim = &base[0];
    for (unsigned w = 0; w < config.ways; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    return *victim;
}

bool
Cache::access(uint64_t address)
{
    ++clock;
    ++statistics.accesses;
    if (Way *way = findWay(address)) {
        way->lastUse = clock;
        if (way->prefetched) {
            ++statistics.prefetchHits;
            way->prefetched = false; // count the first demand hit only
        }
        return true;
    }
    ++statistics.misses;
    Way &victim = victimWay(address);
    if (victim.valid)
        ++statistics.evictions;
    victim = Way{tagOf(address), clock, true, false};
    return false;
}

void
Cache::prefetch(uint64_t address)
{
    ++clock;
    ++statistics.prefetches;
    if (Way *way = findWay(address)) {
        way->lastUse = clock;
        return;
    }
    Way &victim = victimWay(address);
    if (victim.valid)
        ++statistics.evictions;
    victim = Way{tagOf(address), clock, true, true};
}

bool
Cache::contains(uint64_t address) const
{
    return findWay(address) != nullptr;
}

void
Cache::reset()
{
    for (auto &way : waysStorage)
        way = Way{};
    clock = 0;
    statistics = CacheStats{};
}

} // namespace mhp
