#include "cache/miss_probe.h"

#include "support/panic.h"

namespace mhp {

CacheMissProbe::CacheMissProbe(Machine &machine_, Cache &cache_,
                               bool includeStores_, MissNaming naming_)
    : machine(machine_), cache(cache_), includeStores(includeStores_),
      naming(naming_)
{
    machine.setMemHook([this](uint64_t pc, uint64_t addr, bool store) {
        if (store && !this->includeStores)
            return;
        const bool hit = this->cache.access(addr);
        if (!hit && !store) {
            pending = naming == MissNaming::PcOnly
                          ? Tuple{pc, 0}
                          : Tuple{pc, this->cache.lineOf(addr)};
        }
    });
}

CacheMissProbe::~CacheMissProbe()
{
    machine.setMemHook(nullptr);
}

bool
CacheMissProbe::done() const
{
    auto *self = const_cast<CacheMissProbe *>(this);
    while (!self->pending.has_value()) {
        if (!self->machine.step())
            return true;
    }
    return false;
}

Tuple
CacheMissProbe::next()
{
    const bool dry = done();
    MHP_ASSERT(!dry, "next() on a halted machine");
    const Tuple t = *pending;
    pending.reset();
    return t;
}

MispredictProbe::MispredictProbe(Machine &machine_,
                                 BranchPredictor &predictor_)
    : machine(machine_), predictor(predictor_)
{
    machine.setEdgeHook([this](uint64_t pc, uint64_t target) {
        // Fall-through target is pc + 4; anything else was taken.
        const bool taken = target != pc + 4;
        if (!this->predictor.predictAndUpdate(pc, taken))
            pending = Tuple{pc, target};
    });
}

MispredictProbe::~MispredictProbe()
{
    machine.setEdgeHook(nullptr);
}

bool
MispredictProbe::done() const
{
    auto *self = const_cast<MispredictProbe *>(this);
    while (!self->pending.has_value()) {
        if (!self->machine.step())
            return true;
    }
    return false;
}

Tuple
MispredictProbe::next()
{
    const bool dry = done();
    MHP_ASSERT(!dry, "next() on a halted machine");
    const Tuple t = *pending;
    pending.reset();
    return t;
}

} // namespace mhp
