#include "cache/branch_predictor.h"

#include "support/bit_util.h"
#include "support/panic.h"

namespace mhp {

namespace {

/** Advance a 2-bit saturating counter toward the outcome. */
inline void
train(uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

} // namespace

BimodalPredictor::BimodalPredictor(uint64_t entries)
{
    MHP_REQUIRE(isPowerOfTwo(entries), "entries must be a power of two");
    counters.assign(entries, 1); // weakly not-taken
    mask = entries - 1;
}

bool
BimodalPredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    uint8_t &counter = counters[(pc >> 2) & mask];
    const bool predicted = counter >= 2;
    train(counter, taken);
    ++statistics.predictions;
    const bool correct = predicted == taken;
    if (!correct)
        ++statistics.mispredictions;
    return correct;
}

GsharePredictor::GsharePredictor(uint64_t entries, unsigned historyBits)
{
    MHP_REQUIRE(isPowerOfTwo(entries), "entries must be a power of two");
    MHP_REQUIRE(historyBits >= 1 && historyBits <= 32,
                "history length out of range");
    counters.assign(entries, 1);
    mask = entries - 1;
    historyMask = (1ULL << historyBits) - 1;
}

bool
GsharePredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    const uint64_t index = ((pc >> 2) ^ history) & mask;
    uint8_t &counter = counters[index];
    const bool predicted = counter >= 2;
    train(counter, taken);
    history = ((history << 1) | (taken ? 1 : 0)) & historyMask;
    ++statistics.predictions;
    const bool correct = predicted == taken;
    if (!correct)
        ++statistics.mispredictions;
    return correct;
}

} // namespace mhp
