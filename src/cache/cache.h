/**
 * @file
 * A set-associative data-cache model with LRU replacement.
 *
 * Substrate for the paper's Section 2 motivation "Cache Replacement
 * and Prefetching": profiling which loads miss (delinquent loads) and
 * what they miss on is only meaningful with a cache in the loop. The
 * model is a timing-free hit/miss simulator — exactly what a profiler
 * of <loadPC, missedLine> tuples needs.
 */

#ifndef MHP_CACHE_CACHE_H
#define MHP_CACHE_CACHE_H

#include <cstdint>
#include <vector>

namespace mhp {

/** Geometry and identity of a cache instance. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    uint64_t sizeBytes = 16 * 1024;

    /** Line size in bytes (power of two). */
    uint64_t lineBytes = 64;

    /** Associativity (ways per set). */
    unsigned ways = 4;
};

/** Hit/miss statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t prefetches = 0;
    uint64_t prefetchHits = 0; ///< demand hits on prefetched lines

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** LRU set-associative cache (byte-addressed). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Demand access to a byte address.
     * @return true on hit; on a miss the line is filled (LRU evict).
     */
    bool access(uint64_t address);

    /**
     * Install a line without a demand access (a prefetch). No effect
     * beyond an LRU refresh if already present.
     */
    void prefetch(uint64_t address);

    /** True if the line holding the address is resident. */
    bool contains(uint64_t address) const;

    /** Align an address down to its line base. */
    uint64_t lineOf(uint64_t address) const { return address & ~lineMask; }

    const CacheStats &stats() const { return statistics; }
    const CacheConfig &configuration() const { return config; }
    uint64_t numSets() const { return sets; }

    /** Drop all contents and statistics. */
    void reset();

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool prefetched = false;
    };

    Way *findWay(uint64_t address);
    const Way *findWay(uint64_t address) const;
    Way &victimWay(uint64_t address);
    uint64_t setIndex(uint64_t address) const;
    uint64_t tagOf(uint64_t address) const;

    CacheConfig config;
    uint64_t sets;
    uint64_t lineMask;
    unsigned lineShift;
    std::vector<Way> waysStorage; // sets * ways, row-major
    uint64_t clock = 0;
    CacheStats statistics;
};

} // namespace mhp

#endif // MHP_CACHE_CACHE_H
