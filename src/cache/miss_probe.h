/**
 * @file
 * Probes turning microarchitectural events into profiling tuples.
 *
 * CacheMissProbe drives a Machine through a Cache and emits
 * <loadPC, missedLineAddress> tuples for every demand miss — the
 * "delinquent load" events the paper's Section 2 prefetching
 * motivation wants profiled.
 *
 * MispredictProbe drives the Machine's conditional branches through a
 * BranchPredictor and emits <branchPC, actualTargetPC> tuples on every
 * misprediction — the "problematic branch" events of the multiple-path
 * execution motivation.
 */

#ifndef MHP_CACHE_MISS_PROBE_H
#define MHP_CACHE_MISS_PROBE_H

#include <optional>
#include <string>

#include "cache/branch_predictor.h"
#include "cache/cache.h"
#include "sim/machine.h"
#include "trace/source.h"

namespace mhp {

/** How a cache miss is named as a tuple. */
enum class MissNaming
{
    /** <loadPC, missedLineAddress>: which data a load misses on. */
    PcAndLine,
    /** <loadPC, 0>: delinquent-load detection — the PC alone is the
     *  event, so every miss of a load adds to one counter. */
    PcOnly,
};

/** EventSource of cache-miss tuples from a running machine. */
class CacheMissProbe : public EventSource
{
  public:
    /**
     * @param machine The machine to drive (not owned).
     * @param cache The cache every load/store goes through (not owned).
     * @param includeStores Also run stores through the cache (their
     *        misses are not emitted; they just warm/pollute the cache).
     * @param naming Tuple naming scheme (see MissNaming).
     */
    CacheMissProbe(Machine &machine, Cache &cache,
                   bool includeStores = true,
                   MissNaming naming = MissNaming::PcAndLine);
    ~CacheMissProbe() override;

    Tuple next() override;
    bool done() const override;
    ProfileKind kind() const override { return ProfileKind::CacheMiss; }
    std::string name() const override { return "cache-miss"; }

  private:
    Machine &machine;
    Cache &cache;
    bool includeStores;
    MissNaming naming;
    std::optional<Tuple> pending;
};

/** EventSource of misprediction tuples from a running machine. */
class MispredictProbe : public EventSource
{
  public:
    /**
     * @param machine The machine to drive (not owned).
     * @param predictor The predictor every conditional branch trains
     *        (not owned).
     */
    MispredictProbe(Machine &machine, BranchPredictor &predictor);
    ~MispredictProbe() override;

    Tuple next() override;
    bool done() const override;
    ProfileKind kind() const override
    {
        return ProfileKind::Mispredict;
    }
    std::string name() const override { return "mispredict"; }

  private:
    Machine &machine;
    BranchPredictor &predictor;
    std::optional<Tuple> pending;
};

} // namespace mhp

#endif // MHP_CACHE_MISS_PROBE_H
