#include "cache/prefetcher.h"

#include "support/panic.h"

namespace mhp {

ProfileGuidedPrefetcher::ProfileGuidedPrefetcher(Cache &cache_,
                                                 unsigned degree_)
    : cache(cache_), degree(degree_)
{
    MHP_REQUIRE(degree >= 1, "prefetch degree must be positive");
}

void
ProfileGuidedPrefetcher::retrain(const IntervalSnapshot &hotMisses)
{
    hotPcs.clear();
    for (const auto &cand : hotMisses)
        hotPcs.insert(cand.tuple.first);
    // Keep learned strides for PCs that stay delinquent; drop the rest.
    for (auto it = states.begin(); it != states.end();) {
        if (hotPcs.count(it->first) == 0)
            it = states.erase(it);
        else
            ++it;
    }
}

void
ProfileGuidedPrefetcher::onAccess(uint64_t pc, uint64_t address)
{
    if (hotPcs.count(pc) == 0)
        return;
    PcState &state = states[pc];
    const uint64_t line = cache.lineOf(address);
    int64_t stride = static_cast<int64_t>(cache.configuration().lineBytes);
    if (state.primed) {
        const int64_t observed = static_cast<int64_t>(line) -
                                 static_cast<int64_t>(state.lastAddress);
        if (observed != 0)
            state.stride = observed;
        if (state.stride != 0)
            stride = state.stride;
    }
    state.lastAddress = line;
    state.primed = true;

    uint64_t target = line;
    for (unsigned d = 0; d < degree; ++d) {
        target = static_cast<uint64_t>(static_cast<int64_t>(target) +
                                       stride);
        cache.prefetch(target);
        ++issued;
    }
}

} // namespace mhp
