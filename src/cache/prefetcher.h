/**
 * @file
 * Profile-guided prefetching (the paper's Section 2 use case).
 *
 * The ProfileGuidedPrefetcher takes the set of delinquent load PCs a
 * hardware profiler captured (hot <loadPC, missedLine> tuples) and
 * issues next-line/stride prefetches only for those PCs — the
 * "improve the accuracy and efficiency of these techniques" loop the
 * paper motivates. Stride is learned per delinquent PC from its last
 * seen address.
 */

#ifndef MHP_CACHE_PREFETCHER_H
#define MHP_CACHE_PREFETCHER_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.h"
#include "core/profiler.h"

namespace mhp {

/** Per-PC stride prefetcher gated by a profiled delinquent-load set. */
class ProfileGuidedPrefetcher
{
  public:
    /**
     * @param cache The cache prefetches are installed into (not owned).
     * @param degree Lines fetched ahead per trigger (1 = next line).
     */
    explicit ProfileGuidedPrefetcher(Cache &cache, unsigned degree = 2);

    /**
     * Install the delinquent-load set from a profiler snapshot of
     * <loadPC, missedLine> tuples (e.g. the previous interval's
     * accumulator contents). Replaces the previous set.
     */
    void retrain(const IntervalSnapshot &hotMisses);

    /**
     * Observe a demand access (after the cache saw it). If the PC is
     * in the delinquent set, learn its stride and prefetch ahead.
     */
    void onAccess(uint64_t pc, uint64_t address);

    /** Number of PCs currently selected for prefetching. */
    size_t delinquentPcs() const { return hotPcs.size(); }

    uint64_t prefetchesIssued() const { return issued; }

  private:
    struct PcState
    {
        uint64_t lastAddress = 0;
        int64_t stride = 0;
        bool primed = false;
    };

    Cache &cache;
    unsigned degree;
    std::unordered_set<uint64_t> hotPcs;
    std::unordered_map<uint64_t, PcState> states;
    uint64_t issued = 0;
};

} // namespace mhp

#endif // MHP_CACHE_PREFETCHER_H
