/**
 * @file
 * Stream characterization with a perfect profiler (paper Section
 * 5.6.1, Figures 4-6).
 *
 *  - distinct tuples per interval (Fig. 4);
 *  - unique candidate tuples per interval (Fig. 5);
 *  - candidate variation between consecutive intervals (Fig. 6),
 *    measured as the Jaccard distance between consecutive candidate
 *    sets (100% = completely different, 0% = identical).
 */

#ifndef MHP_ANALYSIS_CANDIDATE_STATS_H
#define MHP_ANALYSIS_CANDIDATE_STATS_H

#include <cstdint>
#include <vector>

#include "support/stats.h"
#include "trace/source.h"

namespace mhp {

/** Results of a perfect-profiler characterization run. */
struct CandidateAnalysis
{
    RunningStats distinctPerInterval;
    RunningStats candidatesPerInterval;

    /** Percent variation for each consecutive interval pair. */
    std::vector<double> variations;

    uint64_t intervalsCompleted = 0;

    /**
     * Variation value v(q) such that fraction q of interval pairs saw
     * variation <= v (exact order statistic). q in [0, 1].
     */
    double variationQuantile(double q) const;
};

/**
 * Characterize a stream with a perfect interval profiler.
 *
 * @param source The event stream (consumed).
 * @param intervalLength Events per interval.
 * @param thresholdCount Candidate threshold in occurrences.
 * @param numIntervals Intervals to execute (or until source is dry).
 */
CandidateAnalysis analyzeCandidates(EventSource &source,
                                    uint64_t intervalLength,
                                    uint64_t thresholdCount,
                                    uint64_t numIntervals);

} // namespace mhp

#endif // MHP_ANALYSIS_CANDIDATE_STATS_H
