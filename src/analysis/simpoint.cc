#include "analysis/simpoint.h"

#include <algorithm>
#include <cmath>

#include "support/panic.h"

namespace mhp {

FrequencyVector::FrequencyVector(const IntervalSnapshot &snapshot,
                                 unsigned dimensions)
{
    MHP_REQUIRE(dimensions >= 1, "need at least one dimension");
    v.assign(dimensions, 0.0);
    double total = 0.0;
    TupleHash hasher;
    for (const auto &cand : snapshot) {
        const size_t bucket = hasher(cand.tuple) % dimensions;
        v[bucket] += static_cast<double>(cand.count);
        total += static_cast<double>(cand.count);
    }
    if (total > 0.0) {
        for (double &x : v)
            x /= total;
    }
}

double
FrequencyVector::distance(const FrequencyVector &other) const
{
    MHP_ASSERT(v.size() == other.v.size(), "dimension mismatch");
    double d = 0.0;
    for (size_t i = 0; i < v.size(); ++i)
        d += std::abs(v[i] - other.v[i]);
    return d;
}

SimpointAnalysis::SimpointAnalysis(unsigned maxPhases_, unsigned dims_,
                                   unsigned iterations_)
    : maxPhases(maxPhases_), dims(dims_), iterations(iterations_)
{
    MHP_REQUIRE(maxPhases >= 1, "need at least one phase");
    MHP_REQUIRE(dims >= 1, "need at least one dimension");
    MHP_REQUIRE(iterations >= 1, "need at least one iteration");
}

std::vector<Phase>
SimpointAnalysis::analyze(
        const std::vector<IntervalSnapshot> &snapshots) const
{
    if (snapshots.empty())
        return {};

    std::vector<FrequencyVector> vectors;
    vectors.reserve(snapshots.size());
    for (const auto &snap : snapshots)
        vectors.emplace_back(snap, dims);

    const unsigned k = std::min<unsigned>(
        maxPhases, static_cast<unsigned>(snapshots.size()));

    // Deterministic farthest-point seeding: first centroid is interval
    // 0; each next centroid is the interval farthest from all chosen.
    std::vector<std::vector<double>> centroids;
    centroids.push_back(vectors[0].values());
    while (centroids.size() < k) {
        size_t best = 0;
        double best_d = -1.0;
        for (size_t i = 0; i < vectors.size(); ++i) {
            double nearest = 1e300;
            for (const auto &c : centroids) {
                double d = 0.0;
                for (size_t j = 0; j < c.size(); ++j)
                    d += std::abs(vectors[i].values()[j] - c[j]);
                nearest = std::min(nearest, d);
            }
            if (nearest > best_d) {
                best_d = nearest;
                best = i;
            }
        }
        if (best_d <= 1e-12)
            break; // every interval coincides with a centroid
        centroids.push_back(vectors[best].values());
    }

    // Lloyd iterations.
    std::vector<uint32_t> assignment(vectors.size(), 0);
    for (unsigned it = 0; it < iterations; ++it) {
        bool moved = false;
        for (size_t i = 0; i < vectors.size(); ++i) {
            size_t best_c = 0;
            double best_d = 1e300;
            for (size_t c = 0; c < centroids.size(); ++c) {
                double d = 0.0;
                for (size_t j = 0; j < centroids[c].size(); ++j) {
                    d += std::abs(vectors[i].values()[j] -
                                  centroids[c][j]);
                }
                if (d < best_d) {
                    best_d = d;
                    best_c = c;
                }
            }
            if (assignment[i] != best_c) {
                assignment[i] = static_cast<uint32_t>(best_c);
                moved = true;
            }
        }
        if (!moved && it > 0)
            break;
        // Recompute centroids (empty clusters keep their position).
        for (size_t c = 0; c < centroids.size(); ++c) {
            std::vector<double> sum(dims, 0.0);
            uint64_t members = 0;
            for (size_t i = 0; i < vectors.size(); ++i) {
                if (assignment[i] != c)
                    continue;
                ++members;
                for (unsigned j = 0; j < dims; ++j)
                    sum[j] += vectors[i].values()[j];
            }
            if (members == 0)
                continue;
            for (double &x : sum)
                x /= static_cast<double>(members);
            centroids[c] = std::move(sum);
        }
    }

    // Build phases: members, representative (closest to centroid),
    // weight. Drop empty clusters.
    std::vector<Phase> phases;
    for (size_t c = 0; c < centroids.size(); ++c) {
        Phase phase;
        double best_d = 1e300;
        for (size_t i = 0; i < vectors.size(); ++i) {
            if (assignment[i] != c)
                continue;
            phase.intervals.push_back(static_cast<uint32_t>(i));
            double d = 0.0;
            for (unsigned j = 0; j < dims; ++j)
                d += std::abs(vectors[i].values()[j] - centroids[c][j]);
            if (d < best_d) {
                best_d = d;
                phase.representative = static_cast<uint32_t>(i);
            }
        }
        if (phase.intervals.empty())
            continue;
        phase.weight = static_cast<double>(phase.intervals.size()) /
                       static_cast<double>(vectors.size());
        phases.push_back(std::move(phase));
    }
    std::sort(phases.begin(), phases.end(),
              [](const Phase &a, const Phase &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.representative < b.representative;
              });
    return phases;
}

size_t
SimpointAnalysis::classify(
        const IntervalSnapshot &snapshot,
        const std::vector<IntervalSnapshot> &snapshots,
        const std::vector<Phase> &phases) const
{
    MHP_REQUIRE(!phases.empty(), "no phases to classify against");
    const FrequencyVector probe(snapshot, dims);
    size_t best = 0;
    double best_d = 1e300;
    for (size_t p = 0; p < phases.size(); ++p) {
        MHP_REQUIRE(phases[p].representative < snapshots.size(),
                    "phase references a missing snapshot");
        const FrequencyVector rep(
            snapshots[phases[p].representative], dims);
        const double d = probe.distance(rep);
        if (d < best_d) {
            best_d = d;
            best = p;
        }
    }
    return best;
}

} // namespace mhp
