#include "analysis/candidate_stats.h"

#include <algorithm>
#include <unordered_set>

#include "core/perfect_profiler.h"
#include "support/panic.h"
#include "trace/tuple.h"

namespace mhp {

namespace {

using TupleSet = std::unordered_set<Tuple, TupleHash>;

/** Jaccard distance between candidate sets, in percent. */
double
variationPercent(const TupleSet &prev, const TupleSet &cur)
{
    if (prev.empty() && cur.empty())
        return 0.0;
    uint64_t intersection = 0;
    for (const auto &t : cur) {
        if (prev.count(t))
            ++intersection;
    }
    const uint64_t unions = prev.size() + cur.size() - intersection;
    return 100.0 *
           (1.0 - static_cast<double>(intersection) /
                      static_cast<double>(unions));
}

} // namespace

double
CandidateAnalysis::variationQuantile(double q) const
{
    if (variations.empty())
        return 0.0;
    std::vector<double> sorted = variations;
    std::sort(sorted.begin(), sorted.end());
    if (q <= 0.0)
        return sorted.front();
    if (q >= 1.0)
        return sorted.back();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

CandidateAnalysis
analyzeCandidates(EventSource &source, uint64_t intervalLength,
                  uint64_t thresholdCount, uint64_t numIntervals)
{
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");

    CandidateAnalysis out;
    PerfectProfiler perfect(thresholdCount);
    TupleSet prev;
    bool have_prev = false;

    for (uint64_t interval = 0; interval < numIntervals; ++interval) {
        uint64_t consumed = 0;
        while (consumed < intervalLength && !source.done()) {
            perfect.onEvent(source.next());
            ++consumed;
        }
        if (consumed < intervalLength)
            break; // discard partial interval

        out.distinctPerInterval.add(
            static_cast<double>(perfect.distinctTuples()));
        const IntervalSnapshot snap = perfect.endInterval();
        out.candidatesPerInterval.add(static_cast<double>(snap.size()));

        TupleSet cur;
        cur.reserve(snap.size() * 2);
        for (const auto &cand : snap)
            cur.insert(cand.tuple);
        if (have_prev)
            out.variations.push_back(variationPercent(prev, cur));
        prev = std::move(cur);
        have_prev = true;
        ++out.intervalsCompleted;
    }
    return out;
}

} // namespace mhp
