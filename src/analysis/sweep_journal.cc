#include "analysis/sweep_journal.h"

#include <cstring>
#include <filesystem>
#include <iterator>
#include <utility>

#include "support/crc32.h"
#include "support/durable.h"
#include "support/failpoint.h"

namespace mhp {

namespace {

/** Checkpoint journal: magic(8) planFingerprint(8) crc(4) pad(4). */
constexpr char kCkptMagic[8] = {'M', 'H', 'P', 'S', 'W', 'P', '1', '\0'};
constexpr size_t kCkptHeaderSize = 24;
constexpr size_t kCkptCrcSpan = 16;

} // namespace

void
serializeCellRecord(ByteBuffer &payload, uint64_t cellIndex,
                    const SweepCellResult &cell)
{
    payload.u64(cellIndex);
    payload.u64(cell.benchmarkIndex);
    payload.u64(cell.configIndex);
    payload.u64(cell.intervalLengthIndex);
    payload.str(cell.benchmark);
    payload.str(cell.configLabel);
    payload.u64(cell.intervalLength);
    payload.u64(cell.thresholdCount);
    payload.str(cell.run.profilerName);
    payload.u64(cell.run.intervals.size());
    for (const IntervalScore &score : cell.run.intervals) {
        payload.f64(score.breakdown.falsePositive);
        payload.f64(score.breakdown.falseNegative);
        payload.f64(score.breakdown.neutralPositive);
        payload.f64(score.breakdown.neutralNegative);
        payload.u64(score.counts.falsePositive);
        payload.u64(score.counts.falseNegative);
        payload.u64(score.counts.neutralPositive);
        payload.u64(score.counts.neutralNegative);
        payload.u64(score.perfectCandidates);
        payload.u64(score.hardwareCandidates);
    }
    payload.u64(cell.stream.distinctTuples.size());
    for (uint64_t d : cell.stream.distinctTuples)
        payload.u64(d);
    payload.u64(cell.eventsConsumed);
    payload.u64(cell.intervalsCompleted);
}

bool
deserializeCellRecord(ByteCursor &cursor, uint64_t &cellIndex,
                      SweepCellResult &cell)
{
    if (!cursor.u64(cellIndex) || !cursor.u64(cell.benchmarkIndex) ||
        !cursor.u64(cell.configIndex) ||
        !cursor.u64(cell.intervalLengthIndex) ||
        !cursor.str(cell.benchmark) || !cursor.str(cell.configLabel) ||
        !cursor.u64(cell.intervalLength) ||
        !cursor.u64(cell.thresholdCount) ||
        !cursor.str(cell.run.profilerName))
        return false;

    uint64_t scores;
    if (!cursor.u64(scores) || scores > cursor.remaining() / (10 * 8))
        return false;
    cell.run.intervals.resize(scores);
    for (IntervalScore &score : cell.run.intervals) {
        if (!cursor.f64(score.breakdown.falsePositive) ||
            !cursor.f64(score.breakdown.falseNegative) ||
            !cursor.f64(score.breakdown.neutralPositive) ||
            !cursor.f64(score.breakdown.neutralNegative) ||
            !cursor.u64(score.counts.falsePositive) ||
            !cursor.u64(score.counts.falseNegative) ||
            !cursor.u64(score.counts.neutralPositive) ||
            !cursor.u64(score.counts.neutralNegative) ||
            !cursor.u64(score.perfectCandidates) ||
            !cursor.u64(score.hardwareCandidates))
            return false;
    }

    uint64_t distinct;
    if (!cursor.u64(distinct) || distinct > cursor.remaining() / 8)
        return false;
    cell.stream.distinctTuples.resize(distinct);
    for (uint64_t &d : cell.stream.distinctTuples) {
        if (!cursor.u64(d))
            return false;
    }

    return cursor.u64(cell.eventsConsumed) &&
           cursor.u64(cell.intervalsCompleted) && cursor.atEnd();
}

void
serializeLeaseRecord(ByteBuffer &payload, const LeaseRecord &lease)
{
    payload.u64(kLeaseRecordMark);
    payload.u8(static_cast<uint8_t>(lease.action));
    payload.u64(lease.leaseId);
    payload.u64(lease.begin);
    payload.u64(lease.end);
    payload.u64(lease.workerId);
}

bool
deserializeLeaseRecord(ByteCursor &cursor, LeaseRecord &lease)
{
    uint8_t action;
    if (!cursor.u8(action) || !cursor.u64(lease.leaseId) ||
        !cursor.u64(lease.begin) || !cursor.u64(lease.end) ||
        !cursor.u64(lease.workerId) || !cursor.atEnd())
        return false;
    if (action < static_cast<uint8_t>(LeaseAction::Acquire) ||
        action > static_cast<uint8_t>(LeaseAction::Trim))
        return false;
    if (lease.end < lease.begin)
        return false;
    lease.action = static_cast<LeaseAction>(action);
    return true;
}

StatusOr<LoadedCheckpoint>
loadSweepCheckpoint(const std::string &path, uint64_t fingerprint,
                    size_t cellCount)
{
    LoadedCheckpoint loaded;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return loaded; // no journal yet: fresh run

    loaded.exists = true;
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (bytes.size() < kCkptHeaderSize) {
        // A kill during journal creation can cut the header short.
        // Restart from scratch if what's there is our own debris (a
        // prefix of the magic); refuse to clobber anything else.
        const size_t prefix =
            bytes.size() < sizeof(kCkptMagic) ? bytes.size()
                                              : sizeof(kCkptMagic);
        if (prefix > 0 &&
            std::memcmp(bytes.data(), kCkptMagic, prefix) != 0)
            return Status::corruptData(
                path + ": not a sweep checkpoint file");
        loaded.exists = false;
        return loaded;
    }
    if (std::memcmp(bytes.data(), kCkptMagic, sizeof(kCkptMagic)) != 0)
        return Status::corruptData(path +
                                   ": not a sweep checkpoint file");
    const uint32_t stored = getLe32(bytes.data() + 16);
    if (stored != crc32(bytes.data(), kCkptCrcSpan))
        return Status::corruptData(path +
                                   ": checkpoint header CRC mismatch");
    if (getLe64(bytes.data() + 8) != fingerprint) {
        return Status::invalidArgument(
            path + ": checkpoint was written by a different sweep "
                   "plan (delete it to start over)");
    }

    // Records: size(8) payload crc(4). Anything that fails to parse —
    // a record cut short by a kill, a flipped bit — ends the journal
    // at the last intact record; those cells simply get recomputed.
    size_t pos = kCkptHeaderSize;
    loaded.goodOffset = pos;
    while (pos + 8 <= bytes.size()) {
        const uint64_t size = getLe64(bytes.data() + pos);
        if (size > bytes.size() - pos - 8 ||
            bytes.size() - pos - 8 - size < 4)
            break; // truncated trailing record
        const uint8_t *payload = bytes.data() + pos + 8;
        const uint32_t recordCrc =
            getLe32(payload + static_cast<size_t>(size));
        if (recordCrc != crc32(payload, static_cast<size_t>(size)))
            break; // corrupt trailing record
        ByteCursor cursor(payload, static_cast<size_t>(size));
        if (size >= 8 && getLe64(payload) == kLeaseRecordMark) {
            uint64_t mark;
            cursor.u64(mark);
            LeaseRecord lease;
            if (!deserializeLeaseRecord(cursor, lease))
                break;
            loaded.leases.push_back(lease);
        } else {
            uint64_t cellIndex;
            SweepCellResult cell;
            if (!deserializeCellRecord(cursor, cellIndex, cell) ||
                cellIndex >= cellCount)
                break;
            loaded.completed[cellIndex] = std::move(cell);
        }
        pos += 8 + static_cast<size_t>(size) + 4;
        loaded.goodOffset = pos;
    }
    return loaded;
}

Status
CheckpointJournal::open(const std::string &journalPath,
                        uint64_t fingerprint,
                        const LoadedCheckpoint &loaded)
{
    path = journalPath;
    if (loaded.exists) {
        std::error_code ec;
        std::filesystem::resize_file(path, loaded.goodOffset, ec);
        if (ec) {
            return Status::ioError(path +
                                   ": cannot truncate checkpoint: " +
                                   ec.message());
        }
        out.open(path, std::ios::binary | std::ios::app);
    } else {
        out.open(path, std::ios::binary | std::ios::trunc);
        if (out) {
            uint8_t header[kCkptHeaderSize] = {};
            std::memcpy(header, kCkptMagic, sizeof(kCkptMagic));
            putLe64(header + 8, fingerprint);
            putLe32(header + 16, crc32(header, kCkptCrcSpan));
            out.write(reinterpret_cast<const char *>(header),
                      kCkptHeaderSize);
            out.flush();
        }
    }
    if (!out) {
        return Status::ioError(
            path + ": cannot open checkpoint for writing");
    }
    return Status::ok();
}

Status
CheckpointJournal::appendRecordLocked(const ByteBuffer &payload,
                                      uint64_t failpointKey)
{
    uint8_t sizeLe[8], crcLe[4];
    putLe64(sizeLe, payload.size());
    putLe32(crcLe, crc32(payload.data(), payload.size()));

    if (failpointFires("ckpt.append.enospc", failpointKey)) {
        return Status::ioError(
            path + ": injected ENOSPC appending checkpoint record "
                   "(failpoint ckpt.append.enospc)");
    }
    if (failpointFires("ckpt.append.short", failpointKey)) {
        // Leave a torn record on disk — exactly what a kill or a
        // full disk mid-append produces. The record fails its CRC
        // on load, so resume recomputes this cell.
        out.write(reinterpret_cast<const char *>(sizeLe), 8);
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size() / 2));
        out.flush();
        return Status::ioError(
            path + ": injected short write appending checkpoint "
                   "record (failpoint ckpt.append.short)");
    }
    out.write(reinterpret_cast<const char *>(sizeLe), 8);
    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char *>(crcLe), 4);
    out.flush();
    if (!out) {
        return Status::ioError(
            path + ": short write appending checkpoint record");
    }
    return Status::ok();
}

Status
CheckpointJournal::append(uint64_t cellIndex,
                          const SweepCellResult &cell)
{
    ByteBuffer payload;
    serializeCellRecord(payload, cellIndex, cell);
    std::lock_guard<std::mutex> lock(mutex);
    return appendRecordLocked(payload, cellIndex);
}

Status
CheckpointJournal::appendLease(const LeaseRecord &lease)
{
    ByteBuffer payload;
    serializeLeaseRecord(payload, lease);
    std::lock_guard<std::mutex> lock(mutex);
    return appendRecordLocked(payload, lease.leaseId);
}

Status
CheckpointJournal::finish()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (!out.is_open())
        return Status::ok();
    out.flush();
    const bool healthy = static_cast<bool>(out);
    out.close();
    if (!healthy) {
        return Status::ioError(path +
                               ": short write flushing checkpoint");
    }
    if (failpointFires("ckpt.fsync")) {
        return Status::ioError(
            path + ": injected fsync failure (failpoint ckpt.fsync)");
    }
    if (Status synced = fsyncFile(path); !synced.isOk())
        return synced;
    return fsyncParentDir(path);
}

} // namespace mhp
