#include "analysis/snapshot_text.h"

#include <cstdio>
#include <unordered_map>

#include "trace/tuple.h"

namespace mhp {

IntervalSnapshot
applySnapshotQuery(const IntervalSnapshot &snapshot, const Query &query,
                   uint64_t top)
{
    std::unordered_map<Tuple, uint64_t, TupleHash> groups;
    for (const CandidateCount &c : snapshot) {
        if (!query.matches(c.tuple))
            continue;
        Tuple key = c.tuple;
        switch (query.groupBy) {
          case QueryGroupBy::WholeTuple:
            break;
          case QueryGroupBy::First:
            key.second = 0;
            break;
          case QueryGroupBy::Second:
            key.first = 0;
            break;
        }
        groups[key] += c.count;
    }

    IntervalSnapshot result;
    result.reserve(groups.size());
    for (const auto &[tuple, count] : groups)
        result.push_back({tuple, count});
    canonicalize(result);
    if (top != 0 && result.size() > top)
        result.resize(static_cast<size_t>(top));
    return result;
}

std::string
renderCandidateLines(const IntervalSnapshot &snapshot, uint64_t top)
{
    std::string out;
    uint64_t shown = 0;
    for (const CandidateCount &c : snapshot) {
        if (top != 0 && shown == top)
            break;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %s %llu\n",
                      c.tuple.toString().c_str(),
                      static_cast<unsigned long long>(c.count));
        out += buf;
        ++shown;
    }
    return out;
}

std::string
renderSnapshotText(const std::string &title, uint64_t epoch,
                   uint64_t intervals, const IntervalSnapshot &snapshot,
                   uint64_t top)
{
    char head[160];
    std::snprintf(head, sizeof(head),
                  "%s epoch %llu intervals %llu candidates %llu\n",
                  title.c_str(), static_cast<unsigned long long>(epoch),
                  static_cast<unsigned long long>(intervals),
                  static_cast<unsigned long long>(snapshot.size()));
    return head + renderCandidateLines(snapshot, top);
}

std::string
renderTenantStatsTable(const std::vector<TenantStatsRow> &rows)
{
    std::string out = "id tenant state priority arrived accepted "
                      "ingested intervals dropped queue rate quota "
                      "shed quarantine pushbacks strikes epoch "
                      "memory\n";
    for (const TenantStatsRow &r : rows) {
        char buf[352];
        std::snprintf(
            buf, sizeof(buf),
            "%llu %s %s %u %llu %llu %llu %llu %llu %llu %llu %llu "
            "%llu %llu %llu %llu %llu %llu\n",
            static_cast<unsigned long long>(r.id), r.name.c_str(),
            r.state.c_str(), r.priority,
            static_cast<unsigned long long>(r.arrived),
            static_cast<unsigned long long>(r.accepted),
            static_cast<unsigned long long>(r.ingested),
            static_cast<unsigned long long>(r.intervals),
            static_cast<unsigned long long>(r.dropped()),
            static_cast<unsigned long long>(r.droppedQueueFull),
            static_cast<unsigned long long>(r.droppedRate),
            static_cast<unsigned long long>(r.droppedQuota),
            static_cast<unsigned long long>(r.droppedShed),
            static_cast<unsigned long long>(r.droppedQuarantine),
            static_cast<unsigned long long>(r.pushbacks),
            static_cast<unsigned long long>(r.poisonStrikes),
            static_cast<unsigned long long>(r.epoch),
            static_cast<unsigned long long>(r.memoryBytes));
        out += buf;
    }
    return out;
}

} // namespace mhp
