/**
 * @file
 * The parallel sweep engine: shards a (benchmark x configuration x
 * interval-length) design space into independent cells and evaluates
 * them concurrently.
 *
 * Every cell regenerates its own event stream from the workload seed —
 * or, when the plan carries a mapped trace, replays one immutable
 * TraceMap through its own zero-copy cursor — and runs the streaming
 * interval pipeline serially, so cells share no mutable state; results
 * land in slots indexed by cell, which makes
 * the merged output bit-identical for every thread count (asserted by
 * tests/analysis/test_sweep_runner). This is the engine behind the
 * figure benches' suite sweeps and any tool that scores many profiler
 * configurations at once.
 *
 * Long sweeps can be made crash-safe with runWithCheckpoint(): every
 * finished cell is journaled (CRC-protected, fingerprinted against
 * the plan) to a checkpoint file, and a re-run of the same plan loads
 * the journal, recomputes only the missing cells, and returns output
 * bit-identical to an uninterrupted run — a killed multi-hour sweep
 * resumes from where it stopped (see docs/FORMATS.md for the journal
 * format and tests/integration/test_sweep_resume for the guarantee).
 *
 * runResilient() layers fault tolerance on top: failed cells are
 * retried with capped exponential backoff (deterministically jittered
 * from a seed), cells that keep failing are quarantined into a
 * per-cell Status report instead of aborting the sweep, a per-cell
 * wall-clock deadline bounds runaway cells, and a CancelToken lets a
 * signal handler stop the sweep at an interval boundary with the
 * checkpoint journal intact. Whether a cell fails is a pure function
 * of the failpoint spec and seed (never of the thread schedule), so
 * the surviving results and the quarantine set are bit-identical for
 * every thread count (see docs/ROBUSTNESS.md).
 */

#ifndef MHP_ANALYSIS_SWEEP_RUNNER_H
#define MHP_ANALYSIS_SWEEP_RUNNER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/interval_runner.h"
#include "core/config.h"
#include "support/status.h"
#include "trace/trace_map.h"
#include "trace/tuple.h"

namespace mhp {

/** One profiler configuration in a sweep, with a display label. */
struct SweepConfig
{
    std::string label;
    ProfilerConfig config;
};

/** The design space a SweepRunner evaluates. */
struct SweepPlan
{
    /** Suite benchmarks to run (workload model names). */
    std::vector<std::string> benchmarks;

    /**
     * Event class to sweep: selects the calibrated workload model
     * (value, edge, or path) each cell regenerates. Fingerprints are
     * backward compatible: Value and Edge encode the same bytes the
     * old `edges` flag did, so existing checkpoints still resume.
     */
    ProfileKind kind = ProfileKind::Value;

    /** Profiler configurations to evaluate per benchmark. */
    std::vector<SweepConfig> configs;

    /**
     * Interval lengths to sweep; each overrides the config's own
     * intervalLength (the candidate threshold stays the config's
     * fraction, so the threshold count scales with the interval).
     * Empty = one cell per config using its own intervalLength.
     */
    std::vector<uint64_t> intervalLengths;

    /** Profile intervals per cell. */
    uint64_t intervals = 10;

    /** Workload seed (every cell regenerates the same stream). */
    uint64_t workloadSeed = 1;

    /** Events per onEvents() block in the batched ingest. */
    uint64_t batchSize = 4096;

    /**
     * Optional recorded input: when set, every cell replays this one
     * immutable mapping through its own zero-copy cursor instead of
     * regenerating a workload stream — no cell copies the trace, and
     * all of them (parallel or resumed) read the same bytes. The
     * `benchmarks` list then holds a single display name (defaulted
     * to the trace path by SweepRunner); `kind` and `workloadSeed`
     * are ignored. The trace fingerprint joins the plan fingerprint,
     * so a checkpoint cannot be resumed against a different trace.
     */
    std::shared_ptr<const TraceMap> trace;
};

/** The scored result of one sweep cell. */
struct SweepCellResult
{
    size_t benchmarkIndex = 0;
    size_t configIndex = 0;
    size_t intervalLengthIndex = 0;

    std::string benchmark;
    std::string configLabel;
    uint64_t intervalLength = 0;
    uint64_t thresholdCount = 0;

    RunResult run;
    StreamStats stream;
    uint64_t eventsConsumed = 0;
    uint64_t intervalsCompleted = 0;

    friend bool operator==(const SweepCellResult &,
                           const SweepCellResult &) = default;
};

/** A cell that kept failing and was excluded from the sweep output. */
struct QuarantinedCell
{
    uint64_t cellIndex = 0;
    std::string benchmark;
    std::string configLabel;
    uint64_t intervalLength = 0;

    /** Attempts actually made (== maxAttempts unless cancelled). */
    unsigned attempts = 0;

    /** The last failure; never ok(). */
    Status status;

    friend bool operator==(const QuarantinedCell &,
                           const QuarantinedCell &) = default;
};

/** Everything a resilient sweep produced. */
struct SweepReport
{
    /**
     * One slot per cell in benchmark-major order. Quarantined or
     * not-yet-run (cancelled) cells hold default-constructed results;
     * every populated slot is bit-identical to what run() computes.
     */
    std::vector<SweepCellResult> results;

    /** Cells that failed every attempt, sorted by cellIndex. */
    std::vector<QuarantinedCell> quarantined;

    /**
     * Cells the watchdog saw exceed the deadline while still running.
     * Advisory only (it depends on real time and scheduling), so it is
     * deliberately excluded from determinism guarantees — quarantine
     * decisions never come from here.
     */
    std::vector<uint64_t> deadlineFlagged;

    /** True when the CancelToken stopped the sweep early. */
    bool interrupted = false;

    /** Cells with populated result slots (loaded or computed). */
    uint64_t completedCells = 0;
};

/** Knobs of SweepRunner::runResilient(). */
struct SweepResilienceOptions
{
    /** Worker threads; 0 = min(hardware concurrency, cells). */
    unsigned threads = 0;

    /** Attempts per cell before it is quarantined (>= 1). */
    unsigned maxAttempts = 3;

    /**
     * Wall-clock budget per *attempt* in milliseconds, enforced at
     * interval boundaries inside the cell; 0 = none. An attempt that
     * overruns counts as a failure (retried, then quarantined with
     * StatusCode::DeadlineExceeded).
     */
    uint64_t cellDeadlineMs = 0;

    /**
     * Base backoff before retry k is base << k milliseconds, capped
     * at backoffCapMs and scaled by a jitter factor in [0.5, 1.0)
     * drawn deterministically from (backoffSeed, cell, attempt).
     * 0 = retry immediately (the default: tests stay fast).
     */
    uint64_t backoffBaseMs = 0;
    uint64_t backoffCapMs = 1000;
    uint64_t backoffSeed = 0;

    /** Optional cooperative stop, polled at interval boundaries. */
    const CancelToken *cancel = nullptr;

    /**
     * Journal finished cells here and skip cells a previous run
     * already journaled (same format and fingerprint gate as
     * runWithCheckpoint). Empty = no checkpointing. Quarantined and
     * cancelled cells are never journaled — a rerun retries them.
     */
    std::string checkpointPath;

    /**
     * Poll period of the watchdog thread that flags cells exceeding
     * cellDeadlineMs while still running; 0 = no watchdog. Purely
     * advisory (see SweepReport::deadlineFlagged).
     */
    uint64_t watchdogPollMs = 0;
};

/**
 * Outcome of one cell's full retry loop (runCellResilient): either a
 * populated result, the final failure after every attempt, or a
 * cooperative cancellation.
 */
struct CellOutcome
{
    /** Valid exactly when status.isOk() and !cancelled. */
    SweepCellResult result;

    /** ok() on success; otherwise the last attempt's failure. */
    Status status;

    /** Attempts actually made. */
    unsigned attempts = 0;

    /** True when the CancelToken stopped the loop. */
    bool cancelled = false;
};

/** Shards a SweepPlan over worker threads with deterministic merging. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepPlan plan);

    /** Cells in the plan: benchmarks x configs x interval lengths. */
    size_t cellCount() const;

    /**
     * Evaluate every cell, possibly concurrently, and return the
     * results in benchmark-major (benchmark, config, interval-length)
     * order. The output is bit-identical for every thread count and
     * every interleave width.
     *
     * Each worker thread drives its cells through the interleaved
     * multi-stream engine (runIntervalsInterleaved): contiguous
     * groups of `lanesPerWorker` cells ingest round-robin, one block
     * at a time, so one cell's counter-bank miss latency is hidden
     * behind the other cells' hashing — the single-core win the
     * ISSUE's memory-wall tier calls for. Grouping only reschedules
     * the same per-cell state machine, so results are unchanged.
     *
     * @param threads Worker count; 0 = min(hardware concurrency,
     *        cells), overridable via MHP_THREADS.
     * @param lanesPerWorker Cells interleaved per worker; 0 = the
     *        MHP_INTERLEAVE environment override or 4. 1 disables
     *        interleaving (cells run back to back).
     */
    std::vector<SweepCellResult> run(unsigned threads = 0,
                                     unsigned lanesPerWorker = 0) const;

    /**
     * Crash-safe variant of run(): journal every completed cell to
     * checkpointPath and skip cells already journaled by an earlier
     * (killed) run of the same plan. The journal is fingerprinted —
     * resuming with a modified plan is an InvalidArgument error — and
     * each record is CRC-protected, so a record half-written at the
     * moment of a crash is discarded and its cell recomputed. The
     * returned results are bit-identical to an uninterrupted run();
     * the checkpoint file is left in place for inspection (delete it
     * to force a full re-run).
     */
    StatusOr<std::vector<SweepCellResult>>
    runWithCheckpoint(const std::string &checkpointPath,
                      unsigned threads = 0) const;

    /**
     * Fault-tolerant variant of run(): every cell gets up to
     * options.maxAttempts attempts (with deterministic capped
     * exponential backoff between them); cells that fail every
     * attempt land in SweepReport::quarantined with their last Status
     * instead of aborting the sweep. A per-attempt deadline and a
     * CancelToken stop work at interval boundaries; an optional
     * checkpoint journal makes the whole thing resumable. Injected
     * failures (see support/failpoint.h, sites "sweep.cell.compute"
     * and "sweep.cell.slow") are keyed by cell index and attempt, so
     * which cells fail — and therefore the surviving results and the
     * quarantine list — is reproducible from the spec + seed at any
     * thread count.
     *
     * The call itself only fails for infrastructure errors (an
     * unreadable or mismatched checkpoint, a journal append failure);
     * cell failures are data in the report.
     */
    StatusOr<SweepReport>
    runResilient(const SweepResilienceOptions &options = {}) const;

    /**
     * The retry loop of one cell, exactly as runResilient() executes
     * it: up to options.maxAttempts attempts with deterministic
     * backoff, per-attempt deadline, cooperative cancellation, and
     * the same failpoint sites keyed by (cell, attempt) — which is
     * what makes a distributed worker's successes, failures, and
     * quarantine statuses bit-identical to the in-process engine's
     * (the distributed executor in sweep_distributed.h is built on
     * this). `attemptMark(true/false)` brackets each attempt for
     * watchdog bookkeeping; pass an empty function when unused.
     * Checkpointing and thread scheduling are the caller's business.
     */
    CellOutcome runCellResilient(
        uint64_t cell, const SweepResilienceOptions &options,
        const std::function<void(bool running)> &attemptMark =
            {}) const;

    /** Build the quarantine row for a cell that failed every attempt. */
    QuarantinedCell quarantineFor(uint64_t cell, unsigned attempts,
                                  Status lastError) const;

    const SweepPlan &plan() const { return sweepPlan; }

    /** Stable fingerprint of the plan (checkpoint compatibility). */
    uint64_t planFingerprint() const;

  private:
    /**
     * A cell ready to stream: its (owned) event source and cursor,
     * profiler, and resolved interval geometry. Defined in the .cc;
     * built by prepareCell() for both the one-cell paths and the
     * interleaved groups of run().
     */
    struct CellExecution;

    /**
     * Resolve cell -> (benchmark, config, length), fill `result`'s
     * metadata, and construct the cell's source and profiler.
     */
    std::unique_ptr<CellExecution>
    prepareCell(size_t cell, SweepCellResult &result) const;

    /** Evaluate one cell into `result` (shared by both run paths). */
    void computeCell(size_t cell, SweepCellResult &result) const;

    /**
     * Evaluate one cell with cooperative stops: cancel and deadline
     * are polled at interval boundaries. Returns why the cell stopped
     * (None = completed). A stopped cell leaves `result` partially
     * filled; callers must discard it.
     */
    RunStopReason computeCellStream(size_t cell,
                                    SweepCellResult &result,
                                    const CancelToken *cancel,
                                    uint64_t deadlineMs) const;

    SweepPlan sweepPlan;
};

} // namespace mhp

#endif // MHP_ANALYSIS_SWEEP_RUNNER_H
