/**
 * @file
 * The parallel sweep engine: shards a (benchmark x configuration x
 * interval-length) design space into independent cells and evaluates
 * them concurrently.
 *
 * Every cell regenerates its own event stream from the workload seed —
 * or, when the plan carries a mapped trace, replays one immutable
 * TraceMap through its own zero-copy cursor — and runs the streaming
 * interval pipeline serially, so cells share no mutable state; results
 * land in slots indexed by cell, which makes
 * the merged output bit-identical for every thread count (asserted by
 * tests/analysis/test_sweep_runner). This is the engine behind the
 * figure benches' suite sweeps and any tool that scores many profiler
 * configurations at once.
 *
 * Long sweeps can be made crash-safe with runWithCheckpoint(): every
 * finished cell is journaled (CRC-protected, fingerprinted against
 * the plan) to a checkpoint file, and a re-run of the same plan loads
 * the journal, recomputes only the missing cells, and returns output
 * bit-identical to an uninterrupted run — a killed multi-hour sweep
 * resumes from where it stopped (see docs/FORMATS.md for the journal
 * format and tests/integration/test_sweep_resume for the guarantee).
 */

#ifndef MHP_ANALYSIS_SWEEP_RUNNER_H
#define MHP_ANALYSIS_SWEEP_RUNNER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/interval_runner.h"
#include "core/config.h"
#include "support/status.h"
#include "trace/trace_map.h"

namespace mhp {

/** One profiler configuration in a sweep, with a display label. */
struct SweepConfig
{
    std::string label;
    ProfilerConfig config;
};

/** The design space a SweepRunner evaluates. */
struct SweepPlan
{
    /** Suite benchmarks to run (workload model names). */
    std::vector<std::string> benchmarks;

    /** Use the edge model instead of the value model. */
    bool edges = false;

    /** Profiler configurations to evaluate per benchmark. */
    std::vector<SweepConfig> configs;

    /**
     * Interval lengths to sweep; each overrides the config's own
     * intervalLength (the candidate threshold stays the config's
     * fraction, so the threshold count scales with the interval).
     * Empty = one cell per config using its own intervalLength.
     */
    std::vector<uint64_t> intervalLengths;

    /** Profile intervals per cell. */
    uint64_t intervals = 10;

    /** Workload seed (every cell regenerates the same stream). */
    uint64_t workloadSeed = 1;

    /** Events per onEvents() block in the batched ingest. */
    uint64_t batchSize = 4096;

    /**
     * Optional recorded input: when set, every cell replays this one
     * immutable mapping through its own zero-copy cursor instead of
     * regenerating a workload stream — no cell copies the trace, and
     * all of them (parallel or resumed) read the same bytes. The
     * `benchmarks` list then holds a single display name (defaulted
     * to the trace path by SweepRunner); `edges` and `workloadSeed`
     * are ignored. The trace fingerprint joins the plan fingerprint,
     * so a checkpoint cannot be resumed against a different trace.
     */
    std::shared_ptr<const TraceMap> trace;
};

/** The scored result of one sweep cell. */
struct SweepCellResult
{
    size_t benchmarkIndex = 0;
    size_t configIndex = 0;
    size_t intervalLengthIndex = 0;

    std::string benchmark;
    std::string configLabel;
    uint64_t intervalLength = 0;
    uint64_t thresholdCount = 0;

    RunResult run;
    StreamStats stream;
    uint64_t eventsConsumed = 0;
    uint64_t intervalsCompleted = 0;

    friend bool operator==(const SweepCellResult &,
                           const SweepCellResult &) = default;
};

/** Shards a SweepPlan over worker threads with deterministic merging. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepPlan plan);

    /** Cells in the plan: benchmarks x configs x interval lengths. */
    size_t cellCount() const;

    /**
     * Evaluate every cell, possibly concurrently, and return the
     * results in benchmark-major (benchmark, config, interval-length)
     * order. The output is bit-identical for every thread count.
     *
     * @param threads Worker count; 0 = min(hardware concurrency,
     *        cells), overridable via MHP_THREADS.
     */
    std::vector<SweepCellResult> run(unsigned threads = 0) const;

    /**
     * Crash-safe variant of run(): journal every completed cell to
     * checkpointPath and skip cells already journaled by an earlier
     * (killed) run of the same plan. The journal is fingerprinted —
     * resuming with a modified plan is an InvalidArgument error — and
     * each record is CRC-protected, so a record half-written at the
     * moment of a crash is discarded and its cell recomputed. The
     * returned results are bit-identical to an uninterrupted run();
     * the checkpoint file is left in place for inspection (delete it
     * to force a full re-run).
     */
    StatusOr<std::vector<SweepCellResult>>
    runWithCheckpoint(const std::string &checkpointPath,
                      unsigned threads = 0) const;

    const SweepPlan &plan() const { return sweepPlan; }

    /** Stable fingerprint of the plan (checkpoint compatibility). */
    uint64_t planFingerprint() const;

  private:
    /** Evaluate one cell into `result` (shared by both run paths). */
    void computeCell(size_t cell, SweepCellResult &result) const;

    SweepPlan sweepPlan;
};

} // namespace mhp

#endif // MHP_ANALYSIS_SWEEP_RUNNER_H
