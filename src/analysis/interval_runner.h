/**
 * @file
 * Drives event streams through hardware profilers interval by interval
 * and scores every interval against the perfect profiler.
 *
 * Several profiler configurations can be evaluated simultaneously on
 * the *same* stream (the stream is generated once and fanned out),
 * which is how the benches sweep Figure 7/10/11/12 design spaces
 * efficiently and with identical inputs per configuration.
 *
 * One engine, many faces: runIntervalsStream() is the chunk-pull core
 * of the streaming data plane — it pulls contiguous blocks from a
 * StreamCursor, clips them to interval boundaries, and feeds every
 * profiler through onEvents() in O(chunk) memory. runIntervals(),
 * runIntervalsBatched(), and the per-profiler ingest leg of
 * runIntervalsSpan() are thin adapters over it; every path produces
 * bit-identical scores and snapshots (asserted by tests). See
 * docs/STREAMING.md.
 */

#ifndef MHP_ANALYSIS_INTERVAL_RUNNER_H
#define MHP_ANALYSIS_INTERVAL_RUNNER_H

#include <string>
#include <vector>

#include "analysis/error_metrics.h"
#include "core/profiler.h"
#include "support/cancel.h"
#include "trace/source.h"
#include "trace/tuple_span.h"

namespace mhp {

/** Why a streaming run stopped before completing every interval. */
enum class RunStopReason
{
    None,             ///< ran to numIntervals (or the stream's end)
    Cancelled,        ///< the CancelToken tripped
    DeadlineExceeded, ///< the wall-clock budget ran out
};

/** The scored history of one profiler over a whole run. */
struct RunResult
{
    std::string profilerName;

    /** One score per completed interval, in execution order. */
    std::vector<IntervalScore> intervals;

    /** Simple average of interval errors (the paper's net error). */
    ErrorBreakdown averageError() const;

    /** Average total error as a percentage. */
    double averageErrorPercent() const;

    /** Mean candidates per interval as seen by this profiler. */
    double meanHardwareCandidates() const;

    /** Mean candidates per interval in the perfect profile. */
    double meanPerfectCandidates() const;

    friend bool operator==(const RunResult &, const RunResult &) =
        default;
};

/** Per-interval stream statistics shared by all profilers in a run. */
struct StreamStats
{
    /** Distinct tuples in each interval. */
    std::vector<uint64_t> distinctTuples;

    double meanDistinctTuples() const;

    friend bool operator==(const StreamStats &, const StreamStats &) =
        default;
};

/** Everything a run produced. */
struct RunOutput
{
    std::vector<RunResult> results; ///< one per profiler, input order
    StreamStats stream;
    uint64_t eventsConsumed = 0;
    uint64_t intervalsCompleted = 0;

    /**
     * Why the run stopped early, if it did. Cancellation and deadline
     * are honored at interval boundaries only, so completed intervals
     * are always intact and scored.
     */
    RunStopReason stopped = RunStopReason::None;

    /**
     * Per-profiler, per-interval snapshots; populated only when the
     * run's keepSnapshots option is set (StreamRunOptions or
     * BatchedRunOptions) — scored runs otherwise discard them to
     * bound memory.
     */
    std::vector<std::vector<IntervalSnapshot>> snapshots;
};

/** Knobs of the chunk-pull streaming core. */
struct StreamRunOptions
{
    /** Chunk size requested from the cursor per onEvents() block. */
    uint64_t batchSize = 4096;

    /** Keep every interval snapshot in RunOutput::snapshots. */
    bool keepSnapshots = false;

    /**
     * Build the perfect profile and score every interval. Disable to
     * run ingest only (snapshots, event counts) — the span runner's
     * parallel scoring phase rebuilds truth separately.
     */
    bool score = true;

    /**
     * Optional cooperative stop: checked before every interval (not
     * owned). When it trips, the run returns what it completed with
     * RunOutput::stopped == Cancelled.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Wall-clock budget in milliseconds from entry, checked at the
     * same interval boundaries; 0 = none. An expired budget returns
     * the completed prefix with stopped == DeadlineExceeded.
     */
    uint64_t deadlineMs = 0;

    /**
     * Software-pipeline the interval drain: at each boundary the
     * profiler snapshots and the interval's exact counts are handed
     * to a drain worker that scores them while the main thread is
     * already hashing the next interval's events, instead of stalling
     * ingest for the full scoring pass. Joins happen in interval
     * order against per-interval state the worker owns outright, so
     * the output is bit-identical to the stalling form (asserted by
     * tests); disable only to measure that equivalence. Scoring-off
     * runs have no drain work to overlap and ignore this.
     */
    bool overlapDrain = true;
};

/**
 * The chunk-pull streaming engine every other runner is an adapter
 * over. Pulls blocks of at most options.batchSize events from the
 * cursor, never crossing an interval boundary, and feeds each block
 * to every profiler via onEvents(); at each interval end the
 * profilers' snapshots are scored against a perfect profile of the
 * same events (unless options.score is off). Peak memory is
 * O(batchSize) plus whatever the cursor itself holds — a zero-copy
 * cursor (TupleSpanSource, TraceMapSource) adds nothing.
 *
 * A trailing partial interval (stream runs dry before numIntervals *
 * intervalLength events) is consumed but discarded, exactly like
 * every pre-existing runner.
 */
RunOutput runIntervalsStream(
    StreamCursor &stream,
    const std::vector<HardwareProfiler *> &profilers,
    uint64_t intervalLength, uint64_t thresholdCount,
    uint64_t numIntervals, const StreamRunOptions &options = {});

/**
 * One independent stream in an interleaved run: its cursor, the
 * profilers it feeds (not owned, disjoint from every other lane's),
 * and the interval geometry a dedicated runIntervalsStream() call
 * would get.
 */
struct InterleavedLane
{
    StreamCursor *stream = nullptr;
    std::vector<HardwareProfiler *> profilers;
    uint64_t intervalLength = 0;
    uint64_t thresholdCount = 0;
    uint64_t numIntervals = 0;
};

/**
 * Drive K independent streams on ONE thread, round-robin one chunk
 * (<= options.batchSize events, clipped to each lane's interval
 * boundary) per visit. The point is memory-level parallelism, not
 * concurrency: a single lane's hash-indexed counter-bank gathers
 * serialize on dTLB/cache misses, but with K lanes the core hashes
 * and probes lane B's block while lane A's misses are still in
 * flight, hiding miss latency behind the other streams' work — this
 * is how sweep cells share a worker (SweepRunner) and how mhprofd
 * drains tenant queues.
 *
 * Each lane runs the exact state machine runIntervalsStream() runs
 * (same code path, merely scheduled differently), so out[i] is
 * bit-identical to a dedicated runIntervalsStream() call on lane i —
 * asserted by tests. Lanes finish independently; a dry or cancelled
 * lane drops out of the rotation while the rest continue. The shared
 * options apply to every lane (one deadline budget from entry, one
 * cancel token checked at each lane's boundaries).
 */
std::vector<RunOutput> runIntervalsInterleaved(
    const std::vector<InterleavedLane> &lanes,
    const StreamRunOptions &options = {});

/**
 * Run the stream through every profiler for a number of intervals.
 * (Adapter: runIntervalsStream() pulling single events.)
 *
 * @param source The event stream (consumed).
 * @param profilers The hardware profilers under test (not owned).
 * @param intervalLength Events per profile interval.
 * @param thresholdCount Candidate threshold in occurrences.
 * @param numIntervals Intervals to execute; a finite source may end
 *        the run early (partial final intervals are discarded).
 */
RunOutput runIntervals(EventSource &source,
                       const std::vector<HardwareProfiler *> &profilers,
                       uint64_t intervalLength, uint64_t thresholdCount,
                       uint64_t numIntervals);

/** Convenience overload for a single profiler. */
RunOutput runIntervals(EventSource &source, HardwareProfiler &profiler,
                       uint64_t intervalLength, uint64_t thresholdCount,
                       uint64_t numIntervals);

/**
 * Streaming batched variant of runIntervals(): identical output, but
 * events are buffered and delivered through onEvents() in blocks of
 * batchSize, so each profiler pays one virtual dispatch per block
 * instead of per event. Memory use is O(batchSize), independent of
 * the stream length — this is the variant workload-backed sweep
 * cells use. (Adapter: runIntervalsStream() over an
 * EventSourceCursor.)
 */
RunOutput runIntervalsBatched(
    EventSource &source, const std::vector<HardwareProfiler *> &profilers,
    uint64_t intervalLength, uint64_t thresholdCount,
    uint64_t numIntervals, uint64_t batchSize = 4096);

/** Knobs of the in-memory parallel runner. */
struct BatchedRunOptions
{
    /** Events per onEvents() block. */
    uint64_t batchSize = 4096;

    /**
     * Worker threads for the ingest (across profilers) and scoring
     * (across intervals) phases; 0 = min(hardware concurrency, work),
     * overridable via MHP_THREADS. The output is bit-identical for
     * every thread count.
     */
    unsigned threads = 0;

    /** Keep every interval snapshot in RunOutput::snapshots. */
    bool keepSnapshots = false;
};

/**
 * In-memory parallel variant of runIntervals(): identical scores, with
 * two parallel phases. Ingest runs each profiler's full timeline on
 * its own worker (profilers share no state; each consumes the same
 * read-only span). Scoring rebuilds the perfect profile of each
 * interval independently and scores all profilers against it, one
 * interval per worker. All results land in slots indexed by
 * (profiler, interval), so the merge is deterministic and bit-identical
 * to the serial run regardless of scheduling.
 *
 * A trailing partial interval (stream shorter than numIntervals *
 * intervalLength) is discarded, exactly like runIntervals() on a
 * finite source.
 */
RunOutput runIntervalsSpan(
    TupleSpan stream, const std::vector<HardwareProfiler *> &profilers,
    uint64_t intervalLength, uint64_t thresholdCount,
    uint64_t numIntervals, const BatchedRunOptions &options = {});

} // namespace mhp

#endif // MHP_ANALYSIS_INTERVAL_RUNNER_H
