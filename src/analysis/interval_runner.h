/**
 * @file
 * Drives event streams through hardware profilers interval by interval
 * and scores every interval against the perfect profiler.
 *
 * Several profiler configurations can be evaluated simultaneously on
 * the *same* stream (the stream is generated once and fanned out),
 * which is how the benches sweep Figure 7/10/11/12 design spaces
 * efficiently and with identical inputs per configuration.
 */

#ifndef MHP_ANALYSIS_INTERVAL_RUNNER_H
#define MHP_ANALYSIS_INTERVAL_RUNNER_H

#include <string>
#include <vector>

#include "analysis/error_metrics.h"
#include "core/profiler.h"
#include "trace/source.h"

namespace mhp {

/** The scored history of one profiler over a whole run. */
struct RunResult
{
    std::string profilerName;

    /** One score per completed interval, in execution order. */
    std::vector<IntervalScore> intervals;

    /** Simple average of interval errors (the paper's net error). */
    ErrorBreakdown averageError() const;

    /** Average total error as a percentage. */
    double averageErrorPercent() const;

    /** Mean candidates per interval as seen by this profiler. */
    double meanHardwareCandidates() const;

    /** Mean candidates per interval in the perfect profile. */
    double meanPerfectCandidates() const;
};

/** Per-interval stream statistics shared by all profilers in a run. */
struct StreamStats
{
    /** Distinct tuples in each interval. */
    std::vector<uint64_t> distinctTuples;

    double meanDistinctTuples() const;
};

/** Everything a run produced. */
struct RunOutput
{
    std::vector<RunResult> results; ///< one per profiler, input order
    StreamStats stream;
    uint64_t eventsConsumed = 0;
    uint64_t intervalsCompleted = 0;
};

/**
 * Run the stream through every profiler for a number of intervals.
 *
 * @param source The event stream (consumed).
 * @param profilers The hardware profilers under test (not owned).
 * @param intervalLength Events per profile interval.
 * @param thresholdCount Candidate threshold in occurrences.
 * @param numIntervals Intervals to execute; a finite source may end
 *        the run early (partial final intervals are discarded).
 */
RunOutput runIntervals(EventSource &source,
                       const std::vector<HardwareProfiler *> &profilers,
                       uint64_t intervalLength, uint64_t thresholdCount,
                       uint64_t numIntervals);

/** Convenience overload for a single profiler. */
RunOutput runIntervals(EventSource &source, HardwareProfiler &profiler,
                       uint64_t intervalLength, uint64_t thresholdCount,
                       uint64_t numIntervals);

} // namespace mhp

#endif // MHP_ANALYSIS_INTERVAL_RUNNER_H
