/**
 * @file
 * The CRC-journaled sweep checkpoint format, shared by the in-process
 * sweep engine (SweepRunner::runWithCheckpoint / runResilient) and the
 * distributed coordinator (see docs/DISTRIBUTED.md).
 *
 * A journal is a 24-byte header — magic, plan fingerprint, header
 * CRC — followed by append-only records, each `size(8) payload crc(4)`.
 * Two record kinds share the stream, distinguished by the payload's
 * leading u64:
 *
 *  - *cell records* (leading u64 = cell index < cellCount): one
 *    completed SweepCellResult, bit-exact;
 *  - *lease records* (leading u64 = kLeaseRecordMark): the distributed
 *    coordinator's work-accounting trail — which worker held which
 *    cell range, and whether the lease completed or was reclaimed
 *    after a worker died.
 *
 * Only cell records carry result state; resume correctness never
 * depends on lease records (a missing cell is simply recomputed), so
 * journals written by the single-process engine — which emits no
 * leases — and by the coordinator are mutually resumable. Loading
 * stops at the first record that fails its CRC or parse (a record
 * torn by a kill), exactly like the PR 2 format this generalizes.
 */

#ifndef MHP_ANALYSIS_SWEEP_JOURNAL_H
#define MHP_ANALYSIS_SWEEP_JOURNAL_H

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/sweep_runner.h"
#include "support/bytes.h"
#include "support/status.h"

namespace mhp {

/** Leading u64 of a lease record's payload (never a cell index). */
constexpr uint64_t kLeaseRecordMark = ~0ULL;

/** What happened to a leased cell range. */
enum class LeaseAction : uint8_t
{
    Acquire = 1,  ///< the range was granted to a worker
    Complete = 2, ///< every cell in the range was reported
    Reclaim = 3,  ///< the worker died/stalled; the tail was repooled
    Trim = 4,     ///< the range was shortened by work-stealing
};

/** One lease-journal entry. */
struct LeaseRecord
{
    uint64_t leaseId = 0;
    uint64_t begin = 0;
    uint64_t end = 0; ///< exclusive
    uint64_t workerId = 0;
    LeaseAction action = LeaseAction::Acquire;

    friend bool operator==(const LeaseRecord &,
                           const LeaseRecord &) = default;
};

/** Serialize one finished cell into a journal/wire record payload. */
void serializeCellRecord(ByteBuffer &payload, uint64_t cellIndex,
                         const SweepCellResult &cell);

/** Parse a cell record payload; false on any bounds violation. */
bool deserializeCellRecord(ByteCursor &cursor, uint64_t &cellIndex,
                           SweepCellResult &cell);

/** Serialize a lease record (kLeaseRecordMark-prefixed payload). */
void serializeLeaseRecord(ByteBuffer &payload,
                          const LeaseRecord &lease);

/**
 * Parse a lease record payload *after* the caller consumed the
 * kLeaseRecordMark u64; false on malformed input.
 */
bool deserializeLeaseRecord(ByteCursor &cursor, LeaseRecord &lease);

/** What survived of an existing checkpoint journal. */
struct LoadedCheckpoint
{
    std::unordered_map<uint64_t, SweepCellResult> completed;

    /** Lease trail in journal order (diagnostics, resume reports). */
    std::vector<LeaseRecord> leases;

    /** File offset just past the last intact record. */
    uint64_t goodOffset = 0;

    /** False when the file does not exist (start a fresh journal). */
    bool exists = false;
};

/**
 * Load a checkpoint journal, validating magic, header CRC, and the
 * plan fingerprint; any corrupt/truncated tail is cut at the last
 * intact record. NotFound never happens — a missing file is a fresh
 * run (exists = false).
 */
StatusOr<LoadedCheckpoint>
loadSweepCheckpoint(const std::string &path, uint64_t fingerprint,
                    size_t cellCount);

/**
 * Append-only writer over the checkpoint journal, shared by
 * SweepRunner's checkpointed runs and the distributed coordinator.
 * append()/appendLease() are thread-safe and write+flush each record
 * whole under a lock, so a kill can only truncate the final record
 * (which loadSweepCheckpoint discards); finish() makes the journal
 * durable with an fsync of the file and its parent directory.
 */
class CheckpointJournal
{
  public:
    /** Truncate any corrupt tail and open for append (or create). */
    Status open(const std::string &journalPath, uint64_t fingerprint,
                const LoadedCheckpoint &loaded);

    /** Serialize, write, and flush one finished cell (thread-safe). */
    Status append(uint64_t cellIndex, const SweepCellResult &cell);

    /** Write and flush one lease record (thread-safe). */
    Status appendLease(const LeaseRecord &lease);

    /** Flush and fsync the journal and its directory. */
    Status finish();

  private:
    Status appendRecordLocked(const ByteBuffer &payload,
                              uint64_t failpointKey);

    std::string path;
    std::ofstream out;
    std::mutex mutex;
};

} // namespace mhp

#endif // MHP_ANALYSIS_SWEEP_JOURNAL_H
