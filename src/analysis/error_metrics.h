/**
 * @file
 * The paper's error metric (Section 5.5, Figure 3).
 *
 * A hardware profile for one interval is compared against the perfect
 * profile. Every tuple that is a candidate in either profile falls
 * into one of four categories:
 *
 *   False Positive   fp <  T, fh >= T   (over-aggressive optimization)
 *   False Negative   fp >= T, fh <  T   (missed opportunity)
 *   Neutral Positive fh >  fp >= T      (over-counted true candidate)
 *   Neutral Negative fp >  fh >= T      (under-counted true candidate)
 *
 * where fp/fh are the perfect/hardware frequencies and T the candidate
 * threshold. The interval error is the weighted formula (1):
 *
 *   E = sum_i |fp_i - fh_i| / sum_i fp_i
 *
 * over all candidates i, and the net error is the simple average of E
 * over all intervals. The per-category split attributes each
 * candidate's |fp - fh| to its category, giving the stacked bars of
 * Figures 7 and 10-12.
 */

#ifndef MHP_ANALYSIS_ERROR_METRICS_H
#define MHP_ANALYSIS_ERROR_METRICS_H

#include <cstdint>
#include <unordered_map>

#include "core/profiler.h"
#include "trace/tuple.h"

namespace mhp {

/** Classification of one candidate tuple (Figure 3). */
enum class ErrorCategory
{
    NeutralPositive,
    NeutralNegative,
    FalsePositive,
    FalseNegative,
    DontCare, ///< below threshold in both profiles
};

/** Classify a tuple from its two frequencies and the threshold. */
ErrorCategory classifyTuple(uint64_t perfectFreq, uint64_t hardwareFreq,
                            uint64_t thresholdCount);

/** Printable category name. */
const char *errorCategoryName(ErrorCategory c);

/**
 * An interval's error rate split by category; each component is the
 * category's share of formula (1), as a fraction (0.01 == 1%).
 */
struct ErrorBreakdown
{
    double falsePositive = 0.0;
    double falseNegative = 0.0;
    double neutralPositive = 0.0;
    double neutralNegative = 0.0;

    double
    total() const
    {
        return falsePositive + falseNegative + neutralPositive +
               neutralNegative;
    }

    ErrorBreakdown &operator+=(const ErrorBreakdown &o);
    ErrorBreakdown &operator/=(double d);

    friend bool operator==(const ErrorBreakdown &,
                           const ErrorBreakdown &) = default;
};

/** Category occurrence counts for one interval (diagnostics). */
struct CategoryCounts
{
    uint64_t falsePositive = 0;
    uint64_t falseNegative = 0;
    uint64_t neutralPositive = 0;
    uint64_t neutralNegative = 0;

    friend bool operator==(const CategoryCounts &,
                           const CategoryCounts &) = default;
};

/** Result of scoring one interval. */
struct IntervalScore
{
    ErrorBreakdown breakdown;
    CategoryCounts counts;
    uint64_t perfectCandidates = 0;
    uint64_t hardwareCandidates = 0;

    friend bool operator==(const IntervalScore &,
                           const IntervalScore &) = default;
};

/**
 * Score one interval of a hardware profiler against the perfect
 * profile.
 *
 * @param perfectCounts Exact per-tuple counts for the interval (from
 *        PerfectProfiler::counts(), *before* its endInterval()).
 * @param hardware The hardware profiler's snapshot for the interval.
 * @param thresholdCount The candidate threshold in occurrences.
 */
IntervalScore scoreInterval(
    const std::unordered_map<Tuple, uint64_t, TupleHash> &perfectCounts,
    const IntervalSnapshot &hardware, uint64_t thresholdCount);

} // namespace mhp

#endif // MHP_ANALYSIS_ERROR_METRICS_H
