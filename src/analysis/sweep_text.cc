#include "analysis/sweep_text.h"

#include <cstdio>
#include <fstream>

namespace mhp {

void
printQuarantineDiagnostics(const char *tool, const SweepReport &report)
{
    for (const QuarantinedCell &q : report.quarantined) {
        std::fprintf(stderr,
                     "%s: quarantined cell %llu (%s %s "
                     "len=%llu) after %u attempts: %s\n",
                     tool,
                     static_cast<unsigned long long>(q.cellIndex),
                     q.benchmark.c_str(), q.configLabel.c_str(),
                     static_cast<unsigned long long>(q.intervalLength),
                     q.attempts, q.status.toString().c_str());
    }
}

bool
writeQuarantineReport(const std::string &path,
                      const SweepReport &report)
{
    std::ofstream rep(path, std::ios::trunc);
    for (const QuarantinedCell &q : report.quarantined) {
        rep << q.cellIndex << '\t' << q.benchmark << '\t'
            << q.configLabel << '\t' << q.intervalLength << '\t'
            << q.attempts << '\t' << q.status.toString() << '\n';
    }
    return static_cast<bool>(rep);
}

bool
printSweepTable(const SweepReport &report)
{
    bool missing = false;
    for (size_t cell = 0; cell < report.results.size(); ++cell) {
        const SweepCellResult &r = report.results[cell];
        if (r.run.profilerName.empty()) {
            missing = true;
            continue;
        }
        std::printf("%s %s len=%llu: %llu intervals, avg error "
                    "%.4f%%, %.1f candidates/interval\n",
                    r.benchmark.c_str(), r.configLabel.c_str(),
                    static_cast<unsigned long long>(r.intervalLength),
                    static_cast<unsigned long long>(
                        r.intervalsCompleted),
                    r.run.averageErrorPercent(),
                    r.run.meanHardwareCandidates());
    }
    return missing;
}

} // namespace mhp
