#include "analysis/error_metrics.h"

#include "support/panic.h"

namespace mhp {

ErrorCategory
classifyTuple(uint64_t perfectFreq, uint64_t hardwareFreq,
              uint64_t thresholdCount)
{
    const bool in_perfect = perfectFreq >= thresholdCount;
    const bool in_hardware = hardwareFreq >= thresholdCount;
    if (in_perfect && in_hardware) {
        return hardwareFreq >= perfectFreq ? ErrorCategory::NeutralPositive
                                           : ErrorCategory::NeutralNegative;
    }
    if (!in_perfect && in_hardware)
        return ErrorCategory::FalsePositive;
    if (in_perfect && !in_hardware)
        return ErrorCategory::FalseNegative;
    return ErrorCategory::DontCare;
}

const char *
errorCategoryName(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::NeutralPositive:
        return "neutral-positive";
      case ErrorCategory::NeutralNegative:
        return "neutral-negative";
      case ErrorCategory::FalsePositive:
        return "false-positive";
      case ErrorCategory::FalseNegative:
        return "false-negative";
      case ErrorCategory::DontCare:
        return "dont-care";
    }
    return "?";
}

ErrorBreakdown &
ErrorBreakdown::operator+=(const ErrorBreakdown &o)
{
    falsePositive += o.falsePositive;
    falseNegative += o.falseNegative;
    neutralPositive += o.neutralPositive;
    neutralNegative += o.neutralNegative;
    return *this;
}

ErrorBreakdown &
ErrorBreakdown::operator/=(double d)
{
    MHP_ASSERT(d != 0.0, "division by zero");
    falsePositive /= d;
    falseNegative /= d;
    neutralPositive /= d;
    neutralNegative /= d;
    return *this;
}

IntervalScore
scoreInterval(
    const std::unordered_map<Tuple, uint64_t, TupleHash> &perfectCounts,
    const IntervalSnapshot &hardware, uint64_t thresholdCount)
{
    IntervalScore score;

    // Index the hardware snapshot for lookups.
    std::unordered_map<Tuple, uint64_t, TupleHash> hw;
    hw.reserve(hardware.size() * 2);
    for (const auto &cand : hardware)
        hw.emplace(cand.tuple, cand.count);

    double num_fp = 0.0, num_fn = 0.0, num_np = 0.0, num_nn = 0.0;
    double denom = 0.0;

    // Pass 1: every perfect candidate (covers FN, NP, NN).
    for (const auto &[tuple, fp] : perfectCounts) {
        if (fp < thresholdCount)
            continue;
        ++score.perfectCandidates;
        denom += static_cast<double>(fp);
        const auto it = hw.find(tuple);
        const uint64_t fh = it == hw.end() ? 0 : it->second;
        const double diff = fp > fh ? static_cast<double>(fp - fh)
                                    : static_cast<double>(fh - fp);
        switch (classifyTuple(fp, fh, thresholdCount)) {
          case ErrorCategory::FalseNegative:
            num_fn += diff;
            ++score.counts.falseNegative;
            break;
          case ErrorCategory::NeutralPositive:
            num_np += diff;
            ++score.counts.neutralPositive;
            break;
          case ErrorCategory::NeutralNegative:
            num_nn += diff;
            ++score.counts.neutralNegative;
            break;
          default:
            MHP_PANIC("perfect candidate classified as FP/DontCare");
        }
    }

    // Pass 2: hardware candidates that are not perfect candidates (FP).
    for (const auto &cand : hardware) {
        ++score.hardwareCandidates;
        const auto it = perfectCounts.find(cand.tuple);
        const uint64_t fp = it == perfectCounts.end() ? 0 : it->second;
        if (fp >= thresholdCount)
            continue; // already handled in pass 1
        denom += static_cast<double>(fp);
        const double diff =
            cand.count > fp ? static_cast<double>(cand.count - fp)
                            : static_cast<double>(fp - cand.count);
        num_fp += diff;
        ++score.counts.falsePositive;
    }

    if (denom > 0.0) {
        score.breakdown.falsePositive = num_fp / denom;
        score.breakdown.falseNegative = num_fn / denom;
        score.breakdown.neutralPositive = num_np / denom;
        score.breakdown.neutralNegative = num_nn / denom;
    } else if (score.hardwareCandidates > 0) {
        // No true candidates at all but the hardware reported some:
        // pure false-positive noise; call it 100% FP error.
        score.breakdown.falsePositive = 1.0;
    }
    return score;
}

} // namespace mhp
