#include "analysis/pgo_pipeline.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "analysis/interval_runner.h"
#include "core/factory.h"
#include "opt/trace_formation.h"
#include "sim/probes.h"
#include "support/panic.h"
#include "trace/tuple_span.h"

namespace mhp {

namespace {

/** Static cost of one emitted path occurrence. */
struct PathCost
{
    uint64_t instructions = 1;
    uint64_t transitions = 0; ///< block-to-block control transfers
};

/**
 * Memoizing decoder from path tuples to their static costs. The hot
 * set is small (bounded by the program's path universe), so one map
 * shared across the whole replay keeps the model O(distinct paths).
 */
class CostTable
{
  public:
    explicit CostTable(const BallLarusNumbering &numbering)
        : num(numbering)
    {
    }

    const PathCost &
    lookup(const Tuple &tuple)
    {
        auto it = table.find(tuple);
        if (it != table.end())
            return it->second;
        PathCost cost;
        const int routine = num.routineByPc(tuple.first);
        if (routine >= 0) {
            const uint64_t paths =
                num.numPaths(static_cast<uint32_t>(routine));
            const uint64_t id =
                paths > 1 ? tuple.second % paths : 0;
            const std::vector<uint32_t> blocks =
                num.decodePath(static_cast<uint32_t>(routine), id);
            if (!blocks.empty()) {
                cost.instructions = num.pathInstructions(
                    static_cast<uint32_t>(routine), id);
                cost.transitions = blocks.size() - 1;
            }
        }
        return table.emplace(tuple, cost).first->second;
    }

  private:
    const BallLarusNumbering &num;
    std::unordered_map<Tuple, PathCost, TupleHash> table;
};

using TupleSet = std::unordered_set<Tuple, TupleHash>;

/**
 * Replay the recorded stream under the trace-cache model: every path
 * occurrence executes its instructions; its block transitions cost 1
 * cycle when the path is selected (laid out straight-line — a single
 * fetch redirect enters the trace) and `penalty` cycles each when it
 * is not.
 */
double
replayCost(const std::vector<Tuple> &stream, CostTable &costs,
           const TupleSet &selected, double penalty)
{
    double total = 0.0;
    for (const Tuple &t : stream) {
        const PathCost &c = costs.lookup(t);
        total += static_cast<double>(c.instructions);
        if (c.transitions == 0)
            continue;
        total += selected.count(t) != 0
                     ? 1.0
                     : penalty * static_cast<double>(c.transitions);
    }
    return total;
}

/**
 * The oracle selection at a threshold: exact per-interval counts,
 * keeping every tuple that clears the threshold in any interval —
 * what a perfect profiler with unbounded tables would capture.
 */
TupleSet
oracleSelection(const std::vector<Tuple> &stream,
                uint64_t intervalLength, uint64_t thresholdCount)
{
    TupleSet selected;
    std::unordered_map<Tuple, uint64_t, TupleHash> counts;
    const size_t events = stream.size();
    for (size_t i = 0; i < events; ++i) {
        counts[stream[i]] += 1;
        if ((i + 1) % intervalLength == 0) {
            for (const auto &[tuple, count] : counts) {
                if (count >= thresholdCount)
                    selected.insert(tuple);
            }
            counts.clear();
        }
    }
    return selected;
}

} // namespace

std::vector<Tuple>
BallLarusPathDecoder::decode(const Tuple &path) const
{
    const int routine = num.routineByPc(path.first);
    if (routine < 0)
        return {};
    const uint64_t paths = num.numPaths(static_cast<uint32_t>(routine));
    if (paths == 0)
        return {};
    const uint64_t id = paths > 1 ? path.second % paths : 0;
    return num.decodePathEdges(static_cast<uint32_t>(routine), id);
}

PgoPipeline::PgoPipeline(PgoOptions options) : opts(std::move(options))
{
    MHP_REQUIRE(opts.intervals >= 1, "pgo needs intervals");
    MHP_REQUIRE(opts.intervalLength >= 1, "pgo needs interval length");
    MHP_REQUIRE(opts.kIterations >= 1, "pgo needs k >= 1");
    MHP_REQUIRE(opts.branchPenalty >= 1.0,
                "branchPenalty below 1 would reward fetch breaks");
    MHP_REQUIRE(!opts.configs.empty(), "pgo needs profiler configs");
}

PgoReport
PgoPipeline::run() const
{
    // 1. Generate and analyze the program.
    const Program program = generateProgram(opts.program);
    const BallLarusNumbering numbering(program, opts.kIterations);

    // 2. Record the path stream once; every configuration and the
    //    cost model replay these exact tuples.
    std::vector<Tuple> stream;
    const uint64_t wanted = opts.intervals * opts.intervalLength;
    stream.reserve(wanted);
    Machine machine(program);
    PathProbe probe(machine, numbering);
    while (stream.size() < wanted && !probe.done())
        stream.push_back(probe.next());

    PgoReport report;
    report.pathEvents = stream.size();
    report.brokenPaths = probe.brokenPaths();
    report.routines = numbering.routines().size();
    report.kIterations = opts.kIterations;
    {
        TupleSet distinct(stream.begin(), stream.end());
        report.distinctPaths = distinct.size();
    }

    CostTable costs(numbering);
    report.baselineCost =
        replayCost(stream, costs, {}, opts.branchPenalty);

    const BallLarusPathDecoder decoder(numbering);
    const TraceFormationEngine former;

    // Oracle selections are shared across configs with equal
    // thresholds (typically all of them).
    std::unordered_map<uint64_t, double> oracleCostByThreshold;

    for (const SweepConfig &entry : opts.configs) {
        ProfilerConfig config = entry.config;
        config.intervalLength = opts.intervalLength;
        const uint64_t threshold = config.thresholdCount();

        PgoConfigReport cr;
        cr.label = entry.label;

        // 3a. Profile the recorded stream with this configuration.
        auto profiler = makeProfiler(config);
        TupleSpanSource source(
            TupleSpan(stream.data(), stream.size()),
            ProfileKind::Path, "pgo-paths");
        StreamRunOptions runOptions;
        runOptions.keepSnapshots = true;
        const RunOutput out = runIntervalsStream(
            source, {profiler.get()}, opts.intervalLength, threshold,
            opts.intervals, runOptions);
        cr.avgErrorPercent = out.results[0].averageErrorPercent();

        // 3b. Aggregate the captured candidates across intervals into
        //     the selection set and a weighted snapshot for the
        //     optimizer.
        TupleSet selected;
        std::unordered_map<Tuple, uint64_t, TupleHash> aggregate;
        for (const IntervalSnapshot &snap : out.snapshots[0]) {
            for (const CandidateCount &cand : snap) {
                selected.insert(cand.tuple);
                aggregate[cand.tuple] += cand.count;
            }
        }
        cr.hotPaths = selected.size();

        IntervalSnapshot hot;
        hot.reserve(aggregate.size());
        for (const auto &[tuple, count] : aggregate)
            hot.push_back({tuple, count});
        canonicalize(hot);

        // 3c. Lower hot paths to edges and form traces; coverage is
        //     the layout-quality metric next to the speedup.
        ProfileView view;
        view.kind = ProfileKind::Path;
        view.snapshot = &hot;
        view.decoder = &decoder;
        const std::vector<Trace> traces = former.form(view);
        cr.traceCoverage =
            TraceFormationEngine::coverage(traces, view);

        // 4. Re-execute under the cost model.
        cr.optimizedCost =
            replayCost(stream, costs, selected, opts.branchPenalty);
        cr.speedup = cr.optimizedCost > 0.0
                         ? report.baselineCost / cr.optimizedCost
                         : 0.0;

        auto oracle = oracleCostByThreshold.find(threshold);
        if (oracle == oracleCostByThreshold.end()) {
            const TupleSet exact = oracleSelection(
                stream, opts.intervalLength, threshold);
            oracle = oracleCostByThreshold
                         .emplace(threshold,
                                  replayCost(stream, costs, exact,
                                             opts.branchPenalty))
                         .first;
        }
        cr.oracleSpeedup = oracle->second > 0.0
                               ? report.baselineCost / oracle->second
                               : 0.0;

        report.configs.push_back(std::move(cr));
    }
    return report;
}

namespace {

void
appendf(std::string &out, const char *fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    out += buf;
}

void
appendu(std::string &out, uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

/** Escape the few JSON-special characters a config label can hold. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        if (ch == '"' || ch == '\\')
            out += '\\';
        if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
            continue;
        }
        out += ch;
    }
    return out;
}

} // namespace

std::string
renderPgoJson(const PgoReport &report)
{
    std::string out = "{\n";
    out += "  \"path_events\": ";
    appendu(out, report.pathEvents);
    out += ",\n  \"distinct_paths\": ";
    appendu(out, report.distinctPaths);
    out += ",\n  \"broken_paths\": ";
    appendu(out, report.brokenPaths);
    out += ",\n  \"routines\": ";
    appendu(out, report.routines);
    out += ",\n  \"k_iterations\": ";
    appendu(out, report.kIterations);
    out += ",\n  \"baseline_cost\": ";
    appendf(out, "%.6f", report.baselineCost);
    out += ",\n  \"configs\": [";
    for (size_t i = 0; i < report.configs.size(); ++i) {
        const PgoConfigReport &c = report.configs[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"label\": \"" + jsonEscape(c.label) + "\"";
        out += ", \"avg_error_percent\": ";
        appendf(out, "%.6f", c.avgErrorPercent);
        out += ", \"hot_paths\": ";
        appendu(out, c.hotPaths);
        out += ", \"trace_coverage\": ";
        appendf(out, "%.6f", c.traceCoverage);
        out += ", \"optimized_cost\": ";
        appendf(out, "%.6f", c.optimizedCost);
        out += ", \"speedup\": ";
        appendf(out, "%.6f", c.speedup);
        out += ", \"oracle_speedup\": ";
        appendf(out, "%.6f", c.oracleSpeedup);
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace mhp
