/**
 * @file
 * Worker side of the distributed sweep (sweep_distributed.h): connect
 * to the coordinator, receive the plan envelope, verify that this
 * binary reproduces the coordinator's world exactly (protocol
 * version, trace fingerprint, recomputed plan fingerprint), then pull
 * cell-range leases and execute each cell through the very same
 * SweepRunner::runCellResilient() retry loop the in-process engine
 * uses — which is the whole determinism argument: a cell computed
 * here is bit-identical to a cell computed anywhere else, successes
 * and quarantines alike.
 *
 * Between cells the worker polls its socket without blocking, so a
 * Trim (work-stealing) or Shutdown lands within one cell's latency;
 * while idle or computing it heartbeats so the coordinator can tell
 * "slow" from "dead". A vanished coordinator (EOF, reset, idle
 * timeout) is an IoError beginning with "lost coordinator", which
 * mhprof_worker maps to exit code 4 (see docs/DISTRIBUTED.md).
 */

#include "analysis/sweep_distributed.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <memory>
#include <string>
#include <thread>

#include <unistd.h>

#include "analysis/sweep_wire.h"
#include "support/failpoint.h"
#include "support/wire.h"
#include "trace/trace_map.h"

namespace mhp {

namespace {

int64_t
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Status
lostCoordinator(const Status &cause)
{
    return Status::ioError("lost coordinator: " + cause.toString());
}

/** Connect, retrying while the coordinator is still binding. */
StatusOr<WireConn>
connectWithRetry(const std::string &path, uint64_t retryMs)
{
    const int64_t deadline = steadyNowMs() + static_cast<int64_t>(retryMs);
    while (true) {
        StatusOr<WireConn> conn = WireConn::connect(path);
        if (conn.isOk() || steadyNowMs() >= deadline)
            return conn;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

/** The worker's view of one granted lease. */
struct ActiveLease
{
    WireLease lease;
    uint64_t nextCell = 0;
};

class Worker
{
  public:
    explicit Worker(const SweepWorkerOptions &options) : opt(options) {}

    Status run();

  private:
    Status handshake();
    Status workLoop();
    Status processLease(ActiveLease &active, bool &shutdown);
    Status drainControl(ActiveLease &active, bool &shutdown);
    Status handleTrim(const WireFrame &frame, ActiveLease *active);
    Status sendFrame(SweepMsg type, const ByteBuffer &payload);
    Status sendHeartbeatIfDue();

    const SweepWorkerOptions &opt;
    WireConn conn;
    std::unique_ptr<SweepRunner> runner;
    SweepResilienceOptions resilience;
    uint64_t cellsDone = 0;
    int64_t lastSentMs = 0;
    int64_t lastHeardMs = 0;
};

Status
Worker::run()
{
    if (opt.socketPath.empty())
        return Status::invalidArgument(
            "worker needs a coordinator socket (--connect)");

    StatusOr<WireConn> connected =
        connectWithRetry(opt.socketPath, opt.connectRetryMs);
    if (!connected.isOk())
        return connected.status();
    conn = std::move(*connected);
    lastSentMs = steadyNowMs();
    lastHeardMs = lastSentMs;

    MHP_RETURN_IF_ERROR(handshake());
    return workLoop();
}

Status
Worker::handshake()
{
    WireHello hello;
    hello.protoVersion = kSweepProtoVersion;
    hello.pid = static_cast<uint64_t>(getpid());
    ByteBuffer helloBuf;
    encodeHello(helloBuf, hello);
    MHP_RETURN_IF_ERROR(sendFrame(SweepMsg::Hello, helloBuf));

    WireFrame frame;
    const Status received = conn.recv(frame, opt.ioTimeoutMs);
    if (!received.isOk())
        return lostCoordinator(received);
    if (frame.type != static_cast<uint8_t>(SweepMsg::Plan))
        return Status::corruptDataf(
            "coordinator sent %s before Plan",
            sweepMsgName(frame.type));

    WirePlan env;
    MHP_RETURN_IF_ERROR(decodePlan(frame.payload.data(),
                                   frame.payload.size(), env));

    // The failpoint schedule must match the coordinator's exactly,
    // or injected failures (and therefore quarantines) would depend
    // on which process computed the cell.
    if (env.failpointSeed != 0)
        setFailpointSeed(env.failpointSeed);
    if (!env.failpointSpec.empty())
        MHP_RETURN_IF_ERROR(configureFailpoints(env.failpointSpec));

    SweepPlan plan = std::move(env.plan);
    if (!env.tracePath.empty()) {
        StatusOr<std::shared_ptr<const TraceMap>> trace =
            TraceMap::open(env.tracePath);
        if (!trace.isOk())
            return trace.status();
        if ((*trace)->fingerprint() != env.traceFingerprint)
            return Status::corruptDataf(
                "trace %s fingerprint %016" PRIx64
                " does not match the coordinator's %016" PRIx64,
                env.tracePath.c_str(), (*trace)->fingerprint(),
                env.traceFingerprint);
        plan.trace = std::move(*trace);
    }

    runner = std::make_unique<SweepRunner>(std::move(plan));
    if (runner->planFingerprint() != env.planFingerprint)
        return Status::corruptDataf(
            "plan fingerprint drift: coordinator %016" PRIx64
            ", worker %016" PRIx64 " (mixed builds?)",
            env.planFingerprint, runner->planFingerprint());

    resilience.maxAttempts = env.maxAttempts;
    resilience.cellDeadlineMs = env.cellDeadlineMs;
    resilience.backoffBaseMs = env.backoffBaseMs;
    resilience.backoffCapMs = env.backoffCapMs;
    resilience.backoffSeed = env.backoffSeed;
    return Status::ok();
}

Status
Worker::workLoop()
{
    const ByteBuffer empty;
    MHP_RETURN_IF_ERROR(sendFrame(SweepMsg::Ready, empty));

    while (true) {
        WireFrame frame;
        const Status received =
            conn.recv(frame, std::max<uint64_t>(opt.heartbeatMs, 1));
        if (received.code() == StatusCode::DeadlineExceeded) {
            if (steadyNowMs() - lastHeardMs >
                static_cast<int64_t>(opt.ioTimeoutMs))
                return lostCoordinator(Status::deadlineExceeded(
                    "no frame while idle for " +
                    std::to_string(opt.ioTimeoutMs) + " ms"));
            MHP_RETURN_IF_ERROR(sendHeartbeatIfDue());
            continue;
        }
        if (received.code() == StatusCode::IoError)
            return lostCoordinator(received);
        if (!received.isOk())
            return received; // framing corruption: exit 1, not 4
        lastHeardMs = steadyNowMs();

        switch (static_cast<SweepMsg>(frame.type)) {
          case SweepMsg::Grant: {
            ActiveLease active;
            MHP_RETURN_IF_ERROR(decodeLease(frame.payload.data(),
                                            frame.payload.size(),
                                            active.lease));
            active.nextCell = active.lease.begin;
            bool shutdown = false;
            MHP_RETURN_IF_ERROR(processLease(active, shutdown));
            if (shutdown)
                return Status::ok();
            MHP_RETURN_IF_ERROR(sendFrame(SweepMsg::Ready, empty));
            break;
          }
          case SweepMsg::Trim:
            // Raced with our final Result of that lease; decline.
            MHP_RETURN_IF_ERROR(handleTrim(frame, nullptr));
            break;
          case SweepMsg::Shutdown:
            (void)sendFrame(SweepMsg::Bye, empty);
            return Status::ok();
          case SweepMsg::Heartbeat:
            break;
          default:
            return Status::corruptDataf(
                "coordinator sent unexpected %s",
                sweepMsgName(frame.type));
        }
    }
}

Status
Worker::processLease(ActiveLease &active, bool &shutdown)
{
    while (active.nextCell < active.lease.end) {
        MHP_RETURN_IF_ERROR(drainControl(active, shutdown));
        if (shutdown || active.nextCell >= active.lease.end)
            return Status::ok();

        const uint64_t cell = active.nextCell;
        const CellOutcome outcome =
            runner->runCellResilient(cell, resilience);
        if (outcome.status.isOk() && !outcome.cancelled) {
            ByteBuffer payload;
            encodeResult(payload, active.lease.leaseId, cell,
                         outcome.result);
            MHP_RETURN_IF_ERROR(sendFrame(SweepMsg::Result, payload));
            ++cellsDone;
        } else {
            WireQuarantine q;
            q.leaseId = active.lease.leaseId;
            q.cellIndex = cell;
            q.attempts = outcome.attempts;
            q.code = outcome.status.code();
            q.message = outcome.status.message();
            ByteBuffer payload;
            encodeQuarantine(payload, q);
            MHP_RETURN_IF_ERROR(
                sendFrame(SweepMsg::Quarantine, payload));
        }
        ++active.nextCell;
        MHP_RETURN_IF_ERROR(sendHeartbeatIfDue());
    }
    return Status::ok();
}

Status
Worker::drainControl(ActiveLease &active, bool &shutdown)
{
    while (true) {
        WireFrame frame;
        Status error = Status::ok();
        const FrameDecode decode = conn.poll(frame, error);
        if (decode == FrameDecode::NeedMore)
            return Status::ok();
        if (decode == FrameDecode::Corrupt) {
            if (error.code() == StatusCode::IoError)
                return lostCoordinator(error);
            return error;
        }
        lastHeardMs = steadyNowMs();
        switch (static_cast<SweepMsg>(frame.type)) {
          case SweepMsg::Trim:
            MHP_RETURN_IF_ERROR(handleTrim(frame, &active));
            break;
          case SweepMsg::Shutdown: {
            const ByteBuffer empty;
            (void)sendFrame(SweepMsg::Bye, empty);
            shutdown = true;
            return Status::ok();
          }
          case SweepMsg::Heartbeat:
            break;
          default:
            return Status::corruptDataf(
                "coordinator sent unexpected %s mid-lease",
                sweepMsgName(frame.type));
        }
    }
}

Status
Worker::handleTrim(const WireFrame &frame, ActiveLease *active)
{
    WireLease trim;
    MHP_RETURN_IF_ERROR(decodeLease(frame.payload.data(),
                                    frame.payload.size(), trim));

    WireLease ack;
    ack.leaseId = trim.leaseId;
    if (active != nullptr &&
        trim.leaseId == active->lease.leaseId) {
        // Never give back a cell we already started: the new end is
        // at least nextCell, at most our current end.
        const uint64_t newEnd =
            std::max(active->nextCell,
                     std::min(trim.end, active->lease.end));
        active->lease.end = newEnd;
        ack.begin = active->nextCell;
        ack.end = newEnd;
    } else {
        // Stale trim for a lease we already finished: echo it with
        // end = 0 so the coordinator just clears its pending flag.
        ack.begin = 0;
        ack.end = 0;
    }
    ByteBuffer payload;
    encodeLease(payload, ack);
    return sendFrame(SweepMsg::TrimAck, payload);
}

Status
Worker::sendFrame(SweepMsg type, const ByteBuffer &payload)
{
    const Status sent = conn.send(static_cast<uint8_t>(type), payload,
                                  opt.ioTimeoutMs);
    if (!sent.isOk())
        return lostCoordinator(sent);
    lastSentMs = steadyNowMs();
    return Status::ok();
}

Status
Worker::sendHeartbeatIfDue()
{
    if (steadyNowMs() - lastSentMs <
        static_cast<int64_t>(std::max<uint64_t>(opt.heartbeatMs, 1)))
        return Status::ok();
    ByteBuffer payload;
    encodeHeartbeat(payload, cellsDone);
    return sendFrame(SweepMsg::Heartbeat, payload);
}

} // namespace

Status
runSweepWorker(const SweepWorkerOptions &options)
{
    Worker worker(options);
    return worker.run();
}

} // namespace mhp
