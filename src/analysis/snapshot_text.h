/**
 * @file
 * Snapshot query evaluation and text rendering shared by the
 * profiling service (mhprofd / mhprof_client) and offline tools.
 *
 * The service's read side answers candidate queries with the same
 * filter + group-by + count program the query co-processor runs in
 * hardware (core/query_coprocessor.h) — applySnapshotQuery() is that
 * program evaluated over an already-captured interval snapshot, so a
 * client can ask "per-PC totals over the published candidates" with
 * the exact Query struct the co-processor model uses.
 *
 * The render helpers produce the stable text formats the smoke tests
 * grep: one candidate per line, and the per-tenant stats table whose
 * columns account for every accepted, dropped, shed, and quarantined
 * event (docs/SERVICE.md).
 */

#ifndef MHP_ANALYSIS_SNAPSHOT_TEXT_H
#define MHP_ANALYSIS_SNAPSHOT_TEXT_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/query_coprocessor.h"

namespace mhp {

/**
 * Evaluate a query program over a snapshot's candidates: keep the
 * candidates the filter passes, group them by the query's key, sum
 * the counts per group, and return the groups in canonical snapshot
 * order. `top` keeps only the heaviest `top` groups (0 = all).
 */
IntervalSnapshot applySnapshotQuery(const IntervalSnapshot &snapshot,
                                    const Query &query, uint64_t top = 0);

/** "  <a, b> count\n" per candidate; at most `top` lines (0 = all). */
std::string renderCandidateLines(const IntervalSnapshot &snapshot,
                                 uint64_t top = 0);

/**
 * A titled snapshot block: one header line carrying the epoch and
 * interval provenance, then the candidate lines.
 */
std::string renderSnapshotText(const std::string &title, uint64_t epoch,
                               uint64_t intervals,
                               const IntervalSnapshot &snapshot,
                               uint64_t top = 0);

/**
 * One tenant's accounting as reported by the service: every arrival
 * is either accepted or attributed to exactly one drop reason, so
 * arrived == accepted + dropped() always holds (asserted by
 * tests/service/test_service_overload).
 */
struct TenantStatsRow
{
    uint64_t id = 0;
    std::string name;
    std::string state; ///< "active" / "shed" / "quarantined" / "closed"
    uint32_t priority = 0;

    uint64_t arrived = 0;   ///< events offered by the client
    uint64_t accepted = 0;  ///< events admitted to the ingest queue
    uint64_t ingested = 0;  ///< events the profiler has consumed
    uint64_t intervals = 0; ///< completed profile intervals

    uint64_t droppedQueueFull = 0;  ///< bounded-queue overflow
    uint64_t droppedRate = 0;       ///< per-tenant byte-rate quota
    uint64_t droppedQuota = 0;      ///< interval/memory quota reached
    uint64_t droppedShed = 0;       ///< tenant shed under pressure
    uint64_t droppedQuarantine = 0; ///< tenant quarantined (poison)

    uint64_t pushbacks = 0;     ///< explicit backpressure replies sent
    uint64_t poisonStrikes = 0; ///< ingest failures observed
    uint64_t epoch = 0;         ///< latest published snapshot epoch
    uint64_t memoryBytes = 0;   ///< live footprint charged to budget

    uint64_t
    dropped() const
    {
        return droppedQueueFull + droppedRate + droppedQuota +
               droppedShed + droppedQuarantine;
    }
};

/** Aligned per-tenant stats table with a header row. */
std::string
renderTenantStatsTable(const std::vector<TenantStatsRow> &rows);

} // namespace mhp

#endif // MHP_ANALYSIS_SNAPSHOT_TEXT_H
