#include "analysis/sweep_wire.h"

#include "trace/event_class.h"

namespace mhp {

namespace {

/** StatusCode travels as its enum ordinal; reject unknown values. */
bool
statusCodeFromWire(uint8_t v, StatusCode &code)
{
    switch (v) {
      case static_cast<uint8_t>(StatusCode::Ok):
      case static_cast<uint8_t>(StatusCode::InvalidArgument):
      case static_cast<uint8_t>(StatusCode::NotFound):
      case static_cast<uint8_t>(StatusCode::CorruptData):
      case static_cast<uint8_t>(StatusCode::IoError):
      case static_cast<uint8_t>(StatusCode::FailedPrecondition):
      case static_cast<uint8_t>(StatusCode::Cancelled):
      case static_cast<uint8_t>(StatusCode::DeadlineExceeded):
        code = static_cast<StatusCode>(v);
        return true;
      default:
        return false;
    }
}

Status
malformed(const char *what)
{
    return Status::corruptDataf("malformed %s payload", what);
}

} // namespace

const char *
sweepMsgName(uint8_t type)
{
    switch (static_cast<SweepMsg>(type)) {
      case SweepMsg::Hello: return "Hello";
      case SweepMsg::Plan: return "Plan";
      case SweepMsg::Ready: return "Ready";
      case SweepMsg::Grant: return "Grant";
      case SweepMsg::Result: return "Result";
      case SweepMsg::Quarantine: return "Quarantine";
      case SweepMsg::Heartbeat: return "Heartbeat";
      case SweepMsg::Trim: return "Trim";
      case SweepMsg::TrimAck: return "TrimAck";
      case SweepMsg::Shutdown: return "Shutdown";
      case SweepMsg::Bye: return "Bye";
    }
    return "unknown";
}

void
encodeHello(ByteBuffer &out, const WireHello &hello)
{
    out.u32(hello.protoVersion);
    out.u64(hello.pid);
}

Status
decodeHello(const uint8_t *data, size_t size, WireHello &hello)
{
    ByteCursor cursor(data, size);
    if (!cursor.u32(hello.protoVersion) || !cursor.u64(hello.pid) ||
        !cursor.atEnd())
        return malformed("Hello");
    return Status::ok();
}

void
encodePlan(ByteBuffer &out, const WirePlan &plan)
{
    const SweepPlan &p = plan.plan;
    out.str(plan.tracePath);
    out.u64(plan.traceFingerprint);
    out.u64(p.benchmarks.size());
    for (const std::string &name : p.benchmarks)
        out.str(name);
    out.u8(profileKindToByte(p.kind));
    out.u64(p.configs.size());
    for (const SweepConfig &config : p.configs) {
        out.str(config.label);
        const ProfilerConfig &c = config.config;
        out.u64(c.intervalLength);
        out.f64(c.candidateThreshold);
        out.u64(c.totalHashEntries);
        out.u32(c.numHashTables);
        out.u32(c.counterBits);
        out.u8(c.retaining ? 1 : 0);
        out.u8(c.resetOnPromote ? 1 : 0);
        out.u8(c.conservativeUpdate ? 1 : 0);
        out.u8(c.shielding ? 1 : 0);
        out.u8(c.flushHashTables ? 1 : 0);
        out.u64(c.accumulatorEntries);
        out.u64(c.seed);
    }
    out.u64(p.intervalLengths.size());
    for (uint64_t length : p.intervalLengths)
        out.u64(length);
    out.u64(p.intervals);
    out.u64(p.workloadSeed);
    out.u64(p.batchSize);
    out.u32(plan.maxAttempts);
    out.u64(plan.cellDeadlineMs);
    out.u64(plan.backoffBaseMs);
    out.u64(plan.backoffCapMs);
    out.u64(plan.backoffSeed);
    out.str(plan.failpointSpec);
    out.u64(plan.failpointSeed);
    out.u64(plan.planFingerprint);
}

Status
decodePlan(const uint8_t *data, size_t size, WirePlan &plan)
{
    ByteCursor cursor(data, size);
    SweepPlan &p = plan.plan;
    if (!cursor.str(plan.tracePath) ||
        !cursor.u64(plan.traceFingerprint))
        return malformed("Plan");

    uint64_t benchmarks;
    if (!cursor.u64(benchmarks) ||
        benchmarks > cursor.remaining() / 8)
        return malformed("Plan");
    p.benchmarks.resize(benchmarks);
    for (std::string &name : p.benchmarks) {
        if (!cursor.str(name))
            return malformed("Plan");
    }
    uint8_t kindByte;
    if (!cursor.u8(kindByte))
        return malformed("Plan");
    const std::optional<ProfileKind> kind = profileKindFromByte(kindByte);
    if (!kind)
        return Status::corruptData(
            "Plan payload carries an unknown profile kind");
    p.kind = *kind;

    uint64_t configs;
    if (!cursor.u64(configs) || configs > cursor.remaining() / 8)
        return malformed("Plan");
    p.configs.resize(configs);
    for (SweepConfig &config : p.configs) {
        ProfilerConfig &c = config.config;
        uint32_t tables, counterBits;
        uint8_t retaining, reset, conservative, shielding, flush;
        if (!cursor.str(config.label) ||
            !cursor.u64(c.intervalLength) ||
            !cursor.f64(c.candidateThreshold) ||
            !cursor.u64(c.totalHashEntries) || !cursor.u32(tables) ||
            !cursor.u32(counterBits) || !cursor.u8(retaining) ||
            !cursor.u8(reset) || !cursor.u8(conservative) ||
            !cursor.u8(shielding) || !cursor.u8(flush) ||
            !cursor.u64(c.accumulatorEntries) || !cursor.u64(c.seed))
            return malformed("Plan");
        c.numHashTables = tables;
        c.counterBits = counterBits;
        c.retaining = retaining != 0;
        c.resetOnPromote = reset != 0;
        c.conservativeUpdate = conservative != 0;
        c.shielding = shielding != 0;
        c.flushHashTables = flush != 0;
    }

    uint64_t lengths;
    if (!cursor.u64(lengths) || lengths > cursor.remaining() / 8)
        return malformed("Plan");
    p.intervalLengths.resize(lengths);
    for (uint64_t &length : p.intervalLengths) {
        if (!cursor.u64(length))
            return malformed("Plan");
    }

    if (!cursor.u64(p.intervals) || !cursor.u64(p.workloadSeed) ||
        !cursor.u64(p.batchSize) || !cursor.u32(plan.maxAttempts) ||
        !cursor.u64(plan.cellDeadlineMs) ||
        !cursor.u64(plan.backoffBaseMs) ||
        !cursor.u64(plan.backoffCapMs) ||
        !cursor.u64(plan.backoffSeed) ||
        !cursor.str(plan.failpointSpec) ||
        !cursor.u64(plan.failpointSeed) ||
        !cursor.u64(plan.planFingerprint) || !cursor.atEnd())
        return malformed("Plan");

    // Sanity bounds the constructor would otherwise abort on.
    if (p.benchmarks.empty() && plan.tracePath.empty())
        return Status::corruptData(
            "Plan payload has neither benchmarks nor a trace");
    if (p.configs.empty())
        return Status::corruptData("Plan payload has no configs");
    if (p.intervals == 0)
        return Status::corruptData("Plan payload has zero intervals");
    if (plan.maxAttempts == 0)
        return Status::corruptData("Plan payload has zero attempts");
    for (const SweepConfig &config : p.configs) {
        if (Status bad = config.config.check(); !bad.isOk()) {
            return Status::corruptData("Plan payload config invalid: " +
                                       bad.message());
        }
    }
    return Status::ok();
}

void
encodeLease(ByteBuffer &out, const WireLease &lease)
{
    out.u64(lease.leaseId);
    out.u64(lease.begin);
    out.u64(lease.end);
}

Status
decodeLease(const uint8_t *data, size_t size, WireLease &lease)
{
    ByteCursor cursor(data, size);
    if (!cursor.u64(lease.leaseId) || !cursor.u64(lease.begin) ||
        !cursor.u64(lease.end) || !cursor.atEnd())
        return malformed("lease");
    if (lease.end < lease.begin)
        return Status::corruptData("lease range is inverted");
    return Status::ok();
}

void
encodeResult(ByteBuffer &out, uint64_t leaseId, uint64_t cellIndex,
             const SweepCellResult &cell)
{
    out.u64(leaseId);
    serializeCellRecord(out, cellIndex, cell);
}

Status
decodeResult(const uint8_t *data, size_t size, uint64_t &leaseId,
             uint64_t &cellIndex, SweepCellResult &cell)
{
    ByteCursor cursor(data, size);
    if (!cursor.u64(leaseId) ||
        !deserializeCellRecord(cursor, cellIndex, cell))
        return malformed("Result");
    return Status::ok();
}

void
encodeQuarantine(ByteBuffer &out, const WireQuarantine &q)
{
    out.u64(q.leaseId);
    out.u64(q.cellIndex);
    out.u32(q.attempts);
    out.u8(static_cast<uint8_t>(q.code));
    out.str(q.message);
}

Status
decodeQuarantine(const uint8_t *data, size_t size, WireQuarantine &q)
{
    ByteCursor cursor(data, size);
    uint8_t code;
    if (!cursor.u64(q.leaseId) || !cursor.u64(q.cellIndex) ||
        !cursor.u32(q.attempts) || !cursor.u8(code) ||
        !cursor.str(q.message) || !cursor.atEnd())
        return malformed("Quarantine");
    if (!statusCodeFromWire(code, q.code) || q.code == StatusCode::Ok)
        return Status::corruptData(
            "Quarantine payload carries an invalid status code");
    return Status::ok();
}

void
encodeHeartbeat(ByteBuffer &out, uint64_t cellsDone)
{
    out.u64(cellsDone);
}

Status
decodeHeartbeat(const uint8_t *data, size_t size, uint64_t &cellsDone)
{
    ByteCursor cursor(data, size);
    if (!cursor.u64(cellsDone) || !cursor.atEnd())
        return malformed("Heartbeat");
    return Status::ok();
}

} // namespace mhp
