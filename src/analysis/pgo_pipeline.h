/**
 * @file
 * The closed profile→optimize→re-execute loop.
 *
 * Everything upstream of this file measures profiler *accuracy*
 * (weighted error against a perfect profile). This pipeline measures
 * what the paper motivates profiling for in the first place: the
 * performance a client optimization realizes from the profile. It
 * closes the loop end to end, entirely in-process:
 *
 *  1. generate — a seeded mini-CPU program (sim/codegen);
 *  2. profile — run it under Ball–Larus path instrumentation
 *     (sim/path_profile) and feed the <routineId, pathId> stream to
 *     each hardware-profiler configuration under test;
 *  3. optimize — lower each configuration's captured hot paths
 *     through the kind-aware ProfileView into formed traces
 *     (opt/trace_formation), selecting the paths worth laying out;
 *  4. re-execute — replay the recorded path stream under a simple
 *     trace-cache cost model (straight-line instructions are free of
 *     fetch breaks; every control transfer off a selected trace costs
 *     `branchPenalty` cycles) and report the realized speedup next to
 *     the profile's weighted error.
 *
 * The event stream is recorded once and shared by every configuration
 * and by the cost model, so the whole report is a pure function of
 * (options, seed): same-seed reruns are byte-identical, and an oracle
 * selection (exact per-interval counts) bounds each configuration
 * from above.
 */

#ifndef MHP_ANALYSIS_PGO_PIPELINE_H
#define MHP_ANALYSIS_PGO_PIPELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sweep_runner.h"
#include "opt/profile_view.h"
#include "sim/codegen.h"
#include "sim/path_profile.h"

namespace mhp {

/**
 * PathDecoder over a BallLarusNumbering: expands a captured
 * <routineEntryPC, pathId> tuple into the branch edges of its last
 * acyclic path (composite ids are reduced modulo numPaths). Tuples
 * naming no known routine decode to nothing.
 */
class BallLarusPathDecoder final : public PathDecoder
{
  public:
    explicit BallLarusPathDecoder(const BallLarusNumbering &numbering)
        : num(numbering)
    {
    }

    std::vector<Tuple> decode(const Tuple &path) const override;

  private:
    const BallLarusNumbering &num;
};

/** Everything a PgoPipeline run is parameterized by. */
struct PgoOptions
{
    /** The program to generate, profile, and re-execute. */
    CodegenConfig program;

    /** Ball–Larus iteration depth k (1 = classic acyclic paths). */
    unsigned kIterations = 1;

    /** Profile intervals and events (completed paths) per interval. */
    uint64_t intervals = 8;
    uint64_t intervalLength = 10'000;

    /**
     * Cost-model price of a control transfer that leaves a selected
     * trace (fetch break / misfetch), in cycles. On-trace transfers
     * cost 1.
     */
    double branchPenalty = 3.0;

    /**
     * Profiler configurations to evaluate. Each config's
     * intervalLength is overridden by `intervalLength` above so every
     * configuration scores the same stream cut the same way.
     */
    std::vector<SweepConfig> configs;
};

/** Per-configuration outcome of the closed loop. */
struct PgoConfigReport
{
    std::string label;

    /** Weighted profile error against the perfect profile (percent). */
    double avgErrorPercent = 0.0;

    /** Distinct path tuples the profiler captured across intervals. */
    uint64_t hotPaths = 0;

    /** Fraction of lowered edge mass absorbed by formed traces. */
    double traceCoverage = 0.0;

    /** Modeled cycles of the re-executed stream with this selection. */
    double optimizedCost = 0.0;

    /** baselineCost / optimizedCost. */
    double speedup = 0.0;

    /** Speedup an exact (oracle) selection at the same threshold gets. */
    double oracleSpeedup = 0.0;
};

/** The full machine-readable report of one pipeline run. */
struct PgoReport
{
    uint64_t pathEvents = 0;    ///< recorded path tuples
    uint64_t distinctPaths = 0; ///< distinct tuples in the stream
    uint64_t brokenPaths = 0;   ///< transitions the tracker dropped
    uint64_t routines = 0;      ///< routines in the numbering
    uint64_t kIterations = 1;   ///< requested k
    double baselineCost = 0.0;  ///< modeled cycles, nothing selected
    std::vector<PgoConfigReport> configs;
};

/** Runs the generate→profile→optimize→re-execute loop. */
class PgoPipeline
{
  public:
    explicit PgoPipeline(PgoOptions options);

    /** Execute the full loop. Deterministic in the options. */
    PgoReport run() const;

    const PgoOptions &options() const { return opts; }

  private:
    PgoOptions opts;
};

/**
 * Render a report as deterministic JSON (fixed key order, %.6f
 * floats): byte-identical for byte-identical reports.
 */
std::string renderPgoJson(const PgoReport &report);

} // namespace mhp

#endif // MHP_ANALYSIS_PGO_PIPELINE_H
