/**
 * @file
 * Coordinator side of the distributed sweep (sweep_distributed.h):
 * a single-threaded poll() loop that shards the missing cells of a
 * SweepPlan into leases, hands them to workers over the wire
 * protocol, steals work back from busy workers for idle ones,
 * declares silent workers dead (repooling and, for spawned workers,
 * respawning), and journals every completed cell plus the lease
 * accounting trail so a kill -9 of anything resumes bit-identically.
 *
 * Concurrency model: the coordinator never computes a cell and never
 * blocks on a single worker — all sockets are drained from one poll()
 * loop, so a stalled or malicious peer can delay only itself. All
 * determinism lives worker-side (SweepRunner::runCellResilient);
 * the coordinator only routes, deduplicates, and merges into
 * cell-indexed slots, which is why the merged report cannot depend on
 * scheduling (see docs/DISTRIBUTED.md).
 */

#include "analysis/sweep_distributed.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/sweep_journal.h"
#include "analysis/sweep_wire.h"
#include "support/cancel.h"
#include "support/wire.h"

namespace mhp {

namespace {

int64_t
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
defaultSocketPath()
{
    return "/tmp/mhprof-coord-" + std::to_string(getpid()) + ".sock";
}

/** Resolve mhprof_worker next to the running executable. */
std::string
siblingWorkerBinary()
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "mhprof_worker";
    buf[n] = '\0';
    const std::string exe(buf);
    const size_t slash = exe.rfind('/');
    if (slash == std::string::npos)
        return "mhprof_worker";
    return exe.substr(0, slash + 1) + "mhprof_worker";
}

/** An unclaimed cell range [begin, end). */
struct Range
{
    uint64_t begin = 0;
    uint64_t end = 0;
};

/** One connected worker, as the coordinator sees it. */
struct WorkerState
{
    WireConn conn;
    uint64_t id = 0;

    /** Nonzero when this process spawned (and must reap) the worker. */
    pid_t pid = 0;

    bool helloed = false;

    /** Worker asked for work (Ready) and has not been granted any. */
    bool wantsWork = false;

    bool hasLease = false;
    WireLease lease;

    /** First cell of the lease we have not seen a Result for. */
    uint64_t nextExpected = 0;

    /** A Trim is in flight; don't steal from this worker again. */
    bool trimPending = false;

    int64_t lastHeardMs = 0;
    bool dead = false;
};

class Coordinator
{
  public:
    Coordinator(const SweepRunner &runner,
                const DistributedSweepOptions &options)
        : runner(runner), opt(options)
    {
    }

    StatusOr<SweepReport> run();

  private:
    Status distribute();
    void buildPending();
    Status spawnOne();
    void reapPendingSpawns();
    void dispatch();
    void grantTo(WorkerState &w, Range range);
    void requestSteal();
    void pollOnce(int timeoutMs);
    void drainWorker(WorkerState &w);
    void handleFrame(WorkerState &w, const WireFrame &frame);
    void advanceLease(WorkerState &w, uint64_t leaseId, uint64_t cell);
    void loseWorker(WorkerState &w, const std::string &why);
    void sweepDead();
    void shutdownAll();
    void journalLease(uint64_t leaseId, uint64_t begin, uint64_t end,
                      uint64_t workerId, LeaseAction action);

    bool
    done() const
    {
        return completedCount + quarantined.size() >= cells;
    }

    void
    note(const char *fmt, ...) const
    {
        if (!opt.verbose)
            return;
        std::va_list ap;
        va_start(ap, fmt);
        std::fprintf(stderr, "mhprof_coord: ");
        std::vfprintf(stderr, fmt, ap);
        std::fprintf(stderr, "\n");
        va_end(ap);
    }

    const SweepRunner &runner;
    const DistributedSweepOptions &opt;
    size_t cells = 0;
    std::string socketPath;
    std::string workerBinary;

    SweepReport report;
    std::vector<uint8_t> completedFlag;
    uint64_t completedCount = 0;
    std::map<uint64_t, QuarantinedCell> quarantined;

    std::deque<Range> pending;
    std::vector<std::unique_ptr<WorkerState>> workers;
    std::set<pid_t> pendingSpawns;
    std::unordered_map<uint64_t, unsigned> cellDeaths;

    WireListener listener;
    ByteBuffer planBuf;
    CheckpointJournal journal;
    bool journaling = false;

    uint64_t nextLeaseId = 1;
    uint64_t nextWorkerId = 1;
    unsigned restartsUsed = 0;
    bool shuttingDown = false;

    /** First unrecoverable error (journal I/O); aborts the run. */
    Status fatal = Status::ok();
};

StatusOr<SweepReport>
Coordinator::run()
{
    if (opt.workers == 0 && !opt.acceptExternal)
        return Status::invalidArgument(
            "distributed sweep needs spawned workers (--workers) or an "
            "external-attach socket (--accept-external)");
    if (opt.maxCellDeaths == 0)
        return Status::invalidArgument("maxCellDeaths must be >= 1");

    cells = runner.cellCount();
    report.results.assign(cells, {});
    completedFlag.assign(cells, 0);

    if (!opt.resilience.checkpointPath.empty()) {
        StatusOr<LoadedCheckpoint> loaded =
            loadSweepCheckpoint(opt.resilience.checkpointPath,
                                runner.planFingerprint(), cells);
        if (!loaded.isOk())
            return loaded.status();
        for (auto &entry : loaded->completed) {
            report.results[entry.first] = std::move(entry.second);
            completedFlag[entry.first] = 1;
            ++completedCount;
        }
        if (loaded->exists)
            note("resumed checkpoint: %" PRIu64 " of %zu cells, "
                 "%zu lease records",
                 completedCount, cells, loaded->leases.size());
        MHP_RETURN_IF_ERROR(
            journal.open(opt.resilience.checkpointPath,
                         runner.planFingerprint(), *loaded));
        journaling = true;
    }

    buildPending();

    if (!done()) {
        const Status run = distribute();
        if (!run.isOk())
            return run;
        if (!fatal.isOk())
            return fatal;
    }

    if (journaling)
        MHP_RETURN_IF_ERROR(journal.finish());

    for (auto &entry : quarantined)
        report.quarantined.push_back(std::move(entry.second));
    report.completedCells = completedCount;
    return std::move(report);
}

void
Coordinator::buildPending()
{
    uint64_t chunk = opt.chunkCells;
    if (chunk == 0) {
        const uint64_t denom = 8ull * std::max(opt.workers, 1u);
        chunk = std::clamp<uint64_t>(cells / denom, 1, 256);
    }
    uint64_t i = 0;
    while (i < cells) {
        if (completedFlag[i]) {
            ++i;
            continue;
        }
        uint64_t j = i;
        while (j < cells && !completedFlag[j] && j - i < chunk)
            ++j;
        pending.push_back({i, j});
        i = j;
    }
}

Status
Coordinator::distribute()
{
    socketPath =
        opt.socketPath.empty() ? defaultSocketPath() : opt.socketPath;
    workerBinary = opt.workerBinary.empty() ? siblingWorkerBinary()
                                            : opt.workerBinary;

    StatusOr<WireListener> bound = WireListener::bind(socketPath);
    if (!bound.isOk())
        return bound.status();
    listener = std::move(*bound);
    note("listening on %s", socketPath.c_str());

    const SweepPlan &p = runner.plan();
    WirePlan env;
    env.plan = p;
    env.plan.trace = nullptr; // travels as path + fingerprint
    if (p.trace) {
        env.tracePath = p.trace->path();
        env.traceFingerprint = p.trace->fingerprint();
    }
    env.maxAttempts = opt.resilience.maxAttempts;
    env.cellDeadlineMs = opt.resilience.cellDeadlineMs;
    env.backoffBaseMs = opt.resilience.backoffBaseMs;
    env.backoffCapMs = opt.resilience.backoffCapMs;
    env.backoffSeed = opt.resilience.backoffSeed;
    env.failpointSpec = opt.failpointSpec;
    env.failpointSeed = opt.failpointSeed;
    env.planFingerprint = runner.planFingerprint();
    encodePlan(planBuf, env);

    for (unsigned i = 0; i < opt.workers; ++i)
        MHP_RETURN_IF_ERROR(spawnOne());

    Status result = Status::ok();
    int64_t zeroWorkersSince = steadyNowMs();
    while (true) {
        if (opt.resilience.cancel &&
            opt.resilience.cancel->cancelled()) {
            report.interrupted = true;
            break;
        }
        if (done() || !fatal.isOk())
            break;

        dispatch();
        if (!fatal.isOk())
            break;

        pollOnce(100);
        if (!fatal.isOk())
            break;

        if (!workers.empty() || !pendingSpawns.empty()) {
            zeroWorkersSince = steadyNowMs();
        } else {
            const int64_t grace = static_cast<int64_t>(
                std::max<uint64_t>(opt.workerTimeoutMs * 4, 2000));
            if (steadyNowMs() - zeroWorkersSince > grace) {
                result = Status::ioError(
                    "distributed sweep stalled: no workers connected "
                    "and the restart budget is exhausted");
                break;
            }
        }
    }

    shutdownAll();
    listener.close();
    return result;
}

Status
Coordinator::spawnOne()
{
    std::vector<std::string> args = {
        workerBinary,
        "--connect=" + socketPath,
        "--heartbeat-ms=" + std::to_string(opt.heartbeatMs),
        "--connect-retry-ms=10000",
    };
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0)
        return Status::ioError(std::string("fork failed: ") +
                               std::strerror(errno));
    if (pid == 0) {
        execv(workerBinary.c_str(), argv.data());
        // Diagnose on stderr; the parent sees the exit via waitpid.
        std::fprintf(stderr, "mhprof_worker exec failed: %s: %s\n",
                     workerBinary.c_str(), std::strerror(errno));
        _exit(127);
    }
    pendingSpawns.insert(pid);
    note("spawned worker pid %d", static_cast<int>(pid));
    return Status::ok();
}

void
Coordinator::reapPendingSpawns()
{
    for (auto it = pendingSpawns.begin(); it != pendingSpawns.end();) {
        int status = 0;
        if (waitpid(*it, &status, WNOHANG) == *it) {
            note("worker pid %d exited before handshake",
                 static_cast<int>(*it));
            it = pendingSpawns.erase(it);
            if (!shuttingDown && restartsUsed < opt.maxWorkerRestarts) {
                ++restartsUsed;
                (void)spawnOne(); // a fork failure ends via the
                                  // zero-workers watchdog
            }
        } else {
            ++it;
        }
    }
}

void
Coordinator::dispatch()
{
    for (auto &w : workers) {
        if (pending.empty())
            break;
        if (w->dead || !w->helloed || !w->wantsWork || w->hasLease)
            continue;
        Range range = pending.front();
        pending.pop_front();
        grantTo(*w, range);
    }
    sweepDead();
    if (pending.empty())
        requestSteal();
}

void
Coordinator::grantTo(WorkerState &w, Range range)
{
    WireLease lease;
    lease.leaseId = nextLeaseId++;
    lease.begin = range.begin;
    lease.end = range.end;

    journalLease(lease.leaseId, lease.begin, lease.end, w.id,
                 LeaseAction::Acquire);
    if (!fatal.isOk())
        return;

    ByteBuffer payload;
    encodeLease(payload, lease);
    const Status sent =
        w.conn.send(static_cast<uint8_t>(SweepMsg::Grant), payload,
                    opt.workerTimeoutMs);
    if (!sent.isOk()) {
        // Claim the lease first so loseWorker() repools and journals
        // the reclaim; otherwise the range would simply vanish.
        w.hasLease = true;
        w.lease = lease;
        w.nextExpected = lease.begin;
        loseWorker(w, "Grant send failed: " + sent.message());
        return;
    }
    w.hasLease = true;
    w.lease = lease;
    w.nextExpected = lease.begin;
    w.wantsWork = false;
    note("lease %" PRIu64 " [%" PRIu64 ", %" PRIu64 ") -> worker %" PRIu64,
         lease.leaseId, lease.begin, lease.end, w.id);
}

void
Coordinator::requestSteal()
{
    // One idle worker triggers at most one Trim per pass; ranges it
    // frees are granted by the next dispatch().
    WorkerState *idle = nullptr;
    for (auto &w : workers) {
        if (!w->dead && w->helloed && w->wantsWork && !w->hasLease) {
            idle = w.get();
            break;
        }
    }
    if (idle == nullptr)
        return;

    WorkerState *busiest = nullptr;
    uint64_t bestRemaining = 1; // a split needs >= 2 cells left
    for (auto &w : workers) {
        if (w->dead || !w->hasLease || w->trimPending)
            continue;
        const uint64_t next = std::max(w->nextExpected, w->lease.begin);
        const uint64_t remaining =
            w->lease.end > next ? w->lease.end - next : 0;
        if (remaining > bestRemaining) {
            busiest = w.get();
            bestRemaining = remaining;
        }
    }
    if (busiest == nullptr)
        return;

    const uint64_t next =
        std::max(busiest->nextExpected, busiest->lease.begin);
    WireLease trim;
    trim.leaseId = busiest->lease.leaseId;
    trim.begin = 0; // unused in a Trim
    trim.end = next + (busiest->lease.end - next + 1) / 2;

    ByteBuffer payload;
    encodeLease(payload, trim);
    const Status sent =
        busiest->conn.send(static_cast<uint8_t>(SweepMsg::Trim),
                           payload, opt.workerTimeoutMs);
    if (!sent.isOk()) {
        loseWorker(*busiest, "Trim send failed: " + sent.message());
        return;
    }
    busiest->trimPending = true;
    note("steal: asked worker %" PRIu64 " to trim lease %" PRIu64
         " to end %" PRIu64,
         busiest->id, trim.leaseId, trim.end);
}

void
Coordinator::pollOnce(int timeoutMs)
{
    std::vector<pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    std::vector<WorkerState *> polled;
    for (auto &w : workers) {
        if (w->dead)
            continue;
        fds.push_back({w->conn.fd(), POLLIN, 0});
        polled.push_back(w.get());
    }

    const int rc = ::poll(fds.data(), fds.size(), timeoutMs);
    if (rc < 0 && errno != EINTR)
        return; // transient; the loop retries

    if (rc > 0 && (fds[0].revents & POLLIN) != 0) {
        StatusOr<WireConn> accepted = listener.accept(10);
        if (accepted.isOk()) {
            auto w = std::make_unique<WorkerState>();
            w->conn = std::move(*accepted);
            w->id = nextWorkerId++;
            w->lastHeardMs = steadyNowMs();
            workers.push_back(std::move(w));
        }
    }

    if (rc > 0) {
        for (size_t i = 0; i < polled.size(); ++i) {
            if (fds[i + 1].revents != 0)
                drainWorker(*polled[i]);
            if (!fatal.isOk())
                return;
        }
    }

    const int64_t now = steadyNowMs();
    for (auto &w : workers) {
        if (!w->dead &&
            now - w->lastHeardMs >
                static_cast<int64_t>(opt.workerTimeoutMs))
            loseWorker(*w, "no frame within the worker timeout");
    }

    reapPendingSpawns();
    sweepDead();
}

void
Coordinator::drainWorker(WorkerState &w)
{
    while (!w.dead && fatal.isOk()) {
        WireFrame frame;
        Status error = Status::ok();
        const FrameDecode decode = w.conn.poll(frame, error);
        if (decode == FrameDecode::NeedMore)
            break;
        if (decode == FrameDecode::Corrupt) {
            loseWorker(w, error.message());
            break;
        }
        w.lastHeardMs = steadyNowMs();
        handleFrame(w, frame);
    }
}

void
Coordinator::handleFrame(WorkerState &w, const WireFrame &frame)
{
    const uint8_t *data = frame.payload.data();
    const size_t size = frame.payload.size();

    if (!w.helloed &&
        frame.type != static_cast<uint8_t>(SweepMsg::Hello)) {
        loseWorker(w, std::string("expected Hello, got ") +
                          sweepMsgName(frame.type));
        return;
    }

    switch (static_cast<SweepMsg>(frame.type)) {
      case SweepMsg::Hello: {
        WireHello hello;
        if (w.helloed || !decodeHello(data, size, hello).isOk()) {
            loseWorker(w, "malformed or repeated Hello");
            return;
        }
        if (hello.protoVersion != kSweepProtoVersion) {
            std::fprintf(stderr,
                         "mhprof_coord: worker pid %" PRIu64
                         " speaks protocol %u, want %u; dropping it\n",
                         hello.pid, hello.protoVersion,
                         kSweepProtoVersion);
            loseWorker(w, "protocol version mismatch");
            return;
        }
        w.helloed = true;
        const auto spawned =
            pendingSpawns.find(static_cast<pid_t>(hello.pid));
        if (spawned != pendingSpawns.end()) {
            w.pid = *spawned;
            pendingSpawns.erase(spawned);
        }
        const Status sent =
            w.conn.send(static_cast<uint8_t>(SweepMsg::Plan), planBuf,
                        opt.workerTimeoutMs);
        if (!sent.isOk()) {
            loseWorker(w, "Plan send failed: " + sent.message());
            return;
        }
        note("worker %" PRIu64 " connected (pid %" PRIu64 ")", w.id,
             hello.pid);
        return;
      }

      case SweepMsg::Ready:
        w.wantsWork = true;
        return;

      case SweepMsg::Result: {
        uint64_t leaseId = 0;
        uint64_t cell = 0;
        SweepCellResult result;
        if (!decodeResult(data, size, leaseId, cell, result).isOk() ||
            cell >= cells) {
            loseWorker(w, "malformed Result");
            return;
        }
        if (!completedFlag[cell] && quarantined.count(cell) == 0) {
            report.results[cell] = std::move(result);
            completedFlag[cell] = 1;
            ++completedCount;
            if (journaling) {
                const Status appended =
                    journal.append(cell, report.results[cell]);
                if (!appended.isOk()) {
                    fatal = appended;
                    return;
                }
            }
        }
        advanceLease(w, leaseId, cell);
        return;
      }

      case SweepMsg::Quarantine: {
        WireQuarantine q;
        if (!decodeQuarantine(data, size, q).isOk() ||
            q.cellIndex >= cells) {
            loseWorker(w, "malformed Quarantine");
            return;
        }
        if (!completedFlag[q.cellIndex] &&
            quarantined.count(q.cellIndex) == 0) {
            quarantined.emplace(
                q.cellIndex,
                runner.quarantineFor(q.cellIndex, q.attempts,
                                     Status(q.code, q.message)));
        }
        advanceLease(w, q.leaseId, q.cellIndex);
        return;
      }

      case SweepMsg::Heartbeat:
        return; // lastHeardMs is already refreshed per frame

      case SweepMsg::TrimAck: {
        WireLease ack;
        if (!decodeLease(data, size, ack).isOk()) {
            loseWorker(w, "malformed TrimAck");
            return;
        }
        w.trimPending = false;
        if (!w.hasLease || ack.leaseId != w.lease.leaseId)
            return; // raced with lease completion; nothing to repool
        // TrimAck.end is the actual new end the worker settled on.
        if (ack.end < w.lease.begin || ack.end > w.lease.end) {
            loseWorker(w, "TrimAck outside the lease");
            return;
        }
        const uint64_t oldEnd = w.lease.end;
        w.lease.end = ack.end;
        if (ack.end < oldEnd) {
            pending.push_front({ack.end, oldEnd});
            journalLease(w.lease.leaseId, ack.end, oldEnd, w.id,
                         LeaseAction::Trim);
            note("worker %" PRIu64 " trimmed lease %" PRIu64
                 " to %" PRIu64 "; repooled [%" PRIu64 ", %" PRIu64 ")",
                 w.id, ack.leaseId, ack.end, ack.end, oldEnd);
        }
        if (std::max(w.nextExpected, w.lease.begin) >= w.lease.end) {
            journalLease(w.lease.leaseId, w.lease.begin, w.lease.end,
                         w.id, LeaseAction::Complete);
            w.hasLease = false;
        }
        return;
      }

      case SweepMsg::Bye: {
        note("worker %" PRIu64 " said goodbye", w.id);
        if (w.hasLease) {
            // A voluntary exit mid-lease: repool without charging a
            // death to the cell.
            const uint64_t next =
                std::max(w.nextExpected, w.lease.begin);
            if (next < w.lease.end) {
                pending.push_front({next, w.lease.end});
                journalLease(w.lease.leaseId, next, w.lease.end, w.id,
                             LeaseAction::Reclaim);
            }
            w.hasLease = false;
        }
        w.dead = true;
        w.conn.close();
        if (w.pid > 0) {
            waitpid(w.pid, nullptr, 0);
            w.pid = 0;
        }
        return;
      }

      case SweepMsg::Plan:
      case SweepMsg::Grant:
      case SweepMsg::Trim:
      case SweepMsg::Shutdown:
        loseWorker(w, std::string("unexpected ") +
                          sweepMsgName(frame.type) + " from a worker");
        return;
    }
    loseWorker(w, "unknown frame type");
}

void
Coordinator::advanceLease(WorkerState &w, uint64_t leaseId,
                          uint64_t cell)
{
    if (!w.hasLease || w.lease.leaseId != leaseId)
        return; // stale result from a reclaimed lease
    if (cell >= w.lease.begin && cell < w.lease.end)
        w.nextExpected = std::max(w.nextExpected, cell + 1);
    if (std::max(w.nextExpected, w.lease.begin) >= w.lease.end) {
        journalLease(w.lease.leaseId, w.lease.begin, w.lease.end, w.id,
                     LeaseAction::Complete);
        w.hasLease = false;
        w.trimPending = false;
    }
}

void
Coordinator::loseWorker(WorkerState &w, const std::string &why)
{
    if (w.dead)
        return;
    w.dead = true;
    note("worker %" PRIu64 " lost: %s", w.id, why.c_str());

    if (w.hasLease) {
        const uint64_t next = std::max(w.nextExpected, w.lease.begin);
        if (next < w.lease.end) {
            journalLease(w.lease.leaseId, next, w.lease.end, w.id,
                         LeaseAction::Reclaim);
            const unsigned deaths = ++cellDeaths[next];
            if (deaths >= opt.maxCellDeaths && !completedFlag[next] &&
                quarantined.count(next) == 0) {
                // The cell the worker was computing keeps killing its
                // host: quarantine it instead of retrying forever.
                quarantined.emplace(
                    next,
                    runner.quarantineFor(
                        next, deaths,
                        Status::ioError(
                            "cell killed " + std::to_string(deaths) +
                            " workers; quarantined as poisonous")));
                note("cell %" PRIu64 " quarantined after %u worker "
                     "deaths",
                     next, deaths);
                if (next + 1 < w.lease.end)
                    pending.push_front({next + 1, w.lease.end});
            } else {
                pending.push_front({next, w.lease.end});
            }
        }
        w.hasLease = false;
    }

    w.conn.close();
    if (w.pid > 0) {
        kill(w.pid, SIGKILL);
        waitpid(w.pid, nullptr, 0);
        w.pid = 0;
        if (!shuttingDown && restartsUsed < opt.maxWorkerRestarts) {
            ++restartsUsed;
            (void)spawnOne();
        }
    }
}

void
Coordinator::sweepDead()
{
    workers.erase(std::remove_if(workers.begin(), workers.end(),
                                 [](const auto &w) { return w->dead; }),
                  workers.end());
}

void
Coordinator::shutdownAll()
{
    shuttingDown = true;
    const ByteBuffer empty;
    for (auto &w : workers) {
        if (!w->dead)
            (void)w->conn.send(
                static_cast<uint8_t>(SweepMsg::Shutdown), empty, 1000);
    }

    // Give workers a moment to say Bye so spawned ones are reaped
    // cleanly; stragglers are killed below.
    const int64_t deadline = steadyNowMs() + 2000;
    while (steadyNowMs() < deadline) {
        bool anyLive = false;
        for (auto &w : workers)
            anyLive = anyLive || !w->dead;
        if (!anyLive)
            break;
        pollOnce(100);
    }

    for (auto &w : workers) {
        if (!w->dead) {
            w->conn.close();
            w->dead = true;
        }
        if (w->pid > 0) {
            kill(w->pid, SIGKILL);
            waitpid(w->pid, nullptr, 0);
            w->pid = 0;
        }
    }
    sweepDead();
    for (const pid_t pid : pendingSpawns) {
        kill(pid, SIGKILL);
        waitpid(pid, nullptr, 0);
    }
    pendingSpawns.clear();
}

void
Coordinator::journalLease(uint64_t leaseId, uint64_t begin,
                          uint64_t end, uint64_t workerId,
                          LeaseAction action)
{
    if (!journaling || !fatal.isOk())
        return;
    LeaseRecord lease;
    lease.leaseId = leaseId;
    lease.begin = begin;
    lease.end = end;
    lease.workerId = workerId;
    lease.action = action;
    const Status appended = journal.appendLease(lease);
    if (!appended.isOk())
        fatal = appended;
}

} // namespace

StatusOr<SweepReport>
runDistributedSweep(const SweepPlan &plan,
                    const DistributedSweepOptions &options)
{
    const SweepRunner runner(plan);
    Coordinator coordinator(runner, options);
    return coordinator.run();
}

} // namespace mhp
