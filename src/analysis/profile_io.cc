#include "analysis/profile_io.h"

#include <cstring>

#include "support/panic.h"

namespace mhp {

namespace {

constexpr char kMagic[8] = {'M', 'H', 'P', 'R', 'O', 'F', '1', '\0'};
constexpr size_t kHeaderSize = 32;

void
putLe64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
getLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

ProfileWriter::ProfileWriter(const std::string &path, ProfileKind kind,
                             uint64_t intervalLength,
                             uint64_t thresholdCount)
    : out(path, std::ios::binary)
{
    if (!out)
        return;
    uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    header[8] = static_cast<uint8_t>(kind);
    putLe64(header + 16, intervalLength);
    putLe64(header + 24, thresholdCount);
    out.write(reinterpret_cast<const char *>(header), kHeaderSize);
}

void
ProfileWriter::writeInterval(const IntervalSnapshot &snapshot)
{
    MHP_ASSERT(ok(), "write on a bad profile stream");
    uint8_t le[8];
    putLe64(le, snapshot.size());
    out.write(reinterpret_cast<const char *>(le), 8);
    for (const auto &cand : snapshot) {
        uint8_t rec[24];
        putLe64(rec, cand.tuple.first);
        putLe64(rec + 8, cand.tuple.second);
        putLe64(rec + 16, cand.count);
        out.write(reinterpret_cast<const char *>(rec), 24);
    }
    ++intervals;
}

ProfileReader::ProfileReader(const std::string &path)
    : in(path, std::ios::binary)
{
    MHP_REQUIRE(static_cast<bool>(in), "cannot open profile file");
    uint8_t header[kHeaderSize];
    in.read(reinterpret_cast<char *>(header), kHeaderSize);
    MHP_REQUIRE(in.gcount() == kHeaderSize, "truncated profile header");
    MHP_REQUIRE(std::memcmp(header, kMagic, sizeof(kMagic)) == 0,
                "bad profile magic");
    MHP_REQUIRE(header[8] <=
                    static_cast<uint8_t>(ProfileKind::Mispredict),
                "unknown profile kind");
    profileKind = static_cast<ProfileKind>(header[8]);
    length = getLe64(header + 16);
    threshold = getLe64(header + 24);
}

bool
ProfileReader::readInterval(IntervalSnapshot &snapshot)
{
    uint8_t le[8];
    in.read(reinterpret_cast<char *>(le), 8);
    if (in.gcount() == 0)
        return false; // clean EOF
    MHP_REQUIRE(in.gcount() == 8, "truncated profile interval header");
    const uint64_t count = getLe64(le);
    IntervalSnapshot out_snapshot;
    out_snapshot.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        uint8_t rec[24];
        in.read(reinterpret_cast<char *>(rec), 24);
        MHP_REQUIRE(in.gcount() == 24, "truncated profile record");
        CandidateCount cand;
        cand.tuple.first = getLe64(rec);
        cand.tuple.second = getLe64(rec + 8);
        cand.count = getLe64(rec + 16);
        out_snapshot.push_back(cand);
    }
    snapshot = std::move(out_snapshot);
    return true;
}

std::vector<IntervalSnapshot>
ProfileReader::readAll()
{
    std::vector<IntervalSnapshot> all;
    IntervalSnapshot snapshot;
    while (readInterval(snapshot))
        all.push_back(std::move(snapshot));
    return all;
}

} // namespace mhp
