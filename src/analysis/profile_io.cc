#include "analysis/profile_io.h"

#include <cstdio>
#include <cstring>

#include "support/bytes.h"
#include "support/crc32.h"
#include "support/durable.h"
#include "support/failpoint.h"
#include "trace/event_class.h"

namespace mhp {

namespace {

constexpr char kMagicV3[8] = {'M', 'H', 'P', 'R', 'O', 'F', '3', '\0'};
constexpr char kMagicV2[8] = {'M', 'H', 'P', 'R', 'O', 'F', '2', '\0'};
constexpr char kMagicV1[8] = {'M', 'H', 'P', 'R', 'O', 'F', '1', '\0'};

/**
 * v2/v3: magic(8) kind(1) pad(7) len(8) thr(8) count(8) crc(4).
 * v3 is byte-identical to v2 except for the magic and the kind byte's
 * domain: v3 kinds come from the event-class registry (including
 * 0xff = Unknown), while v2/v1 files predate Path and accept only the
 * original four values.
 */
constexpr size_t kHeaderSizeV2 = 44;
constexpr size_t kHeaderCrcSpan = 40; ///< bytes the header CRC covers

/** v1: magic(8) kind(1) pad(7) len(8) thr(8). */
constexpr size_t kHeaderSizeV1 = 32;

constexpr size_t kRecordSize = 24;
constexpr size_t kCrcSize = 4;

/** v2/v3 sentinel: the writer is still open (count not yet patched). */
constexpr uint64_t kUnterminated = UINT64_MAX;

/** Serialize a v3 header with the given interval count. */
void
buildHeaderV3(uint8_t (&header)[kHeaderSizeV2], ProfileKind kind,
              uint64_t intervalLength, uint64_t thresholdCount,
              uint64_t intervalCount)
{
    std::memset(header, 0, sizeof(header));
    std::memcpy(header, kMagicV3, sizeof(kMagicV3));
    header[8] = profileKindToByte(kind);
    putLe64(header + 16, intervalLength);
    putLe64(header + 24, thresholdCount);
    putLe64(header + 32, intervalCount);
    putLe32(header + 40, crc32(header, kHeaderCrcSpan));
}

} // namespace

ProfileWriter::ProfileWriter(const std::string &path, ProfileKind kind_,
                             uint64_t intervalLength_,
                             uint64_t thresholdCount_)
    : finalPath(path), tempPath(path + ".tmp"),
      out(tempPath, std::ios::binary | std::ios::trunc), kind(kind_),
      intervalLength(intervalLength_), thresholdCount(thresholdCount_)
{
    if (!out)
        return;
    uint8_t header[kHeaderSizeV2];
    buildHeaderV3(header, kind, intervalLength, thresholdCount,
                  kUnterminated);
    out.write(reinterpret_cast<const char *>(header), kHeaderSizeV2);
}

ProfileWriter::~ProfileWriter()
{
    // Best-effort finalize; callers that care about errors call
    // close() themselves first.
    Status s = close();
    (void)s;
}

Status
ProfileWriter::fail(Status error)
{
    // Latch the first failure: once any write failed (for real or by
    // injection) the temp file is suspect, so later writeInterval()
    // calls refuse and close() discards the temp instead of renaming
    // a partial profile into place.
    if (firstError.isOk())
        firstError = error;
    return error;
}

Status
ProfileWriter::writeInterval(const IntervalSnapshot &snapshot)
{
    if (closed)
        return Status::failedPrecondition(finalPath +
                                          ": write after close");
    if (!firstError.isOk())
        return firstError;
    if (!out)
        return fail(Status::ioError(tempPath +
                                    ": cannot write profile"));

    if (failpointFires("profile.write.enospc", intervals)) {
        return fail(Status::ioError(
            tempPath +
            ": injected ENOSPC (failpoint profile.write.enospc)"));
    }

    ByteBuffer payload;
    payload.u64(snapshot.size());
    for (const auto &cand : snapshot) {
        payload.u64(cand.tuple.first);
        payload.u64(cand.tuple.second);
        payload.u64(cand.count);
    }
    uint8_t crcLe[kCrcSize];
    putLe32(crcLe, crc32(payload.data(), payload.size()));

    if (failpointFires("profile.write.short", intervals)) {
        // A short write really lands some prefix of the record; cut
        // this one in half so the temp file holds torn bytes, exactly
        // like a disk that filled mid-write.
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size() / 2));
        out.flush();
        return fail(Status::ioError(
            tempPath +
            ": injected short write (failpoint profile.write.short)"));
    }

    out.write(reinterpret_cast<const char *>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char *>(crcLe), kCrcSize);
    if (!out)
        return fail(Status::ioError(tempPath + ": short write"));
    ++intervals;
    return Status::ok();
}

Status
ProfileWriter::close()
{
    if (closed)
        return Status::ok();
    closed = true;
    if (!firstError.isOk()) {
        std::remove(tempPath.c_str());
        return firstError;
    }
    if (!out) {
        std::remove(tempPath.c_str());
        return Status::ioError(tempPath + ": cannot open for writing");
    }
    if (failpointFires("profile.close.enospc")) {
        std::remove(tempPath.c_str());
        return Status::ioError(
            tempPath +
            ": injected ENOSPC (failpoint profile.close.enospc)");
    }

    // Back-patch the interval count (and thus the header CRC), then
    // publish the finished file under its final name in one rename.
    uint8_t header[kHeaderSizeV2];
    buildHeaderV3(header, kind, intervalLength, thresholdCount,
                  intervals);
    out.seekp(0);
    out.write(reinterpret_cast<const char *>(header), kHeaderSizeV2);
    out.flush();
    const bool wrote = static_cast<bool>(out);
    out.close();
    if (!wrote) {
        std::remove(tempPath.c_str());
        return Status::ioError(tempPath + ": cannot finalize profile");
    }

    // The rename only publishes the *name* atomically; the data must
    // be on disk first (and the rename itself is only durable once
    // the parent directory is synced) — otherwise a crash right after
    // close() can still surface an empty file under the final name.
    Status synced = failpointFires("profile.fsync")
                        ? Status::ioError(
                              tempPath + ": injected fsync failure "
                                         "(failpoint profile.fsync)")
                        : fsyncFile(tempPath);
    if (!synced.isOk()) {
        std::remove(tempPath.c_str());
        return synced;
    }
    if (failpointFires("profile.rename") ||
        std::rename(tempPath.c_str(), finalPath.c_str()) != 0) {
        std::remove(tempPath.c_str());
        return Status::ioError("cannot rename " + tempPath + " to " +
                               finalPath);
    }
    Status dirSynced =
        failpointFires("profile.dirsync")
            ? Status::ioError(finalPath +
                              ": injected directory fsync failure "
                              "(failpoint profile.dirsync)")
            : fsyncParentDir(finalPath);
    if (!dirSynced.isOk()) {
        // The rename already happened; the profile is complete and
        // valid, just not yet guaranteed durable. Report it — the
        // caller decides whether that is fatal.
        return dirSynced;
    }
    return Status::ok();
}

Status
ProfileReader::corruptHere(const std::string &reason) const
{
    return Status::corruptDataf(
        "%s: %s (offset %llu)", path.c_str(), reason.c_str(),
        static_cast<unsigned long long>(offset));
}

StatusOr<ProfileReader>
ProfileReader::open(const std::string &path)
{
    ProfileReader r;
    r.path = path;
    r.in.open(path, std::ios::binary);
    if (!r.in)
        return Status::notFound(path + ": cannot open profile file");

    r.in.seekg(0, std::ios::end);
    r.fileSize = static_cast<uint64_t>(r.in.tellg());
    r.in.seekg(0);

    uint8_t magic[8];
    r.in.read(reinterpret_cast<char *>(magic), sizeof(magic));
    if (r.in.gcount() != static_cast<std::streamsize>(sizeof(magic)))
        return r.corruptHere("truncated profile header");

    const bool isV3 = std::memcmp(magic, kMagicV3, sizeof(magic)) == 0;
    if (isV3 || std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
        r.version = isV3 ? 3 : 2;
        uint8_t header[kHeaderSizeV2];
        std::memcpy(header, magic, sizeof(magic));
        r.in.read(reinterpret_cast<char *>(header) + sizeof(magic),
                  kHeaderSizeV2 - sizeof(magic));
        if (r.in.gcount() !=
            static_cast<std::streamsize>(kHeaderSizeV2 - sizeof(magic)))
            return r.corruptHere("truncated profile header");
        const uint32_t stored = getLe32(header + 40);
        const uint32_t computed = crc32(header, kHeaderCrcSpan);
        if (stored != computed) {
            return Status::corruptDataf(
                "%s: header CRC mismatch (stored %08x, computed %08x)",
                path.c_str(), stored, computed);
        }
        if (isV3) {
            // v3 kinds come from the registry (0xff = Unknown allowed).
            std::optional<ProfileKind> kind =
                profileKindFromByte(header[8]);
            if (!kind)
                return r.corruptHere("unknown profile kind");
            r.profileKind = *kind;
        } else {
            // v2 predates Path; files written then can only carry the
            // original four values, so anything else is corruption.
            if (header[8] >
                static_cast<uint8_t>(ProfileKind::Mispredict))
                return r.corruptHere("unknown profile kind");
            r.profileKind = static_cast<ProfileKind>(header[8]);
        }
        r.length = getLe64(header + 16);
        r.threshold = getLe64(header + 24);
        r.intervalCount = getLe64(header + 32);
        if (r.intervalCount == kUnterminated) {
            return r.corruptHere(
                "unterminated profile (writer never closed)");
        }
        // Every interval needs at least its count field and CRC, so a
        // corrupt count can never drive reads past the file.
        const uint64_t body = r.fileSize - kHeaderSizeV2;
        if (r.intervalCount > body / (8 + kCrcSize))
            return r.corruptHere("interval count exceeds file size");
        r.offset = kHeaderSizeV2;
        return r;
    }

    if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
        r.version = 1;
        uint8_t header[kHeaderSizeV1];
        std::memcpy(header, magic, sizeof(magic));
        r.in.read(reinterpret_cast<char *>(header) + sizeof(magic),
                  kHeaderSizeV1 - sizeof(magic));
        if (r.in.gcount() !=
            static_cast<std::streamsize>(kHeaderSizeV1 - sizeof(magic)))
            return r.corruptHere("truncated profile header");
        if (header[8] > static_cast<uint8_t>(ProfileKind::Mispredict))
            return r.corruptHere("unknown profile kind");
        r.profileKind = static_cast<ProfileKind>(header[8]);
        r.length = getLe64(header + 16);
        r.threshold = getLe64(header + 24);
        r.offset = kHeaderSizeV1;
        return r;
    }

    return Status::corruptData(path + ": bad profile magic");
}

StatusOr<bool>
ProfileReader::readInterval(IntervalSnapshot &snapshot)
{
    if (version >= 2 && intervalsRead == intervalCount)
        return false;

    uint8_t countLe[8];
    in.read(reinterpret_cast<char *>(countLe), 8);
    if (version == 1 && in.gcount() == 0)
        return false; // v1: clean EOF
    if (in.gcount() != 8)
        return corruptHere("truncated profile interval header");
    const uint64_t count = getLe64(countLe);

    // Bound the allocation and the read loop by what the file can
    // actually hold past this point; a corrupt count field must fail
    // here, not in operator new.
    const uint64_t remaining = fileSize - offset - 8;
    const uint64_t tail = version >= 2 ? kCrcSize : 0;
    if (count > (remaining < tail ? 0 : (remaining - tail)) / kRecordSize)
        return corruptHere("candidate count exceeds remaining file size");

    Crc32 crc;
    crc.update(countLe, sizeof(countLe));

    IntervalSnapshot result;
    result.reserve(count);
    offset += 8;
    for (uint64_t i = 0; i < count; ++i) {
        uint8_t rec[kRecordSize];
        in.read(reinterpret_cast<char *>(rec), kRecordSize);
        if (in.gcount() != static_cast<std::streamsize>(kRecordSize))
            return corruptHere("truncated profile record");
        crc.update(rec, kRecordSize);
        CandidateCount cand;
        cand.tuple.first = getLe64(rec);
        cand.tuple.second = getLe64(rec + 8);
        cand.count = getLe64(rec + 16);
        result.push_back(cand);
        offset += kRecordSize;
    }

    if (version >= 2) {
        uint8_t crcLe[kCrcSize];
        in.read(reinterpret_cast<char *>(crcLe), kCrcSize);
        if (in.gcount() != static_cast<std::streamsize>(kCrcSize))
            return corruptHere("truncated interval CRC");
        const uint32_t stored = getLe32(crcLe);
        if (stored != crc.value()) {
            return Status::corruptDataf(
                "%s: interval %llu CRC mismatch at offset %llu "
                "(stored %08x, computed %08x)",
                path.c_str(),
                static_cast<unsigned long long>(intervalsRead),
                static_cast<unsigned long long>(offset), stored,
                crc.value());
        }
        offset += kCrcSize;
    }

    ++intervalsRead;
    snapshot = std::move(result);
    return true;
}

StatusOr<std::optional<IntervalSnapshot>>
ProfileReader::next()
{
    IntervalSnapshot snapshot;
    StatusOr<bool> got = readInterval(snapshot);
    if (!got.isOk())
        return got.status();
    if (!*got) {
        // The clean end is where trailing garbage becomes detectable:
        // every declared interval parsed, yet bytes remain.
        if (version >= 2 && offset != fileSize)
            return corruptHere("trailing garbage after last interval");
        return std::optional<IntervalSnapshot>();
    }
    return std::optional<IntervalSnapshot>(std::move(snapshot));
}

StatusOr<std::vector<IntervalSnapshot>>
ProfileReader::readAll()
{
    std::vector<IntervalSnapshot> all;
    for (;;) {
        StatusOr<std::optional<IntervalSnapshot>> got = next();
        if (!got.isOk())
            return got.status();
        if (!got->has_value())
            break;
        all.push_back(std::move(**got));
    }
    return all;
}

} // namespace mhp
