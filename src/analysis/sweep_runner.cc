#include "analysis/sweep_runner.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/factory.h"
#include "support/bytes.h"
#include "support/crc32.h"
#include "support/panic.h"
#include "support/parallel.h"
#include "workload/benchmarks.h"

namespace mhp {

namespace {

/** Checkpoint journal: magic(8) planFingerprint(8) crc(4) pad(4). */
constexpr char kCkptMagic[8] = {'M', 'H', 'P', 'S', 'W', 'P', '1', '\0'};
constexpr size_t kCkptHeaderSize = 24;
constexpr size_t kCkptCrcSpan = 16;

/** Serialize one finished cell into a journal record payload. */
void
serializeCell(ByteBuffer &payload, uint64_t cellIndex,
              const SweepCellResult &cell)
{
    payload.u64(cellIndex);
    payload.u64(cell.benchmarkIndex);
    payload.u64(cell.configIndex);
    payload.u64(cell.intervalLengthIndex);
    payload.str(cell.benchmark);
    payload.str(cell.configLabel);
    payload.u64(cell.intervalLength);
    payload.u64(cell.thresholdCount);
    payload.str(cell.run.profilerName);
    payload.u64(cell.run.intervals.size());
    for (const IntervalScore &score : cell.run.intervals) {
        payload.f64(score.breakdown.falsePositive);
        payload.f64(score.breakdown.falseNegative);
        payload.f64(score.breakdown.neutralPositive);
        payload.f64(score.breakdown.neutralNegative);
        payload.u64(score.counts.falsePositive);
        payload.u64(score.counts.falseNegative);
        payload.u64(score.counts.neutralPositive);
        payload.u64(score.counts.neutralNegative);
        payload.u64(score.perfectCandidates);
        payload.u64(score.hardwareCandidates);
    }
    payload.u64(cell.stream.distinctTuples.size());
    for (uint64_t d : cell.stream.distinctTuples)
        payload.u64(d);
    payload.u64(cell.eventsConsumed);
    payload.u64(cell.intervalsCompleted);
}

/** Parse a journal record payload; false on any bounds violation. */
bool
deserializeCell(ByteCursor &cursor, uint64_t &cellIndex,
                SweepCellResult &cell)
{
    if (!cursor.u64(cellIndex) || !cursor.u64(cell.benchmarkIndex) ||
        !cursor.u64(cell.configIndex) ||
        !cursor.u64(cell.intervalLengthIndex) ||
        !cursor.str(cell.benchmark) || !cursor.str(cell.configLabel) ||
        !cursor.u64(cell.intervalLength) ||
        !cursor.u64(cell.thresholdCount) ||
        !cursor.str(cell.run.profilerName))
        return false;

    uint64_t scores;
    if (!cursor.u64(scores) || scores > cursor.remaining() / (10 * 8))
        return false;
    cell.run.intervals.resize(scores);
    for (IntervalScore &score : cell.run.intervals) {
        if (!cursor.f64(score.breakdown.falsePositive) ||
            !cursor.f64(score.breakdown.falseNegative) ||
            !cursor.f64(score.breakdown.neutralPositive) ||
            !cursor.f64(score.breakdown.neutralNegative) ||
            !cursor.u64(score.counts.falsePositive) ||
            !cursor.u64(score.counts.falseNegative) ||
            !cursor.u64(score.counts.neutralPositive) ||
            !cursor.u64(score.counts.neutralNegative) ||
            !cursor.u64(score.perfectCandidates) ||
            !cursor.u64(score.hardwareCandidates))
            return false;
    }

    uint64_t distinct;
    if (!cursor.u64(distinct) || distinct > cursor.remaining() / 8)
        return false;
    cell.stream.distinctTuples.resize(distinct);
    for (uint64_t &d : cell.stream.distinctTuples) {
        if (!cursor.u64(d))
            return false;
    }

    return cursor.u64(cell.eventsConsumed) &&
           cursor.u64(cell.intervalsCompleted) && cursor.atEnd();
}

/** What survived of an existing checkpoint journal. */
struct LoadedCheckpoint
{
    std::unordered_map<uint64_t, SweepCellResult> completed;

    /** File offset just past the last intact record. */
    uint64_t goodOffset = 0;

    /** False when the file does not exist (start a fresh journal). */
    bool exists = false;
};

StatusOr<LoadedCheckpoint>
loadCheckpoint(const std::string &path, uint64_t fingerprint,
               size_t cellCount)
{
    LoadedCheckpoint loaded;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return loaded; // no journal yet: fresh run

    loaded.exists = true;
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (bytes.size() < kCkptHeaderSize) {
        // A kill during journal creation can cut the header short.
        // Restart from scratch if what's there is our own debris (a
        // prefix of the magic); refuse to clobber anything else.
        const size_t prefix =
            bytes.size() < sizeof(kCkptMagic) ? bytes.size()
                                              : sizeof(kCkptMagic);
        if (prefix > 0 &&
            std::memcmp(bytes.data(), kCkptMagic, prefix) != 0)
            return Status::corruptData(
                path + ": not a sweep checkpoint file");
        loaded.exists = false;
        return loaded;
    }
    if (std::memcmp(bytes.data(), kCkptMagic, sizeof(kCkptMagic)) != 0)
        return Status::corruptData(path +
                                   ": not a sweep checkpoint file");
    const uint32_t stored = getLe32(bytes.data() + 16);
    if (stored != crc32(bytes.data(), kCkptCrcSpan))
        return Status::corruptData(path +
                                   ": checkpoint header CRC mismatch");
    if (getLe64(bytes.data() + 8) != fingerprint) {
        return Status::invalidArgument(
            path + ": checkpoint was written by a different sweep "
                   "plan (delete it to start over)");
    }

    // Records: size(8) payload crc(4). Anything that fails to parse —
    // a record cut short by a kill, a flipped bit — ends the journal
    // at the last intact record; those cells simply get recomputed.
    size_t pos = kCkptHeaderSize;
    loaded.goodOffset = pos;
    while (pos + 8 <= bytes.size()) {
        const uint64_t size = getLe64(bytes.data() + pos);
        if (size > bytes.size() - pos - 8 ||
            bytes.size() - pos - 8 - size < 4)
            break; // truncated trailing record
        const uint8_t *payload = bytes.data() + pos + 8;
        const uint32_t recordCrc =
            getLe32(payload + static_cast<size_t>(size));
        if (recordCrc != crc32(payload, static_cast<size_t>(size)))
            break; // corrupt trailing record
        ByteCursor cursor(payload, static_cast<size_t>(size));
        uint64_t cellIndex;
        SweepCellResult cell;
        if (!deserializeCell(cursor, cellIndex, cell) ||
            cellIndex >= cellCount)
            break;
        loaded.completed[cellIndex] = std::move(cell);
        pos += 8 + static_cast<size_t>(size) + 4;
        loaded.goodOffset = pos;
    }
    return loaded;
}

} // namespace

SweepRunner::SweepRunner(SweepPlan plan) : sweepPlan(std::move(plan))
{
    if (sweepPlan.trace && sweepPlan.benchmarks.empty())
        sweepPlan.benchmarks.push_back(sweepPlan.trace->path());
    MHP_REQUIRE(!sweepPlan.benchmarks.empty(), "sweep needs benchmarks");
    MHP_REQUIRE(!sweepPlan.configs.empty(), "sweep needs configurations");
    MHP_REQUIRE(sweepPlan.intervals > 0, "sweep needs intervals");
    if (sweepPlan.trace) {
        MHP_REQUIRE(sweepPlan.benchmarks.size() == 1,
                    "a mapped-trace sweep has exactly one stream");
    } else {
        for (const auto &name : sweepPlan.benchmarks)
            MHP_REQUIRE(isBenchmarkName(name),
                        "unknown benchmark in sweep");
    }
}

size_t
SweepRunner::cellCount() const
{
    const size_t lengths = sweepPlan.intervalLengths.empty()
                               ? 1
                               : sweepPlan.intervalLengths.size();
    return sweepPlan.benchmarks.size() * sweepPlan.configs.size() *
           lengths;
}

uint64_t
SweepRunner::planFingerprint() const
{
    // Everything that affects any cell's output goes into the
    // fingerprint, so a checkpoint can never be resumed against a
    // plan that would compute different results for the same index.
    ByteBuffer plan;
    for (const auto &name : sweepPlan.benchmarks)
        plan.str(name);
    plan.u8(sweepPlan.edges ? 1 : 0);
    for (const auto &config : sweepPlan.configs) {
        plan.str(config.label);
        const ProfilerConfig &c = config.config;
        plan.u64(c.intervalLength);
        plan.f64(c.candidateThreshold);
        plan.u64(c.totalHashEntries);
        plan.u64(c.numHashTables);
        plan.u64(c.counterBits);
        plan.u8(c.retaining ? 1 : 0);
        plan.u8(c.resetOnPromote ? 1 : 0);
        plan.u8(c.conservativeUpdate ? 1 : 0);
        plan.u8(c.shielding ? 1 : 0);
        plan.u8(c.flushHashTables ? 1 : 0);
        plan.u64(c.accumulatorEntries);
        plan.u64(c.seed);
    }
    for (uint64_t length : sweepPlan.intervalLengths)
        plan.u64(length);
    plan.u64(sweepPlan.intervals);
    plan.u64(sweepPlan.workloadSeed);
    plan.u64(sweepPlan.batchSize);
    // Appended only for trace-backed plans, so workload-plan
    // fingerprints (and their existing checkpoints) are unchanged.
    if (sweepPlan.trace)
        plan.u64(sweepPlan.trace->fingerprint());
    return fnv1a64(plan.data(), plan.size());
}

void
SweepRunner::computeCell(size_t cell, SweepCellResult &result) const
{
    const SweepPlan &plan = sweepPlan;
    const size_t lengths =
        plan.intervalLengths.empty() ? 1 : plan.intervalLengths.size();

    const size_t b = cell / (plan.configs.size() * lengths);
    const size_t rem = cell % (plan.configs.size() * lengths);
    const size_t c = rem / lengths;
    const size_t l = rem % lengths;

    result.benchmarkIndex = b;
    result.configIndex = c;
    result.intervalLengthIndex = l;
    result.benchmark = plan.benchmarks[b];
    result.configLabel = plan.configs[c].label;

    ProfilerConfig config = plan.configs[c].config;
    if (!plan.intervalLengths.empty())
        config.intervalLength = plan.intervalLengths[l];
    result.intervalLength = config.intervalLength;
    result.thresholdCount = config.thresholdCount();

    auto profiler = makeProfiler(config);

    RunOutput run;
    if (plan.trace) {
        // Every cell gets its own cursor over the one shared mapping:
        // zero-copy chunks, no per-cell trace materialization.
        TraceMapSource source(plan.trace);
        StreamRunOptions options;
        options.batchSize = plan.batchSize;
        run = runIntervalsStream(source, {profiler.get()},
                                 config.intervalLength,
                                 config.thresholdCount(),
                                 plan.intervals, options);
    } else {
        std::unique_ptr<EventSource> source =
            plan.edges
                ? std::unique_ptr<EventSource>(makeEdgeWorkload(
                      result.benchmark, plan.workloadSeed))
                : std::unique_ptr<EventSource>(makeValueWorkload(
                      result.benchmark, plan.workloadSeed));
        run = runIntervalsBatched(
            *source, {profiler.get()}, config.intervalLength,
            config.thresholdCount(), plan.intervals, plan.batchSize);
    }

    result.run = std::move(run.results[0]);
    result.stream = std::move(run.stream);
    result.eventsConsumed = run.eventsConsumed;
    result.intervalsCompleted = run.intervalsCompleted;
}

std::vector<SweepCellResult>
SweepRunner::run(unsigned threads) const
{
    const size_t cells = cellCount();
    std::vector<SweepCellResult> out(cells);

    // Cells are independent: each streams its own cursor (regenerated
    // workload or a view of the shared mapping) and writes only its
    // own slot, so any schedule merges into the same output. grain=1
    // because cells are few and unevenly sized (a 1M-event interval
    // next to a 10K one).
    parallelFor(
        cells, [&](size_t cell) { computeCell(cell, out[cell]); },
        threads, /*grain=*/1);

    return out;
}

StatusOr<std::vector<SweepCellResult>>
SweepRunner::runWithCheckpoint(const std::string &checkpointPath,
                               unsigned threads) const
{
    const size_t cells = cellCount();
    const uint64_t fingerprint = planFingerprint();

    StatusOr<LoadedCheckpoint> loaded =
        loadCheckpoint(checkpointPath, fingerprint, cells);
    if (!loaded.isOk())
        return loaded.status();

    // Drop any corrupt/truncated tail before appending, then reopen
    // the journal (or start one) for the cells still to compute.
    std::ofstream journal;
    if (loaded->exists) {
        std::error_code ec;
        std::filesystem::resize_file(checkpointPath, loaded->goodOffset,
                                     ec);
        if (ec) {
            return Status::ioError(checkpointPath +
                                   ": cannot truncate checkpoint: " +
                                   ec.message());
        }
        journal.open(checkpointPath,
                     std::ios::binary | std::ios::app);
    } else {
        journal.open(checkpointPath,
                     std::ios::binary | std::ios::trunc);
        if (journal) {
            uint8_t header[kCkptHeaderSize] = {};
            std::memcpy(header, kCkptMagic, sizeof(kCkptMagic));
            putLe64(header + 8, fingerprint);
            putLe32(header + 16, crc32(header, kCkptCrcSpan));
            journal.write(reinterpret_cast<const char *>(header),
                          kCkptHeaderSize);
            journal.flush();
        }
    }
    if (!journal) {
        return Status::ioError(checkpointPath +
                               ": cannot open checkpoint for writing");
    }

    std::vector<SweepCellResult> out(cells);
    std::mutex journalMutex;
    bool journalHealthy = true;

    parallelFor(
        cells,
        [&](size_t cell) {
            if (auto it = loaded->completed.find(cell);
                it != loaded->completed.end()) {
                out[cell] = it->second;
                return;
            }

            SweepCellResult &result = out[cell];
            computeCell(cell, result);

            // Journal the finished cell. Each record is written and
            // flushed whole under the lock, so a kill can only ever
            // truncate the final record — which resume discards.
            ByteBuffer payload;
            serializeCell(payload, cell, result);
            uint8_t sizeLe[8], crcLe[4];
            putLe64(sizeLe, payload.size());
            putLe32(crcLe, crc32(payload.data(), payload.size()));
            std::lock_guard<std::mutex> lock(journalMutex);
            journal.write(reinterpret_cast<const char *>(sizeLe), 8);
            journal.write(
                reinterpret_cast<const char *>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
            journal.write(reinterpret_cast<const char *>(crcLe), 4);
            journal.flush();
            if (!journal)
                journalHealthy = false;
        },
        threads, /*grain=*/1);

    if (!journalHealthy) {
        return Status::ioError(checkpointPath +
                               ": short write appending checkpoint "
                               "record");
    }
    return out;
}

} // namespace mhp
