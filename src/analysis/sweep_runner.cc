#include "analysis/sweep_runner.h"

#include <utility>

#include "core/factory.h"
#include "support/panic.h"
#include "support/parallel.h"
#include "workload/benchmarks.h"

namespace mhp {

SweepRunner::SweepRunner(SweepPlan plan) : sweepPlan(std::move(plan))
{
    MHP_REQUIRE(!sweepPlan.benchmarks.empty(), "sweep needs benchmarks");
    MHP_REQUIRE(!sweepPlan.configs.empty(), "sweep needs configurations");
    MHP_REQUIRE(sweepPlan.intervals > 0, "sweep needs intervals");
    for (const auto &name : sweepPlan.benchmarks)
        MHP_REQUIRE(isBenchmarkName(name), "unknown benchmark in sweep");
}

size_t
SweepRunner::cellCount() const
{
    const size_t lengths = sweepPlan.intervalLengths.empty()
                               ? 1
                               : sweepPlan.intervalLengths.size();
    return sweepPlan.benchmarks.size() * sweepPlan.configs.size() *
           lengths;
}

std::vector<SweepCellResult>
SweepRunner::run(unsigned threads) const
{
    const SweepPlan &plan = sweepPlan;
    const size_t lengths =
        plan.intervalLengths.empty() ? 1 : plan.intervalLengths.size();
    const size_t cells = cellCount();

    std::vector<SweepCellResult> out(cells);

    // Cells are independent: each regenerates its stream from the
    // workload seed and writes only its own slot, so any schedule
    // merges into the same output. grain=1 because cells are few and
    // unevenly sized (a 1M-event interval next to a 10K one).
    parallelFor(
        cells,
        [&](size_t cell) {
            const size_t b = cell / (plan.configs.size() * lengths);
            const size_t rem = cell % (plan.configs.size() * lengths);
            const size_t c = rem / lengths;
            const size_t l = rem % lengths;

            SweepCellResult &result = out[cell];
            result.benchmarkIndex = b;
            result.configIndex = c;
            result.intervalLengthIndex = l;
            result.benchmark = plan.benchmarks[b];
            result.configLabel = plan.configs[c].label;

            ProfilerConfig config = plan.configs[c].config;
            if (!plan.intervalLengths.empty())
                config.intervalLength = plan.intervalLengths[l];
            result.intervalLength = config.intervalLength;
            result.thresholdCount = config.thresholdCount();

            std::unique_ptr<EventSource> source =
                plan.edges
                    ? std::unique_ptr<EventSource>(makeEdgeWorkload(
                          result.benchmark, plan.workloadSeed))
                    : std::unique_ptr<EventSource>(makeValueWorkload(
                          result.benchmark, plan.workloadSeed));
            auto profiler = makeProfiler(config);

            RunOutput run = runIntervalsBatched(
                *source, {profiler.get()}, config.intervalLength,
                config.thresholdCount(), plan.intervals, plan.batchSize);

            result.run = std::move(run.results[0]);
            result.stream = std::move(run.stream);
            result.eventsConsumed = run.eventsConsumed;
            result.intervalsCompleted = run.intervalsCompleted;
        },
        threads, /*grain=*/1);

    return out;
}

} // namespace mhp
