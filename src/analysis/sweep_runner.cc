#include "analysis/sweep_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "analysis/sweep_journal.h"
#include "core/factory.h"
#include "support/bytes.h"
#include "support/env.h"
#include "support/failpoint.h"
#include "support/panic.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "trace/event_class.h"
#include "workload/benchmarks.h"

namespace mhp {

namespace {

/** Milliseconds on the steady clock (watchdog bookkeeping). */
int64_t
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Backoff before retrying `cell` after failed attempt `attempt`:
 * capped exponential, scaled by a jitter factor in [0.5, 1.0) that is
 * a pure function of (seed, cell, attempt) — reruns back off
 * identically, and the schedule never leaks into results.
 */
uint64_t
backoffDelayMs(const SweepResilienceOptions &options, uint64_t cell,
               unsigned attempt)
{
    uint64_t raw = options.backoffBaseMs;
    for (unsigned i = 0; i < attempt && raw < options.backoffCapMs; ++i)
        raw <<= 1;
    raw = std::min(raw, options.backoffCapMs);
    SplitMix64 mix(options.backoffSeed ^
                   cell * 0x9e3779b97f4a7c15ULL ^ (attempt + 1));
    const double unit =
        static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
    return static_cast<uint64_t>(static_cast<double>(raw) *
                                 (0.5 + 0.5 * unit));
}

} // namespace

SweepRunner::SweepRunner(SweepPlan plan) : sweepPlan(std::move(plan))
{
    if (sweepPlan.trace && sweepPlan.benchmarks.empty())
        sweepPlan.benchmarks.push_back(sweepPlan.trace->path());
    MHP_REQUIRE(!sweepPlan.benchmarks.empty(), "sweep needs benchmarks");
    MHP_REQUIRE(!sweepPlan.configs.empty(), "sweep needs configurations");
    MHP_REQUIRE(sweepPlan.intervals > 0, "sweep needs intervals");
    if (sweepPlan.trace) {
        MHP_REQUIRE(sweepPlan.benchmarks.size() == 1,
                    "a mapped-trace sweep has exactly one stream");
    } else {
        for (const auto &name : sweepPlan.benchmarks)
            MHP_REQUIRE(isBenchmarkName(name),
                        "unknown benchmark in sweep");
    }
}

size_t
SweepRunner::cellCount() const
{
    const size_t lengths = sweepPlan.intervalLengths.empty()
                               ? 1
                               : sweepPlan.intervalLengths.size();
    return sweepPlan.benchmarks.size() * sweepPlan.configs.size() *
           lengths;
}

uint64_t
SweepRunner::planFingerprint() const
{
    // Everything that affects any cell's output goes into the
    // fingerprint, so a checkpoint can never be resumed against a
    // plan that would compute different results for the same index.
    ByteBuffer plan;
    for (const auto &name : sweepPlan.benchmarks)
        plan.str(name);
    // Byte-compatible with the old bool-edges encoding: Value = 0,
    // Edge = 1, so pre-existing value/edge checkpoints still resume.
    plan.u8(profileKindToByte(sweepPlan.kind));
    for (const auto &config : sweepPlan.configs) {
        plan.str(config.label);
        const ProfilerConfig &c = config.config;
        plan.u64(c.intervalLength);
        plan.f64(c.candidateThreshold);
        plan.u64(c.totalHashEntries);
        plan.u64(c.numHashTables);
        plan.u64(c.counterBits);
        plan.u8(c.retaining ? 1 : 0);
        plan.u8(c.resetOnPromote ? 1 : 0);
        plan.u8(c.conservativeUpdate ? 1 : 0);
        plan.u8(c.shielding ? 1 : 0);
        plan.u8(c.flushHashTables ? 1 : 0);
        plan.u64(c.accumulatorEntries);
        plan.u64(c.seed);
    }
    for (uint64_t length : sweepPlan.intervalLengths)
        plan.u64(length);
    plan.u64(sweepPlan.intervals);
    plan.u64(sweepPlan.workloadSeed);
    plan.u64(sweepPlan.batchSize);
    // Appended only for trace-backed plans, so workload-plan
    // fingerprints (and their existing checkpoints) are unchanged.
    if (sweepPlan.trace)
        plan.u64(sweepPlan.trace->fingerprint());
    return fnv1a64(plan.data(), plan.size());
}

/**
 * A cell ready to stream. The cursor always points at storage owned
 * here, so a group of executions can outlive the preparing scope and
 * interleave.
 */
struct SweepRunner::CellExecution
{
    /** Workload-backed cells: the regenerated source + its cursor. */
    std::unique_ptr<EventSource> workload;
    std::unique_ptr<EventSourceCursor> workloadCursor;
    /** Trace-backed cells: a zero-copy cursor on the shared map. */
    std::unique_ptr<TraceMapSource> traceCursor;

    std::unique_ptr<HardwareProfiler> profiler;
    StreamCursor *stream = nullptr;
    uint64_t intervalLength = 0;
    uint64_t thresholdCount = 0;

    /** Move a finished lane's output into the cell's result slot. */
    static void
    fill(SweepCellResult &result, RunOutput &&run)
    {
        result.run = std::move(run.results[0]);
        result.stream = std::move(run.stream);
        result.eventsConsumed = run.eventsConsumed;
        result.intervalsCompleted = run.intervalsCompleted;
    }
};

std::unique_ptr<SweepRunner::CellExecution>
SweepRunner::prepareCell(size_t cell, SweepCellResult &result) const
{
    const SweepPlan &plan = sweepPlan;
    const size_t lengths =
        plan.intervalLengths.empty() ? 1 : plan.intervalLengths.size();

    const size_t b = cell / (plan.configs.size() * lengths);
    const size_t rem = cell % (plan.configs.size() * lengths);
    const size_t c = rem / lengths;
    const size_t l = rem % lengths;

    result.benchmarkIndex = b;
    result.configIndex = c;
    result.intervalLengthIndex = l;
    result.benchmark = plan.benchmarks[b];
    result.configLabel = plan.configs[c].label;

    ProfilerConfig config = plan.configs[c].config;
    if (!plan.intervalLengths.empty())
        config.intervalLength = plan.intervalLengths[l];
    result.intervalLength = config.intervalLength;
    result.thresholdCount = config.thresholdCount();

    auto exec = std::make_unique<CellExecution>();
    exec->profiler = makeProfiler(config);
    exec->intervalLength = config.intervalLength;
    exec->thresholdCount = config.thresholdCount();

    if (plan.trace) {
        // Every cell gets its own cursor over the one shared mapping:
        // zero-copy chunks, no per-cell trace materialization.
        exec->traceCursor =
            std::make_unique<TraceMapSource>(plan.trace);
        exec->stream = exec->traceCursor.get();
    } else {
        switch (plan.kind) {
        case ProfileKind::Edge:
            exec->workload =
                makeEdgeWorkload(result.benchmark, plan.workloadSeed);
            break;
        case ProfileKind::Path:
            exec->workload =
                makePathWorkload(result.benchmark, plan.workloadSeed);
            break;
        default:
            exec->workload =
                makeValueWorkload(result.benchmark, plan.workloadSeed);
            break;
        }
        // Mirror runIntervalsBatched() exactly (cursor capacity
        // clipped to one interval) so a resilient run's results stay
        // bit-identical to run()'s and to existing checkpoints.
        exec->workloadCursor = std::make_unique<EventSourceCursor>(
            *exec->workload,
            static_cast<size_t>(
                std::min(plan.batchSize, config.intervalLength)));
        exec->stream = exec->workloadCursor.get();
    }
    return exec;
}

void
SweepRunner::computeCell(size_t cell, SweepCellResult &result) const
{
    // No cancel, no deadline: the stream can only stop by finishing.
    computeCellStream(cell, result, nullptr, 0);
}

RunStopReason
SweepRunner::computeCellStream(size_t cell, SweepCellResult &result,
                               const CancelToken *cancel,
                               uint64_t deadlineMs) const
{
    std::unique_ptr<CellExecution> exec = prepareCell(cell, result);

    StreamRunOptions options;
    options.batchSize = sweepPlan.batchSize;
    options.cancel = cancel;
    options.deadlineMs = deadlineMs;

    RunOutput run = runIntervalsStream(
        *exec->stream, {exec->profiler.get()}, exec->intervalLength,
        exec->thresholdCount, sweepPlan.intervals, options);

    const RunStopReason stopped = run.stopped;
    CellExecution::fill(result, std::move(run));
    return stopped;
}

std::vector<SweepCellResult>
SweepRunner::run(unsigned threads, unsigned lanesPerWorker) const
{
    const size_t cells = cellCount();
    std::vector<SweepCellResult> out(cells);

    size_t lanes = lanesPerWorker;
    if (lanes == 0)
        lanes = static_cast<size_t>(
            std::max<int64_t>(1, envInt("MHP_INTERLEAVE", 4)));

    // Cells are independent: each streams its own cursor (regenerated
    // workload or a view of the shared mapping) and writes only its
    // own slot, so any schedule merges into the same output. Each
    // worker interleaves a contiguous group of `lanes` cells, one
    // block per cell round-robin, hiding one cell's counter-bank
    // misses behind the others' hashing. grain=1 because groups are
    // few and unevenly sized (a 1M-event interval next to a 10K one).
    const size_t groups = (cells + lanes - 1) / lanes;
    parallelFor(
        groups,
        [&](size_t group) {
            const size_t lo = group * lanes;
            const size_t hi = std::min(cells, lo + lanes);
            std::vector<std::unique_ptr<CellExecution>> execs;
            std::vector<InterleavedLane> laneSpecs;
            execs.reserve(hi - lo);
            laneSpecs.reserve(hi - lo);
            for (size_t cell = lo; cell < hi; ++cell) {
                execs.push_back(prepareCell(cell, out[cell]));
                CellExecution &exec = *execs.back();
                laneSpecs.push_back({exec.stream,
                                     {exec.profiler.get()},
                                     exec.intervalLength,
                                     exec.thresholdCount,
                                     sweepPlan.intervals});
            }
            StreamRunOptions options;
            options.batchSize = sweepPlan.batchSize;
            std::vector<RunOutput> runs =
                runIntervalsInterleaved(laneSpecs, options);
            for (size_t i = 0; i < runs.size(); ++i)
                CellExecution::fill(out[lo + i],
                                    std::move(runs[i]));
        },
        threads, /*grain=*/1);

    return out;
}

StatusOr<std::vector<SweepCellResult>>
SweepRunner::runWithCheckpoint(const std::string &checkpointPath,
                               unsigned threads) const
{
    const size_t cells = cellCount();
    const uint64_t fingerprint = planFingerprint();

    StatusOr<LoadedCheckpoint> loaded =
        loadSweepCheckpoint(checkpointPath, fingerprint, cells);
    if (!loaded.isOk())
        return loaded.status();

    // Drop any corrupt/truncated tail before appending, then reopen
    // the journal (or start one) for the cells still to compute.
    CheckpointJournal journal;
    if (Status bad = journal.open(checkpointPath, fingerprint, *loaded);
        !bad.isOk())
        return bad;

    std::vector<SweepCellResult> out(cells);
    std::mutex errorMutex;
    Status journalStatus;

    parallelFor(
        cells,
        [&](size_t cell) {
            if (auto it = loaded->completed.find(cell);
                it != loaded->completed.end()) {
                out[cell] = it->second;
                return;
            }

            SweepCellResult &result = out[cell];
            computeCell(cell, result);

            if (Status appended = journal.append(cell, result);
                !appended.isOk()) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (journalStatus.isOk())
                    journalStatus = std::move(appended);
            }
        },
        threads, /*grain=*/1);

    if (!journalStatus.isOk())
        return journalStatus;
    if (Status finished = journal.finish(); !finished.isOk())
        return finished;
    return out;
}

CellOutcome
SweepRunner::runCellResilient(
    uint64_t cell, const SweepResilienceOptions &options,
    const std::function<void(bool running)> &attemptMark) const
{
    MHP_REQUIRE(options.maxAttempts >= 1,
                "resilient cell needs at least one attempt");
    CellOutcome outcome;
    Status lastError;
    unsigned attempt = 0;
    for (; attempt < options.maxAttempts; ++attempt) {
        if (options.cancel != nullptr && options.cancel->cancelled()) {
            outcome.cancelled = true;
            outcome.attempts = attempt;
            outcome.status = Status::cancelled(
                "cell " + std::to_string(cell) + " cancelled");
            return outcome;
        }
        if (attemptMark)
            attemptMark(true);
        // An injected slowdown spends the attempt's deadline budget,
        // so whether the deadline trips is still a pure function of
        // (spec, seed, cell, attempt) — the sleep models a slow cell,
        // not a slow clock.
        uint64_t deadlineMs = options.cellDeadlineMs;
        bool slowExhausted = false;
        if (const uint64_t delay =
                failpointDelayMs("sweep.cell.slow", cell, attempt)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                deadlineMs > 0 ? std::min(delay, deadlineMs) : delay));
            if (deadlineMs > 0) {
                slowExhausted = delay >= deadlineMs;
                deadlineMs -= std::min(delay, deadlineMs - 1);
            }
        }
        Status st;
        if (slowExhausted) {
            st = Status::deadlineExceeded(
                "cell " + std::to_string(cell) + " exceeded its " +
                std::to_string(options.cellDeadlineMs) +
                " ms deadline");
        } else if (failpointFires("sweep.cell.compute", cell,
                                  attempt)) {
            st = Status::ioError("cell " + std::to_string(cell) +
                                 ": injected failure (failpoint "
                                 "sweep.cell.compute)");
        } else {
            SweepCellResult result;
            const RunStopReason stop = computeCellStream(
                cell, result, options.cancel, deadlineMs);
            if (stop == RunStopReason::Cancelled) {
                if (attemptMark)
                    attemptMark(false);
                outcome.cancelled = true;
                outcome.attempts = attempt;
                outcome.status = Status::cancelled(
                    "cell " + std::to_string(cell) + " cancelled");
                return outcome;
            }
            if (stop == RunStopReason::DeadlineExceeded) {
                st = Status::deadlineExceeded(
                    "cell " + std::to_string(cell) + " exceeded its " +
                    std::to_string(options.cellDeadlineMs) +
                    " ms deadline");
            } else {
                outcome.result = std::move(result);
            }
        }
        if (attemptMark)
            attemptMark(false);

        if (st.isOk()) {
            outcome.status = Status::ok();
            outcome.attempts = attempt + 1;
            return outcome;
        }
        lastError = std::move(st);
        if (attempt + 1 < options.maxAttempts &&
            options.backoffBaseMs > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoffDelayMs(options, cell, attempt)));
        }
    }
    outcome.status = std::move(lastError);
    outcome.attempts = attempt;
    return outcome;
}

QuarantinedCell
SweepRunner::quarantineFor(uint64_t cell, unsigned attempts,
                           Status lastError) const
{
    const SweepPlan &plan = sweepPlan;
    const size_t lengths =
        plan.intervalLengths.empty() ? 1 : plan.intervalLengths.size();
    const size_t b = cell / (plan.configs.size() * lengths);
    const size_t rem = cell % (plan.configs.size() * lengths);
    const size_t c = rem / lengths;
    const size_t l = rem % lengths;
    QuarantinedCell q;
    q.cellIndex = cell;
    q.benchmark = plan.benchmarks[b];
    q.configLabel = plan.configs[c].label;
    q.intervalLength = plan.intervalLengths.empty()
                           ? plan.configs[c].config.intervalLength
                           : plan.intervalLengths[l];
    q.attempts = attempts;
    q.status = std::move(lastError);
    return q;
}

StatusOr<SweepReport>
SweepRunner::runResilient(const SweepResilienceOptions &options) const
{
    MHP_REQUIRE(options.maxAttempts >= 1,
                "resilient sweep needs at least one attempt per cell");
    const size_t cells = cellCount();
    const uint64_t fingerprint = planFingerprint();

    SweepReport report;
    report.results.resize(cells);

    const bool checkpointing = !options.checkpointPath.empty();
    LoadedCheckpoint loaded;
    CheckpointJournal journal;
    if (checkpointing) {
        StatusOr<LoadedCheckpoint> prior = loadSweepCheckpoint(
            options.checkpointPath, fingerprint, cells);
        if (!prior.isOk())
            return prior.status();
        loaded = std::move(*prior);
        if (Status bad = journal.open(options.checkpointPath,
                                      fingerprint, loaded);
            !bad.isOk())
            return bad;
    }

    std::mutex reportMutex; // guards quarantined + journalStatus
    Status journalStatus;
    std::atomic<bool> interrupted{false};
    std::atomic<uint64_t> completed{0};

    // Watchdog: per-cell attempt start times (−1 = not running) that
    // a polling thread compares against the deadline. It only ever
    // *flags* cells — enforcement stays inside the cell at interval
    // boundaries, where it is deterministic.
    const bool watch =
        options.watchdogPollMs > 0 && options.cellDeadlineMs > 0;
    std::vector<std::atomic<int64_t>> attemptStartMs(watch ? cells : 0);
    for (auto &start : attemptStartMs)
        start.store(-1, std::memory_order_relaxed);
    std::set<uint64_t> flagged;
    std::atomic<bool> watchdogStop{false};
    std::thread watchdog;
    if (watch) {
        watchdog = std::thread([&] {
            while (!watchdogStop.load(std::memory_order_relaxed)) {
                const int64_t now = steadyNowMs();
                for (size_t i = 0; i < cells; ++i) {
                    const int64_t start = attemptStartMs[i].load(
                        std::memory_order_relaxed);
                    if (start >= 0 &&
                        now - start > static_cast<int64_t>(
                                          options.cellDeadlineMs)) {
                        std::lock_guard<std::mutex> lock(reportMutex);
                        flagged.insert(i);
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(options.watchdogPollMs));
            }
        });
    }

    parallelFor(
        cells,
        [&](size_t cell) {
            if (auto it = loaded.completed.find(cell);
                it != loaded.completed.end()) {
                report.results[cell] = it->second;
                completed.fetch_add(1, std::memory_order_relaxed);
                return;
            }

            const std::function<void(bool)> mark =
                watch ? std::function<void(bool)>([&, cell](
                            bool running) {
                      attemptStartMs[cell].store(
                          running ? steadyNowMs() : -1,
                          std::memory_order_relaxed);
                  })
                      : std::function<void(bool)>();
            CellOutcome outcome =
                runCellResilient(cell, options, mark);
            if (outcome.cancelled) {
                interrupted.store(true, std::memory_order_relaxed);
                return;
            }
            if (outcome.status.isOk()) {
                report.results[cell] = std::move(outcome.result);
                completed.fetch_add(1, std::memory_order_relaxed);
                if (checkpointing) {
                    if (Status appended = journal.append(
                            cell, report.results[cell]);
                        !appended.isOk()) {
                        std::lock_guard<std::mutex> lock(reportMutex);
                        if (journalStatus.isOk())
                            journalStatus = std::move(appended);
                    }
                }
                return;
            }

            // Every attempt failed: quarantine the cell instead of
            // sinking the sweep.
            QuarantinedCell q =
                quarantineFor(cell, outcome.attempts,
                              std::move(outcome.status));
            std::lock_guard<std::mutex> lock(reportMutex);
            report.quarantined.push_back(std::move(q));
        },
        options.threads, /*grain=*/1);

    if (watch) {
        watchdogStop.store(true, std::memory_order_relaxed);
        watchdog.join();
        report.deadlineFlagged.assign(flagged.begin(), flagged.end());
    }

    // parallelFor's schedule decided the push order; the content is
    // schedule-independent, so sorting restores determinism.
    std::sort(report.quarantined.begin(), report.quarantined.end(),
              [](const QuarantinedCell &a, const QuarantinedCell &b) {
                  return a.cellIndex < b.cellIndex;
              });
    report.interrupted = interrupted.load();
    report.completedCells = completed.load();

    if (!journalStatus.isOk())
        return journalStatus;
    if (checkpointing) {
        if (Status finished = journal.finish(); !finished.isOk())
            return finished;
    }
    return report;
}

} // namespace mhp
