/**
 * @file
 * SimPoint-style phase analysis over profiling intervals.
 *
 * The paper's methodology fast-forwards each benchmark to a
 * representative region "using the fast forward numbers from SimPoint"
 * (Sherwood, Perelman, Calder). SimPoint clusters per-interval basic
 * block vectors and simulates one representative per cluster. This
 * module provides the equivalent machinery over *profiling* intervals:
 *
 *  - each interval is summarized as a fixed-dimension frequency vector
 *    (candidate tuples hashed into buckets, L1-normalized);
 *  - intervals are clustered with deterministic k-means
 *    (k-means++-style farthest-point seeding, but fully seeded);
 *  - each cluster's representative is the interval closest to its
 *    centroid, weighted by cluster population.
 *
 * Downstream uses: detecting program phases from hardware profiles,
 * and choosing which intervals of a long trace deserve detailed
 * simulation.
 */

#ifndef MHP_ANALYSIS_SIMPOINT_H
#define MHP_ANALYSIS_SIMPOINT_H

#include <cstdint>
#include <vector>

#include "core/profiler.h"

namespace mhp {

/** A fixed-dimension, L1-normalized interval signature. */
class FrequencyVector
{
  public:
    /**
     * Build from an interval snapshot.
     * @param snapshot The interval's captured candidates.
     * @param dimensions Vector dimensionality (tuples are hashed into
     *        buckets; 32-128 is plenty, per the SimPoint papers).
     */
    explicit FrequencyVector(const IntervalSnapshot &snapshot,
                             unsigned dimensions = 64);

    /** Manhattan (L1) distance to another vector; in [0, 2]. */
    double distance(const FrequencyVector &other) const;

    const std::vector<double> &values() const { return v; }
    unsigned dimensions() const { return v.size(); }

  private:
    friend class SimpointAnalysis;
    FrequencyVector() = default;

    std::vector<double> v;
};

/** One discovered phase. */
struct Phase
{
    /** Indices of the member intervals. */
    std::vector<uint32_t> intervals;

    /** The member chosen to represent the phase. */
    uint32_t representative = 0;

    /** Fraction of all intervals belonging to this phase. */
    double weight = 0.0;
};

/** Deterministic k-means phase clustering of interval snapshots. */
class SimpointAnalysis
{
  public:
    /**
     * @param maxPhases Upper bound on discovered phases (k).
     * @param dimensions Frequency-vector dimensionality.
     * @param iterations k-means refinement iterations.
     */
    explicit SimpointAnalysis(unsigned maxPhases = 4,
                              unsigned dimensions = 64,
                              unsigned iterations = 20);

    /**
     * Cluster a run's interval snapshots into phases.
     * Fewer than maxPhases clusters result when intervals coincide.
     * @return Phases sorted by descending weight.
     */
    std::vector<Phase>
    analyze(const std::vector<IntervalSnapshot> &snapshots) const;

    /**
     * Classify one new snapshot against previously discovered phases
     * (given the same snapshots used for analyze()).
     * @return Index into `phases` of the closest representative.
     */
    size_t classify(const IntervalSnapshot &snapshot,
                    const std::vector<IntervalSnapshot> &snapshots,
                    const std::vector<Phase> &phases) const;

  private:
    unsigned maxPhases;
    unsigned dims;
    unsigned iterations;
};

} // namespace mhp

#endif // MHP_ANALYSIS_SIMPOINT_H
