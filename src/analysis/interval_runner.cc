#include "analysis/interval_runner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>

#include "core/perfect_profiler.h"
#include "support/panic.h"
#include "support/parallel.h"

namespace mhp {

namespace {

/**
 * One interval's drain, in flight on the scoring worker: the exact
 * counts moved out of the perfect profiler, the profilers' snapshots,
 * and the scores the worker fills in. The struct is heap-pinned and
 * owned by the launching runner, the worker only ever touches this
 * interval's state, and the runner joins before reading — so the
 * overlap cannot change a single bit of the output, only when it is
 * computed.
 */
struct PendingDrain
{
    std::unordered_map<Tuple, uint64_t, TupleHash> truth;
    std::vector<IntervalSnapshot> snaps;
    std::vector<IntervalScore> scores;
};

/**
 * Resumable per-stream form of the chunk-pull interval loop: one
 * step() pulls at most one chunk (clipped to the interval boundary)
 * and advances the interval state machine exactly as the serial loop
 * in the old runIntervalsStream() did. runIntervalsStream() is now
 * "construct one engine, step it to completion", and the interleaved
 * runner round-robins step() across many engines — so a lane's output
 * is bit-identical to a dedicated run by construction: it is the same
 * code path, merely scheduled differently.
 */
class LaneEngine
{
  public:
    LaneEngine(StreamCursor &stream,
               const std::vector<HardwareProfiler *> &profilers,
               uint64_t intervalLength, uint64_t thresholdCount,
               uint64_t numIntervals, const StreamRunOptions &options)
        : stream(stream), profilers(profilers),
          intervalLength(intervalLength),
          thresholdCount(thresholdCount), numIntervals(numIntervals),
          options(options),
          perfect(options.score ? thresholdCount : 1),
          start(Clock::now())
    {
        MHP_REQUIRE(!profilers.empty(), "no profilers to run");
        MHP_REQUIRE(intervalLength > 0,
                    "intervalLength must be positive");
        MHP_REQUIRE(options.batchSize > 0,
                    "batchSize must be positive");
        out.results.resize(profilers.size());
        if (options.keepSnapshots)
            snapshots.resize(profilers.size());
        for (size_t i = 0; i < profilers.size(); ++i) {
            MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
            out.results[i].profilerName = profilers[i]->name();
        }
        if (numIntervals == 0)
            finishUp();
    }

    bool done() const { return finished; }

    /** Ingest one chunk (or close out the run when it ends here). */
    void
    step()
    {
        if (finished)
            return;
        if (atIntervalStart) {
            // Cooperative stops land only on interval boundaries, so
            // every completed interval is whole and scored; the
            // partial state of an aborted interval is never produced.
            if (options.cancel != nullptr &&
                options.cancel->cancelled()) {
                out.stopped = RunStopReason::Cancelled;
                finishUp();
                return;
            }
            if (options.deadlineMs > 0 &&
                Clock::now() - start >=
                    std::chrono::milliseconds(options.deadlineMs)) {
                out.stopped = RunStopReason::DeadlineExceeded;
                finishUp();
                return;
            }
            atIntervalStart = false;
            consumed = 0;
        }

        // Chunks never cross an interval boundary, so endInterval
        // always lands exactly on intervalLength events.
        const uint64_t want = std::min<uint64_t>(
            options.batchSize, intervalLength - consumed);
        const TupleSpan chunk = stream.take(static_cast<size_t>(want));
        if (chunk.empty()) {
            // Stream ran dry: discard the partial interval.
            out.eventsConsumed += consumed;
            if (options.score)
                perfect.reset();
            finishUp();
            return;
        }
        if (options.score)
            perfect.onEvents(chunk.data(), chunk.size());
        for (auto *profiler : profilers)
            profiler->onEvents(chunk.data(), chunk.size());
        consumed += chunk.size();
        if (consumed < intervalLength)
            return;

        out.eventsConsumed += consumed;
        if (options.score) {
            // Pipelined drain: join the previous interval's scoring,
            // capture this interval's truth and snapshots, and hand
            // them to the worker — ingest of the next interval (or of
            // the other lanes of an interleaved run) overlaps the
            // scoring pass instead of stalling on it.
            joinDrain();
            auto drain = std::make_unique<PendingDrain>();
            drain->truth = perfect.takeCounts();
            drain->snaps.reserve(profilers.size());
            for (auto *profiler : profilers)
                drain->snaps.push_back(profiler->endInterval());
            drain->scores.resize(profilers.size());
            PendingDrain *const work = drain.get();
            pending = std::move(drain);
            const uint64_t threshold = thresholdCount;
            drainDone =
                std::async(std::launch::async, [work, threshold]() {
                    for (size_t i = 0; i < work->snaps.size(); ++i) {
                        work->scores[i] = scoreInterval(
                            work->truth, work->snaps[i], threshold);
                    }
                });
            if (!options.overlapDrain)
                joinDrain();
        } else {
            for (size_t i = 0; i < profilers.size(); ++i) {
                IntervalSnapshot snap = profilers[i]->endInterval();
                if (options.keepSnapshots)
                    snapshots[i].push_back(std::move(snap));
            }
        }
        ++out.intervalsCompleted;
        ++interval;
        atIntervalStart = true;
        if (interval >= numIntervals)
            finishUp();
    }

    /** The run's output; valid once done(). */
    RunOutput
    finish()
    {
        MHP_REQUIRE(finished, "lane engine finished early");
        if (options.keepSnapshots)
            out.snapshots = std::move(snapshots);
        return std::move(out);
    }

  private:
    using Clock = std::chrono::steady_clock;

    void
    finishUp()
    {
        joinDrain();
        finished = true;
    }

    void
    joinDrain()
    {
        if (!pending)
            return;
        drainDone.wait();
        out.stream.distinctTuples.push_back(pending->truth.size());
        for (size_t i = 0; i < profilers.size(); ++i) {
            out.results[i].intervals.push_back(pending->scores[i]);
            if (options.keepSnapshots)
                snapshots[i].push_back(std::move(pending->snaps[i]));
        }
        pending.reset();
    }

    StreamCursor &stream;
    const std::vector<HardwareProfiler *> profilers;
    const uint64_t intervalLength;
    const uint64_t thresholdCount;
    const uint64_t numIntervals;
    const StreamRunOptions options;

    RunOutput out;
    std::vector<std::vector<IntervalSnapshot>> snapshots;
    PerfectProfiler perfect;
    const Clock::time_point start;

    // The drain pipeline: at most one interval's scoring in flight
    // per lane while the next interval ingests. Joined in interval
    // order, so scores and snapshots land exactly as the stalling
    // form appends them.
    std::unique_ptr<PendingDrain> pending;
    std::future<void> drainDone;

    uint64_t interval = 0;
    uint64_t consumed = 0;
    bool atIntervalStart = true;
    bool finished = false;
};

} // namespace

ErrorBreakdown
RunResult::averageError() const
{
    ErrorBreakdown avg;
    if (intervals.empty())
        return avg;
    for (const auto &score : intervals)
        avg += score.breakdown;
    avg /= static_cast<double>(intervals.size());
    return avg;
}

double
RunResult::averageErrorPercent() const
{
    return averageError().total() * 100.0;
}

double
RunResult::meanHardwareCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.hardwareCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
RunResult::meanPerfectCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.perfectCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
StreamStats::meanDistinctTuples() const
{
    if (distinctTuples.empty())
        return 0.0;
    double sum = 0.0;
    for (uint64_t d : distinctTuples)
        sum += static_cast<double>(d);
    return sum / static_cast<double>(distinctTuples.size());
}

RunOutput
runIntervalsStream(StreamCursor &stream,
                   const std::vector<HardwareProfiler *> &profilers,
                   uint64_t intervalLength, uint64_t thresholdCount,
                   uint64_t numIntervals,
                   const StreamRunOptions &options)
{
    LaneEngine engine(stream, profilers, intervalLength,
                      thresholdCount, numIntervals, options);
    while (!engine.done())
        engine.step();
    return engine.finish();
}

std::vector<RunOutput>
runIntervalsInterleaved(const std::vector<InterleavedLane> &lanes,
                        const StreamRunOptions &options)
{
    // LaneEngine holds a future and reference members, so the engines
    // are heap-pinned rather than moved.
    std::vector<std::unique_ptr<LaneEngine>> engines;
    engines.reserve(lanes.size());
    for (const InterleavedLane &lane : lanes) {
        MHP_REQUIRE(lane.stream != nullptr,
                    "interleaved lane has no stream");
        engines.push_back(std::make_unique<LaneEngine>(
            *lane.stream, lane.profilers, lane.intervalLength,
            lane.thresholdCount, lane.numIntervals, options));
    }

    // Round-robin, one chunk per visit: while one lane's counter-bank
    // gathers are waiting on memory, the core is already hashing the
    // next lane's block.
    bool live = !engines.empty();
    while (live) {
        live = false;
        for (auto &engine : engines) {
            if (engine->done())
                continue;
            engine->step();
            live = live || !engine->done();
        }
    }

    std::vector<RunOutput> out;
    out.reserve(engines.size());
    for (auto &engine : engines)
        out.push_back(engine->finish());
    return out;
}

RunOutput
runIntervals(EventSource &source,
             const std::vector<HardwareProfiler *> &profilers,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    // Per-event cadence: a one-event staging cursor delivers every
    // tuple as its own onEvents() block, which each profiler's base
    // class runs through onEvent() (equivalence asserted by
    // tests/core/test_batched_ingest).
    EventSourceCursor cursor(source, 1);
    StreamRunOptions options;
    options.batchSize = 1;
    return runIntervalsStream(cursor, profilers, intervalLength,
                              thresholdCount, numIntervals, options);
}

RunOutput
runIntervals(EventSource &source, HardwareProfiler &profiler,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    std::vector<HardwareProfiler *> profilers{&profiler};
    return runIntervals(source, profilers, intervalLength, thresholdCount,
                        numIntervals);
}

RunOutput
runIntervalsBatched(EventSource &source,
                    const std::vector<HardwareProfiler *> &profilers,
                    uint64_t intervalLength, uint64_t thresholdCount,
                    uint64_t numIntervals, uint64_t batchSize)
{
    MHP_REQUIRE(batchSize > 0, "batchSize must be positive");
    EventSourceCursor cursor(
        source,
        static_cast<size_t>(std::min(batchSize, intervalLength)));
    StreamRunOptions options;
    options.batchSize = batchSize;
    return runIntervalsStream(cursor, profilers, intervalLength,
                              thresholdCount, numIntervals, options);
}

RunOutput
runIntervalsSpan(TupleSpan stream,
                 const std::vector<HardwareProfiler *> &profilers,
                 uint64_t intervalLength, uint64_t thresholdCount,
                 uint64_t numIntervals, const BatchedRunOptions &options)
{
    MHP_REQUIRE(!profilers.empty(), "no profilers to run");
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");
    MHP_REQUIRE(options.batchSize > 0, "batchSize must be positive");

    const uint64_t intervals = std::min<uint64_t>(
        numIntervals, stream.size() / intervalLength);

    RunOutput out;
    out.results.resize(profilers.size());
    std::vector<std::vector<IntervalSnapshot>> snapshots(
        profilers.size());
    for (size_t i = 0; i < profilers.size(); ++i) {
        MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
        out.results[i].profilerName = profilers[i]->name();
        out.results[i].intervals.resize(intervals);
        snapshots[i].resize(intervals);
    }
    out.stream.distinctTuples.resize(intervals);
    // Mirror runIntervals(): a trailing partial interval is consumed
    // (then discarded), a finished run leaves the tail untouched.
    out.eventsConsumed = std::min<uint64_t>(
        stream.size(), numIntervals * intervalLength);
    out.intervalsCompleted = intervals;
    if (intervals == 0) {
        if (options.keepSnapshots)
            out.snapshots = std::move(snapshots);
        return out;
    }

    // Phase 1 — ingest: each profiler walks its whole timeline on one
    // worker, through the streaming core in ingest-only mode (scoring
    // is deferred to phase 2). Profilers share no mutable state and
    // every cursor is a zero-copy view of the same span.
    parallelFor(
        profilers.size(),
        [&](size_t p) {
            TupleSpanSource cursor(
                stream.first(intervals * intervalLength));
            StreamRunOptions ingest;
            ingest.batchSize = options.batchSize;
            ingest.keepSnapshots = true;
            ingest.score = false;
            std::vector<HardwareProfiler *> one{profilers[p]};
            RunOutput sub =
                runIntervalsStream(cursor, one, intervalLength,
                                   thresholdCount, intervals, ingest);
            snapshots[p] = std::move(sub.snapshots[0]);
        },
        options.threads, /*grain=*/1);

    // Phase 2 — score: each interval's perfect profile depends only on
    // that interval's events, so truth construction and scoring shard
    // cleanly across intervals.
    parallelFor(
        intervals,
        [&](size_t k) {
            PerfectProfiler perfect(thresholdCount);
            const TupleSpan interval =
                stream.subspan(k * intervalLength, intervalLength);
            perfect.onEvents(interval.data(), interval.size());
            out.stream.distinctTuples[k] = perfect.distinctTuples();
            const auto &truth = perfect.counts();
            for (size_t p = 0; p < profilers.size(); ++p) {
                out.results[p].intervals[k] =
                    scoreInterval(truth, snapshots[p][k], thresholdCount);
            }
        },
        options.threads, /*grain=*/1);

    if (options.keepSnapshots)
        out.snapshots = std::move(snapshots);
    return out;
}

} // namespace mhp
