#include "analysis/interval_runner.h"

#include "core/perfect_profiler.h"
#include "support/panic.h"

namespace mhp {

ErrorBreakdown
RunResult::averageError() const
{
    ErrorBreakdown avg;
    if (intervals.empty())
        return avg;
    for (const auto &score : intervals)
        avg += score.breakdown;
    avg /= static_cast<double>(intervals.size());
    return avg;
}

double
RunResult::averageErrorPercent() const
{
    return averageError().total() * 100.0;
}

double
RunResult::meanHardwareCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.hardwareCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
RunResult::meanPerfectCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.perfectCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
StreamStats::meanDistinctTuples() const
{
    if (distinctTuples.empty())
        return 0.0;
    double sum = 0.0;
    for (uint64_t d : distinctTuples)
        sum += static_cast<double>(d);
    return sum / static_cast<double>(distinctTuples.size());
}

RunOutput
runIntervals(EventSource &source,
             const std::vector<HardwareProfiler *> &profilers,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    MHP_REQUIRE(!profilers.empty(), "no profilers to run");
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");

    RunOutput out;
    out.results.resize(profilers.size());
    for (size_t i = 0; i < profilers.size(); ++i) {
        MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
        out.results[i].profilerName = profilers[i]->name();
        out.results[i].intervals.reserve(numIntervals);
    }

    PerfectProfiler perfect(thresholdCount);

    for (uint64_t interval = 0; interval < numIntervals; ++interval) {
        uint64_t consumed = 0;
        while (consumed < intervalLength && !source.done()) {
            const Tuple t = source.next();
            perfect.onEvent(t);
            for (auto *profiler : profilers)
                profiler->onEvent(t);
            ++consumed;
        }
        out.eventsConsumed += consumed;
        if (consumed < intervalLength) {
            // Source ran dry: discard the partial interval.
            perfect.reset();
            break;
        }

        out.stream.distinctTuples.push_back(perfect.distinctTuples());
        const auto &truth = perfect.counts();
        for (size_t i = 0; i < profilers.size(); ++i) {
            const IntervalSnapshot snap = profilers[i]->endInterval();
            out.results[i].intervals.push_back(
                scoreInterval(truth, snap, thresholdCount));
        }
        perfect.endInterval();
        ++out.intervalsCompleted;
    }
    return out;
}

RunOutput
runIntervals(EventSource &source, HardwareProfiler &profiler,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    std::vector<HardwareProfiler *> profilers{&profiler};
    return runIntervals(source, profilers, intervalLength, thresholdCount,
                        numIntervals);
}

} // namespace mhp
