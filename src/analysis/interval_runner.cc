#include "analysis/interval_runner.h"

#include <algorithm>
#include <chrono>

#include "core/perfect_profiler.h"
#include "support/panic.h"
#include "support/parallel.h"

namespace mhp {

ErrorBreakdown
RunResult::averageError() const
{
    ErrorBreakdown avg;
    if (intervals.empty())
        return avg;
    for (const auto &score : intervals)
        avg += score.breakdown;
    avg /= static_cast<double>(intervals.size());
    return avg;
}

double
RunResult::averageErrorPercent() const
{
    return averageError().total() * 100.0;
}

double
RunResult::meanHardwareCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.hardwareCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
RunResult::meanPerfectCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.perfectCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
StreamStats::meanDistinctTuples() const
{
    if (distinctTuples.empty())
        return 0.0;
    double sum = 0.0;
    for (uint64_t d : distinctTuples)
        sum += static_cast<double>(d);
    return sum / static_cast<double>(distinctTuples.size());
}

RunOutput
runIntervalsStream(StreamCursor &stream,
                   const std::vector<HardwareProfiler *> &profilers,
                   uint64_t intervalLength, uint64_t thresholdCount,
                   uint64_t numIntervals,
                   const StreamRunOptions &options)
{
    MHP_REQUIRE(!profilers.empty(), "no profilers to run");
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");
    MHP_REQUIRE(options.batchSize > 0, "batchSize must be positive");

    RunOutput out;
    out.results.resize(profilers.size());
    std::vector<std::vector<IntervalSnapshot>> snapshots(
        options.keepSnapshots ? profilers.size() : 0);
    for (size_t i = 0; i < profilers.size(); ++i) {
        MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
        out.results[i].profilerName = profilers[i]->name();
    }

    PerfectProfiler perfect(options.score ? thresholdCount : 1);

    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();

    for (uint64_t interval = 0; interval < numIntervals; ++interval) {
        // Cooperative stops land only on interval boundaries, so
        // every completed interval is whole and scored; the partial
        // state of an aborted interval is simply never produced.
        if (options.cancel != nullptr && options.cancel->cancelled()) {
            out.stopped = RunStopReason::Cancelled;
            break;
        }
        if (options.deadlineMs > 0 &&
            Clock::now() - start >=
                std::chrono::milliseconds(options.deadlineMs)) {
            out.stopped = RunStopReason::DeadlineExceeded;
            break;
        }

        uint64_t consumed = 0;
        while (consumed < intervalLength) {
            // Chunks never cross an interval boundary, so endInterval
            // always lands exactly on intervalLength events.
            const uint64_t want = std::min<uint64_t>(
                options.batchSize, intervalLength - consumed);
            const TupleSpan chunk =
                stream.take(static_cast<size_t>(want));
            if (chunk.empty())
                break; // stream ran dry
            if (options.score)
                perfect.onEvents(chunk.data(), chunk.size());
            for (auto *profiler : profilers)
                profiler->onEvents(chunk.data(), chunk.size());
            consumed += chunk.size();
        }
        out.eventsConsumed += consumed;
        if (consumed < intervalLength) {
            // Stream ran dry: discard the partial interval.
            if (options.score)
                perfect.reset();
            break;
        }

        if (options.score) {
            out.stream.distinctTuples.push_back(
                perfect.distinctTuples());
        }
        for (size_t i = 0; i < profilers.size(); ++i) {
            IntervalSnapshot snap = profilers[i]->endInterval();
            if (options.score) {
                out.results[i].intervals.push_back(scoreInterval(
                    perfect.counts(), snap, thresholdCount));
            }
            if (options.keepSnapshots)
                snapshots[i].push_back(std::move(snap));
        }
        if (options.score)
            perfect.endInterval();
        ++out.intervalsCompleted;
    }
    if (options.keepSnapshots)
        out.snapshots = std::move(snapshots);
    return out;
}

RunOutput
runIntervals(EventSource &source,
             const std::vector<HardwareProfiler *> &profilers,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    // Per-event cadence: a one-event staging cursor delivers every
    // tuple as its own onEvents() block, which each profiler's base
    // class runs through onEvent() (equivalence asserted by
    // tests/core/test_batched_ingest).
    EventSourceCursor cursor(source, 1);
    StreamRunOptions options;
    options.batchSize = 1;
    return runIntervalsStream(cursor, profilers, intervalLength,
                              thresholdCount, numIntervals, options);
}

RunOutput
runIntervals(EventSource &source, HardwareProfiler &profiler,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    std::vector<HardwareProfiler *> profilers{&profiler};
    return runIntervals(source, profilers, intervalLength, thresholdCount,
                        numIntervals);
}

RunOutput
runIntervalsBatched(EventSource &source,
                    const std::vector<HardwareProfiler *> &profilers,
                    uint64_t intervalLength, uint64_t thresholdCount,
                    uint64_t numIntervals, uint64_t batchSize)
{
    MHP_REQUIRE(batchSize > 0, "batchSize must be positive");
    EventSourceCursor cursor(
        source,
        static_cast<size_t>(std::min(batchSize, intervalLength)));
    StreamRunOptions options;
    options.batchSize = batchSize;
    return runIntervalsStream(cursor, profilers, intervalLength,
                              thresholdCount, numIntervals, options);
}

RunOutput
runIntervalsSpan(TupleSpan stream,
                 const std::vector<HardwareProfiler *> &profilers,
                 uint64_t intervalLength, uint64_t thresholdCount,
                 uint64_t numIntervals, const BatchedRunOptions &options)
{
    MHP_REQUIRE(!profilers.empty(), "no profilers to run");
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");
    MHP_REQUIRE(options.batchSize > 0, "batchSize must be positive");

    const uint64_t intervals = std::min<uint64_t>(
        numIntervals, stream.size() / intervalLength);

    RunOutput out;
    out.results.resize(profilers.size());
    std::vector<std::vector<IntervalSnapshot>> snapshots(
        profilers.size());
    for (size_t i = 0; i < profilers.size(); ++i) {
        MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
        out.results[i].profilerName = profilers[i]->name();
        out.results[i].intervals.resize(intervals);
        snapshots[i].resize(intervals);
    }
    out.stream.distinctTuples.resize(intervals);
    // Mirror runIntervals(): a trailing partial interval is consumed
    // (then discarded), a finished run leaves the tail untouched.
    out.eventsConsumed = std::min<uint64_t>(
        stream.size(), numIntervals * intervalLength);
    out.intervalsCompleted = intervals;
    if (intervals == 0) {
        if (options.keepSnapshots)
            out.snapshots = std::move(snapshots);
        return out;
    }

    // Phase 1 — ingest: each profiler walks its whole timeline on one
    // worker, through the streaming core in ingest-only mode (scoring
    // is deferred to phase 2). Profilers share no mutable state and
    // every cursor is a zero-copy view of the same span.
    parallelFor(
        profilers.size(),
        [&](size_t p) {
            TupleSpanSource cursor(
                stream.first(intervals * intervalLength));
            StreamRunOptions ingest;
            ingest.batchSize = options.batchSize;
            ingest.keepSnapshots = true;
            ingest.score = false;
            std::vector<HardwareProfiler *> one{profilers[p]};
            RunOutput sub =
                runIntervalsStream(cursor, one, intervalLength,
                                   thresholdCount, intervals, ingest);
            snapshots[p] = std::move(sub.snapshots[0]);
        },
        options.threads, /*grain=*/1);

    // Phase 2 — score: each interval's perfect profile depends only on
    // that interval's events, so truth construction and scoring shard
    // cleanly across intervals.
    parallelFor(
        intervals,
        [&](size_t k) {
            PerfectProfiler perfect(thresholdCount);
            const TupleSpan interval =
                stream.subspan(k * intervalLength, intervalLength);
            perfect.onEvents(interval.data(), interval.size());
            out.stream.distinctTuples[k] = perfect.distinctTuples();
            const auto &truth = perfect.counts();
            for (size_t p = 0; p < profilers.size(); ++p) {
                out.results[p].intervals[k] =
                    scoreInterval(truth, snapshots[p][k], thresholdCount);
            }
        },
        options.threads, /*grain=*/1);

    if (options.keepSnapshots)
        out.snapshots = std::move(snapshots);
    return out;
}

} // namespace mhp
