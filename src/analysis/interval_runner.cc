#include "analysis/interval_runner.h"

#include <algorithm>

#include "core/perfect_profiler.h"
#include "support/panic.h"
#include "support/parallel.h"

namespace mhp {

ErrorBreakdown
RunResult::averageError() const
{
    ErrorBreakdown avg;
    if (intervals.empty())
        return avg;
    for (const auto &score : intervals)
        avg += score.breakdown;
    avg /= static_cast<double>(intervals.size());
    return avg;
}

double
RunResult::averageErrorPercent() const
{
    return averageError().total() * 100.0;
}

double
RunResult::meanHardwareCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.hardwareCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
RunResult::meanPerfectCandidates() const
{
    if (intervals.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &score : intervals)
        sum += static_cast<double>(score.perfectCandidates);
    return sum / static_cast<double>(intervals.size());
}

double
StreamStats::meanDistinctTuples() const
{
    if (distinctTuples.empty())
        return 0.0;
    double sum = 0.0;
    for (uint64_t d : distinctTuples)
        sum += static_cast<double>(d);
    return sum / static_cast<double>(distinctTuples.size());
}

RunOutput
runIntervals(EventSource &source,
             const std::vector<HardwareProfiler *> &profilers,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    MHP_REQUIRE(!profilers.empty(), "no profilers to run");
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");

    RunOutput out;
    out.results.resize(profilers.size());
    for (size_t i = 0; i < profilers.size(); ++i) {
        MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
        out.results[i].profilerName = profilers[i]->name();
        out.results[i].intervals.reserve(numIntervals);
    }

    PerfectProfiler perfect(thresholdCount);

    for (uint64_t interval = 0; interval < numIntervals; ++interval) {
        uint64_t consumed = 0;
        while (consumed < intervalLength && !source.done()) {
            const Tuple t = source.next();
            perfect.onEvent(t);
            for (auto *profiler : profilers)
                profiler->onEvent(t);
            ++consumed;
        }
        out.eventsConsumed += consumed;
        if (consumed < intervalLength) {
            // Source ran dry: discard the partial interval.
            perfect.reset();
            break;
        }

        out.stream.distinctTuples.push_back(perfect.distinctTuples());
        const auto &truth = perfect.counts();
        for (size_t i = 0; i < profilers.size(); ++i) {
            const IntervalSnapshot snap = profilers[i]->endInterval();
            out.results[i].intervals.push_back(
                scoreInterval(truth, snap, thresholdCount));
        }
        perfect.endInterval();
        ++out.intervalsCompleted;
    }
    return out;
}

RunOutput
runIntervals(EventSource &source, HardwareProfiler &profiler,
             uint64_t intervalLength, uint64_t thresholdCount,
             uint64_t numIntervals)
{
    std::vector<HardwareProfiler *> profilers{&profiler};
    return runIntervals(source, profilers, intervalLength, thresholdCount,
                        numIntervals);
}

RunOutput
runIntervalsBatched(EventSource &source,
                    const std::vector<HardwareProfiler *> &profilers,
                    uint64_t intervalLength, uint64_t thresholdCount,
                    uint64_t numIntervals, uint64_t batchSize)
{
    MHP_REQUIRE(!profilers.empty(), "no profilers to run");
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");
    MHP_REQUIRE(batchSize > 0, "batchSize must be positive");

    RunOutput out;
    out.results.resize(profilers.size());
    for (size_t i = 0; i < profilers.size(); ++i) {
        MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
        out.results[i].profilerName = profilers[i]->name();
        out.results[i].intervals.reserve(numIntervals);
    }

    PerfectProfiler perfect(thresholdCount);
    std::vector<Tuple> buffer;
    buffer.reserve(std::min<uint64_t>(batchSize, intervalLength));

    for (uint64_t interval = 0; interval < numIntervals; ++interval) {
        uint64_t consumed = 0;
        while (consumed < intervalLength && !source.done()) {
            buffer.clear();
            const uint64_t want =
                std::min(batchSize, intervalLength - consumed);
            while (buffer.size() < want && !source.done())
                buffer.push_back(source.next());
            perfect.onEvents(buffer.data(), buffer.size());
            for (auto *profiler : profilers)
                profiler->onEvents(buffer.data(), buffer.size());
            consumed += buffer.size();
        }
        out.eventsConsumed += consumed;
        if (consumed < intervalLength) {
            // Source ran dry: discard the partial interval.
            perfect.reset();
            break;
        }

        out.stream.distinctTuples.push_back(perfect.distinctTuples());
        const auto &truth = perfect.counts();
        for (size_t i = 0; i < profilers.size(); ++i) {
            const IntervalSnapshot snap = profilers[i]->endInterval();
            out.results[i].intervals.push_back(
                scoreInterval(truth, snap, thresholdCount));
        }
        perfect.endInterval();
        ++out.intervalsCompleted;
    }
    return out;
}

RunOutput
runIntervalsSpan(TupleSpan stream,
                 const std::vector<HardwareProfiler *> &profilers,
                 uint64_t intervalLength, uint64_t thresholdCount,
                 uint64_t numIntervals, const BatchedRunOptions &options)
{
    MHP_REQUIRE(!profilers.empty(), "no profilers to run");
    MHP_REQUIRE(intervalLength > 0, "intervalLength must be positive");
    MHP_REQUIRE(options.batchSize > 0, "batchSize must be positive");

    const uint64_t intervals = std::min<uint64_t>(
        numIntervals, stream.size() / intervalLength);

    RunOutput out;
    out.results.resize(profilers.size());
    std::vector<std::vector<IntervalSnapshot>> snapshots(
        profilers.size());
    for (size_t i = 0; i < profilers.size(); ++i) {
        MHP_REQUIRE(profilers[i] != nullptr, "null profiler");
        out.results[i].profilerName = profilers[i]->name();
        out.results[i].intervals.resize(intervals);
        snapshots[i].resize(intervals);
    }
    out.stream.distinctTuples.resize(intervals);
    // Mirror runIntervals(): a trailing partial interval is consumed
    // (then discarded), a finished run leaves the tail untouched.
    out.eventsConsumed = std::min<uint64_t>(
        stream.size(), numIntervals * intervalLength);
    out.intervalsCompleted = intervals;
    if (intervals == 0) {
        if (options.keepSnapshots)
            out.snapshots = std::move(snapshots);
        return out;
    }

    // Phase 1 — ingest: each profiler walks its whole timeline on one
    // worker. Profilers share no mutable state and read the same span.
    parallelFor(
        profilers.size(),
        [&](size_t p) {
            HardwareProfiler &profiler = *profilers[p];
            for (uint64_t k = 0; k < intervals; ++k) {
                const TupleSpan interval =
                    stream.subspan(k * intervalLength, intervalLength);
                for (size_t off = 0; off < interval.size();
                     off += options.batchSize) {
                    const size_t n = std::min<size_t>(
                        options.batchSize, interval.size() - off);
                    profiler.onEvents(interval.data() + off, n);
                }
                snapshots[p][k] = profiler.endInterval();
            }
        },
        options.threads, /*grain=*/1);

    // Phase 2 — score: each interval's perfect profile depends only on
    // that interval's events, so truth construction and scoring shard
    // cleanly across intervals.
    parallelFor(
        intervals,
        [&](size_t k) {
            PerfectProfiler perfect(thresholdCount);
            const TupleSpan interval =
                stream.subspan(k * intervalLength, intervalLength);
            perfect.onEvents(interval.data(), interval.size());
            out.stream.distinctTuples[k] = perfect.distinctTuples();
            const auto &truth = perfect.counts();
            for (size_t p = 0; p < profilers.size(); ++p) {
                out.results[p].intervals[k] =
                    scoreInterval(truth, snapshots[p][k], thresholdCount);
            }
        },
        options.threads, /*grain=*/1);

    if (options.keepSnapshots)
        out.snapshots = std::move(snapshots);
    return out;
}

} // namespace mhp
