/**
 * @file
 * Binary serialization of captured profiles (.mhp files).
 *
 * A profile file stores the sequence of interval snapshots a profiler
 * produced — the artifact a run-time optimizer (or an offline tool)
 * consumes. The current on-disk format is v3 (see docs/FORMATS.md for
 * the byte-level specification):
 *
 *   header:   magic "MHPROF3\0" (8 bytes)
 *             kind (1 byte)    reserved (7 bytes, zero)
 *             intervalLength (8 bytes LE)
 *             thresholdCount (8 bytes LE)
 *             intervalCount (8 bytes LE, back-patched on close)
 *             headerCrc (4 bytes LE, CRC-32 of bytes [0,40))
 *   per interval:
 *             candidateCount (8 bytes LE)
 *             candidateCount * { first, second, count } (24 bytes LE)
 *             intervalCrc (4 bytes LE, CRC-32 of count + records)
 *
 * The writer streams to "<path>.tmp" and renames into place on
 * close(), so a crash never leaves a half-written profile under the
 * final name. The reader validates both CRCs, bounds every allocation
 * by the remaining file size, and detects truncation from the explicit
 * interval count; it still accepts v2 ("MHPROF2\0", same layout but
 * the kind byte predates the event-class registry, so only the
 * original four kinds are valid) and the legacy v1 format
 * ("MHPROF1\0", no CRCs, implicit interval count read until EOF).
 *
 * Everything here treats the file as untrusted input: failures are
 * reported as Status values whose messages carry path, offset, and
 * reason — nothing in this file aborts the process (see
 * docs/ROBUSTNESS.md for the error-handling contract).
 */

#ifndef MHP_ANALYSIS_PROFILE_IO_H
#define MHP_ANALYSIS_PROFILE_IO_H

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "support/status.h"
#include "trace/tuple.h"

namespace mhp {

/** Streams interval snapshots into a .mhp file (v3, checksummed). */
class ProfileWriter
{
  public:
    /**
     * Open "<path>.tmp" for writing; the file appears under its final
     * name only when close() succeeds.
     *
     * @param path Final output file (replaced atomically on close).
     * @param kind What the tuples represent.
     * @param intervalLength Events per interval (metadata).
     * @param thresholdCount Candidate threshold (metadata).
     */
    ProfileWriter(const std::string &path, ProfileKind kind,
                  uint64_t intervalLength, uint64_t thresholdCount);

    /** Abandons (close()s) the profile if still open; errors are lost. */
    ~ProfileWriter();

    ProfileWriter(const ProfileWriter &) = delete;
    ProfileWriter &operator=(const ProfileWriter &) = delete;

    bool ok() const { return static_cast<bool>(out); }

    /**
     * Append one interval's snapshot (checksummed). Failures latch:
     * after the first error every further write returns it, and
     * close() removes the temp file instead of publishing a partial
     * profile.
     */
    Status writeInterval(const IntervalSnapshot &snapshot);

    /**
     * Back-patch the interval count, flush, fsync the temp file,
     * atomically rename it into place, and fsync the parent directory
     * so the rename survives a crash. Idempotent; returns the first
     * error. On any failure before the rename the temp file is
     * removed and nothing appears under the final name.
     */
    Status close();

    uint64_t intervalsWritten() const { return intervals; }

  private:
    /** Record (and return) the first write failure. */
    Status fail(Status error);

    std::string finalPath;
    std::string tempPath;
    std::ofstream out;
    uint64_t intervals = 0;
    ProfileKind kind;
    uint64_t intervalLength;
    uint64_t thresholdCount;
    bool closed = false;
    Status firstError;
};

/** Reads a .mhp file back (v3/v2 with validation; v1 accepted). */
class ProfileReader
{
  public:
    /**
     * Open and validate a profile header. Every failure — missing
     * file, bad magic, corrupt header CRC, unterminated v2 writer —
     * comes back as a Status naming the path and reason.
     */
    static StatusOr<ProfileReader> open(const std::string &path);

    ProfileKind kind() const { return profileKind; }
    uint64_t intervalLength() const { return length; }
    uint64_t thresholdCount() const { return threshold; }

    /** On-disk format version: 1 (legacy), 2, or 3. */
    unsigned formatVersion() const { return version; }

    /** Intervals the v2/v3 header promises (0 for v1: implicit). */
    uint64_t declaredIntervals() const
    {
        return version >= 2 ? intervalCount : 0;
    }

    /**
     * Cursor: read the next snapshot, or nullopt at the clean end of
     * the profile (where a v2 file with bytes trailing the last
     * declared interval is rejected as corrupt). Peak memory is one
     * interval — this is the streaming interface the tools and
     * readAll() are built on.
     */
    StatusOr<std::optional<IntervalSnapshot>> next();

    /**
     * Read the next snapshot.
     * @return true if one was read, false at clean end of profile, or
     *         a CorruptData/IoError Status (path + offset + reason).
     */
    StatusOr<bool> readInterval(IntervalSnapshot &snapshot);

    /**
     * Read all remaining snapshots into memory at once.
     * @deprecated Convenience wrapper over next(); prefer the cursor —
     * it keeps peak memory at one interval instead of the whole file.
     */
    StatusOr<std::vector<IntervalSnapshot>> readAll();

  private:
    ProfileReader() = default;

    Status corruptHere(const std::string &reason) const;

    std::string path;
    std::ifstream in;
    ProfileKind profileKind = ProfileKind::Value;
    uint64_t length = 0;
    uint64_t threshold = 0;
    unsigned version = 3;
    uint64_t intervalCount = 0; ///< declared (v2/v3 only)
    uint64_t intervalsRead = 0;
    uint64_t fileSize = 0;
    uint64_t offset = 0; ///< bytes consumed so far (diagnostics)
};

} // namespace mhp

#endif // MHP_ANALYSIS_PROFILE_IO_H
