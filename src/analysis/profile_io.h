/**
 * @file
 * Binary serialization of captured profiles (.mhp files).
 *
 * A profile file stores the sequence of interval snapshots a profiler
 * produced — the artifact a run-time optimizer (or an offline tool)
 * consumes. Format:
 *
 *   header:   magic "MHPROF1\0" (8 bytes)
 *             kind (1 byte)    reserved (7 bytes)
 *             intervalLength (8 bytes LE)
 *             thresholdCount (8 bytes LE)
 *   per interval:
 *             candidateCount (8 bytes LE)
 *             candidateCount * { first, second, count } (24 bytes LE)
 *
 * The interval count is implicit (read until EOF), so profiles can be
 * streamed and appended.
 */

#ifndef MHP_ANALYSIS_PROFILE_IO_H
#define MHP_ANALYSIS_PROFILE_IO_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "trace/tuple.h"

namespace mhp {

/** Streams interval snapshots into a .mhp file. */
class ProfileWriter
{
  public:
    /**
     * @param path Output file (truncated).
     * @param kind What the tuples represent.
     * @param intervalLength Events per interval (metadata).
     * @param thresholdCount Candidate threshold (metadata).
     */
    ProfileWriter(const std::string &path, ProfileKind kind,
                  uint64_t intervalLength, uint64_t thresholdCount);

    bool ok() const { return static_cast<bool>(out); }

    /** Append one interval's snapshot. */
    void writeInterval(const IntervalSnapshot &snapshot);

    uint64_t intervalsWritten() const { return intervals; }

  private:
    std::ofstream out;
    uint64_t intervals = 0;
};

/** Reads a .mhp file back. */
class ProfileReader
{
  public:
    /** Open a profile; fatal on a missing/corrupt header. */
    explicit ProfileReader(const std::string &path);

    ProfileKind kind() const { return profileKind; }
    uint64_t intervalLength() const { return length; }
    uint64_t thresholdCount() const { return threshold; }

    /**
     * Read the next snapshot.
     * @return false at end of file (snapshot untouched).
     */
    bool readInterval(IntervalSnapshot &snapshot);

    /** Read all remaining snapshots. */
    std::vector<IntervalSnapshot> readAll();

  private:
    std::ifstream in;
    ProfileKind profileKind = ProfileKind::Value;
    uint64_t length = 0;
    uint64_t threshold = 0;
};

} // namespace mhp

#endif // MHP_ANALYSIS_PROFILE_IO_H
