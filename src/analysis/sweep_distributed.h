/**
 * @file
 * Distributed elastic sweep execution: a coordinator that shards a
 * SweepPlan into cell-range leases and hands them to worker processes
 * over the CRC-framed Unix-socket protocol (support/wire.h,
 * analysis/sweep_wire.h), with work-stealing, heartbeats, retry and
 * quarantine semantics lifted from SweepRunner::runResilient(), and
 * the lease-extended checkpoint journal (analysis/sweep_journal.h)
 * making every crash — coordinator kill -9, worker kill -9, dropped
 * connection — resumable to a bit-identical SweepReport.
 *
 * Determinism contract: a cell's result is a pure function of the
 * plan and its index, and a cell's *failure* is a pure function of
 * the failpoint (spec, seed, cell, attempt) — never of which worker
 * ran it or when. The merged report therefore equals the
 * single-process runResilient() report for any worker count, any
 * work-stealing schedule, and any crash/resume history (asserted by
 * tests/integration/test_distributed_sweep.cc and
 * tests/distributed_chaos_smoke.sh; see docs/DISTRIBUTED.md for the
 * protocol and the crash/resume state machine).
 */

#ifndef MHP_ANALYSIS_SWEEP_DISTRIBUTED_H
#define MHP_ANALYSIS_SWEEP_DISTRIBUTED_H

#include <cstdint>
#include <string>

#include "analysis/sweep_runner.h"
#include "support/status.h"

namespace mhp {

/** Knobs of the coordinator side (runDistributedSweep). */
struct DistributedSweepOptions
{
    /** Worker processes to spawn locally (mhprof_worker binaries). */
    unsigned workers = 0;

    /**
     * Also (or only, when workers == 0) accept externally started
     * workers that connect to the socket. With workers == 0 this must
     * be set — a coordinator with no possible workers is an error.
     */
    bool acceptExternal = false;

    /**
     * Unix socket path the coordinator listens on; empty derives
     * /tmp/mhprof-coord-<pid>.sock. Must fit in sockaddr_un.
     */
    std::string socketPath;

    /**
     * Path of the mhprof_worker binary to spawn; empty resolves
     * "mhprof_worker" next to the running executable.
     */
    std::string workerBinary;

    /**
     * Cells per lease; 0 derives cells / (8 * workers), clamped to
     * [1, 256]. Smaller leases spread better; larger ones amortize
     * protocol overhead.
     */
    uint64_t chunkCells = 0;

    /**
     * A worker that has not sent any frame for this long is declared
     * dead: its connection is dropped, the unfinished tail of its
     * lease is repooled, and (spawned workers) a replacement is
     * started. Must comfortably exceed the longest single cell.
     */
    uint64_t workerTimeoutMs = 15000;

    /** Heartbeat period handed to spawned workers. */
    uint64_t heartbeatMs = 500;

    /** Replacement budget for dead spawned workers (total). */
    unsigned maxWorkerRestarts = 8;

    /**
     * Worker deaths attributed to the same cell before that cell is
     * quarantined as poisonous (IoError) instead of retried forever.
     */
    unsigned maxCellDeaths = 3;

    /**
     * Retry/quarantine/backoff/deadline knobs applied *inside each
     * worker*, identical to the single-process executor: threads is
     * ignored, checkpointPath names the coordinator's lease journal,
     * and cancel stops the coordinator at a message boundary.
     */
    SweepResilienceOptions resilience;

    /** Failpoint schedule forwarded to every worker via the Plan. */
    std::string failpointSpec;
    uint64_t failpointSeed = 0;

    /** Log spawn/death/steal events to stderr (chaos tests parse it). */
    bool verbose = false;
};

/**
 * Execute `plan` across worker processes and merge the results.
 *
 * Only infrastructure failures (socket setup, spawn failure, journal
 * I/O, every worker lost with no restart budget) fail the call; cell
 * failures are data in the report, exactly like runResilient(). With
 * options.resilience.checkpointPath set, a killed coordinator rerun
 * with the same plan resumes from the journal; the merged report is
 * bit-identical to an uninterrupted single-process run.
 */
StatusOr<SweepReport>
runDistributedSweep(const SweepPlan &plan,
                    const DistributedSweepOptions &options);

/** Knobs of the worker side (runSweepWorker). */
struct SweepWorkerOptions
{
    /** Coordinator socket to connect to. */
    std::string socketPath;

    /** Keep retrying the initial connect for this long (0 = once). */
    uint64_t connectRetryMs = 0;

    /** Heartbeat period while computing. */
    uint64_t heartbeatMs = 500;

    /**
     * Exit with "lost coordinator" after this long with no frame
     * while idle; also the send/handshake timeout.
     */
    uint64_t ioTimeoutMs = 120000;
};

/**
 * Run one worker: connect, handshake, then pull leases and stream
 * back per-cell results until the coordinator says Shutdown.
 *
 * Returns ok() on a clean shutdown; NotFound/InvalidArgument for
 * connect/handshake problems; IoError (message begins with "lost
 * coordinator") when the coordinator vanishes mid-run — tools map
 * that to exit code 4 so a kill-matrix can tell orphaned workers
 * from usage errors.
 */
Status runSweepWorker(const SweepWorkerOptions &options);

} // namespace mhp

#endif // MHP_ANALYSIS_SWEEP_DISTRIBUTED_H
