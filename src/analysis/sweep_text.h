/**
 * @file
 * The one textual rendering of a SweepReport, shared by every tool
 * that prints one (mhprof_run's sweep mode and mhprof_coord). Keeping
 * the format strings in a single place is what lets the distributed
 * chaos tests assert byte-identical stdout between the in-process
 * engine and the coordinator — the two tools cannot drift apart
 * because there is nothing to drift.
 *
 * Convention (inherited from mhprof_run): stdout carries only the
 * result table; quarantine lines are stderr diagnostics prefixed with
 * the tool name, plus an optional tab-separated report file.
 */

#ifndef MHP_ANALYSIS_SWEEP_TEXT_H
#define MHP_ANALYSIS_SWEEP_TEXT_H

#include <string>

#include "analysis/sweep_runner.h"

namespace mhp {

/** "<tool>: quarantined cell N (...) after K attempts: ..." lines. */
void printQuarantineDiagnostics(const char *tool,
                                const SweepReport &report);

/**
 * Write the tab-separated quarantine report (one line per cell:
 * index, benchmark, config, length, attempts, status). False when
 * the file cannot be written.
 */
bool writeQuarantineReport(const std::string &path,
                           const SweepReport &report);

/**
 * Print the result table to stdout, one line per populated cell, in
 * cell order — bit-identical for any execution schedule. Returns
 * true when at least one cell is missing (quarantined or never run),
 * which tools turn into exit code 3.
 */
bool printSweepTable(const SweepReport &report);

} // namespace mhp

#endif // MHP_ANALYSIS_SWEEP_TEXT_H
