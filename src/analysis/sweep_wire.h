/**
 * @file
 * Message layer of the distributed sweep protocol: the typed payloads
 * that travel inside wire frames (support/wire.h) between
 * mhprof_coord and mhprof_worker. Frame format, handshake, and the
 * crash/resume state machine are documented in docs/DISTRIBUTED.md.
 *
 * Everything here is untrusted input on arrival: every decode is
 * bounds-checked through ByteCursor and returns a one-line Status
 * instead of trusting a peer (a worker from a different build, a
 * truncated plan, a fingerprint that does not match the coordinator's
 * checkpoint). The plan envelope carries the coordinator's plan
 * fingerprint, and decodeplan cross-checks it against a fingerprint
 * recomputed from the decoded plan — any serialization drift between
 * builds is caught at handshake, not as silently different results.
 */

#ifndef MHP_ANALYSIS_SWEEP_WIRE_H
#define MHP_ANALYSIS_SWEEP_WIRE_H

#include <cstdint>
#include <string>

#include "analysis/sweep_journal.h"
#include "analysis/sweep_runner.h"
#include "support/bytes.h"
#include "support/status.h"

namespace mhp {

/** Protocol revision; bumped on any frame-payload change. */
constexpr uint32_t kSweepProtoVersion = 2; // v2: Plan kind byte is a
                                           // registry ProfileKind

/** Frame types of the sweep protocol (wire frame `type` byte). */
enum class SweepMsg : uint8_t
{
    Hello = 1,      ///< w→c: protocol version + worker pid
    Plan = 2,       ///< c→w: the full plan envelope
    Ready = 3,      ///< w→c: idle, give me a range
    Grant = 4,      ///< c→w: lease of a cell range
    Result = 5,     ///< w→c: one completed cell, bit-exact
    Quarantine = 6, ///< w→c: a cell that failed every attempt
    Heartbeat = 7,  ///< w→c: liveness while computing
    Trim = 8,       ///< c→w: shorten your lease (work-stealing)
    TrimAck = 9,    ///< w→c: lease now ends at `end`
    Shutdown = 10,  ///< c→w: no more work; exit cleanly
    Bye = 11,       ///< w→c: clean goodbye
};

/** Printable frame-type name for diagnostics. */
const char *sweepMsgName(uint8_t type);

/** Hello payload. */
struct WireHello
{
    uint32_t protoVersion = kSweepProtoVersion;
    uint64_t pid = 0;
};

void encodeHello(ByteBuffer &out, const WireHello &hello);
Status decodeHello(const uint8_t *data, size_t size, WireHello &hello);

/**
 * The Plan payload: everything a worker needs to reproduce the
 * coordinator's cells bit-identically — the SweepPlan itself (a
 * mapped trace travels as its path + content fingerprint, re-opened
 * and re-verified worker-side), the resilience knobs of the retry
 * loop, and the failpoint spec/seed so injected failures fire
 * identically on every participant.
 */
struct WirePlan
{
    /** Workload plan fields (trace conveyed separately). */
    SweepPlan plan;

    /** Non-empty for trace-backed plans; worker re-opens and checks. */
    std::string tracePath;
    uint64_t traceFingerprint = 0;

    /** Retry-loop knobs (subset of SweepResilienceOptions). */
    uint32_t maxAttempts = 3;
    uint64_t cellDeadlineMs = 0;
    uint64_t backoffBaseMs = 0;
    uint64_t backoffCapMs = 1000;
    uint64_t backoffSeed = 0;

    /** Failpoint schedule all participants share. */
    std::string failpointSpec;
    uint64_t failpointSeed = 0;

    /** The coordinator's SweepRunner::planFingerprint(). */
    uint64_t planFingerprint = 0;
};

void encodePlan(ByteBuffer &out, const WirePlan &plan);

/**
 * Decode a Plan payload. The embedded trace (if any) is NOT opened
 * here — the worker does that and must verify both the trace
 * fingerprint and the recomputed plan fingerprint.
 */
Status decodePlan(const uint8_t *data, size_t size, WirePlan &plan);

/** Grant / Trim / TrimAck payload: a lease over [begin, end). */
struct WireLease
{
    uint64_t leaseId = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
};

void encodeLease(ByteBuffer &out, const WireLease &lease);
Status decodeLease(const uint8_t *data, size_t size, WireLease &lease);

/** Result payload: leaseId + the journal cell record. */
void encodeResult(ByteBuffer &out, uint64_t leaseId,
                  uint64_t cellIndex, const SweepCellResult &cell);
Status decodeResult(const uint8_t *data, size_t size,
                    uint64_t &leaseId, uint64_t &cellIndex,
                    SweepCellResult &cell);

/** Quarantine payload. */
struct WireQuarantine
{
    uint64_t leaseId = 0;
    uint64_t cellIndex = 0;
    uint32_t attempts = 0;
    StatusCode code = StatusCode::IoError;
    std::string message;
};

void encodeQuarantine(ByteBuffer &out, const WireQuarantine &q);
Status decodeQuarantine(const uint8_t *data, size_t size,
                        WireQuarantine &q);

/** Heartbeat payload: cells completed so far (monitoring only). */
void encodeHeartbeat(ByteBuffer &out, uint64_t cellsDone);
Status decodeHeartbeat(const uint8_t *data, size_t size,
                       uint64_t &cellsDone);

} // namespace mhp

#endif // MHP_ANALYSIS_SWEEP_WIRE_H
