/**
 * @file
 * The abstract hardware-profiler interface and its snapshot type.
 *
 * A profiler consumes one tuple per profiling event; at the end of each
 * profile interval, endInterval() reports the candidate tuples the
 * hardware captured (the contents of its accumulator table that are at
 * or above the candidate threshold) and prepares the structures for the
 * next interval.
 */

#ifndef MHP_CORE_PROFILER_H
#define MHP_CORE_PROFILER_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"
#include "trace/source.h"
#include "trace/tuple.h"

namespace mhp {

class CounterTable;
class AccumulatorTable;

/**
 * Mutable views of a profiler's physical counter state, exposed for
 * soft-error injection (sim/fault_injector). Pointers are owned by the
 * profiler and stay valid for its lifetime.
 */
struct FaultTargets
{
    std::vector<CounterTable *> counterTables;
    AccumulatorTable *accumulator = nullptr;
};

/** One captured candidate: a tuple and its measured frequency. */
struct CandidateCount
{
    Tuple tuple;
    uint64_t count = 0;

    friend bool operator==(const CandidateCount &,
                           const CandidateCount &) = default;
};

/**
 * The candidates a profiler captured in one interval, sorted by
 * descending count (ties broken by tuple members for determinism).
 */
using IntervalSnapshot = std::vector<CandidateCount>;

/** Sort a snapshot into its canonical order. */
void canonicalize(IntervalSnapshot &snapshot);

/** Abstract interval-based hardware profiler. */
class HardwareProfiler : public EventSink
{
  public:
    ~HardwareProfiler() override = default;

    /** Observe one profiling event. */
    virtual void onEvent(const Tuple &t) = 0;

    /**
     * Observe a contiguous batch of profiling events.
     *
     * Semantically identical to calling onEvent() once per tuple in
     * array order — every override must produce bit-identical interval
     * snapshots to the event-at-a-time path (this is asserted by
     * tests/core/test_batched_ingest). The base implementation is that
     * loop; concrete profilers override it with tight kernels that pay
     * the virtual dispatch once per batch instead of once per event.
     */
    virtual void
    onEvents(const Tuple *events, size_t count)
    {
        for (size_t i = 0; i < count; ++i)
            onEvent(events[i]);
    }

    /** EventSink adapter. */
    void accept(const Tuple &t) final { onEvent(t); }

    /**
     * Close the current interval: report the captured candidates and
     * reset per-interval state (hash tables flushed; accumulator
     * handled per the retaining policy).
     */
    virtual IntervalSnapshot endInterval() = 0;

    /** Discard all state, including anything retained across intervals. */
    virtual void reset() = 0;

    /** Short architecture name for reports (e.g. "mh4-C1R0P1"). */
    virtual std::string name() const = 0;

    /** Total hardware storage this configuration requires, in bytes. */
    virtual uint64_t areaBytes() const = 0;

    /**
     * The profiler's physical state for fault injection; profilers
     * with no injectable hardware state (oracles, software baselines)
     * return the default empty set.
     */
    virtual FaultTargets faultTargets() { return {}; }

    /**
     * Serialize the profiler's mutable mid-stream state (counter
     * values, accumulator entries — everything endInterval() and the
     * ingest path read) into `out`, such that loadState() on a fresh
     * instance built from the same config reproduces bit-identical
     * future behaviour. Configuration is NOT included; the caller
     * persists it separately and rebuilds the instance first.
     *
     * The service checkpointer (src/service/wal.h) relies on this for
     * crash recovery; profilers that never serve as daemon tenants
     * keep the default FailedPrecondition.
     */
    virtual Status
    saveState(ByteBuffer &out) const
    {
        (void)out;
        return Status::failedPrecondition(
            name() + " does not support state serialization");
    }

    /**
     * Restore state captured by saveState() on an identically
     * configured instance. CorruptData when the bytes do not match
     * this configuration's shape.
     */
    virtual Status
    loadState(ByteCursor &in)
    {
        (void)in;
        return Status::failedPrecondition(
            name() + " does not support state serialization");
    }
};

inline void
canonicalize(IntervalSnapshot &snapshot)
{
    std::sort(snapshot.begin(), snapshot.end(),
              [](const CandidateCount &a, const CandidateCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.tuple.first != b.tuple.first)
                      return a.tuple.first < b.tuple.first;
                  return a.tuple.second < b.tuple.second;
              });
}

} // namespace mhp

#endif // MHP_CORE_PROFILER_H
