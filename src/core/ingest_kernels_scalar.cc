/**
 * @file
 * The portable-scalar ingest kernel tier — the reference bodies from
 * ingest_kernels_ref.h wrapped in the dispatch signature. Always
 * compiled, always supported; every other tier is tested against it.
 */

#include "core/ingest_kernels.h"
#include "core/ingest_kernels_ref.h"

namespace mhp {
namespace {

void
hashBlockScalar(const uint64_t *tables, unsigned bits,
                const Tuple *block, const uint32_t *pos, size_t m,
                uint32_t *out, uint32_t stride, uint32_t addend)
{
    for (size_t j = 0; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        out[k * stride] =
            static_cast<uint32_t>(kernel_ref::index(tables, bits,
                                                    block[k])) +
            addend;
    }
}

void
hashBlockMultiScalar(const uint64_t *tables, unsigned numTables,
                     unsigned bits, const Tuple *block,
                     const uint32_t *pos, size_t m, uint32_t *out,
                     uint32_t addendStride)
{
    for (size_t j = 0; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        kernel_ref::indexMulti(tables, numTables, bits, block[k],
                               addendStride, out + k * numTables);
    }
}

void
signatureBlockScalar(const uint64_t *tables, const Tuple *block,
                     size_t m, uint64_t *out)
{
    for (size_t j = 0; j < m; ++j)
        out[j] = kernel_ref::signature(tables, block[j]);
}

void
tupleHashBlockScalar(const Tuple *block, size_t m, uint64_t *out)
{
    for (size_t j = 0; j < m; ++j)
        out[j] = kernel_ref::tupleHash(block[j]);
}

} // namespace

const IngestKernels *
ingestKernelsScalar()
{
    static const IngestKernels table = {
        IsaTier::Scalar,
        hashBlockScalar,
        hashBlockMultiScalar,
        signatureBlockScalar,
        tupleHashBlockScalar,
        kernel_ref::bumpMin,
        kernel_ref::bumpMinConservative,
        kernel_ref::accumProbeBlock,
        kernel_ref::bumpMinBlock,
        kernel_ref::bumpMinConservativeBlock,
    };
    return &table;
}

} // namespace mhp
