#include "core/stratified_sampler.h"

#include <algorithm>

#include "support/bit_util.h"
#include "support/panic.h"

namespace mhp {

StratifiedSampler::StratifiedSampler(
        const StratifiedSamplerConfig &config_, uint64_t thresholdCount_)
    : config(config_), thresholdCount(thresholdCount_),
      hasher(config_.seed, config_.entries), kernels(&ingestKernels())
{
    blockIndexScratch.resize(kIngestBlock);
    blockSigScratch.resize(kIngestBlock);
    MHP_REQUIRE(config.entries >= 2, "sampler needs counters");
    MHP_REQUIRE(config.samplingThreshold >= 1,
                "sampling threshold must be positive");
    MHP_REQUIRE(config.bufferEntries >= 1, "buffer needs capacity");
    MHP_REQUIRE(thresholdCount >= 1, "candidate threshold positive");
    if (config.tagged)
        taggedEntries.resize(config.entries);
    else
        counters.assign(config.entries, 0);
    aggregator.reserve(config.aggregatorEntries);
    buffer.reserve(config.bufferEntries);
}

uint64_t
StratifiedSampler::partialTag(const Tuple &t) const
{
    // Tags are taken from the un-folded signature so they are mostly
    // independent of the index bits.
    return lowBits(hasher.signature(t) >> 20, config.tagBits);
}

void
StratifiedSampler::onEvent(const Tuple &t)
{
    ++eventClock;
    const uint64_t idx = hasher.index(t);

    if (!config.tagged) {
        uint64_t &c = counters[idx];
        if (++c >= config.samplingThreshold) {
            c = 0;
            report(t, config.samplingThreshold);
        }
        return;
    }

    TaggedEntry &e = taggedEntries[idx];
    const uint64_t tag = partialTag(t);
    if (!e.valid) {
        e = TaggedEntry{tag, 1, 0, true};
        return;
    }
    if (e.tag == tag) {
        if (++e.hits >= config.samplingThreshold) {
            e.hits = 0;
            report(t, config.samplingThreshold);
        }
        return;
    }
    // Tag mismatch: count the miss; if the occupant is losing the
    // entry (more misses than hits), replace it with the newcomer.
    ++e.misses;
    if (e.misses > e.hits)
        e = TaggedEntry{tag, 1, 0, true};
}

void
StratifiedSampler::onEvents(const Tuple *events, size_t count)
{
    // Same state machine as onEvent(), with the variant branch hoisted
    // out of the loop and the hash pipeline run as one vectorized
    // kernel pass per block (the active ISA tier's ingest kernels).
    // The report() path stays a call — it fires once per
    // samplingThreshold events at most.
    const IngestKernels &kern = *kernels;
    uint32_t *const blk = blockIndexScratch.data();
    const uint64_t sampleAt = config.samplingThreshold;

    if (!config.tagged) {
        uint64_t *const plain = counters.data();
        for (size_t base = 0; base < count; base += kIngestBlock) {
            const size_t m = std::min(kIngestBlock, count - base);
            const Tuple *const block = events + base;
            kern.hashBlock(hasher.tableWords(), hasher.indexBits(),
                           block, nullptr, m, blk, 1, 0);
            for (size_t e = 0; e < m; ++e) {
                const Tuple &t = block[e];
                ++eventClock;
                uint64_t &c = plain[blk[e]];
                if (++c >= sampleAt) {
                    c = 0;
                    report(t, sampleAt);
                }
            }
        }
        return;
    }

    // Tagged variant: both the index (xor-fold) and the partial tag
    // derive from the unfolded signature, so one signatureBlock pass
    // replaces two scalar randomize pipelines per event.
    TaggedEntry *const entries = taggedEntries.data();
    uint64_t *const sig = blockSigScratch.data();
    const unsigned bits = hasher.indexBits();
    for (size_t base = 0; base < count; base += kIngestBlock) {
        const size_t m = std::min(kIngestBlock, count - base);
        const Tuple *const block = events + base;
        kern.signatureBlock(hasher.tableWords(), block, m, sig);
        for (size_t e = 0; e < m; ++e) {
            const Tuple &t = block[e];
            ++eventClock;
            TaggedEntry &entry = entries[xorFoldHot(sig[e], bits)];
            const uint64_t tag = lowBits(sig[e] >> 20, config.tagBits);
            if (!entry.valid) {
                entry = TaggedEntry{tag, 1, 0, true};
                continue;
            }
            if (entry.tag == tag) {
                if (++entry.hits >= sampleAt) {
                    entry.hits = 0;
                    report(t, sampleAt);
                }
                continue;
            }
            // Tag mismatch: count the miss; if the occupant is losing
            // the entry (more misses than hits), replace it with the
            // newcomer.
            ++entry.misses;
            if (entry.misses > entry.hits)
                entry = TaggedEntry{tag, 1, 0, true};
        }
    }
}

void
StratifiedSampler::report(const Tuple &t, uint64_t weight)
{
    if (config.aggregatorEntries == 0) {
        enqueue(t, weight);
        return;
    }

    // Aggregate in the small associative table before messaging.
    for (auto &entry : aggregator) {
        if (entry.tuple == t) {
            entry.count += weight;
            entry.lastUse = eventClock;
            if (entry.count >= config.aggregatorMax * weight) {
                enqueue(entry.tuple, entry.count);
                entry = aggregator.back();
                aggregator.pop_back();
            }
            return;
        }
    }
    if (aggregator.size() < config.aggregatorEntries) {
        aggregator.push_back({t, weight, eventClock});
        return;
    }
    // Capacity eviction: flush the least-recently-used entry.
    size_t victim = 0;
    for (size_t i = 1; i < aggregator.size(); ++i) {
        if (aggregator[i].lastUse < aggregator[victim].lastUse)
            victim = i;
    }
    enqueue(aggregator[victim].tuple, aggregator[victim].count);
    aggregator[victim] = {t, weight, eventClock};
}

void
StratifiedSampler::enqueue(const Tuple &t, uint64_t weight)
{
    buffer.push_back({t, weight});
    ++messageCount;
    if (buffer.size() >= config.bufferEntries)
        interrupt();
}

void
StratifiedSampler::interrupt()
{
    if (buffer.empty())
        return;
    ++interruptCount;
    for (const auto &msg : buffer)
        software[msg.tuple] += msg.count;
    buffer.clear();
}

IntervalSnapshot
StratifiedSampler::endInterval()
{
    // Flush everything still in flight so the software profile is as
    // complete as this architecture can make it.
    for (const auto &entry : aggregator)
        enqueue(entry.tuple, entry.count);
    aggregator.clear();
    interrupt();

    IntervalSnapshot out;
    for (const auto &[tuple, count] : software) {
        if (count >= thresholdCount)
            out.push_back({tuple, count});
    }
    canonicalize(out);

    software.clear();
    if (config.tagged) {
        for (auto &e : taggedEntries)
            e = TaggedEntry{};
    } else {
        std::fill(counters.begin(), counters.end(), 0);
    }
    return out;
}

void
StratifiedSampler::reset()
{
    endInterval();
    interruptCount = 0;
    messageCount = 0;
    eventClock = 0;
}

std::string
StratifiedSampler::name() const
{
    return config.tagged ? "stratified-tagged" : "stratified";
}

uint64_t
StratifiedSampler::areaBytes() const
{
    // Counter or tagged entries, plus aggregator and buffer storage.
    uint64_t entryBits = 24;
    if (config.tagged)
        entryBits = config.tagBits + 24 + 24 + 1;
    const uint64_t tableBytes = config.entries * ((entryBits + 7) / 8);
    const uint64_t aggBytes = config.aggregatorEntries * 16;
    const uint64_t bufBytes = config.bufferEntries * 16;
    return tableBytes + aggBytes + bufBytes;
}

} // namespace mhp
