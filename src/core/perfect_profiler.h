/**
 * @file
 * The perfect (oracle) interval profiler used for error calculation.
 *
 * Keeps an exact count for every tuple seen in the current interval;
 * its candidates are the ground truth against which the hardware
 * profilers' snapshots are scored (paper Section 5.5.1).
 */

#ifndef MHP_CORE_PERFECT_PROFILER_H
#define MHP_CORE_PERFECT_PROFILER_H

#include <unordered_map>

#include "core/profiler.h"
#include "trace/tuple.h"

namespace mhp {

/** Exact per-interval tuple counter (unbounded storage). */
class PerfectProfiler : public HardwareProfiler
{
  public:
    /**
     * @param thresholdCount Occurrences needed within the interval to
     *        be reported as a candidate.
     */
    explicit PerfectProfiler(uint64_t thresholdCount);

    void onEvent(const Tuple &t) override;
    void onEvents(const Tuple *events, size_t count) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override { return "perfect"; }

    /** An oracle has no hardware budget. */
    uint64_t areaBytes() const override { return 0; }

    /**
     * Exact counts for the current (un-ended) interval; used by the
     * error metrics to look up the true frequency of any tuple the
     * hardware reported. Cleared by endInterval().
     */
    const std::unordered_map<Tuple, uint64_t, TupleHash> &
    counts() const
    {
        return table;
    }

    /** Distinct tuples seen so far this interval. */
    uint64_t distinctTuples() const { return table.size(); }

    /**
     * Close the interval by moving its exact counts out instead of
     * producing a snapshot: the profiler is left in the same
     * fresh-interval state endInterval() leaves, and the caller owns
     * the truth table outright. This is what lets the streaming
     * runner score interval i on a drain worker while interval i+1 is
     * already being ingested into this (now empty) table.
     */
    std::unordered_map<Tuple, uint64_t, TupleHash>
    takeCounts()
    {
        std::unordered_map<Tuple, uint64_t, TupleHash> out;
        out.swap(table);
        return out;
    }

    uint64_t thresholdCount() const { return threshold; }

  private:
    std::unordered_map<Tuple, uint64_t, TupleHash> table;
    uint64_t threshold;
};

} // namespace mhp

#endif // MHP_CORE_PERFECT_PROFILER_H
