/**
 * @file
 * The hot-spot detector of Merten et al. (ISCA 1999) — the
 * table-based hardware profiler class of paper Section 4.1.3.
 *
 * A set-associative Branch Behavior Buffer (BBB) tracks branch
 * execution counts with partial tags; a branch whose counter exceeds
 * the candidate threshold is flagged as a *candidate branch*. A
 * saturating Hot Spot Detection Counter (HDC) increments when an
 * executing branch is a candidate and decrements otherwise; HDC
 * saturation means execution is concentrated in the candidate set — a
 * hot spot. Unlike the Multi-Hash design, the BBB is tagged (costly)
 * and capacity-limited (new branches evict old ones), which is exactly
 * the error class the paper's untagged multistage filter avoids.
 *
 * Adapted to this library's interval framing: at each interval end,
 * the snapshot is the BBB's above-threshold branches; the detector
 * state (timer-based refresh in the original) is reset per interval.
 */

#ifndef MHP_CORE_HOTSPOT_DETECTOR_H
#define MHP_CORE_HOTSPOT_DETECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/hash_function.h"
#include "core/profiler.h"

namespace mhp {

/** Knobs of the Merten-style detector. */
struct HotSpotConfig
{
    /** BBB entries (sets * ways). */
    uint64_t entries = 512;

    /** Associativity of the BBB. */
    unsigned ways = 2;

    /** Partial-tag width in bits. */
    unsigned tagBits = 16;

    /** Execution count that makes an entry a candidate branch. */
    uint64_t candidateThresholdCount = 16;

    /** HDC width in bits (saturates at 2^bits - 1). */
    unsigned hdcBits = 13;

    /** HDC increment on a candidate-branch execution. */
    uint64_t hdcIncrement = 2;

    /** HDC decrement on a non-candidate execution. */
    uint64_t hdcDecrement = 1;

    /** Hash seed for BBB indexing. */
    uint64_t seed = 0x4075b07;
};

/** Merten et al. Branch Behavior Buffer + Hot Spot Detection Counter. */
class HotSpotDetector : public HardwareProfiler
{
  public:
    /**
     * @param config Detector knobs.
     * @param thresholdCount Interval candidate threshold used for the
     *        snapshot (the BBB's own candidate flag uses
     *        config.candidateThresholdCount, as in the original).
     */
    HotSpotDetector(const HotSpotConfig &config, uint64_t thresholdCount);

    void onEvent(const Tuple &t) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override { return "merten-hotspot"; }
    uint64_t areaBytes() const override;

    /** Current HDC value (saturated high = inside a hot spot). */
    uint64_t hdcValue() const { return hdc; }

    /** True when the HDC is saturated (hot spot detected). */
    bool inHotSpot() const { return hdc == hdcMax; }

    /** Entries evicted due to BBB capacity (the design's error source). */
    uint64_t evictions() const { return evicted; }

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint64_t execCount = 0;
        Tuple exemplar;        ///< a full tuple for reporting
        bool valid = false;
        bool candidate = false;
    };

    Entry &lookup(const Tuple &t, bool &hit);

    HotSpotConfig config;
    uint64_t thresholdCount;
    TupleHasher hasher;
    std::vector<Entry> entries; // sets * ways
    uint64_t sets;
    uint64_t hdc = 0;
    uint64_t hdcMax;
    uint64_t evicted = 0;
};

} // namespace mhp

#endif // MHP_CORE_HOTSPOT_DETECTOR_H
