#include "core/area_model.h"

namespace mhp {

uint64_t
accumulatorBytesPerEntry(unsigned counterBits)
{
    const unsigned bits =
        kAccumulatorTagBits + counterBits + kAccumulatorFlagBits;
    return (bits + 7) / 8;
}

AreaEstimate
estimateArea(const ProfilerConfig &config)
{
    AreaEstimate a;
    // Counters are untagged: each hash-table entry is just the counter.
    a.hashTableBytes =
        config.totalHashEntries * ((config.counterBits + 7) / 8);
    a.accumulatorBytes = config.accumulatorSize() *
                         accumulatorBytesPerEntry(config.counterBits);
    return a;
}

} // namespace mhp
