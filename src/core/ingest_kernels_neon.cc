/**
 * @file
 * NEON (aarch64) ingest kernels: two 64-bit lanes per instruction.
 *
 * Like the SSE4.2 tier, NEON has no gather, so the random-table byte
 * lookups are scalar loads placed into vector lanes while the rotate /
 * xor / byte-reverse / fold composition runs two lanes wide. NEON
 * also has no 64x64->64 multiply, so tupleHashBlock falls back to the
 * reference body.
 *
 * Bit-identical to ingest_kernels_ref.h; ragged tails run the
 * reference bodies.
 */

#include "core/ingest_kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include "core/ingest_kernels_ref.h"

namespace mhp {
namespace {

static_assert(sizeof(Tuple) == 16,
              "NEON tuple loads assume a packed pair of u64");

template <int R>
inline uint64x2_t
rotl2(uint64x2_t v)
{
    if constexpr (R == 0)
        return v;
    return vorrq_u64(vshlq_n_u64(v, R), vshrq_n_u64(v, 64 - R));
}

/** One randomizeHot round for byte position I of two inputs. */
template <int I>
inline uint64x2_t
randRound(const uint64_t *tb, uint64_t v0, uint64_t v1, uint64x2_t r)
{
    uint64x2_t word =
        vdupq_n_u64(tb[static_cast<uint8_t>(v0 >> (8 * I))]);
    word = vsetq_lane_u64(tb[static_cast<uint8_t>(v1 >> (8 * I))], word,
                          1);
    return veorq_u64(r, rotl2<8 * I>(word));
}

/** RandomTable::randomizeHot on two lanes. */
inline uint64x2_t
randomize2(const uint64_t *tb, uint64_t v0, uint64_t v1)
{
    uint64x2_t r = vdupq_n_u64(tb[static_cast<uint8_t>(v0)]);
    r = vsetq_lane_u64(tb[static_cast<uint8_t>(v1)], r, 1);
    r = randRound<1>(tb, v0, v1, r);
    r = randRound<2>(tb, v0, v1, r);
    r = randRound<3>(tb, v0, v1, r);
    r = randRound<4>(tb, v0, v1, r);
    r = randRound<5>(tb, v0, v1, r);
    r = randRound<6>(tb, v0, v1, r);
    r = randRound<7>(tb, v0, v1, r);
    return r;
}

/** byteFlip (bswap64) on each lane. */
inline uint64x2_t
byteFlip2(uint64x2_t v)
{
    return vreinterpretq_u64_u8(vrev64q_u8(vreinterpretq_u8_u64(v)));
}

/** The unfolded signature for two tuples. */
inline uint64x2_t
signature2(const uint64_t *tables, const Tuple &t0, const Tuple &t1)
{
    const uint64x2_t npc =
        byteFlip2(randomize2(tables, t0.first, t1.first));
    const uint64x2_t nv = randomize2(tables + 256, t0.second, t1.second);
    return veorq_u64(npc, nv);
}

/** xorFoldHot on two lanes (vshlq_u64 with a negative count shifts
 *  right). */
inline uint64x2_t
fold2(uint64x2_t sig, unsigned bits)
{
    const uint64x2_t mask = vdupq_n_u64((1ULL << bits) - 1);
    uint64x2_t r = vdupq_n_u64(0);
    for (unsigned s = 0; s < 64; s += bits) {
        const int64x2_t count = vdupq_n_s64(-static_cast<int64_t>(s));
        r = veorq_u64(r, vandq_u64(vshlq_u64(sig, count), mask));
    }
    return r;
}

void
hashBlockNeon(const uint64_t *tables, unsigned bits,
              const Tuple *block, const uint32_t *pos, size_t m,
              uint32_t *out, uint32_t stride, uint32_t addend)
{
    const uint64x2_t add = vdupq_n_u64(addend);
    size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const size_t k0 = pos != nullptr ? pos[j] : j;
        const size_t k1 = pos != nullptr ? pos[j + 1] : j + 1;
        const uint64x2_t idx = vaddq_u64(
            fold2(signature2(tables, block[k0], block[k1]), bits), add);
        out[k0 * stride] =
            static_cast<uint32_t>(vgetq_lane_u64(idx, 0));
        out[k1 * stride] =
            static_cast<uint32_t>(vgetq_lane_u64(idx, 1));
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        out[k * stride] =
            static_cast<uint32_t>(kernel_ref::index(tables, bits,
                                                    block[k])) +
            addend;
    }
}

void
hashBlockMultiNeon(const uint64_t *tables, unsigned numTables,
                   unsigned bits, const Tuple *block,
                   const uint32_t *pos, size_t m, uint32_t *out,
                   uint32_t addendStride)
{
    // The byte extraction is scalar either way; the fused win on NEON
    // is keeping one 2-tuple group's lanes live across all hashers
    // instead of reloading per table.
    size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const size_t k0 = pos != nullptr ? pos[j] : j;
        const size_t k1 = pos != nullptr ? pos[j + 1] : j + 1;
        const Tuple &t0 = block[k0];
        const Tuple &t1 = block[k1];
        for (unsigned i = 0; i < numTables; ++i) {
            const uint64_t *tb = tables + i * kernel_ref::kTableWords;
            const uint64x2_t add = vdupq_n_u64(i * addendStride);
            const uint64x2_t idx = vaddq_u64(
                fold2(signature2(tb, t0, t1), bits), add);
            out[k0 * numTables + i] =
                static_cast<uint32_t>(vgetq_lane_u64(idx, 0));
            out[k1 * numTables + i] =
                static_cast<uint32_t>(vgetq_lane_u64(idx, 1));
        }
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        kernel_ref::indexMulti(tables, numTables, bits, block[k],
                               addendStride, out + k * numTables);
    }
}

void
signatureBlockNeon(const uint64_t *tables, const Tuple *block,
                   size_t m, uint64_t *out)
{
    size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        vst1q_u64(out + j, signature2(tables, block[j], block[j + 1]));
    }
    for (; j < m; ++j)
        out[j] = kernel_ref::signature(tables, block[j]);
}

void
tupleHashBlockNeon(const Tuple *block, size_t m, uint64_t *out)
{
    // NEON has no 64x64->64 multiply; the splitmix composition stays
    // scalar (the compiler still pipelines the independent lanes).
    for (size_t j = 0; j < m; ++j)
        out[j] = kernel_ref::tupleHash(block[j]);
}

/** Lane-wise unsigned min via the 64-bit unsigned compare. */
inline uint64x2_t
min2(uint64x2_t a, uint64x2_t b)
{
    return vbslq_u64(vcgtq_u64(a, b), b, a);
}

inline uint64_t
hmin2(uint64x2_t v)
{
    const uint64_t a = vgetq_lane_u64(v, 0);
    const uint64_t b = vgetq_lane_u64(v, 1);
    return a < b ? a : b;
}

inline uint64x2_t
load2(const uint64_t *soa, const uint32_t *idx)
{
    uint64x2_t v = vdupq_n_u64(soa[idx[0]]);
    return vsetq_lane_u64(soa[idx[1]], v, 1);
}

uint64_t
bumpMinNeon(uint64_t *soa, const uint32_t *idx, unsigned n,
            uint64_t saturation)
{
    if (n < 2)
        return kernel_ref::bumpMin(soa, idx, n, saturation);
    const uint64x2_t satv = vdupq_n_u64(saturation);
    uint64x2_t minv = vdupq_n_u64(UINT64_MAX);
    unsigned i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t vals = load2(soa, idx + i);
        // vcgtq_u64 yields all-ones (== -1) where the counter can
        // still grow; subtracting the mask adds one to those lanes.
        const uint64x2_t canInc = vcgtq_u64(satv, vals);
        const uint64x2_t newv = vsubq_u64(vals, canInc);
        soa[idx[i]] = vgetq_lane_u64(newv, 0);
        soa[idx[i + 1]] = vgetq_lane_u64(newv, 1);
        minv = min2(minv, newv);
    }
    uint64_t newMin = hmin2(minv);
    for (; i < n; ++i) {
        uint64_t &c = soa[idx[i]];
        c += (c < saturation) ? 1 : 0;
        newMin = newMin < c ? newMin : c;
    }
    return newMin;
}

uint64_t
bumpMinConservativeNeon(uint64_t *soa, const uint32_t *idx, unsigned n,
                        uint64_t saturation)
{
    if (n < 2 || n > 16)
        return kernel_ref::bumpMinConservative(soa, idx, n, saturation);

    uint64x2_t vals[8];
    uint64x2_t minv = vdupq_n_u64(UINT64_MAX);
    unsigned i = 0;
    unsigned chunks = 0;
    for (; i + 2 <= n; i += 2, ++chunks) {
        vals[chunks] = load2(soa, idx + i);
        minv = min2(minv, vals[chunks]);
    }
    uint64_t minVal = hmin2(minv);
    for (unsigned t = i; t < n; ++t) {
        const uint64_t v = soa[idx[t]];
        minVal = minVal < v ? minVal : v;
    }

    // Saturated floor: no lane can advance, the minimum is unchanged.
    if (minVal >= saturation)
        return minVal;

    // Advance exactly the lanes at the minimum (a min lane's compare
    // mask is all-ones, so subtracting it is the +1). No second
    // reduction: advanced lanes land on minVal + 1 and every other
    // lane was already >= minVal + 1.
    const uint64x2_t minValv = vdupq_n_u64(minVal);
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned base = c * 2;
        const uint64x2_t isMin = vceqq_u64(vals[c], minValv);
        const uint64x2_t newv = vsubq_u64(vals[c], isMin);
        soa[idx[base]] = vgetq_lane_u64(newv, 0);
        soa[idx[base + 1]] = vgetq_lane_u64(newv, 1);
    }
    for (unsigned t = i; t < n; ++t) {
        if (soa[idx[t]] == minVal)
            soa[idx[t]] = minVal + 1;
    }
    return minVal + 1;
}

/**
 * The rare leg of the probe: the home group either held a tag
 * collision (multiple match candidates) or was full with no hit, so
 * walk the chain generically from the home group. vceqq_u8 compares a
 * full 16-lane group at once, and the narrowing-shift trick (vshrn
 * across the 16-bit view) compresses the byte mask into a 64-bit
 * nibble mask — NEON's substitute for SSE's movemask.
 */
__attribute__((noinline)) uint32_t
accumProbeChainNeon(const AccumProbeView &view, const Tuple &t,
                    uint8x16_t tagv, size_t g)
{
    using namespace accum_layout;
    const uint8x16_t emptyv = vdupq_n_u8(kEmptyTag);
    for (;;) {
        const size_t base = g * kGroupLanes;
        const uint8x16_t tv = vld1q_u8(view.tags + base);
        const uint8x16_t eq = vceqq_u8(tv, tagv);
        uint64_t match = vget_lane_u64(
            vreinterpret_u64_u8(
                vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)),
            0);
        while (match != 0) {
            const unsigned l =
                static_cast<unsigned>(__builtin_ctzll(match) >> 2);
            if (view.keys[base + l] == t)
                return view.slotOf[base + l];
            match &= ~(uint64_t{0xf} << (l * 4));
        }
        if (vmaxvq_u8(vceqq_u8(tv, emptyv)) != 0)
            return UINT32_MAX;
        g = (g + 1) & view.groupMask;
    }
}

/**
 * Tag-group probe for a whole block. The fast path is branch-light:
 * the candidate lane index defaults to the pad lane (AccumProbeView)
 * and the hit/miss distinction is a conditional select, so the 30/70
 * hit/absent mix of a shielded stream costs no mispredictions. Only
 * tag collisions and overfull home groups fall into the chain walker.
 */
size_t
accumProbeBlockNeon(const AccumProbeView &view, const Tuple *block,
                    const uint64_t *hashes, size_t m, uint32_t *__restrict slots,
                    uint32_t *__restrict absentPos,
                      Tuple *__restrict absentTuples, uint32_t *__restrict hitPos)
{
    // Hoisted so the unconditional list stores (which GCC must
    // otherwise assume alias the view arrays and the view struct
    // itself) cannot force per-event reloads of the index pointers.
    const uint8_t *const tags = view.tags;
    const Tuple *const keys = view.keys;
    const uint32_t *const slotOf = view.slotOf;
    const uint64_t groupMask = view.groupMask;
    using namespace accum_layout;
    if ((groupMask + 1) * kGroupLanes > 8192) {
        for (size_t k = 0; k < m; ++k) {
            __builtin_prefetch(tags +
                                   groupOf(hashes[k], groupMask) *
                                       kGroupLanes,
                               0, 1);
        }
    }
    const uint8x16_t emptyv = vdupq_n_u8(kEmptyTag);
    size_t numAbsent = 0;
    for (size_t k = 0; k < m; ++k) {
        const uint64_t h = hashes[k];
        const uint8x16_t tagv = vdupq_n_u8(fullTag(h));
        const size_t g = groupOf(h, groupMask);
        const size_t base = g * kGroupLanes;
        const uint8x16_t tv = vld1q_u8(tags + base);
        const uint8x16_t eq = vceqq_u8(tv, tagv);
        // Nibble mask: four bits per lane, so a lone candidate still
        // leaves a multi-bit mask — "other candidates remain" must
        // clear the whole nibble, not the low bit.
        const uint64_t match = vget_lane_u64(
            vreinterpret_u64_u8(
                vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)),
            0);
        const unsigned l =
            match != 0
                ? static_cast<unsigned>(__builtin_ctzll(match) >> 2)
                : static_cast<unsigned>(kGroupLanes);
        // XOR-OR key compare instead of operator== so the comparison
        // cannot be compiled as short-circuit branches; the whole
        // hit/miss decision must stay a conditional select.
        const Tuple &cand = keys[base + l];
        const uint64_t keyDiff = (cand.first ^ block[k].first) |
                                 (cand.second ^ block[k].second);
        const uint32_t hit =
            static_cast<uint32_t>(match != 0) &
            static_cast<uint32_t>(keyDiff == 0);
        // slot | 0 on a hit, slot | ~0 on a miss: the select is pure
        // arithmetic, so no branch exists for the 30/70 hit/absent mix
        // to mispredict.
        uint32_t s = slotOf[base + l] | (hit - 1);
        const uint64_t rest =
            match & ~(uint64_t{0xf} << ((l & 15) * 4));
        const bool anyEmpty = vmaxvq_u8(vceqq_u8(tv, emptyv)) != 0;
        // The chain is only needed when the single-candidate answer can
        // be wrong: a multi-candidate tag collision, or a full group
        // with no first-candidate hit. Both are rare, so this is the
        // one branch in the loop and it predicts not-taken. The empty
        // asm keeps the compiler from re-splitting the compound
        // predicate into a separate (mispredicting) branch on `hit`.
        unsigned needChain = (static_cast<unsigned>(rest != 0) |
                              static_cast<unsigned>(!anyEmpty)) &
                             (hit ^ 1u);
        asm("" : "+r"(needChain));
        if (__builtin_expect(needChain != 0, 0))
            s = accumProbeChainNeon(view, block[k], tagv, g);
        slots[k] = s;
        // Every event lands on exactly one list, so both appends are
        // unconditional stores (a dead store at the losing list's
        // cursor is overwritten by the next event of that kind).
        absentPos[numAbsent] = static_cast<uint32_t>(k);
        absentTuples[numAbsent] = block[k];
        hitPos[k - numAbsent] = static_cast<uint32_t>(k);
        numAbsent += (s == UINT32_MAX) ? 1 : 0;
    }
    return numAbsent;
}

size_t
bumpMinBlockNeon(uint64_t *soa, const uint32_t *idx, unsigned n,
                 size_t start, size_t numAbsent, uint64_t saturation,
                 uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinNeon(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

size_t
bumpMinConservativeBlockNeon(uint64_t *soa, const uint32_t *idx,
                             unsigned n, size_t start,
                             size_t numAbsent, uint64_t saturation,
                             uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinConservativeNeon(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

} // namespace

const IngestKernels *
ingestKernelsNeon()
{
    static const IngestKernels table = {
        IsaTier::Neon,
        hashBlockNeon,
        hashBlockMultiNeon,
        signatureBlockNeon,
        tupleHashBlockNeon,
        bumpMinNeon,
        bumpMinConservativeNeon,
        accumProbeBlockNeon,
        bumpMinBlockNeon,
        bumpMinConservativeBlockNeon,
    };
    return &table;
}

} // namespace mhp

#else // !aarch64

namespace mhp {

const IngestKernels *
ingestKernelsNeon()
{
    return nullptr;
}

} // namespace mhp

#endif
