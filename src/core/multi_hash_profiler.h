/**
 * @file
 * The Multi-Hash interval profiler (paper Section 6, Figure 8).
 *
 * n untagged counter tables, each with an independent hash function,
 * front-end the accumulator table. A tuple is promoted only when the
 * counters in *all* n tables reach the candidate threshold — two
 * tuples that alias in one table almost surely separate in another,
 * which is what collapses the false-positive rate (the Estan-Varghese
 * multistage-filter insight applied to profiling).
 *
 * Optional behaviours:
 *  - conservative update (C1): increment only the counter(s) holding
 *    the minimum value among the tuple's n counters (Section 6.1);
 *  - resetting (R1): zero all n counters on promotion;
 *  - retaining (P1): as in the single-hash design.
 */

#ifndef MHP_CORE_MULTI_HASH_PROFILER_H
#define MHP_CORE_MULTI_HASH_PROFILER_H

#include <string>
#include <vector>

#include "core/accumulator_table.h"
#include "core/config.h"
#include "core/counter_table.h"
#include "core/hash_function.h"
#include "core/ingest_kernels.h"
#include "core/profiler.h"
#include "support/huge_page.h"

namespace mhp {

/** Multiple hash-table hardware profiler. */
class MultiHashProfiler : public HardwareProfiler
{
  public:
    explicit MultiHashProfiler(const ProfilerConfig &config);

    void onEvent(const Tuple &t) override;
    void onEvents(const Tuple *events, size_t count) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override;
    uint64_t areaBytes() const override;

    const ProfilerConfig &configuration() const { return config; }

    /**
     * Point estimate of a tuple's occurrences so far this interval
     * (Estan-Varghese style): the exact accumulator count if the tuple
     * was promoted, otherwise the minimum of its hash counters (an
     * upper bound under conservative update). Usable mid-interval by
     * hardware that wants a "how hot is this?" answer on demand.
     */
    uint64_t estimateCount(const Tuple &t) const;

    /** Minimum counter value across tables for a tuple (tests). */
    uint64_t minCounterFor(const Tuple &t) const;

    /** Counter value a tuple hashes to in one specific table (tests). */
    uint64_t counterValueIn(unsigned table, const Tuple &t) const;

    /** Promotions rejected because the accumulator was full. */
    uint64_t droppedPromotions() const
    {
        return accumulator.droppedInsertions();
    }

    /** All n hash tables and the accumulator, for fault injection. */
    FaultTargets
    faultTargets() override
    {
        FaultTargets targets;
        for (CounterTable &table : tables)
            targets.counterTables.push_back(&table);
        targets.accumulator = &accumulator;
        return targets;
    }

    /**
     * Mid-stream state capture/restore for daemon crash recovery:
     * all n counter tables (the CounterBank) and the accumulator.
     * See HardwareProfiler.
     */
    Status saveState(ByteBuffer &out) const override;
    Status loadState(ByteCursor &in) override;

  private:
    /** Events per batched-ingest precompute block. */
    static constexpr size_t kIngestBlock = 256;

    /** The onEvents() kernel with the config flags baked in. */
    template <bool Conservative, bool Reset, bool Shielding>
    void ingestBatch(const Tuple *events, size_t count);

    ProfilerConfig config;
    TupleHasherFamily hashers;
    /**
     * The CounterBank (docs/PERF.md): all n tables' counters in one
     * structure-of-arrays block, table i at offset i*entriesPerTable.
     * Hash indexes are produced pre-offset into this block, so the
     * counter kernels update all of a tuple's counters from one base
     * pointer. `tables` are views into the bank. Huge-page-backed
     * (support/huge_page.h): the bank is hash-indexed, so 4 KiB pages
     * cost the gather kernels a dTLB walk per lane at paper scale.
     */
    HugeVector<uint64_t> counterBank;
    std::vector<CounterTable> tables;
    AccumulatorTable accumulator;
    uint64_t thresholdCount;
    /** The active ISA tier's kernels, resolved at construction. */
    const IngestKernels *kernels;
    std::vector<uint64_t> indexScratch;
    /** kIngestBlock x numTables precomputed indexes (batched only). */
    std::vector<uint32_t> blockIndexScratch;
    /** kIngestBlock precomputed accumulator slots (batched only). */
    std::vector<uint32_t> blockSlotScratch;
    /** Positions of non-shielded events in a block (batched only). */
    std::vector<uint32_t> blockAbsentScratch;
    /** Positions of accumulator-hit events in a block (batched only). */
    std::vector<uint32_t> blockHitScratch;
    /** kIngestBlock precomputed TupleHash values (batched only). */
    std::vector<uint64_t> blockTupleHashScratch;
    /**
     * The absent events of a block compacted densely in stream order,
     * so the hash kernel runs its sequential (pos == nullptr) form and
     * the bump kernels read their indexes back-to-back (batched only,
     * shielded path).
     */
    std::vector<Tuple> blockDenseScratch;
    /** One event's n recomputed indexes (stale-probe repair). */
    std::vector<uint32_t> repairIndexScratch;
};

} // namespace mhp

#endif // MHP_CORE_MULTI_HASH_PROFILER_H
