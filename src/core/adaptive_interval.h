/**
 * @file
 * Adaptive interval-length selection — the paper's Section 5.6.1
 * future-work idea made concrete: "different interval lengths suit
 * different programs ... one can potentially adaptively pick the
 * appropriate interval length for a given program."
 *
 * Policy: track the candidate-set variation (Jaccard distance) between
 * consecutive intervals. Sustained low variation means the profile is
 * stable at this timescale, so a longer interval captures the same
 * information with less churn — double it. Sustained high variation
 * means the interval spans multiple behaviours — halve it. Lengths are
 * clamped to a configured range and changes require the condition to
 * hold for `holdIntervals` consecutive intervals (hysteresis).
 */

#ifndef MHP_CORE_ADAPTIVE_INTERVAL_H
#define MHP_CORE_ADAPTIVE_INTERVAL_H

#include <cstdint>
#include <unordered_set>

#include "core/profiler.h"
#include "trace/tuple.h"

namespace mhp {

/** Policy knobs of the adaptive controller. */
struct AdaptiveIntervalConfig
{
    uint64_t minLength = 10'000;
    uint64_t maxLength = 1'000'000;

    /** Variation (%) below which the interval is a growth candidate. */
    double growBelowPercent = 15.0;

    /** Variation (%) above which the interval is a shrink candidate. */
    double shrinkAbovePercent = 60.0;

    /** Consecutive qualifying intervals required before changing. */
    unsigned holdIntervals = 2;
};

/** Online interval-length controller fed by interval snapshots. */
class AdaptiveIntervalController
{
  public:
    /**
     * @param config Policy knobs.
     * @param initialLength Starting interval length (clamped to the
     *        configured range).
     */
    AdaptiveIntervalController(const AdaptiveIntervalConfig &config,
                               uint64_t initialLength);

    /** The interval length the next interval should use. */
    uint64_t currentLength() const { return length; }

    /**
     * Report the snapshot that closed an interval.
     * @return The (possibly updated) length for the next interval.
     *         After a change, the variation baseline resets (the next
     *         interval is not compared against a different-length
     *         predecessor).
     */
    uint64_t onIntervalEnd(const IntervalSnapshot &snapshot);

    /** Variation (%) between the last two same-length intervals. */
    double lastVariation() const { return variation; }

    /** Number of length changes so far. */
    uint64_t changes() const { return changeCount; }

  private:
    AdaptiveIntervalConfig config;
    uint64_t length;
    std::unordered_set<Tuple, TupleHash> prev;
    bool havePrev = false;
    double variation = 0.0;
    unsigned growStreak = 0;
    unsigned shrinkStreak = 0;
    uint64_t changeCount = 0;
};

} // namespace mhp

#endif // MHP_CORE_ADAPTIVE_INTERVAL_H
