/**
 * @file
 * The paper's tuple hash function (Section 5.3) and families thereof.
 *
 * For a tuple <pc, value> the index is computed as
 *
 *     npc   = flip(randomize(pc))
 *     nv    = randomize(value)
 *     index = xor-fold(npc ^ nv, log2(table size))
 *
 * randomize magnifies the small variation between temporally close PCs
 * and values; flip moves the PC's variation into the high-order bytes
 * so xor-ing with the value yields a greater degree of variation.
 *
 * A TupleHasherFamily provides n independent functions by giving each
 * member its own random tables, exactly as the paper does.
 *
 * Layout contract (docs/PERF.md): one hasher's two 256-entry random
 * tables are a single contiguous block of 512 64-bit words — the PC
 * table at [0, 256), the value table at [256, 512) — and a family
 * packs its members' blocks back to back. The SIMD ingest kernels
 * (core/ingest_kernels.h) gather straight out of these blocks, so the
 * layout is part of the kernel ABI, not an implementation detail.
 */

#ifndef MHP_CORE_HASH_FUNCTION_H
#define MHP_CORE_HASH_FUNCTION_H

#include <cstdint>
#include <vector>

#include "core/ingest_kernels_ref.h"
#include "support/bit_util.h"
#include "trace/tuple.h"

namespace mhp {

/** One hardware hash function over tuples. */
class TupleHasher
{
  public:
    /** 64-bit words in one hasher's table block (two 256-entry tables). */
    static constexpr size_t kTableWords = 512;

    /**
     * @param seed Seed for this function's two random tables (one for
     *        each tuple member).
     * @param tableSize Number of entries in the indexed table; must be
     *        a power of two (the xor-fold width is log2 of it).
     */
    TupleHasher(uint64_t seed, uint64_t tableSize);

    /**
     * View over an externally owned, already-filled 512-word table
     * block (a TupleHasherFamily's contiguous storage). The block must
     * outlive the hasher.
     */
    TupleHasher(const uint64_t *tables, uint64_t tableSize);

    // The view form aliases external storage, so copying cannot be
    // made uniformly safe; moving is (the owning buffer is on the
    // heap, so its address survives the move).
    TupleHasher(const TupleHasher &) = delete;
    TupleHasher &operator=(const TupleHasher &) = delete;
    TupleHasher(TupleHasher &&) = default;
    TupleHasher &operator=(TupleHasher &&) = default;

    /**
     * Fill a 512-word block with the two random tables derived from
     * `seed` — the single definition of the seeding scheme, shared by
     * the owning constructor and TupleHasherFamily.
     */
    static void fillTables(uint64_t seed, uint64_t *out);

    /** The table index for a tuple, in [0, tableSize). */
    uint64_t index(const Tuple &t) const;

    /** The full 64-bit signature before folding (for tests). */
    uint64_t signature(const Tuple &t) const;

    /**
     * Header-inline index computation for batched ingest loops.
     * Bit-identical to index(); kept separate so the per-event path
     * retains its out-of-line call while onEvents() kernels fold the
     * whole randomize/flip/fold pipeline into their inner loops.
     */
    uint64_t
    indexHot(const Tuple &t) const
    {
        return kernel_ref::index(words, bits, t);
    }

    /**
     * This hasher's 512-word pc||value table block — the `tables`
     * argument of the ingest kernels.
     */
    const uint64_t *tableWords() const { return words; }

    uint64_t tableSize() const { return size; }
    unsigned indexBits() const { return bits; }

  private:
    /** 512 words when owning; empty when viewing family storage. */
    std::vector<uint64_t> own;
    /** own.data() or the external block. */
    const uint64_t *words;
    uint64_t size;
    unsigned bits;
};

/** n independent hash functions for an n-table multi-hash profiler. */
class TupleHasherFamily
{
  public:
    /**
     * @param seed Family seed; member i derives its tables from
     *        (seed, i).
     * @param numFunctions Number of independent members.
     * @param tableSize Entries per indexed table (power of two).
     */
    TupleHasherFamily(uint64_t seed, unsigned numFunctions,
                      uint64_t tableSize);

    // Members view the family's contiguous table storage; see
    // TupleHasher for why that makes the family move-only.
    TupleHasherFamily(const TupleHasherFamily &) = delete;
    TupleHasherFamily &operator=(const TupleHasherFamily &) = delete;
    TupleHasherFamily(TupleHasherFamily &&) = default;
    TupleHasherFamily &operator=(TupleHasherFamily &&) = default;

    const TupleHasher &function(unsigned i) const { return members[i]; }
    unsigned size() const { return members.size(); }

    /**
     * All members' table blocks, contiguous: member i's 512-word
     * pc||value block starts at tableWords() + i * kTableWords.
     */
    const uint64_t *tableWords() const { return words.data(); }

    /** Member i's 512-word block (== function(i).tableWords()). */
    const uint64_t *
    memberTables(unsigned i) const
    {
        return words.data() + i * TupleHasher::kTableWords;
    }

  private:
    std::vector<uint64_t> words;
    std::vector<TupleHasher> members;
};

} // namespace mhp

#endif // MHP_CORE_HASH_FUNCTION_H
