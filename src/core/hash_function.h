/**
 * @file
 * The paper's tuple hash function (Section 5.3) and families thereof.
 *
 * For a tuple <pc, value> the index is computed as
 *
 *     npc   = flip(randomize(pc))
 *     nv    = randomize(value)
 *     index = xor-fold(npc ^ nv, log2(table size))
 *
 * randomize magnifies the small variation between temporally close PCs
 * and values; flip moves the PC's variation into the high-order bytes
 * so xor-ing with the value yields a greater degree of variation.
 *
 * A TupleHasherFamily provides n independent functions by giving each
 * member its own random tables, exactly as the paper does.
 */

#ifndef MHP_CORE_HASH_FUNCTION_H
#define MHP_CORE_HASH_FUNCTION_H

#include <cstdint>
#include <vector>

#include "core/random_table.h"
#include "support/bit_util.h"
#include "trace/tuple.h"

namespace mhp {

/** One hardware hash function over tuples. */
class TupleHasher
{
  public:
    /**
     * @param seed Seed for this function's two random tables (one for
     *        each tuple member).
     * @param tableSize Number of entries in the indexed table; must be
     *        a power of two (the xor-fold width is log2 of it).
     */
    TupleHasher(uint64_t seed, uint64_t tableSize);

    /** The table index for a tuple, in [0, tableSize). */
    uint64_t index(const Tuple &t) const;

    /** The full 64-bit signature before folding (for tests). */
    uint64_t signature(const Tuple &t) const;

    /**
     * Header-inline index computation for batched ingest loops.
     * Bit-identical to index(); kept separate so the per-event path
     * retains its out-of-line call while onEvents() kernels fold the
     * whole randomize/flip/fold pipeline into their inner loops.
     */
    uint64_t
    indexHot(const Tuple &t) const
    {
        const uint64_t npc = byteFlip(pcTable.randomizeHot(t.first));
        const uint64_t nv = valueTable.randomizeHot(t.second);
        return xorFoldHot(npc ^ nv, bits);
    }

    uint64_t tableSize() const { return size; }
    unsigned indexBits() const { return bits; }

  private:
    RandomTable pcTable;
    RandomTable valueTable;
    uint64_t size;
    unsigned bits;
};

/** n independent hash functions for an n-table multi-hash profiler. */
class TupleHasherFamily
{
  public:
    /**
     * @param seed Family seed; member i derives its tables from
     *        (seed, i).
     * @param numFunctions Number of independent members.
     * @param tableSize Entries per indexed table (power of two).
     */
    TupleHasherFamily(uint64_t seed, unsigned numFunctions,
                      uint64_t tableSize);

    const TupleHasher &function(unsigned i) const { return members[i]; }
    unsigned size() const { return members.size(); }

  private:
    std::vector<TupleHasher> members;
};

} // namespace mhp

#endif // MHP_CORE_HASH_FUNCTION_H
