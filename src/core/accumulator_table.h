/**
 * @file
 * The fully-associative, tagged accumulator table (Section 5.2).
 *
 * Tuples whose hash counters cross the candidate threshold are promoted
 * here; from then on the table counts their exact occurrences
 * (shielding keeps them out of the hash tables entirely). The table's
 * capacity is bounded by the Section 5.1 argument: at most
 * 1/threshold tuples can exceed the threshold in an interval.
 *
 * Retaining (Section 5.4.1) keeps the previous interval's candidates
 * in the table as *replaceable* entries so recurring candidates never
 * touch the hash tables again; a retained entry is re-pinned (made
 * non-replaceable) once it crosses the threshold in the new interval.
 *
 * The paper's table is a hardware CAM: the shield check is a one-cycle
 * parallel tag compare. The software analogue is the probe index's
 * structure-of-arrays *tag group* layout (accum_layout in
 * core/ingest_kernels.h): all sixteen one-byte tags of a group are
 * contiguous, so the batched probe kernels compare a whole group per
 * vector instruction instead of walking a bucket chain. The layout is
 * kernel ABI — AccumulatorTable maintains the arrays, the per-tier
 * accumProbeBlock kernels search them, and probeView() is the bridge.
 */

#ifndef MHP_CORE_ACCUMULATOR_TABLE_H
#define MHP_CORE_ACCUMULATOR_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ingest_kernels.h"
#include "core/ingest_kernels_ref.h"
#include "core/profiler.h"
#include "support/bytes.h"
#include "support/huge_page.h"
#include "support/status.h"
#include "trace/tuple.h"

namespace mhp {

/** Fully-associative table of candidate tuples with exact counters. */
class AccumulatorTable
{
  public:
    /**
     * @param capacity Maximum simultaneous entries.
     * @param thresholdCount Per-interval occurrences that make a tuple
     *        a candidate (controls replaceability and snapshots).
     * @param retaining Keep candidates across intervals (P1) or flush
     *        the whole table every interval (P0).
     */
    AccumulatorTable(uint64_t capacity, uint64_t thresholdCount,
                     bool retaining);

    /**
     * If the tuple has an entry, bump its counter and return true
     * (the caller then skips the hash tables — shielding). Crossing
     * the threshold re-pins a retained replaceable entry.
     */
    bool incrementIfPresent(const Tuple &t);

    /**
     * Header-inline body of incrementIfPresent() for batched ingest
     * loops (same pattern as TupleHasher::indexHot): bit-identical
     * behaviour, but onEvents() kernels fold the lookup into their
     * inner loop while the per-event path keeps its out-of-line call.
     */
    bool
    incrementIfPresentHot(const Tuple &t)
    {
        const uint32_t slot = probeSlot(t);
        if (slot == kNoSlot)
            return false;
        incrementSlotHot(slot);
        return true;
    }

    /** probeSlot() result when the tuple has no entry. */
    static constexpr uint32_t kNoSlot = UINT32_MAX;

    /**
     * The tuple's slot number, or kNoSlot. Batched kernels probe a
     * whole block of events up front so the lookups' dependent load
     * chains overlap; a probed slot stays exact until the next
     * insert() (increments never change membership, and evictions
     * only happen inside insert()), so kernels must re-probe any
     * event after a mid-block promotion.
     */
    uint32_t
    probeSlot(const Tuple &t) const
    {
        return probeSlotHashed(t, TupleHash{}(t));
    }

    /**
     * probeSlot() with the tuple's TupleHash precomputed — batched
     * kernels hash a whole block in one SIMD pass (the tupleHashBlock
     * ingest kernel) and probe via the accumProbeBlock kernel; this
     * scalar form is the per-event path and the kernels' reference.
     * `hash` must equal TupleHash{}(t).
     */
    uint32_t
    probeSlotHashed(const Tuple &t, uint64_t hash) const
    {
        return kernel_ref::accumProbeOne(probeView(), t, hash);
    }

    /**
     * The probe index in the accum_layout kernel format. The view is
     * invalidated by insert(), endInterval(), reset(), and
     * loadState(); probes against a stale view are the caller's bug.
     */
    AccumProbeView
    probeView() const
    {
        return {tags.data(), laneKeys.data(), laneSlots.data(),
                groupMask};
    }

    /**
     * The address of the tag group a hash lands on first, for software
     * prefetch ahead of probeSlotHashed(). Probing may continue past
     * this group on overflow; prefetching just the home group already
     * covers the common case.
     */
    const void *
    bucketAddr(uint64_t hash) const
    {
        return tags.data() + accum_layout::groupOf(hash, groupMask) *
                                 accum_layout::kGroupLanes;
    }

    /** Count an occurrence of the tuple known to sit in `slot`. */
    void
    incrementSlotHot(uint32_t slotIndex)
    {
        Slot &slot = slots[slotIndex];
        ++slot.count;
        // A retained entry that re-crosses the threshold is a
        // candidate again: pin it for the interval (Section 5.4.1).
        if (slot.replaceable && slot.count >= thresholdCount) {
            slot.replaceable = false;
            --replaceableCount;
        }
    }

    /** True if the tuple currently has an entry. */
    bool contains(const Tuple &t) const;

    /**
     * Promote a tuple with an initial count (the hash-counter value
     * that triggered promotion). Allocation prefers empty slots, then
     * evicts a replaceable entry; returns false when neither exists
     * (the event is dropped, per Section 5.2).
     */
    bool insert(const Tuple &t, uint64_t initialCount);

    /**
     * Close the interval: return the candidates (entries at or above
     * the threshold, canonically sorted) and apply the retention
     * policy for the next interval.
     */
    IntervalSnapshot endInterval();

    /** Drop everything, including retained entries. */
    void reset();

    uint64_t size() const { return entryCount; }
    uint64_t capacity() const { return slots.size(); }

    /** Number of promotions rejected for lack of space (statistics). */
    uint64_t droppedInsertions() const { return dropped; }

    /** Current count for a tuple, or 0 if absent (tests/analysis). */
    uint64_t countOf(const Tuple &t) const;

    /** Whether a present tuple is replaceable (tests). */
    bool isReplaceable(const Tuple &t) const;

    /**
     * The longest group chain a probe of `t` would walk right now
     * (1 = found in, or absent from, its home group). Exposes probe
     * cost to the tombstone-churn regression tests without exposing
     * the index internals.
     */
    size_t probeChainLength(const Tuple &t) const;

    /**
     * Soft-error hook (sim/fault_injector): XOR one bit of the
     * counter stored in a slot. Faults land on the raw storage only —
     * the threshold comparator runs on increments, so a flip never
     * re-pins an entry by itself. Flips into empty slots are absorbed
     * (insert() overwrites the count), mirroring real hardware.
     */
    void flipCountBit(uint64_t slotIndex, unsigned bit);

    /**
     * Serialize the slots (in index order), the free-slot stack (in
     * exact allocation order — insert() pops from the back and
     * endInterval() refills in ascending index order, so the order is
     * behaviour), and the dropped-promotion count. The probe index is
     * not stored; loadState() rebuilds it from the valid slots, which
     * reproduces membership exactly (tombstone layout only affects
     * probe latency, never results).
     */
    void saveState(ByteBuffer &out) const;

    /**
     * Restore state captured by saveState() on a table of identical
     * capacity. CorruptData when the capacity differs or the free-slot
     * stack is inconsistent with the slot validity bits.
     */
    Status loadState(ByteCursor &in);

  private:
    struct Slot
    {
        Tuple tuple;
        uint64_t count = 0;
        bool valid = false;
        bool replaceable = false;
    };

    static constexpr size_t kNoLane = SIZE_MAX;

    /** The flat lane index holding the tuple, or kNoLane. */
    size_t findLane(const Tuple &t) const;

    void indexInsert(const Tuple &t, uint32_t slotIndex);
    void indexErase(const Tuple &t);
    void indexClear();
    /** Re-pack the index from the valid slots, shedding tombstones. */
    void indexRebuild();

    /**
     * Huge-page preferred (support/huge_page.h), like the SoA index
     * below: every accumulator hit bumps a slot, so at paper scale
     * the array is part of the hash-indexed hot working set.
     */
    HugeVector<Slot> slots;

    /**
     * The tuple -> slot probe index, in the accum_layout tag-group
     * format (see the file comment): one tag byte per lane with the
     * group's sixteen tags contiguous, and the lane-parallel key and
     * slot arrays beside them. Groups are power-of-two counted and
     * sized so the load factor never exceeds 1/2; erases leave
     * tombstone lanes behind, and insert() re-packs the index before
     * tombstones exceed a quarter of the lanes, which bounds every
     * probe chain (an empty lane always exists within the wraparound).
     */
    HugeVector<uint8_t> tags;
    HugeVector<Tuple> laneKeys;
    HugeVector<uint32_t> laneSlots;
    uint64_t groupMask = 0;
    uint64_t entryCount = 0;
    uint64_t tombstones = 0;
    /**
     * Number of slots with valid && replaceable set. Promotions are
     * attempted on every threshold crossing, and in steady state most
     * are drops (full table, everything pinned); the count makes that
     * common case O(1) instead of a scan over the slot array.
     */
    uint64_t replaceableCount = 0;
    std::vector<uint32_t> freeSlots;
    uint64_t thresholdCount;
    bool retaining;
    uint64_t dropped = 0;
};

} // namespace mhp

#endif // MHP_CORE_ACCUMULATOR_TABLE_H
