/**
 * @file
 * The fully-associative, tagged accumulator table (Section 5.2).
 *
 * Tuples whose hash counters cross the candidate threshold are promoted
 * here; from then on the table counts their exact occurrences
 * (shielding keeps them out of the hash tables entirely). The table's
 * capacity is bounded by the Section 5.1 argument: at most
 * 1/threshold tuples can exceed the threshold in an interval.
 *
 * Retaining (Section 5.4.1) keeps the previous interval's candidates
 * in the table as *replaceable* entries so recurring candidates never
 * touch the hash tables again; a retained entry is re-pinned (made
 * non-replaceable) once it crosses the threshold in the new interval.
 */

#ifndef MHP_CORE_ACCUMULATOR_TABLE_H
#define MHP_CORE_ACCUMULATOR_TABLE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/profiler.h"
#include "trace/tuple.h"

namespace mhp {

/** Fully-associative table of candidate tuples with exact counters. */
class AccumulatorTable
{
  public:
    /**
     * @param capacity Maximum simultaneous entries.
     * @param thresholdCount Per-interval occurrences that make a tuple
     *        a candidate (controls replaceability and snapshots).
     * @param retaining Keep candidates across intervals (P1) or flush
     *        the whole table every interval (P0).
     */
    AccumulatorTable(uint64_t capacity, uint64_t thresholdCount,
                     bool retaining);

    /**
     * If the tuple has an entry, bump its counter and return true
     * (the caller then skips the hash tables — shielding). Crossing
     * the threshold re-pins a retained replaceable entry.
     */
    bool incrementIfPresent(const Tuple &t);

    /** True if the tuple currently has an entry. */
    bool contains(const Tuple &t) const;

    /**
     * Promote a tuple with an initial count (the hash-counter value
     * that triggered promotion). Allocation prefers empty slots, then
     * evicts a replaceable entry; returns false when neither exists
     * (the event is dropped, per Section 5.2).
     */
    bool insert(const Tuple &t, uint64_t initialCount);

    /**
     * Close the interval: return the candidates (entries at or above
     * the threshold, canonically sorted) and apply the retention
     * policy for the next interval.
     */
    IntervalSnapshot endInterval();

    /** Drop everything, including retained entries. */
    void reset();

    uint64_t size() const { return index.size(); }
    uint64_t capacity() const { return slots.size(); }

    /** Number of promotions rejected for lack of space (statistics). */
    uint64_t droppedInsertions() const { return dropped; }

    /** Current count for a tuple, or 0 if absent (tests/analysis). */
    uint64_t countOf(const Tuple &t) const;

    /** Whether a present tuple is replaceable (tests). */
    bool isReplaceable(const Tuple &t) const;

  private:
    struct Slot
    {
        Tuple tuple;
        uint64_t count = 0;
        bool valid = false;
        bool replaceable = false;
    };

    std::vector<Slot> slots;
    std::unordered_map<Tuple, uint32_t, TupleHash> index;
    std::vector<uint32_t> freeSlots;
    uint64_t thresholdCount;
    bool retaining;
    uint64_t dropped = 0;
};

} // namespace mhp

#endif // MHP_CORE_ACCUMULATOR_TABLE_H
