/**
 * @file
 * The vectorized batched-ingest kernel registry (docs/PERF.md).
 *
 * One IngestKernels table exists per ISA tier (support/cpu.h); the
 * batched onEvents() paths of the hash profilers and the stratified
 * sampler resolve a table once at construction and call through it.
 * Every entry is *bit-identical* to the scalar reference — the tier
 * choice can change throughput, never output. The reference
 * definitions the kernels must match live in ingest_kernels_ref.h and
 * mirror TupleHasher::indexHot() / TupleHash / the saturating counter
 * update loops exactly; tests/core/test_ingest_kernels.cc asserts the
 * match per tier, and the ctest MHP_FORCE_ISA matrix re-asserts the
 * profiler-level onEvents == onEvent contract on top.
 *
 * Layout contracts (what makes the kernels gather-friendly):
 *  - Hash tables: one hasher = 512 contiguous 64-bit words, the PC
 *    random table at [0,256) and the value table at [256,512)
 *    (TupleHasher::tableWords()); a family packs its members'
 *    512-word blocks back to back.
 *  - Counters: a multi-hash profiler's n tables live in one
 *    structure-of-arrays block, table i at offset i*entriesPerTable
 *    (CounterBank); hash indexes are produced pre-offset so counter
 *    kernels take one base pointer.
 *  - Accumulator probe index: the AccumulatorTable's tuple -> slot
 *    index is stored as structure-of-arrays *tag groups* of
 *    accum_layout::kGroupLanes lanes each — all of a group's one-byte
 *    tags are contiguous, with the lane-parallel keys and slot
 *    numbers in separate arrays — so a probe is one 16-byte tag load
 *    and compare per group instead of a pointer-chasing scan
 *    (AccumProbeView / accumProbeBlock below).
 */

#ifndef MHP_CORE_INGEST_KERNELS_H
#define MHP_CORE_INGEST_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "support/cpu.h"
#include "trace/tuple.h"

namespace mhp {

/**
 * The accumulator probe index's group layout — shared between
 * AccumulatorTable (which maintains the arrays) and the probe kernels
 * (which search them), so it is kernel ABI exactly like the counter
 * bank's structure-of-arrays layout (docs/PERF.md).
 *
 * A group is kGroupLanes lanes. Lane L of group G stores a one-byte
 * tag at tags[G*kGroupLanes + L]; a full lane's key and slot number
 * sit at the same flat lane index in the keys / slotOf arrays. A
 * tuple's home group is groupOf(its TupleHash); lookups scan whole
 * groups: a lane whose tag equals fullTag(hash) is a match candidate
 * (confirmed against the key), and a group containing an empty lane
 * terminates the probe. Overfull groups spill to the next group in
 * power-of-two wraparound order.
 */
namespace accum_layout {

/** Lanes per tag group (one 16-byte vector register of tags). */
inline constexpr size_t kGroupLanes = 16;

/** Tag of a never-used lane; terminates probe chains. */
inline constexpr uint8_t kEmptyTag = 0x00;

/** Tag of an erased lane; probes continue past it. */
inline constexpr uint8_t kTombstoneTag = 0x01;

/** Full-lane tag: the high bit plus the hash's top seven bits, so a
 *  full tag can never equal kEmptyTag or kTombstoneTag. */
inline constexpr uint8_t
fullTag(uint64_t hash)
{
    return static_cast<uint8_t>(0x80u | (hash >> 57));
}

/** A hash's home group (groupMask = numGroups - 1, power of two). */
inline constexpr size_t
groupOf(uint64_t hash, uint64_t groupMask)
{
    return static_cast<size_t>(hash & groupMask);
}

} // namespace accum_layout

/**
 * A read-only view of an AccumulatorTable's probe index in the
 * accum_layout group format. The arrays stay valid and unchanged for
 * the duration of a kernel call (membership only changes through
 * AccumulatorTable::insert / endInterval, never mid-probe).
 */
struct AccumProbeView
{
    const uint8_t *tags;    ///< numGroups * kGroupLanes tag bytes
    const Tuple *keys;      ///< lane-parallel tuple keys
    const uint32_t *slotOf; ///< lane-parallel slot numbers
    uint64_t groupMask;     ///< numGroups - 1 (power-of-two groups)

    // keys and slotOf carry one readable pad lane past the last group
    // (arbitrary contents). Branch-free probe kernels read lane
    // base + ctz(matchMask | 1 << kGroupLanes) unconditionally, which
    // lands on the pad lane when a group has no tag match.
};

/** One ISA tier's batched-ingest entry points. */
struct IngestKernels
{
    /** The tier these kernels require (and are named after). */
    IsaTier tier;

    /**
     * Hash a block of tuples through one hasher.
     *
     * For j in [0, m): let k = pos ? pos[j] : j; then
     *   out[k * stride] = index(block[k]) + addend
     * where index() is TupleHasher::indexHot() over `tables` (the
     * 512-word pc||value block) folded to `bits`. `addend` lets
     * multi-hash callers bake the structure-of-arrays table offset
     * into the produced indexes; `pos` lets shielded callers hash
     * only the accumulator-absent positions of a block.
     */
    void (*hashBlock)(const uint64_t *tables, unsigned bits,
                      const Tuple *block, const uint32_t *pos, size_t m,
                      uint32_t *out, uint32_t stride, uint32_t addend);

    /**
     * Hash a block of tuples through numTables packed hashers in one
     * fused pass — the multi-hash phase-2 workhorse. For j in [0, m):
     * let k = pos ? pos[j] : j; then for i in [0, numTables):
     *   out[k * numTables + i] =
     *       index(tables + i*512, block[k]) + i * addendStride
     * Equivalent to numTables hashBlock() calls with stride=numTables
     * and addend=i*addendStride, but the tuple block is loaded, split
     * into lanes, and byte-decomposed once instead of once per table.
     */
    void (*hashBlockMulti)(const uint64_t *tables, unsigned numTables,
                           unsigned bits, const Tuple *block,
                           const uint32_t *pos, size_t m, uint32_t *out,
                           uint32_t addendStride);

    /**
     * Unfolded hash signatures for a block of tuples:
     * out[j] = byteFlip(randomize_pc(first)) ^ randomize_val(second).
     * The stratified sampler derives both its index (xor-fold) and its
     * partial tag from the signature.
     */
    void (*signatureBlock)(const uint64_t *tables, const Tuple *block,
                           size_t m, uint64_t *out);

    /**
     * The simulator-side TupleHash for a block of tuples
     * (out[j] = TupleHash{}(block[j])) — the accumulator-hit filter
     * probes all of a block's bucket chains from these.
     */
    void (*tupleHashBlock)(const Tuple *block, size_t m, uint64_t *out);

    /**
     * Saturating +1 on n structure-of-arrays counters (soa[idx[i]],
     * indexes pre-offset per table); returns the post-increment
     * minimum across the n counters.
     */
    uint64_t (*bumpMin)(uint64_t *soa, const uint32_t *idx, unsigned n,
                        uint64_t saturation);

    /**
     * The conservative-update (C1) variant: only the counters at the
     * pre-increment minimum advance (saturating); returns the
     * post-update minimum across all n counters.
     */
    uint64_t (*bumpMinConservative)(uint64_t *soa, const uint32_t *idx,
                                    unsigned n, uint64_t saturation);

    /**
     * Probe a whole block against the accumulator's tag-group index
     * (the phase-1 shield check, vectorized): for k in [0, m),
     * slots[k] becomes the slot of block[k] or UINT32_MAX when
     * absent, with hashes[k] == TupleHash{}(block[k]) precomputed by
     * tupleHashBlock. The absent positions are compacted, in stream
     * order, into absentPos[0..return), their tuples into
     * absentTuples[0..return) (ready for the sequential hash kernels
     * with no gather pass), and the hit positions into
     * hitPos[0..m - return). Every event lands on exactly one list, so
     * all three compactions are unconditional stores in the kernel —
     * the tuple is already in registers for the key compare — while
     * sparing callers a branchy re-scan of slots[] (the hit-replay
     * loop walks ~¼ of the block instead of testing every event).
     * Probing a block up front is exact because increments never
     * change membership; callers must re-probe after a mid-block
     * insert().
     */
    size_t (*accumProbeBlock)(const AccumProbeView &view,
                              const Tuple *block, const uint64_t *hashes,
                              size_t m, uint32_t *slots,
                              uint32_t *absentPos, Tuple *absentTuples,
                              uint32_t *hitPos);

    /**
     * bumpMin over a run of absent events in one call: for j in
     * [start, numAbsent), apply bumpMin(soa, idx + j * n) in order,
     * stopping at the first j whose post-update minimum reaches
     * `threshold` (the promotion trigger). Returns that j with
     * *stopMin set to its minimum — counters of events after j are
     * untouched — or numAbsent when no event crosses. `idx` holds the
     * absent events' pre-offset indexes densely packed in stream order
     * (the caller compacts the absent tuples before hashing, so both
     * the hash kernel's writes and this kernel's reads are
     * sequential). Fusing the run into one call lets a tier hoist
     * constants and process independent events wider than one at a
     * time; the per-event counter updates still land in stream order
     * (events that share a counter are never reordered).
     */
    size_t (*bumpMinBlock)(uint64_t *soa, const uint32_t *idx,
                           unsigned n, size_t start, size_t numAbsent,
                           uint64_t saturation, uint64_t threshold,
                           uint64_t *stopMin);

    /** bumpMinBlock with the conservative-update (C1) rule. */
    size_t (*bumpMinConservativeBlock)(uint64_t *soa,
                                       const uint32_t *idx, unsigned n,
                                       size_t start, size_t numAbsent,
                                       uint64_t saturation,
                                       uint64_t threshold,
                                       uint64_t *stopMin);
};

/**
 * The kernel table for the process-wide active tier
 * (activeIsaTier()), falling back down the tier order if a stronger
 * tier was compiled out of this binary. Resolved per call so the
 * MHP_FORCE_ISA test pin takes effect; callers on hot paths resolve
 * once and keep the pointer.
 */
const IngestKernels &ingestKernels();

/**
 * The kernel table for a specific tier, or nullptr when that tier is
 * not compiled into this binary or not runnable on this CPU. Scalar
 * never returns nullptr.
 */
const IngestKernels *ingestKernelsFor(IsaTier tier);

} // namespace mhp

#endif // MHP_CORE_INGEST_KERNELS_H
