/**
 * @file
 * The vectorized batched-ingest kernel registry (docs/PERF.md).
 *
 * One IngestKernels table exists per ISA tier (support/cpu.h); the
 * batched onEvents() paths of the hash profilers and the stratified
 * sampler resolve a table once at construction and call through it.
 * Every entry is *bit-identical* to the scalar reference — the tier
 * choice can change throughput, never output. The reference
 * definitions the kernels must match live in ingest_kernels_ref.h and
 * mirror TupleHasher::indexHot() / TupleHash / the saturating counter
 * update loops exactly; tests/core/test_ingest_kernels.cc asserts the
 * match per tier, and the ctest MHP_FORCE_ISA matrix re-asserts the
 * profiler-level onEvents == onEvent contract on top.
 *
 * Layout contracts (what makes the kernels gather-friendly):
 *  - Hash tables: one hasher = 512 contiguous 64-bit words, the PC
 *    random table at [0,256) and the value table at [256,512)
 *    (TupleHasher::tableWords()); a family packs its members'
 *    512-word blocks back to back.
 *  - Counters: a multi-hash profiler's n tables live in one
 *    structure-of-arrays block, table i at offset i*entriesPerTable
 *    (CounterBank); hash indexes are produced pre-offset so counter
 *    kernels take one base pointer.
 */

#ifndef MHP_CORE_INGEST_KERNELS_H
#define MHP_CORE_INGEST_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "support/cpu.h"
#include "trace/tuple.h"

namespace mhp {

/** One ISA tier's batched-ingest entry points. */
struct IngestKernels
{
    /** The tier these kernels require (and are named after). */
    IsaTier tier;

    /**
     * Hash a block of tuples through one hasher.
     *
     * For j in [0, m): let k = pos ? pos[j] : j; then
     *   out[k * stride] = index(block[k]) + addend
     * where index() is TupleHasher::indexHot() over `tables` (the
     * 512-word pc||value block) folded to `bits`. `addend` lets
     * multi-hash callers bake the structure-of-arrays table offset
     * into the produced indexes; `pos` lets shielded callers hash
     * only the accumulator-absent positions of a block.
     */
    void (*hashBlock)(const uint64_t *tables, unsigned bits,
                      const Tuple *block, const uint32_t *pos, size_t m,
                      uint32_t *out, uint32_t stride, uint32_t addend);

    /**
     * Hash a block of tuples through numTables packed hashers in one
     * fused pass — the multi-hash phase-2 workhorse. For j in [0, m):
     * let k = pos ? pos[j] : j; then for i in [0, numTables):
     *   out[k * numTables + i] =
     *       index(tables + i*512, block[k]) + i * addendStride
     * Equivalent to numTables hashBlock() calls with stride=numTables
     * and addend=i*addendStride, but the tuple block is loaded, split
     * into lanes, and byte-decomposed once instead of once per table.
     */
    void (*hashBlockMulti)(const uint64_t *tables, unsigned numTables,
                           unsigned bits, const Tuple *block,
                           const uint32_t *pos, size_t m, uint32_t *out,
                           uint32_t addendStride);

    /**
     * Unfolded hash signatures for a block of tuples:
     * out[j] = byteFlip(randomize_pc(first)) ^ randomize_val(second).
     * The stratified sampler derives both its index (xor-fold) and its
     * partial tag from the signature.
     */
    void (*signatureBlock)(const uint64_t *tables, const Tuple *block,
                           size_t m, uint64_t *out);

    /**
     * The simulator-side TupleHash for a block of tuples
     * (out[j] = TupleHash{}(block[j])) — the accumulator-hit filter
     * probes all of a block's bucket chains from these.
     */
    void (*tupleHashBlock)(const Tuple *block, size_t m, uint64_t *out);

    /**
     * Saturating +1 on n structure-of-arrays counters (soa[idx[i]],
     * indexes pre-offset per table); returns the post-increment
     * minimum across the n counters.
     */
    uint64_t (*bumpMin)(uint64_t *soa, const uint32_t *idx, unsigned n,
                        uint64_t saturation);

    /**
     * The conservative-update (C1) variant: only the counters at the
     * pre-increment minimum advance (saturating); returns the
     * post-update minimum across all n counters.
     */
    uint64_t (*bumpMinConservative)(uint64_t *soa, const uint32_t *idx,
                                    unsigned n, uint64_t saturation);
};

/**
 * The kernel table for the process-wide active tier
 * (activeIsaTier()), falling back down the tier order if a stronger
 * tier was compiled out of this binary. Resolved per call so the
 * MHP_FORCE_ISA test pin takes effect; callers on hot paths resolve
 * once and keep the pointer.
 */
const IngestKernels &ingestKernels();

/**
 * The kernel table for a specific tier, or nullptr when that tier is
 * not compiled into this binary or not runnable on this CPU. Scalar
 * never returns nullptr.
 */
const IngestKernels *ingestKernelsFor(IsaTier tier);

} // namespace mhp

#endif // MHP_CORE_INGEST_KERNELS_H
