#include "core/sampling_profiler.h"

#include "support/panic.h"

namespace mhp {

SamplingProfiler::SamplingProfiler(uint64_t samplingPeriod,
                                   uint64_t thresholdCount,
                                   SamplingMode mode_, uint64_t seed)
    : period(samplingPeriod), threshold(thresholdCount), mode(mode_),
      rng(seed), untilNext(samplingPeriod)
{
    MHP_REQUIRE(period >= 1, "sampling period must be positive");
    MHP_REQUIRE(threshold >= 1, "threshold must be positive");
}

void
SamplingProfiler::onEvent(const Tuple &t)
{
    bool take = false;
    if (mode == SamplingMode::Periodic) {
        if (--untilNext == 0) {
            take = true;
            untilNext = period;
        }
    } else {
        take = period == 1 ||
               rng.nextBool(1.0 / static_cast<double>(period));
    }
    if (take) {
        // Software credits the sample with the sampling period.
        software[t] += period;
        ++samples;
    }
}

IntervalSnapshot
SamplingProfiler::endInterval()
{
    IntervalSnapshot out;
    for (const auto &[tuple, count] : software) {
        if (count >= threshold)
            out.push_back({tuple, count});
    }
    canonicalize(out);
    software.clear();
    untilNext = period;
    return out;
}

void
SamplingProfiler::reset()
{
    software.clear();
    untilNext = period;
    samples = 0;
}

std::string
SamplingProfiler::name() const
{
    return mode == SamplingMode::Periodic ? "periodic-sampler"
                                          : "random-sampler";
}

} // namespace mhp
