#include "core/value_table_profiler.h"

#include "support/panic.h"

namespace mhp {

ValueTableProfiler::ValueTableProfiler(const ValueTableConfig &config_,
                                       uint64_t thresholdCount_)
    : config(config_), thresholdCount(thresholdCount_)
{
    MHP_REQUIRE(config.pcEntries >= 1, "need PC entries");
    MHP_REQUIRE(config.valuesPerPc >= 1, "need value slots");
    MHP_REQUIRE(thresholdCount >= 1, "threshold must be positive");
    table.reserve(config.pcEntries * 2);
}

void
ValueTableProfiler::onEvent(const Tuple &t)
{
    auto it = table.find(t.first);
    if (it == table.end()) {
        // Allocate a PC entry, evicting the coldest if full.
        if (table.size() >= config.pcEntries) {
            auto victim = table.begin();
            for (auto cand = table.begin(); cand != table.end();
                 ++cand) {
                if (cand->second.totalCount <
                    victim->second.totalCount)
                    victim = cand;
            }
            table.erase(victim);
            ++evictedPcs;
        }
        PcEntry entry;
        entry.slots.resize(config.valuesPerPc);
        it = table.emplace(t.first, std::move(entry)).first;
    }

    PcEntry &entry = it->second;
    ++entry.totalCount;

    // Hit?
    for (auto &slot : entry.slots) {
        if (slot.valid && slot.value == t.second) {
            ++slot.count;
            return;
        }
    }
    // Free slot?
    for (auto &slot : entry.slots) {
        if (!slot.valid) {
            slot = ValueSlot{t.second, 1, true};
            return;
        }
    }
    // LFU with aging: halve the weakest slot's count; steal it once
    // it decays to the steal threshold (Calder's replacement spirit).
    ValueSlot *weakest = &entry.slots[0];
    for (auto &slot : entry.slots) {
        if (slot.count < weakest->count)
            weakest = &slot;
    }
    weakest->count /= 2;
    if (weakest->count <= config.stealThreshold) {
        *weakest = ValueSlot{t.second, 1, true};
        ++stolenValues;
    }
}

IntervalSnapshot
ValueTableProfiler::endInterval()
{
    IntervalSnapshot out;
    for (const auto &[pc, entry] : table) {
        for (const auto &slot : entry.slots) {
            if (slot.valid && slot.count >= thresholdCount)
                out.push_back({Tuple{pc, slot.value}, slot.count});
        }
    }
    canonicalize(out);
    table.clear();
    return out;
}

void
ValueTableProfiler::reset()
{
    table.clear();
    evictedPcs = 0;
    stolenValues = 0;
}

uint64_t
ValueTableProfiler::areaBytes() const
{
    // Per PC: a full tag (8 B) + total counter (3 B) + per-slot value
    // (8 B) and counter (3 B).
    const uint64_t perPc = 8 + 3 + config.valuesPerPc * (8 + 3);
    return config.pcEntries * perPc;
}

} // namespace mhp
