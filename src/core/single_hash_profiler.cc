#include "core/single_hash_profiler.h"

#include <algorithm>

#include "core/area_model.h"
#include "support/panic.h"

namespace mhp {

SingleHashProfiler::SingleHashProfiler(const ProfilerConfig &config_)
    : config(config_), hasher(config_.seed, config_.totalHashEntries),
      table(config_.totalHashEntries, config_.counterBits),
      accumulator(config_.accumulatorSize(), config_.thresholdCount(),
                  config_.retaining),
      thresholdCount(config_.thresholdCount()),
      kernels(&ingestKernels())
{
    config.validate();
    MHP_REQUIRE(config.numHashTables == 1,
                "SingleHashProfiler requires numHashTables == 1");
    blockIndexScratch.resize(kIngestBlock);
    blockSlotScratch.resize(kIngestBlock);
    blockAbsentScratch.resize(kIngestBlock);
    blockTupleHashScratch.resize(kIngestBlock);
    blockDenseScratch.resize(kIngestBlock);
    blockHitScratch.resize(kIngestBlock);
}

void
SingleHashProfiler::onEvent(const Tuple &t)
{
    if (config.shielding) {
        if (accumulator.incrementIfPresent(t))
            return;
    } else if (accumulator.incrementIfPresent(t)) {
        // Shielding disabled (ablation): the accumulator still counts
        // exactly, but the tuple keeps pressuring the hash table.
        table.increment(hasher.index(t));
        return;
    }

    const uint64_t idx = hasher.index(t);
    const uint64_t count = table.increment(idx);
    if (count >= thresholdCount) {
        if (accumulator.insert(t, count) && config.resetOnPromote)
            table.reset(idx);
    }
}

template <bool Shielding, bool Reset>
void
SingleHashProfiler::ingestBatch(const Tuple *events, size_t count)
{
    // Mirrors onEvent() exactly, with the config branches resolved at
    // compile time, the hash pipeline vectorized (the active ISA
    // tier's ingest kernels), and the counter array accessed directly.
    // Events are processed in blocks: all hash indexes for a block are
    // computed first (a pure function of each tuple, so hoisting them
    // is invisible), then the event state machine replays in stream
    // order.
    const IngestKernels &kern = *kernels;
    uint64_t *const counters = table.raw();
    uint32_t *const blk = blockIndexScratch.data();
    uint32_t *const slot = blockSlotScratch.data();
    uint32_t *const absent = blockAbsentScratch.data();
    uint64_t *const th = blockTupleHashScratch.data();
    const uint64_t *const tables = hasher.tableWords();
    const unsigned bits = hasher.indexBits();
    const uint64_t saturation = table.maxValue();
    const uint64_t threshold = thresholdCount;

    for (size_t base = 0; base < count; base += kIngestBlock) {
        const size_t m = std::min(kIngestBlock, count - base);
        const Tuple *const block = events + base;

        // Phase 1: accumulator membership for the whole block, so the
        // lookups' dependent load chains overlap. The tuple hashes
        // come from one vectorized pass, then the probe kernel
        // prefetches every home tag group and compares whole
        // sixteen-lane groups per instruction (the accum_layout SoA
        // index). The probed slots stay exact until the first
        // promotion below (increments never change membership), after
        // which the rest of the block falls back to live probes.
        // Absent events come back as a dense stream-order list for the
        // hash phase.
        kern.tupleHashBlock(block, m, th);
        // The single-hash state machine walks every event in order
        // (each absent event bumps its own counter), so the kernel's
        // hit list lands in scratch unused here.
        Tuple *const dense = blockDenseScratch.data();
        const size_t numAbsent = kern.accumProbeBlock(
            accumulator.probeView(), block, th, m, slot, absent, dense,
            blockHitScratch.data());

        // Phase 2: hash indexes — pure per-tuple computation, run as
        // one vectorized kernel pass. Under shielding, only events
        // absent from the accumulator need indexes — the probe kernel
        // already emitted them densely compacted, so the hash kernel's
        // loads and stores are sequential and blk[j] belongs to absent
        // event absent[j]; the ablation hashes everything and blk
        // stays event-indexed.
        if (Shielding) {
            kern.hashBlock(tables, bits, dense, nullptr, numAbsent,
                           blk, 1, 0);
        } else {
            kern.hashBlock(tables, bits, block, nullptr, m, blk, 1, 0);
        }

        // Phase 3: the event state machine, strictly in stream order
        // (promotions change which later events are shielded). jj
        // tracks an event's dense row in blk; it advances for every
        // event that was absent at probe time, even one a mid-block
        // promotion now shields.
        bool reprobe = false;
        size_t jj = 0;
        for (size_t k = 0; k < m; ++k) {
            const Tuple &t = block[k];
            uint32_t idx;
            bool haveIdx;
            if (Shielding) {
                haveIdx = jj < numAbsent && absent[jj] == k;
                idx = haveIdx ? blk[jj++] : 0;
            } else {
                haveIdx = true;
                idx = blk[k];
            }
            const uint32_t s =
                reprobe ? accumulator.probeSlot(t) : slot[k];
            if (s != AccumulatorTable::kNoSlot) {
                accumulator.incrementSlotHot(s);
                if (!Shielding) {
                    uint64_t &c = counters[idx];
                    c += (c < saturation) ? 1 : 0;
                }
                continue;
            }
            if (Shielding && !haveIdx) {
                // Shielded at probe time but evicted by a mid-block
                // promotion: phase 2 skipped its index.
                idx = static_cast<uint32_t>(hasher.indexHot(t));
            }

            uint64_t &c = counters[idx];
            c += (c < saturation) ? 1 : 0;
            if (c >= threshold) {
                if (accumulator.insert(t, c)) {
                    // Membership changed: stop trusting probed slots.
                    reprobe = true;
                    if (Reset)
                        c = 0;
                }
            }
        }
    }
}

void
SingleHashProfiler::onEvents(const Tuple *events, size_t count)
{
    if (config.shielding) {
        if (config.resetOnPromote)
            ingestBatch<true, true>(events, count);
        else
            ingestBatch<true, false>(events, count);
    } else {
        if (config.resetOnPromote)
            ingestBatch<false, true>(events, count);
        else
            ingestBatch<false, false>(events, count);
    }
}

IntervalSnapshot
SingleHashProfiler::endInterval()
{
    if (config.flushHashTables)
        table.flush();
    return accumulator.endInterval();
}

void
SingleHashProfiler::reset()
{
    table.flush();
    accumulator.reset();
}

std::string
SingleHashProfiler::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "sh-R%dP%d",
                  config.resetOnPromote ? 1 : 0,
                  config.retaining ? 1 : 0);
    return buf;
}

uint64_t
SingleHashProfiler::areaBytes() const
{
    return estimateArea(config).total();
}

uint64_t
SingleHashProfiler::counterValueFor(const Tuple &t) const
{
    return table.value(hasher.index(t));
}

namespace {
/** saveState layout revision for SingleHashProfiler. */
constexpr uint8_t kShStateVersion = 1;
} // namespace

Status
SingleHashProfiler::saveState(ByteBuffer &out) const
{
    out.u8(kShStateVersion);
    table.saveState(out);
    accumulator.saveState(out);
    return Status::ok();
}

Status
SingleHashProfiler::loadState(ByteCursor &in)
{
    uint8_t version = 0;
    if (!in.u8(version))
        return Status::corruptData(
            "single-hash profiler state is truncated");
    if (version != kShStateVersion)
        return Status::corruptDataf(
            "single-hash profiler state version %u, this build "
            "writes %u",
            version, kShStateVersion);
    MHP_RETURN_IF_ERROR(table.loadState(in));
    return accumulator.loadState(in);
}

} // namespace mhp
