#include "core/single_hash_profiler.h"

#include "core/area_model.h"
#include "support/panic.h"

namespace mhp {

SingleHashProfiler::SingleHashProfiler(const ProfilerConfig &config_)
    : config(config_), hasher(config_.seed, config_.totalHashEntries),
      table(config_.totalHashEntries, config_.counterBits),
      accumulator(config_.accumulatorSize(), config_.thresholdCount(),
                  config_.retaining),
      thresholdCount(config_.thresholdCount())
{
    config.validate();
    MHP_REQUIRE(config.numHashTables == 1,
                "SingleHashProfiler requires numHashTables == 1");
}

void
SingleHashProfiler::onEvent(const Tuple &t)
{
    if (config.shielding) {
        if (accumulator.incrementIfPresent(t))
            return;
    } else if (accumulator.incrementIfPresent(t)) {
        // Shielding disabled (ablation): the accumulator still counts
        // exactly, but the tuple keeps pressuring the hash table.
        table.increment(hasher.index(t));
        return;
    }

    const uint64_t idx = hasher.index(t);
    const uint64_t count = table.increment(idx);
    if (count >= thresholdCount) {
        if (accumulator.insert(t, count) && config.resetOnPromote)
            table.reset(idx);
    }
}

IntervalSnapshot
SingleHashProfiler::endInterval()
{
    if (config.flushHashTables)
        table.flush();
    return accumulator.endInterval();
}

void
SingleHashProfiler::reset()
{
    table.flush();
    accumulator.reset();
}

std::string
SingleHashProfiler::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "sh-R%dP%d",
                  config.resetOnPromote ? 1 : 0,
                  config.retaining ? 1 : 0);
    return buf;
}

uint64_t
SingleHashProfiler::areaBytes() const
{
    return estimateArea(config).total();
}

uint64_t
SingleHashProfiler::counterValueFor(const Tuple &t) const
{
    return table.value(hasher.index(t));
}

} // namespace mhp
