#include "core/random_table.h"

#include "support/rng.h"

namespace mhp {

RandomTable::RandomTable(uint64_t seed)
{
    Rng rng(seed);
    for (auto &word : table)
        word = rng.next();
}

uint64_t
RandomTable::randomize(uint64_t v) const
{
    uint64_t r = 0;
    for (unsigned i = 0; i < 8; ++i) {
        const auto byte = static_cast<uint8_t>(v >> (8 * i));
        const uint64_t word = table[byte];
        // Rotate by the byte position so "0x12 in byte 0" and "0x12 in
        // byte 3" map to different contributions.
        const unsigned rot = (8 * i) & 63u;
        r ^= (word << rot) | (word >> ((64 - rot) & 63u));
    }
    return r;
}

} // namespace mhp
