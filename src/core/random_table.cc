#include "core/random_table.h"

#include "support/rng.h"

namespace mhp {

RandomTable::RandomTable(uint64_t seed)
{
    Rng rng(seed);
    for (auto &word : table)
        word = rng.next();
}

} // namespace mhp
