#include "core/hash_function.h"

#include "support/bit_util.h"
#include "support/panic.h"
#include "support/rng.h"

namespace mhp {

namespace {

/**
 * The loop-form randomize (RandomTable::randomize) over a raw
 * 256-word table — the per-event reference path; the unrolled
 * kernel_ref::randomize used by indexHot() is bit-identical.
 */
uint64_t
randomizeRef(const uint64_t *tb, uint64_t v)
{
    uint64_t r = 0;
    for (unsigned i = 0; i < 8; ++i) {
        const auto byte = static_cast<uint8_t>(v >> (8 * i));
        const uint64_t word = tb[byte];
        // Rotate by the byte position so "0x12 in byte 0" and
        // "0x12 in byte 3" map to different contributions.
        const unsigned rot = (8 * i) & 63u;
        r ^= (word << rot) | (word >> ((64 - rot) & 63u));
    }
    return r;
}

unsigned
checkedBits(uint64_t tableSize)
{
    MHP_REQUIRE(isPowerOfTwo(tableSize),
                "hash table size must be a power of two");
    MHP_REQUIRE(tableSize >= 2, "hash table needs at least two entries");
    return floorLog2(tableSize);
}

} // namespace

void
TupleHasher::fillTables(uint64_t seed, uint64_t *out)
{
    Rng pc(SplitMix64(seed).next());
    for (size_t i = 0; i < 256; ++i)
        out[i] = pc.next();
    Rng value(SplitMix64(seed ^ 0x76a1ebeefULL).next());
    for (size_t i = 0; i < 256; ++i)
        out[256 + i] = value.next();
}

TupleHasher::TupleHasher(uint64_t seed, uint64_t tableSize)
    : own(kTableWords), size(tableSize), bits(checkedBits(tableSize))
{
    fillTables(seed, own.data());
    words = own.data();
}

TupleHasher::TupleHasher(const uint64_t *tables, uint64_t tableSize)
    : words(tables), size(tableSize), bits(checkedBits(tableSize))
{
}

uint64_t
TupleHasher::signature(const Tuple &t) const
{
    const uint64_t npc = byteFlip(randomizeRef(words, t.first));
    const uint64_t nv = randomizeRef(words + 256, t.second);
    return npc ^ nv;
}

uint64_t
TupleHasher::index(const Tuple &t) const
{
    return xorFold(signature(t), bits);
}

TupleHasherFamily::TupleHasherFamily(uint64_t seed, unsigned numFunctions,
                                     uint64_t tableSize)
{
    MHP_REQUIRE(numFunctions >= 1, "family needs at least one function");
    words.resize(static_cast<size_t>(numFunctions) *
                 TupleHasher::kTableWords);
    members.reserve(numFunctions);
    SplitMix64 sm(seed);
    for (unsigned i = 0; i < numFunctions; ++i) {
        uint64_t *const block =
            words.data() + i * TupleHasher::kTableWords;
        TupleHasher::fillTables(sm.next(), block);
        members.emplace_back(block, tableSize);
    }
}

} // namespace mhp
