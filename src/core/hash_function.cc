#include "core/hash_function.h"

#include "support/bit_util.h"
#include "support/panic.h"
#include "support/rng.h"

namespace mhp {

TupleHasher::TupleHasher(uint64_t seed, uint64_t tableSize)
    : pcTable(SplitMix64(seed).next()),
      valueTable(SplitMix64(seed ^ 0x76a1ebeefULL).next()),
      size(tableSize)
{
    MHP_REQUIRE(isPowerOfTwo(tableSize),
                "hash table size must be a power of two");
    MHP_REQUIRE(tableSize >= 2, "hash table needs at least two entries");
    bits = floorLog2(tableSize);
}

uint64_t
TupleHasher::signature(const Tuple &t) const
{
    const uint64_t npc = byteFlip(pcTable.randomize(t.first));
    const uint64_t nv = valueTable.randomize(t.second);
    return npc ^ nv;
}

uint64_t
TupleHasher::index(const Tuple &t) const
{
    return xorFold(signature(t), bits);
}

TupleHasherFamily::TupleHasherFamily(uint64_t seed, unsigned numFunctions,
                                     uint64_t tableSize)
{
    MHP_REQUIRE(numFunctions >= 1, "family needs at least one function");
    members.reserve(numFunctions);
    SplitMix64 sm(seed);
    for (unsigned i = 0; i < numFunctions; ++i)
        members.emplace_back(sm.next(), tableSize);
}

} // namespace mhp
