#include "core/accumulator_table.h"

#include <algorithm>

#include "support/bit_util.h"
#include "support/panic.h"

namespace mhp {

using accum_layout::fullTag;
using accum_layout::groupOf;
using accum_layout::kEmptyTag;
using accum_layout::kGroupLanes;
using accum_layout::kTombstoneTag;

AccumulatorTable::AccumulatorTable(uint64_t capacity,
                                   uint64_t thresholdCount_,
                                   bool retaining_)
    : thresholdCount(thresholdCount_), retaining(retaining_)
{
    MHP_REQUIRE(capacity >= 1, "accumulator needs capacity");
    MHP_REQUIRE(thresholdCount >= 1, "threshold must be positive");
    slots.resize(capacity);
    // Size the group index so entries fill at most half the lanes and
    // (with the quarter-of-lanes tombstone bound maintained by
    // insert()) at least a quarter of the lanes stay empty — every
    // probe chain therefore terminates, and almost every probe ends in
    // its home group.
    const uint64_t wantedGroups = (capacity + kGroupLanes / 2 - 1) /
                                  (kGroupLanes / 2);
    const size_t numGroups = size_t{1} << ceilLog2(wantedGroups);
    const size_t lanes = numGroups * kGroupLanes;
    tags.assign(lanes, kEmptyTag);
    // One pad lane past the end: branch-free probe kernels read the
    // lane at ctz(matchMask | 1 << kGroupLanes) unconditionally, which
    // is lane base+16 when a group has no tag match (AccumProbeView).
    laneKeys.resize(lanes + 1);
    laneSlots.resize(lanes + 1);
    groupMask = numGroups - 1;
    freeSlots.reserve(capacity);
    for (uint64_t i = capacity; i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
}

size_t
AccumulatorTable::findLane(const Tuple &t) const
{
    const uint64_t hash = TupleHash{}(t);
    const uint8_t tag = fullTag(hash);
    size_t g = groupOf(hash, groupMask);
    for (;;) {
        const size_t base = g * kGroupLanes;
        bool anyEmpty = false;
        for (size_t l = 0; l < kGroupLanes; ++l) {
            const uint8_t laneTag = tags[base + l];
            if (laneTag == tag && laneKeys[base + l] == t)
                return base + l;
            anyEmpty |= laneTag == kEmptyTag;
        }
        if (anyEmpty)
            return kNoLane;
        g = (g + 1) & groupMask;
    }
}

void
AccumulatorTable::indexInsert(const Tuple &t, uint32_t slotIndex)
{
    // Precondition: t is not present (AccumulatorTable::insert asserts
    // it). The key must land no later than the first group a lookup
    // could stop at (the first group with an empty lane), so the scan
    // remembers the earliest tombstone on the way and reuses it when
    // the stopping group is reached.
    const uint64_t hash = TupleHash{}(t);
    size_t g = groupOf(hash, groupMask);
    size_t lane = kNoLane;
    for (;;) {
        const size_t base = g * kGroupLanes;
        size_t emptyLane = kNoLane;
        for (size_t l = 0; l < kGroupLanes; ++l) {
            const uint8_t laneTag = tags[base + l];
            if (laneTag == kEmptyTag) {
                emptyLane = base + l;
                break;
            }
            if (lane == kNoLane && laneTag == kTombstoneTag)
                lane = base + l;
        }
        if (emptyLane != kNoLane) {
            if (lane == kNoLane)
                lane = emptyLane;
            break;
        }
        if (lane != kNoLane)
            break;
        g = (g + 1) & groupMask;
    }
    if (tags[lane] == kTombstoneTag)
        --tombstones;
    tags[lane] = fullTag(hash);
    laneKeys[lane] = t;
    laneSlots[lane] = slotIndex;
    ++entryCount;
}

void
AccumulatorTable::indexErase(const Tuple &t)
{
    const size_t lane = findLane(t);
    MHP_ASSERT(lane != kNoLane, "erasing an absent tuple");
    tags[lane] = kTombstoneTag;
    ++tombstones;
    --entryCount;
}

void
AccumulatorTable::indexClear()
{
    std::fill(tags.begin(), tags.end(), kEmptyTag);
    entryCount = 0;
    tombstones = 0;
}

void
AccumulatorTable::indexRebuild()
{
    indexClear();
    for (uint32_t i = 0; i < slots.size(); ++i) {
        if (slots[i].valid)
            indexInsert(slots[i].tuple, i);
    }
}

bool
AccumulatorTable::incrementIfPresent(const Tuple &t)
{
    return incrementIfPresentHot(t);
}

bool
AccumulatorTable::contains(const Tuple &t) const
{
    return findLane(t) != kNoLane;
}

bool
AccumulatorTable::insert(const Tuple &t, uint64_t initialCount)
{
    // Steady state is a full table with every entry pinned, and every
    // threshold crossing retries the promotion — the drop path must be
    // O(1), not a slot scan.
    if (freeSlots.empty() && replaceableCount == 0) {
        ++dropped;
        return false;
    }

    MHP_ASSERT(!contains(t), "inserting an already-present tuple");

    uint32_t victim;
    if (!freeSlots.empty()) {
        victim = freeSlots.back();
        freeSlots.pop_back();
    } else {
        // Evict any replaceable (retained, not-yet-candidate) entry.
        uint32_t found = UINT32_MAX;
        for (uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].valid && slots[i].replaceable) {
                found = i;
                break;
            }
        }
        MHP_ASSERT(found != UINT32_MAX,
                   "replaceableCount positive but no replaceable slot");
        indexErase(slots[found].tuple);
        victim = found;
        --replaceableCount;
    }

    // Evictions leave tombstone lanes behind; re-pack the index before
    // they exceed a quarter of the lanes so probe chains stay bounded
    // (rare — tombstones only accrue through mid-interval evictions).
    if (tombstones * 4 > tags.size())
        indexRebuild();

    Slot &slot = slots[victim];
    slot.tuple = t;
    slot.count = initialCount;
    slot.valid = true;
    // Promoted entries are non-replaceable for the rest of the
    // interval (Section 5.2); a promotion implies the threshold was
    // crossed, so this matches the re-pinning rule as well.
    slot.replaceable = initialCount < thresholdCount;
    if (slot.replaceable)
        ++replaceableCount;
    indexInsert(t, victim);
    return true;
}

IntervalSnapshot
AccumulatorTable::endInterval()
{
    IntervalSnapshot out;
    out.reserve(entryCount);
    for (auto &slot : slots) {
        if (slot.valid && slot.count >= thresholdCount)
            out.push_back({slot.tuple, slot.count});
    }
    canonicalize(out);

    if (!retaining) {
        // P0: flush the whole table.
        for (auto &slot : slots)
            slot.valid = false;
        indexClear();
        replaceableCount = 0;
        freeSlots.clear();
        for (uint64_t i = slots.size(); i-- > 0;)
            freeSlots.push_back(static_cast<uint32_t>(i));
        return out;
    }

    // P1: drop sub-threshold entries, keep candidates as replaceable
    // zero-count entries for the next interval. The index is rebuilt
    // from the surviving slots (cheaper than per-entry erases, and it
    // sheds any tombstones).
    indexClear();
    replaceableCount = 0;
    for (uint32_t i = 0; i < slots.size(); ++i) {
        Slot &slot = slots[i];
        if (!slot.valid)
            continue;
        if (slot.count < thresholdCount) {
            slot.valid = false;
            freeSlots.push_back(i);
        } else {
            slot.count = 0;
            slot.replaceable = true;
            ++replaceableCount;
            indexInsert(slot.tuple, i);
        }
    }
    return out;
}

void
AccumulatorTable::reset()
{
    for (auto &slot : slots)
        slot.valid = false;
    indexClear();
    replaceableCount = 0;
    freeSlots.clear();
    for (uint64_t i = slots.size(); i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
    dropped = 0;
}

void
AccumulatorTable::flipCountBit(uint64_t slotIndex, unsigned bit)
{
    MHP_ASSERT(slotIndex < slots.size(), "fault slot out of range");
    MHP_ASSERT(bit < 64, "fault bit out of range");
    slots[slotIndex].count ^= 1ULL << bit;
}

void
AccumulatorTable::saveState(ByteBuffer &out) const
{
    out.u64(slots.size());
    for (const Slot &slot : slots) {
        out.u64(slot.tuple.first);
        out.u64(slot.tuple.second);
        out.u64(slot.count);
        out.u8(slot.valid ? 1 : 0);
        out.u8(slot.replaceable ? 1 : 0);
    }
    out.u64(freeSlots.size());
    for (uint32_t index : freeSlots)
        out.u32(index);
    out.u64(dropped);
}

Status
AccumulatorTable::loadState(ByteCursor &in)
{
    const Status bad =
        Status::corruptData("accumulator state is truncated");
    uint64_t capacity = 0;
    if (!in.u64(capacity))
        return bad;
    if (capacity != slots.size())
        return Status::corruptDataf(
            "accumulator state holds %llu slots, this table %llu",
            static_cast<unsigned long long>(capacity),
            static_cast<unsigned long long>(slots.size()));

    HugeVector<Slot> loaded(slots.size());
    for (Slot &slot : loaded) {
        uint8_t valid = 0;
        uint8_t replaceable = 0;
        if (!(in.u64(slot.tuple.first) && in.u64(slot.tuple.second) &&
              in.u64(slot.count) && in.u8(valid) &&
              in.u8(replaceable)))
            return bad;
        slot.valid = valid != 0;
        slot.replaceable = replaceable != 0;
    }

    uint64_t freeCount = 0;
    if (!in.u64(freeCount) || freeCount > slots.size())
        return bad;
    std::vector<uint32_t> loadedFree(
        static_cast<size_t>(freeCount));
    std::vector<uint8_t> seen(slots.size(), 0);
    for (uint32_t &index : loadedFree) {
        if (!in.u32(index))
            return bad;
        // Every free index must name a distinct invalid slot, or the
        // allocator would hand out live storage after restore.
        if (index >= slots.size() || loaded[index].valid ||
            seen[index] != 0)
            return Status::corruptData(
                "accumulator state free-slot stack is inconsistent "
                "with its slot validity bits");
        seen[index] = 1;
    }
    uint64_t invalid = 0;
    for (const Slot &slot : loaded)
        if (!slot.valid)
            ++invalid;
    if (invalid != freeCount)
        return Status::corruptData(
            "accumulator state free-slot stack does not cover every "
            "empty slot");

    uint64_t loadedDropped = 0;
    if (!in.u64(loadedDropped))
        return bad;

    slots = std::move(loaded);
    freeSlots = std::move(loadedFree);
    dropped = loadedDropped;
    replaceableCount = 0;
    for (const Slot &slot : slots)
        if (slot.valid && slot.replaceable)
            ++replaceableCount;
    indexClear();
    for (uint32_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].valid)
            continue;
        if (contains(slots[i].tuple)) {
            // Roll back to an empty table rather than leave a probe
            // index with duplicate keys behind.
            reset();
            return Status::corruptData(
                "accumulator state holds duplicate tuples");
        }
        indexInsert(slots[i].tuple, i);
    }
    return Status::ok();
}

uint64_t
AccumulatorTable::countOf(const Tuple &t) const
{
    const size_t lane = findLane(t);
    return lane == kNoLane ? 0 : slots[laneSlots[lane]].count;
}

bool
AccumulatorTable::isReplaceable(const Tuple &t) const
{
    const size_t lane = findLane(t);
    MHP_ASSERT(lane != kNoLane, "tuple not present");
    return slots[laneSlots[lane]].replaceable;
}

size_t
AccumulatorTable::probeChainLength(const Tuple &t) const
{
    const uint64_t hash = TupleHash{}(t);
    const uint8_t tag = fullTag(hash);
    size_t g = groupOf(hash, groupMask);
    for (size_t visited = 1;; ++visited) {
        const size_t base = g * kGroupLanes;
        bool anyEmpty = false;
        for (size_t l = 0; l < kGroupLanes; ++l) {
            const uint8_t laneTag = tags[base + l];
            if (laneTag == tag && laneKeys[base + l] == t)
                return visited;
            anyEmpty |= laneTag == kEmptyTag;
        }
        if (anyEmpty)
            return visited;
        MHP_ASSERT(visited <= groupMask + 1,
                   "probe chain exceeds the group count");
        g = (g + 1) & groupMask;
    }
}

} // namespace mhp
