#include "core/accumulator_table.h"

#include "support/bit_util.h"
#include "support/panic.h"

namespace mhp {

AccumulatorTable::AccumulatorTable(uint64_t capacity,
                                   uint64_t thresholdCount_,
                                   bool retaining_)
    : thresholdCount(thresholdCount_), retaining(retaining_)
{
    MHP_REQUIRE(capacity >= 1, "accumulator needs capacity");
    MHP_REQUIRE(thresholdCount >= 1, "threshold must be positive");
    slots.resize(capacity);
    // Keep the open-addressing index at most ~25% loaded so probe
    // chains stay short; the bucket count never changes after this.
    uint64_t wanted = capacity * 4;
    if (wanted < 16)
        wanted = 16;
    const size_t bucketCount =
        size_t{1} << ceilLog2(static_cast<uint64_t>(wanted));
    buckets.resize(bucketCount);
    bucketMask = bucketCount - 1;
    freeSlots.reserve(capacity);
    for (uint64_t i = capacity; i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
}

void
AccumulatorTable::indexInsert(const Tuple &t, uint32_t slotIndex)
{
    // Precondition: t is not present (AccumulatorTable::insert asserts
    // it), so stopping at the first reusable bucket is safe.
    size_t b = TupleHash{}(t) & bucketMask;
    while (buckets[b].state == kFull)
        b = (b + 1) & bucketMask;
    if (buckets[b].state == kTombstone)
        --tombstones;
    buckets[b] = {t, slotIndex, kFull};
    ++entryCount;
}

void
AccumulatorTable::indexErase(const Tuple &t)
{
    const size_t b = findBucket(t);
    MHP_ASSERT(b != kNoBucket, "erasing an absent tuple");
    buckets[b].state = kTombstone;
    ++tombstones;
    --entryCount;
}

void
AccumulatorTable::indexClear()
{
    for (auto &bucket : buckets)
        bucket.state = kEmpty;
    entryCount = 0;
    tombstones = 0;
}

bool
AccumulatorTable::incrementIfPresent(const Tuple &t)
{
    return incrementIfPresentHot(t);
}

bool
AccumulatorTable::contains(const Tuple &t) const
{
    return findBucket(t) != kNoBucket;
}

bool
AccumulatorTable::insert(const Tuple &t, uint64_t initialCount)
{
    MHP_ASSERT(!contains(t), "inserting an already-present tuple");

    uint32_t victim;
    if (!freeSlots.empty()) {
        victim = freeSlots.back();
        freeSlots.pop_back();
    } else {
        // Evict any replaceable (retained, not-yet-candidate) entry.
        uint32_t found = UINT32_MAX;
        for (uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].valid && slots[i].replaceable) {
                found = i;
                break;
            }
        }
        if (found == UINT32_MAX) {
            ++dropped;
            return false;
        }
        indexErase(slots[found].tuple);
        victim = found;
    }

    // Evictions leave tombstones behind; rebuild the index before they
    // stretch probe chains (rare — bounded by mid-interval evictions).
    if (tombstones * 4 > buckets.size()) {
        indexClear();
        for (uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].valid)
                indexInsert(slots[i].tuple, i);
        }
    }

    Slot &slot = slots[victim];
    slot.tuple = t;
    slot.count = initialCount;
    slot.valid = true;
    // Promoted entries are non-replaceable for the rest of the
    // interval (Section 5.2); a promotion implies the threshold was
    // crossed, so this matches the re-pinning rule as well.
    slot.replaceable = initialCount < thresholdCount;
    indexInsert(t, victim);
    return true;
}

IntervalSnapshot
AccumulatorTable::endInterval()
{
    IntervalSnapshot out;
    out.reserve(entryCount);
    for (auto &slot : slots) {
        if (slot.valid && slot.count >= thresholdCount)
            out.push_back({slot.tuple, slot.count});
    }
    canonicalize(out);

    if (!retaining) {
        // P0: flush the whole table.
        for (auto &slot : slots)
            slot.valid = false;
        indexClear();
        freeSlots.clear();
        for (uint64_t i = slots.size(); i-- > 0;)
            freeSlots.push_back(static_cast<uint32_t>(i));
        return out;
    }

    // P1: drop sub-threshold entries, keep candidates as replaceable
    // zero-count entries for the next interval. The index is rebuilt
    // from the surviving slots (cheaper than per-entry erases, and it
    // sheds any tombstones).
    indexClear();
    for (uint32_t i = 0; i < slots.size(); ++i) {
        Slot &slot = slots[i];
        if (!slot.valid)
            continue;
        if (slot.count < thresholdCount) {
            slot.valid = false;
            freeSlots.push_back(i);
        } else {
            slot.count = 0;
            slot.replaceable = true;
            indexInsert(slot.tuple, i);
        }
    }
    return out;
}

void
AccumulatorTable::reset()
{
    for (auto &slot : slots)
        slot.valid = false;
    indexClear();
    freeSlots.clear();
    for (uint64_t i = slots.size(); i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
    dropped = 0;
}

void
AccumulatorTable::flipCountBit(uint64_t slotIndex, unsigned bit)
{
    MHP_ASSERT(slotIndex < slots.size(), "fault slot out of range");
    MHP_ASSERT(bit < 64, "fault bit out of range");
    slots[slotIndex].count ^= 1ULL << bit;
}

void
AccumulatorTable::saveState(ByteBuffer &out) const
{
    out.u64(slots.size());
    for (const Slot &slot : slots) {
        out.u64(slot.tuple.first);
        out.u64(slot.tuple.second);
        out.u64(slot.count);
        out.u8(slot.valid ? 1 : 0);
        out.u8(slot.replaceable ? 1 : 0);
    }
    out.u64(freeSlots.size());
    for (uint32_t index : freeSlots)
        out.u32(index);
    out.u64(dropped);
}

Status
AccumulatorTable::loadState(ByteCursor &in)
{
    const Status bad =
        Status::corruptData("accumulator state is truncated");
    uint64_t capacity = 0;
    if (!in.u64(capacity))
        return bad;
    if (capacity != slots.size())
        return Status::corruptDataf(
            "accumulator state holds %llu slots, this table %llu",
            static_cast<unsigned long long>(capacity),
            static_cast<unsigned long long>(slots.size()));

    std::vector<Slot> loaded(slots.size());
    for (Slot &slot : loaded) {
        uint8_t valid = 0;
        uint8_t replaceable = 0;
        if (!(in.u64(slot.tuple.first) && in.u64(slot.tuple.second) &&
              in.u64(slot.count) && in.u8(valid) &&
              in.u8(replaceable)))
            return bad;
        slot.valid = valid != 0;
        slot.replaceable = replaceable != 0;
    }

    uint64_t freeCount = 0;
    if (!in.u64(freeCount) || freeCount > slots.size())
        return bad;
    std::vector<uint32_t> loadedFree(
        static_cast<size_t>(freeCount));
    std::vector<uint8_t> seen(slots.size(), 0);
    for (uint32_t &index : loadedFree) {
        if (!in.u32(index))
            return bad;
        // Every free index must name a distinct invalid slot, or the
        // allocator would hand out live storage after restore.
        if (index >= slots.size() || loaded[index].valid ||
            seen[index] != 0)
            return Status::corruptData(
                "accumulator state free-slot stack is inconsistent "
                "with its slot validity bits");
        seen[index] = 1;
    }
    uint64_t invalid = 0;
    for (const Slot &slot : loaded)
        if (!slot.valid)
            ++invalid;
    if (invalid != freeCount)
        return Status::corruptData(
            "accumulator state free-slot stack does not cover every "
            "empty slot");

    uint64_t loadedDropped = 0;
    if (!in.u64(loadedDropped))
        return bad;

    slots = std::move(loaded);
    freeSlots = std::move(loadedFree);
    dropped = loadedDropped;
    indexClear();
    for (uint32_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].valid)
            continue;
        if (contains(slots[i].tuple)) {
            // Roll back to an empty table rather than leave a probe
            // index with duplicate keys behind.
            reset();
            return Status::corruptData(
                "accumulator state holds duplicate tuples");
        }
        indexInsert(slots[i].tuple, i);
    }
    return Status::ok();
}

uint64_t
AccumulatorTable::countOf(const Tuple &t) const
{
    const size_t b = findBucket(t);
    return b == kNoBucket ? 0 : slots[buckets[b].slot].count;
}

bool
AccumulatorTable::isReplaceable(const Tuple &t) const
{
    const size_t b = findBucket(t);
    MHP_ASSERT(b != kNoBucket, "tuple not present");
    return slots[buckets[b].slot].replaceable;
}

} // namespace mhp
