#include "core/accumulator_table.h"

#include "support/panic.h"

namespace mhp {

AccumulatorTable::AccumulatorTable(uint64_t capacity,
                                   uint64_t thresholdCount_,
                                   bool retaining_)
    : thresholdCount(thresholdCount_), retaining(retaining_)
{
    MHP_REQUIRE(capacity >= 1, "accumulator needs capacity");
    MHP_REQUIRE(thresholdCount >= 1, "threshold must be positive");
    slots.resize(capacity);
    index.reserve(capacity * 2);
    freeSlots.reserve(capacity);
    for (uint64_t i = capacity; i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
}

bool
AccumulatorTable::incrementIfPresent(const Tuple &t)
{
    auto it = index.find(t);
    if (it == index.end())
        return false;
    Slot &slot = slots[it->second];
    ++slot.count;
    // A retained entry that re-crosses the threshold is a candidate
    // again: pin it for the rest of the interval (Section 5.4.1).
    if (slot.replaceable && slot.count >= thresholdCount)
        slot.replaceable = false;
    return true;
}

bool
AccumulatorTable::contains(const Tuple &t) const
{
    return index.find(t) != index.end();
}

bool
AccumulatorTable::insert(const Tuple &t, uint64_t initialCount)
{
    MHP_ASSERT(!contains(t), "inserting an already-present tuple");

    uint32_t victim;
    if (!freeSlots.empty()) {
        victim = freeSlots.back();
        freeSlots.pop_back();
    } else {
        // Evict any replaceable (retained, not-yet-candidate) entry.
        uint32_t found = UINT32_MAX;
        for (uint32_t i = 0; i < slots.size(); ++i) {
            if (slots[i].valid && slots[i].replaceable) {
                found = i;
                break;
            }
        }
        if (found == UINT32_MAX) {
            ++dropped;
            return false;
        }
        index.erase(slots[found].tuple);
        victim = found;
    }

    Slot &slot = slots[victim];
    slot.tuple = t;
    slot.count = initialCount;
    slot.valid = true;
    // Promoted entries are non-replaceable for the rest of the
    // interval (Section 5.2); a promotion implies the threshold was
    // crossed, so this matches the re-pinning rule as well.
    slot.replaceable = initialCount < thresholdCount;
    index.emplace(t, victim);
    return true;
}

IntervalSnapshot
AccumulatorTable::endInterval()
{
    IntervalSnapshot out;
    out.reserve(index.size());
    for (auto &slot : slots) {
        if (slot.valid && slot.count >= thresholdCount)
            out.push_back({slot.tuple, slot.count});
    }
    canonicalize(out);

    if (!retaining) {
        // P0: flush the whole table.
        for (auto &slot : slots)
            slot.valid = false;
        index.clear();
        freeSlots.clear();
        for (uint64_t i = slots.size(); i-- > 0;)
            freeSlots.push_back(static_cast<uint32_t>(i));
        return out;
    }

    // P1: drop sub-threshold entries, keep candidates as replaceable
    // zero-count entries for the next interval.
    for (uint32_t i = 0; i < slots.size(); ++i) {
        Slot &slot = slots[i];
        if (!slot.valid)
            continue;
        if (slot.count < thresholdCount) {
            index.erase(slot.tuple);
            slot.valid = false;
            freeSlots.push_back(i);
        } else {
            slot.count = 0;
            slot.replaceable = true;
        }
    }
    return out;
}

void
AccumulatorTable::reset()
{
    for (auto &slot : slots)
        slot.valid = false;
    index.clear();
    freeSlots.clear();
    for (uint64_t i = slots.size(); i-- > 0;)
        freeSlots.push_back(static_cast<uint32_t>(i));
    dropped = 0;
}

uint64_t
AccumulatorTable::countOf(const Tuple &t) const
{
    auto it = index.find(t);
    return it == index.end() ? 0 : slots[it->second].count;
}

bool
AccumulatorTable::isReplaceable(const Tuple &t) const
{
    auto it = index.find(t);
    MHP_ASSERT(it != index.end(), "tuple not present");
    return slots[it->second].replaceable;
}

} // namespace mhp
