/**
 * @file
 * Internal: per-tier kernel-table factories, one per translation unit
 * so each can be compiled with its own ISA flags (see
 * src/core/CMakeLists.txt). A tier that is compiled out of the binary
 * (wrong architecture, or the compiler flag was unavailable) returns
 * nullptr and the dispatcher falls through to the next tier down.
 */

#ifndef MHP_CORE_INGEST_KERNELS_TIERS_H
#define MHP_CORE_INGEST_KERNELS_TIERS_H

namespace mhp {

struct IngestKernels;

const IngestKernels *ingestKernelsScalar();
const IngestKernels *ingestKernelsSse42();
const IngestKernels *ingestKernelsAvx2();
const IngestKernels *ingestKernelsAvx512();
const IngestKernels *ingestKernelsNeon();

} // namespace mhp

#endif // MHP_CORE_INGEST_KERNELS_TIERS_H
