/**
 * @file
 * The Stratified Sampler of Sastry, Bodik & Smith (ISCA 2001) — the
 * baseline architecture the paper's design is derived from (Section
 * 4.2, Figure 1).
 *
 * A hash-indexed counter table splits the input stream into
 * substreams. When a tuple's counter reaches the *sampling threshold*,
 * the counter is reset and the event is reported toward software
 * through an optional small fully-associative aggregation table and a
 * message buffer; a full buffer raises an interrupt and the operating
 * system accumulates the samples.
 *
 * Two variants are modelled, as in the original paper:
 *  - plain: untagged counters (aliasing inflates sample counts);
 *  - tagged: partial tags with hit/miss counters and a miss-driven
 *    replacement policy.
 *
 * The simulated "software" side accumulates drained messages so the
 * same interval error metric can score this design against the
 * paper's hardware-only profilers; interrupt and message counts
 * quantify the software overhead the Multi-Hash design eliminates.
 */

#ifndef MHP_CORE_STRATIFIED_SAMPLER_H
#define MHP_CORE_STRATIFIED_SAMPLER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hash_function.h"
#include "core/ingest_kernels.h"
#include "core/profiler.h"
#include "support/huge_page.h"
#include "trace/tuple.h"

namespace mhp {

/** Knobs of the stratified-sampler baseline. */
struct StratifiedSamplerConfig
{
    /** Counter-table entries. */
    uint64_t entries = 2048;

    /** Counter value at which an event is sampled and reported. */
    uint64_t samplingThreshold = 32;

    /** Use partial tags + miss counters (the accuracy variant). */
    bool tagged = false;

    /** Partial-tag width in bits. */
    unsigned tagBits = 16;

    /**
     * Entries in the associative aggregation table between sampler and
     * buffer; 0 disables aggregation.
     */
    uint64_t aggregatorEntries = 32;

    /** Sampled reports an aggregator entry absorbs before flushing. */
    uint64_t aggregatorMax = 8;

    /** Message-buffer capacity; a full buffer interrupts the OS. */
    uint64_t bufferEntries = 100;

    /** Hash seed. */
    uint64_t seed = 0xabadcafeULL;
};

/** The stratified-sampling baseline profiler. */
class StratifiedSampler : public HardwareProfiler
{
  public:
    /**
     * @param config Architecture knobs.
     * @param thresholdCount Candidate threshold used when scoring the
     *        software-accumulated profile at interval end.
     */
    StratifiedSampler(const StratifiedSamplerConfig &config,
                      uint64_t thresholdCount);

    void onEvent(const Tuple &t) override;
    void onEvents(const Tuple *events, size_t count) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override;
    uint64_t areaBytes() const override;

    /** OS interrupts raised so far (the 5% overhead of the paper). */
    uint64_t interrupts() const { return interruptCount; }

    /** Messages delivered to software so far. */
    uint64_t messagesSent() const { return messageCount; }

    const StratifiedSamplerConfig &configuration() const
    {
        return config;
    }

  private:
    struct TaggedEntry
    {
        uint64_t tag = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        bool valid = false;
    };

    struct AggregatorEntry
    {
        Tuple tuple;
        uint64_t count = 0;
        uint64_t lastUse = 0;
    };

    /** A sampled event heading to software: tuple + sample weight. */
    struct Message
    {
        Tuple tuple;
        uint64_t count = 0;
    };

    /** Events per batched-ingest precompute block. */
    static constexpr size_t kIngestBlock = 256;

    void report(const Tuple &t, uint64_t weight);
    void enqueue(const Tuple &t, uint64_t weight);
    void interrupt();
    uint64_t partialTag(const Tuple &t) const;

    StratifiedSamplerConfig config;
    uint64_t thresholdCount;
    TupleHasher hasher;
    /** The active ISA tier's kernels, resolved at construction. */
    const IngestKernels *kernels;
    /** kIngestBlock precomputed indexes (batched only). */
    std::vector<uint32_t> blockIndexScratch;
    /** kIngestBlock precomputed signatures (tagged batched only). */
    std::vector<uint64_t> blockSigScratch;

    // Plain variant state. Huge-page preferred (support/huge_page.h):
    // the counter strip is the sampler's hash-indexed working set.
    HugeVector<uint64_t> counters;
    // Tagged variant state.
    HugeVector<TaggedEntry> taggedEntries;

    std::vector<AggregatorEntry> aggregator;
    std::vector<Message> buffer;

    /** The simulated OS-side accumulation of drained messages. */
    std::unordered_map<Tuple, uint64_t, TupleHash> software;

    uint64_t interruptCount = 0;
    uint64_t messageCount = 0;
    uint64_t eventClock = 0;
};

} // namespace mhp

#endif // MHP_CORE_STRATIFIED_SAMPLER_H
