#include "core/hotspot_detector.h"

#include "support/bit_util.h"
#include "support/panic.h"

namespace mhp {

HotSpotDetector::HotSpotDetector(const HotSpotConfig &config_,
                                 uint64_t thresholdCount_)
    : config(config_), thresholdCount(thresholdCount_),
      hasher(config_.seed, config_.entries / config_.ways)
{
    MHP_REQUIRE(config.ways >= 1, "BBB needs at least one way");
    MHP_REQUIRE(config.entries % config.ways == 0,
                "entries must divide evenly into ways");
    sets = config.entries / config.ways;
    MHP_REQUIRE(isPowerOfTwo(sets), "BBB sets must be a power of two");
    MHP_REQUIRE(config.hdcBits >= 1 && config.hdcBits <= 64,
                "HDC width out of range");
    MHP_REQUIRE(thresholdCount >= 1, "threshold must be positive");
    entries.resize(config.entries);
    hdcMax = config.hdcBits >= 64 ? ~0ULL
                                  : (1ULL << config.hdcBits) - 1;
}

HotSpotDetector::Entry &
HotSpotDetector::lookup(const Tuple &t, bool &hit)
{
    const uint64_t set = hasher.index(t);
    const uint64_t tag = lowBits(hasher.signature(t) >> 17,
                                 config.tagBits);
    Entry *base = &entries[set * config.ways];

    for (unsigned w = 0; w < config.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            hit = true;
            return base[w];
        }
    }
    hit = false;
    // Allocate: free way first, then any non-candidate way (Merten's
    // policy protects candidate branches from eviction).
    for (unsigned w = 0; w < config.ways; ++w) {
        if (!base[w].valid)
            return base[w];
    }
    for (unsigned w = 0; w < config.ways; ++w) {
        if (!base[w].candidate) {
            ++evicted;
            return base[w];
        }
    }
    // Every way holds a candidate: the newcomer is not tracked; reuse
    // way 0 as a sentinel the caller must check via `hit == false` and
    // the entry staying valid+candidate.
    return base[0];
}

void
HotSpotDetector::onEvent(const Tuple &t)
{
    bool hit = false;
    Entry &entry = lookup(t, hit);
    const uint64_t tag =
        lowBits(hasher.signature(t) >> 17, config.tagBits);

    if (hit) {
        ++entry.execCount;
        if (!entry.candidate &&
            entry.execCount >= config.candidateThresholdCount)
            entry.candidate = true;
    } else if (!entry.valid || !entry.candidate) {
        // Install (possibly evicting a non-candidate).
        entry = Entry{tag, 1, t, true, false};
        if (entry.execCount >= config.candidateThresholdCount)
            entry.candidate = true;
    }
    // else: set full of candidates; the event goes untracked.

    // Hot Spot Detection Counter.
    if (hit && entry.candidate) {
        hdc = (hdcMax - hdc < config.hdcIncrement)
                  ? hdcMax
                  : hdc + config.hdcIncrement;
    } else {
        hdc = hdc < config.hdcDecrement ? 0 : hdc - config.hdcDecrement;
    }
}

IntervalSnapshot
HotSpotDetector::endInterval()
{
    IntervalSnapshot out;
    for (const auto &entry : entries) {
        if (entry.valid && entry.execCount >= thresholdCount)
            out.push_back({entry.exemplar, entry.execCount});
    }
    canonicalize(out);
    // Timer-based refresh in the original: clear per interval.
    for (auto &entry : entries)
        entry = Entry{};
    hdc = 0;
    return out;
}

void
HotSpotDetector::reset()
{
    for (auto &entry : entries)
        entry = Entry{};
    hdc = 0;
    evicted = 0;
}

uint64_t
HotSpotDetector::areaBytes() const
{
    // tag + exec counter (3B) + flags per entry, plus the HDC.
    const unsigned entryBits = config.tagBits + 24 + 2;
    return config.entries * ((entryBits + 7) / 8) +
           (config.hdcBits + 7) / 8;
}

} // namespace mhp
