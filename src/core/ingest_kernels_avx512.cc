/**
 * @file
 * AVX-512 ingest kernels: eight 64-bit lanes per instruction.
 *
 * The hash pipeline is the AVX2 kernel widened to zmm: eight tuples per
 * iteration, per-byte table lookups as zmm vpgatherqq over the 2 KiB
 * L1-resident table, native vprolq for the byte-position rotates (AVX2
 * needed shift/shift/or), vpshufb byte reverse for the paper's "flip",
 * and immediate-shift xor-fold rounds. The counter kernels switch to
 * the EVEX mask registers: saturation and the C1 min-select become
 * unsigned compare masks feeding masked adds, and results scatter back
 * with vpscatterqq instead of AVX2's per-lane extracts, so no signed-
 * compare bias (kSignedSafe) is needed at this tier. The tag-group
 * probe compares a 16-lane group with one byte-compare-to-mask.
 *
 * Everything here must match ingest_kernels_ref.h bit for bit; ragged
 * tails (m % 8, n % 4) run the reference bodies directly.
 */

#include "core/ingest_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512DQ__) && defined(__AVX512VL__) && \
    defined(__AVX512CD__) && defined(__x86_64__)

#include <immintrin.h>

#include "core/ingest_kernels_ref.h"

namespace mhp {
namespace {

static_assert(sizeof(Tuple) == 16,
              "AVX-512 tuple loads assume a packed pair of u64");

/** Split eight consecutive tuples into a pc vector and a value vector
 *  (two 512-bit loads and two cross-register element selects). */
inline void
loadTuples8(const Tuple *p, __m512i &pc, __m512i &val)
{
    const __m512i a = _mm512_loadu_si512(p);     // f0 s0 f1 s1 ...
    const __m512i b = _mm512_loadu_si512(p + 4); // f4 s4 f5 s5 ...
    const __m512i pidx = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i vidx = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
    pc = _mm512_permutex2var_epi64(a, pidx, b);
    val = _mm512_permutex2var_epi64(a, vidx, b);
}

/** Same, but for eight tuples picked out by a position list: the pc
 *  and value words gather straight from the block. */
inline void
loadTuples8At(const Tuple *block, const uint32_t *pos, __m512i &pc,
              __m512i &val)
{
    const __m256i p = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(pos));
    const __m256i two = _mm256_slli_epi32(p, 1);
    const long long *base = reinterpret_cast<const long long *>(block);
    pc = _mm512_i32gather_epi64(two, base, 8);
    val = _mm512_i32gather_epi64(
        _mm256_add_epi32(two, _mm256_set1_epi32(1)), base, 8);
}

/** One randomizeHot round: lookup byte I of v, rotate, accumulate. */
template <int I>
inline __m512i
randRound8(const long long *tb, __m512i v, __m512i byteMask, __m512i r)
{
    const __m512i byte =
        _mm512_and_si512(_mm512_srli_epi64(v, 8 * I), byteMask);
    const __m512i word = _mm512_i64gather_epi64(byte, tb, 8);
    return _mm512_xor_si512(r, _mm512_rol_epi64(word, (8 * I) & 63));
}

/** RandomTable::randomizeHot on eight lanes. */
inline __m512i
randomize8(const uint64_t *table, __m512i v)
{
    const long long *tb = reinterpret_cast<const long long *>(table);
    const __m512i byteMask = _mm512_set1_epi64(0xff);
    __m512i r = _mm512_i64gather_epi64(_mm512_and_si512(v, byteMask),
                                       tb, 8);
    r = randRound8<1>(tb, v, byteMask, r);
    r = randRound8<2>(tb, v, byteMask, r);
    r = randRound8<3>(tb, v, byteMask, r);
    r = randRound8<4>(tb, v, byteMask, r);
    r = randRound8<5>(tb, v, byteMask, r);
    r = randRound8<6>(tb, v, byteMask, r);
    r = randRound8<7>(tb, v, byteMask, r);
    return r;
}

/** byteFlip (bswap64) on each lane. */
inline __m512i
byteFlip8(__m512i v)
{
    const __m512i m = _mm512_set_epi8(
        8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7,
        8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7,
        8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7,
        8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7);
    return _mm512_shuffle_epi8(v, m);
}

/** The unfolded signature for eight tuples already split pc/value. */
inline __m512i
signature8(const uint64_t *tables, __m512i pc, __m512i val)
{
    const __m512i npc = byteFlip8(randomize8(tables, pc));
    const __m512i nv = randomize8(tables + 256, val);
    return _mm512_xor_si512(npc, nv);
}

/** One compile-time xorFoldHot round at shift S, recursing by Bits. */
template <unsigned Bits, unsigned S>
inline __m512i
fold8Step(__m512i sig, __m512i mask, __m512i r)
{
    r = _mm512_xor_si512(
        r, _mm512_and_si512(
               _mm512_srli_epi64(sig, static_cast<int>(S)), mask));
    if constexpr (S + Bits < 64)
        return fold8Step<Bits, S + Bits>(sig, mask, r);
    else
        return r;
}

template <unsigned Bits>
inline __m512i
fold8Fixed(__m512i sig)
{
    const __m512i mask =
        _mm512_set1_epi64(static_cast<long long>((1ULL << Bits) - 1));
    return fold8Step<Bits, 0>(sig, mask, _mm512_setzero_si512());
}

/** xorFoldHot on eight lanes; common widths fully unrolled. */
inline __m512i
fold8(__m512i sig, unsigned bits)
{
    switch (bits) {
      case 8: return fold8Fixed<8>(sig);
      case 9: return fold8Fixed<9>(sig);
      case 10: return fold8Fixed<10>(sig);
      case 11: return fold8Fixed<11>(sig);
      case 12: return fold8Fixed<12>(sig);
      case 13: return fold8Fixed<13>(sig);
      default: break;
    }
    const __m512i mask =
        _mm512_set1_epi64(static_cast<long long>((1ULL << bits) - 1));
    __m512i r = _mm512_setzero_si512();
    for (unsigned s = 0; s < 64; s += bits) {
        r = _mm512_xor_si512(
            r, _mm512_and_si512(
                   _mm512_srlv_epi64(
                       sig, _mm512_set1_epi64(static_cast<long long>(s))),
                   mask));
    }
    return r;
}

void
hashBlockAvx512(const uint64_t *tables, unsigned bits,
                const Tuple *block, const uint32_t *pos, size_t m,
                uint32_t *out, uint32_t stride, uint32_t addend)
{
    const __m512i add =
        _mm512_set1_epi64(static_cast<long long>(addend));
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
        __m512i pc, val;
        if (pos != nullptr)
            loadTuples8At(block, pos + j, pc, val);
        else
            loadTuples8(block + j, pc, val);
        const __m512i idx = _mm512_add_epi64(
            fold8(signature8(tables, pc, val), bits), add);
        alignas(64) uint64_t lane[8];
        _mm512_store_si512(lane, idx);
        for (unsigned l = 0; l < 8; ++l) {
            const size_t k = pos != nullptr ? pos[j + l] : j + l;
            out[k * stride] = static_cast<uint32_t>(lane[l]);
        }
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        out[k * stride] =
            static_cast<uint32_t>(kernel_ref::index(tables, bits,
                                                    block[k])) +
            addend;
    }
}

void
hashBlockMultiAvx512(const uint64_t *tables, unsigned numTables,
                     unsigned bits, const Tuple *block,
                     const uint32_t *pos, size_t m, uint32_t *out,
                     uint32_t addendStride)
{
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
        __m512i pc, val;
        if (pos != nullptr)
            loadTuples8At(block, pos + j, pc, val);
        else
            loadTuples8(block + j, pc, val);
        // Tuple load and lane split happen once; only the per-table
        // gathers and fold repeat, with pc/val the only long-lived
        // vectors across the table loop.
        for (unsigned i = 0; i < numTables; ++i) {
            const uint64_t *tb = tables + i * kernel_ref::kTableWords;
            const __m512i idx = _mm512_add_epi64(
                fold8(signature8(tb, pc, val), bits),
                _mm512_set1_epi64(
                    static_cast<long long>(i * addendStride)));
            alignas(64) uint64_t lane[8];
            _mm512_store_si512(lane, idx);
            for (unsigned l = 0; l < 8; ++l) {
                const size_t k = pos != nullptr ? pos[j + l] : j + l;
                out[k * numTables + i] =
                    static_cast<uint32_t>(lane[l]);
            }
        }
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        kernel_ref::indexMulti(tables, numTables, bits, block[k],
                               addendStride, out + k * numTables);
    }
}

void
signatureBlockAvx512(const uint64_t *tables, const Tuple *block,
                     size_t m, uint64_t *out)
{
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
        __m512i pc, val;
        loadTuples8(block + j, pc, val);
        _mm512_storeu_si512(out + j, signature8(tables, pc, val));
    }
    for (; j < m; ++j)
        out[j] = kernel_ref::signature(tables, block[j]);
}

void
tupleHashBlockAvx512(const Tuple *block, size_t m, uint64_t *out)
{
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i c1 = _mm512_set1_epi64(
        static_cast<long long>(0x9e3779b97f4a7c15ULL));
    const __m512i c2 = _mm512_set1_epi64(
        static_cast<long long>(0xbf58476d1ce4e5b9ULL));
    const __m512i c3 = _mm512_set1_epi64(
        static_cast<long long>(0x94d049bb133111ebULL));
    size_t j = 0;
    for (; j + 8 <= m; j += 8) {
        __m512i pc, val;
        loadTuples8(block + j, pc, val);
        __m512i z = _mm512_add_epi64(
            pc, _mm512_mullo_epi64(_mm512_add_epi64(val, one), c1));
        z = _mm512_mullo_epi64(
            _mm512_xor_si512(z, _mm512_srli_epi64(z, 30)), c2);
        z = _mm512_mullo_epi64(
            _mm512_xor_si512(z, _mm512_srli_epi64(z, 27)), c3);
        z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
        _mm512_storeu_si512(out + j, z);
    }
    for (; j < m; ++j)
        out[j] = kernel_ref::tupleHash(block[j]);
}

/** Horizontal unsigned min of four 64-bit lanes. */
inline uint64_t
hmin4u(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i m = _mm_min_epu64(lo, hi);
    const uint64_t a = static_cast<uint64_t>(_mm_extract_epi64(m, 0));
    const uint64_t b = static_cast<uint64_t>(_mm_extract_epi64(m, 1));
    return a < b ? a : b;
}

uint64_t
bumpMinAvx512(uint64_t *soa, const uint32_t *idx, unsigned n,
              uint64_t saturation)
{
    if (n < 4)
        return kernel_ref::bumpMin(soa, idx, n, saturation);
    const __m256i satv =
        _mm256_set1_epi64x(static_cast<long long>(saturation));
    const __m256i one = _mm256_set1_epi64x(1);
    __m256i minv = _mm256_set1_epi64x(-1);
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i iv32 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i));
        const __m256i vals = _mm256_i32gather_epi64(
            reinterpret_cast<const long long *>(soa), iv32, 8);
        const __mmask8 canInc = _mm256_cmplt_epu64_mask(vals, satv);
        const __m256i newv =
            _mm256_mask_add_epi64(vals, canInc, vals, one);
        // One event's n counters live in disjoint per-table regions
        // (the addendStride offsets), so the scatter indices are
        // distinct and write-order free.
        _mm256_i32scatter_epi64(soa, iv32, newv, 8);
        minv = _mm256_min_epu64(minv, newv);
    }
    uint64_t newMin = hmin4u(minv);
    for (; i < n; ++i) {
        uint64_t &c = soa[idx[i]];
        c += (c < saturation) ? 1 : 0;
        newMin = newMin < c ? newMin : c;
    }
    return newMin;
}

uint64_t
bumpMinConservativeAvx512(uint64_t *soa, const uint32_t *idx, unsigned n,
                          uint64_t saturation)
{
    if (n < 4 || n > 16)
        return kernel_ref::bumpMinConservative(soa, idx, n, saturation);

    // Pass 1: gather every counter and find the global minimum. All
    // reads complete before any write, exactly like the reference.
    __m256i vals[4];
    __m256i minv = _mm256_set1_epi64x(-1);
    unsigned i = 0;
    unsigned chunks = 0;
    for (; i + 4 <= n; i += 4, ++chunks) {
        const __m128i iv32 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i));
        vals[chunks] = _mm256_i32gather_epi64(
            reinterpret_cast<const long long *>(soa), iv32, 8);
        minv = _mm256_min_epu64(minv, vals[chunks]);
    }
    uint64_t minVal = hmin4u(minv);
    for (unsigned t = i; t < n; ++t) {
        const uint64_t v = soa[idx[t]];
        minVal = minVal < v ? minVal : v;
    }

    // Saturated floor: no lane can advance, the minimum is unchanged.
    if (minVal >= saturation)
        return minVal;

    // Pass 2: advance exactly the lanes at the minimum. No second
    // reduction is needed — the advanced lanes land on minVal + 1 and
    // every other lane was already >= minVal + 1, so the post-update
    // minimum is minVal + 1 by construction.
    const __m256i minValv =
        _mm256_set1_epi64x(static_cast<long long>(minVal));
    const __m256i one = _mm256_set1_epi64x(1);
    for (unsigned c = 0; c < chunks; ++c) {
        const __m128i iv32 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + c * 4));
        const __mmask8 isMin =
            _mm256_cmpeq_epu64_mask(vals[c], minValv);
        const __m256i newv =
            _mm256_mask_add_epi64(vals[c], isMin, vals[c], one);
        _mm256_i32scatter_epi64(soa, iv32, newv, 8);
    }
    for (unsigned t = i; t < n; ++t) {
        if (soa[idx[t]] == minVal)
            soa[idx[t]] = minVal + 1;
    }
    return minVal + 1;
}

/**
 * The rare leg of the probe: the home group either held a tag
 * collision (multiple match candidates) or was full with no hit, so
 * walk the chain generically from the home group.
 */
__attribute__((noinline)) uint32_t
accumProbeChainAvx512(const AccumProbeView &view, const Tuple &t,
                      __m128i tagv, size_t g)
{
    using namespace accum_layout;
    const __m128i emptyv = _mm_setzero_si128();
    for (;;) {
        const size_t base = g * kGroupLanes;
        const __m128i tv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(view.tags + base));
        unsigned match = _mm_cmpeq_epi8_mask(tv, tagv);
        while (match != 0) {
            const unsigned l =
                static_cast<unsigned>(__builtin_ctz(match));
            if (view.keys[base + l] == t)
                return view.slotOf[base + l];
            match &= match - 1;
        }
        if (_mm_cmpeq_epi8_mask(tv, emptyv) != 0)
            return UINT32_MAX;
        g = (g + 1) & view.groupMask;
    }
}

/**
 * Tag-group probe for a whole block: one vpcmpeqb-to-mask compares a
 * full 16-lane group (the software form of the paper's CAM tag match),
 * the first candidate's key confirms the hit, and a group holding an
 * empty lane ends the chain. The fast path is branch-free — the
 * candidate lane index defaults to the pad lane (AccumProbeView) and
 * the hit/miss distinction is a conditional move, so the 30/70
 * hit/absent mix of a shielded stream costs no mispredictions. Only
 * tag collisions and overfull home groups fall into the chain walker.
 */
size_t
accumProbeBlockAvx512(const AccumProbeView &view, const Tuple *block,
                      const uint64_t *hashes, size_t m, uint32_t *__restrict slots,
                      uint32_t *__restrict absentPos,
                      Tuple *__restrict absentTuples, uint32_t *__restrict hitPos)
{
    // Hoisted so the unconditional list stores (which GCC must
    // otherwise assume alias the view arrays and the view struct
    // itself) cannot force per-event reloads of the index pointers.
    const uint8_t *const tags = view.tags;
    const Tuple *const keys = view.keys;
    const uint32_t *const slotOf = view.slotOf;
    const uint64_t groupMask = view.groupMask;
    using namespace accum_layout;
    if ((groupMask + 1) * kGroupLanes > 8192) {
        for (size_t k = 0; k < m; ++k) {
            __builtin_prefetch(tags +
                                   groupOf(hashes[k], groupMask) *
                                       kGroupLanes,
                               0, 1);
        }
    }
    const __m128i emptyv = _mm_setzero_si128();
    size_t numAbsent = 0;
    for (size_t k = 0; k < m; ++k) {
        const uint64_t h = hashes[k];
        const __m128i tagv =
            _mm_set1_epi8(static_cast<char>(fullTag(h)));
        const size_t g = groupOf(h, groupMask);
        const size_t base = g * kGroupLanes;
        const __m128i tv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + base));
        const unsigned match = _mm_cmpeq_epi8_mask(tv, tagv);
        const unsigned empty = _mm_cmpeq_epi8_mask(tv, emptyv);
        const unsigned l = static_cast<unsigned>(
            __builtin_ctz(match | (1u << kGroupLanes)));
        // XOR-OR key compare instead of operator== so the comparison
        // cannot be compiled as short-circuit branches; the whole
        // hit/miss decision must stay a conditional move.
        const Tuple &cand = keys[base + l];
        const uint64_t keyDiff = (cand.first ^ block[k].first) |
                                 (cand.second ^ block[k].second);
        const uint32_t hit =
            static_cast<uint32_t>(match != 0) &
            static_cast<uint32_t>(keyDiff == 0);
        // slot | 0 on a hit, slot | ~0 on a miss: the select is pure
        // arithmetic, so no branch exists for the 30/70 hit/absent mix
        // to mispredict.
        uint32_t s = slotOf[base + l] | (hit - 1);
        // The chain is only needed when the single-candidate answer can
        // be wrong: a multi-candidate tag collision, or a full group
        // with no first-candidate hit. Both are rare, so this is the
        // one branch in the loop and it predicts not-taken. The empty
        // asm keeps GCC from re-splitting the compound predicate into a
        // separate (mispredicting) branch on `hit`.
        unsigned needChain =
            (static_cast<unsigned>((match & (match - 1)) != 0) |
             static_cast<unsigned>(empty == 0)) &
            (hit ^ 1u);
        asm("" : "+r"(needChain));
        if (__builtin_expect(needChain != 0, 0))
            s = accumProbeChainAvx512(view, block[k], tagv, g);
        slots[k] = s;
        // Every event lands on exactly one list, so both appends are
        // unconditional stores (a dead store at the losing list's
        // cursor is overwritten by the next event of that kind).
        absentPos[numAbsent] = static_cast<uint32_t>(k);
        absentTuples[numAbsent] = block[k];
        hitPos[k - numAbsent] = static_cast<uint32_t>(k);
        numAbsent += (s == UINT32_MAX) ? 1 : 0;
    }
    return numAbsent;
}

size_t
bumpMinBlockAvx512(uint64_t *soa, const uint32_t *idx, unsigned n,
                   size_t start, size_t numAbsent, uint64_t saturation,
                   uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinAvx512(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

size_t
bumpMinConservativeBlockAvx512(uint64_t *soa, const uint32_t *idx,
                               unsigned n, size_t start,
                               size_t numAbsent, uint64_t saturation,
                               uint64_t threshold, uint64_t *stopMin)
{
    size_t j = start;
    if (n == 4) {
        // Two events per iteration: one 8-lane gather/scatter covers
        // both events' counters, and each event's own minimum comes
        // from two in-register permute+min steps per 256-bit half
        // (which leaves that minimum broadcast across the half — the
        // exact compare operand pass 2 needs). The pair is applied at
        // once only when it provably matches the strict per-event
        // order: the events share no counter (same table segments, so
        // a shared counter means equal indexes in the same lane), and
        // neither event crosses the threshold or sits at the
        // saturation ceiling. Any of those — all rare — falls back to
        // the one-event kernel, which re-establishes stream order.
        const __m512i one = _mm512_set1_epi64(1);
        while (j + 2 <= numAbsent) {
            const uint32_t *const row = idx + j * 4;
            const __m256i iv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(row));
            const __m128i iv0 = _mm256_castsi256_si128(iv);
            const __m128i iv1 = _mm256_extracti128_si256(iv, 1);
            const __mmask8 shared = _mm_cmpeq_epi32_mask(iv0, iv1);
            const __m512i vals = _mm512_i32gather_epi64(iv, soa, 8);
            const __m512i swap1 = _mm512_min_epu64(
                vals, _mm512_permutex_epi64(vals, 0xB1));
            const __m512i mins = _mm512_min_epu64(
                swap1, _mm512_permutex_epi64(swap1, 0x4E));
            const uint64_t min0 = static_cast<uint64_t>(
                _mm_cvtsi128_si64(_mm512_castsi512_si128(mins)));
            const uint64_t min1 = static_cast<uint64_t>(
                _mm_cvtsi128_si64(_mm256_castsi256_si128(
                    _mm512_extracti64x4_epi64(mins, 1))));
            const unsigned slow =
                static_cast<unsigned>(shared != 0) |
                static_cast<unsigned>(min0 + 1 >= threshold) |
                static_cast<unsigned>(min1 + 1 >= threshold) |
                static_cast<unsigned>(min0 >= saturation) |
                static_cast<unsigned>(min1 >= saturation);
            if (__builtin_expect(slow != 0, 0)) {
                const uint64_t newMin = bumpMinConservativeAvx512(
                    soa, row, 4, saturation);
                if (newMin >= threshold) {
                    *stopMin = newMin;
                    return j;
                }
                ++j;
                continue;
            }
            const __mmask8 isMin =
                _mm512_cmpeq_epu64_mask(vals, mins);
            const __m512i newv =
                _mm512_mask_add_epi64(vals, isMin, vals, one);
            _mm512_i32scatter_epi64(soa, iv, newv, 8);
            j += 2;
        }
    }
    for (; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinConservativeAvx512(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

} // namespace

const IngestKernels *
ingestKernelsAvx512()
{
    static const IngestKernels table = {
        IsaTier::Avx512,
        hashBlockAvx512,
        hashBlockMultiAvx512,
        signatureBlockAvx512,
        tupleHashBlockAvx512,
        bumpMinAvx512,
        bumpMinConservativeAvx512,
        accumProbeBlockAvx512,
        bumpMinBlockAvx512,
        bumpMinConservativeBlockAvx512,
    };
    return &table;
}

} // namespace mhp

#else // !AVX-512

namespace mhp {

const IngestKernels *
ingestKernelsAvx512()
{
    return nullptr;
}

} // namespace mhp

#endif
