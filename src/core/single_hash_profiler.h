/**
 * @file
 * The Single-Hash interval profiler (paper Section 5, Figure 2).
 *
 * One untagged counter table feeds a fully-associative accumulator
 * table. An incoming tuple is first checked in the accumulator
 * (shielding); on a miss it hashes into the counter table and
 * increments its counter. A counter reaching the candidate threshold
 * promotes the tuple into the accumulator. Optional behaviours:
 *
 *  - retaining (P1): carry the interval's candidates into the next
 *    interval as replaceable entries (Section 5.4.1);
 *  - resetting (R1): zero the hash counter on promotion so aliased
 *    tuples are not dragged in as false positives (Section 5.4.2).
 */

#ifndef MHP_CORE_SINGLE_HASH_PROFILER_H
#define MHP_CORE_SINGLE_HASH_PROFILER_H

#include <string>
#include <vector>

#include "core/accumulator_table.h"
#include "core/config.h"
#include "core/counter_table.h"
#include "core/hash_function.h"
#include "core/ingest_kernels.h"
#include "core/profiler.h"

namespace mhp {

/** Single hash-table hardware profiler. */
class SingleHashProfiler : public HardwareProfiler
{
  public:
    /**
     * Build from a config; numHashTables must be 1 (use
     * MultiHashProfiler otherwise).
     */
    explicit SingleHashProfiler(const ProfilerConfig &config);

    void onEvent(const Tuple &t) override;
    void onEvents(const Tuple *events, size_t count) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override;
    uint64_t areaBytes() const override;

    const ProfilerConfig &configuration() const { return config; }

    /** Raw counter value a tuple currently hashes to (tests). */
    uint64_t counterValueFor(const Tuple &t) const;

    /** Promotions rejected because the accumulator was full. */
    uint64_t droppedPromotions() const
    {
        return accumulator.droppedInsertions();
    }

    /** The hash table and accumulator, for soft-error injection. */
    FaultTargets
    faultTargets() override
    {
        return {{&table}, &accumulator};
    }

    /**
     * Mid-stream state capture/restore for daemon crash recovery:
     * the hash counters and the accumulator (the hasher and kernels
     * are pure functions of the config). See HardwareProfiler.
     */
    Status saveState(ByteBuffer &out) const override;
    Status loadState(ByteCursor &in) override;

  private:
    /** Events per batched-ingest precompute block. */
    static constexpr size_t kIngestBlock = 256;

    /** The onEvents() kernel with the config flags baked in. */
    template <bool Shielding, bool Reset>
    void ingestBatch(const Tuple *events, size_t count);

    ProfilerConfig config;
    TupleHasher hasher;
    CounterTable table;
    AccumulatorTable accumulator;
    uint64_t thresholdCount;
    /** The active ISA tier's kernels, resolved at construction. */
    const IngestKernels *kernels;
    /** kIngestBlock precomputed indexes (batched only). */
    std::vector<uint32_t> blockIndexScratch;
    /** kIngestBlock precomputed accumulator slots (batched only). */
    std::vector<uint32_t> blockSlotScratch;
    /** Positions of non-shielded events in a block (batched only). */
    std::vector<uint32_t> blockAbsentScratch;
    /** kIngestBlock precomputed TupleHash values (batched only). */
    std::vector<uint64_t> blockTupleHashScratch;
    /**
     * The absent events of a block compacted densely in stream order,
     * so the hash kernel runs its sequential (pos == nullptr) form
     * (batched only, shielded path).
     */
    std::vector<Tuple> blockDenseScratch;
    /** Hit-position list the probe kernel emits (unused here). */
    std::vector<uint32_t> blockHitScratch;
};

} // namespace mhp

#endif // MHP_CORE_SINGLE_HASH_PROFILER_H
