/**
 * @file
 * SSE4.2 ingest kernels: two 64-bit lanes per instruction.
 *
 * Pre-AVX2 x86 has no gather, so the per-byte random-table lookups
 * stay scalar loads placed into vector lanes; the rotates, xors, byte
 * flip, xor-fold and saturating-counter arithmetic run two lanes
 * wide. The tier's value is mostly completeness — it exercises the
 * dispatch path on older x86 and halves the ALU work of the hash
 * composition — while AVX2 is where the real win lives.
 *
 * Bit-identical to ingest_kernels_ref.h; ragged tails run the
 * reference bodies.
 */

#include "core/ingest_kernels.h"

#if defined(__SSE4_2__) && defined(__x86_64__)

#include <nmmintrin.h>
#include <tmmintrin.h>

#include "core/ingest_kernels_ref.h"

namespace mhp {
namespace {

static_assert(sizeof(Tuple) == 16,
              "SSE4.2 tuple loads assume a packed pair of u64");

template <int R>
inline __m128i
rotl2(__m128i v)
{
    if constexpr (R == 0)
        return v;
    return _mm_or_si128(_mm_slli_epi64(v, R), _mm_srli_epi64(v, 64 - R));
}

/** One randomizeHot round for byte position I of two inputs. */
template <int I>
inline __m128i
randRound(const uint64_t *tb, uint64_t v0, uint64_t v1, __m128i r)
{
    const __m128i word = _mm_set_epi64x(
        static_cast<long long>(tb[static_cast<uint8_t>(v1 >> (8 * I))]),
        static_cast<long long>(tb[static_cast<uint8_t>(v0 >> (8 * I))]));
    return _mm_xor_si128(r, rotl2<8 * I>(word));
}

/** RandomTable::randomizeHot on two lanes. */
inline __m128i
randomize2(const uint64_t *tb, uint64_t v0, uint64_t v1)
{
    __m128i r = _mm_set_epi64x(
        static_cast<long long>(tb[static_cast<uint8_t>(v1)]),
        static_cast<long long>(tb[static_cast<uint8_t>(v0)]));
    r = randRound<1>(tb, v0, v1, r);
    r = randRound<2>(tb, v0, v1, r);
    r = randRound<3>(tb, v0, v1, r);
    r = randRound<4>(tb, v0, v1, r);
    r = randRound<5>(tb, v0, v1, r);
    r = randRound<6>(tb, v0, v1, r);
    r = randRound<7>(tb, v0, v1, r);
    return r;
}

/** byteFlip (bswap64) on each lane. */
inline __m128i
byteFlip2(__m128i v)
{
    const __m128i m = _mm_setr_epi8(7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13,
                                    12, 11, 10, 9, 8);
    return _mm_shuffle_epi8(v, m);
}

/** The unfolded signature for two tuples. */
inline __m128i
signature2(const uint64_t *tables, const Tuple &t0, const Tuple &t1)
{
    const __m128i npc =
        byteFlip2(randomize2(tables, t0.first, t1.first));
    const __m128i nv = randomize2(tables + 256, t0.second, t1.second);
    return _mm_xor_si128(npc, nv);
}

/** One compile-time xorFoldHot round at shift S, recursing by Bits. */
template <unsigned Bits, unsigned S>
inline __m128i
fold2Step(__m128i sig, __m128i mask, __m128i r)
{
    r = _mm_xor_si128(
        r, _mm_and_si128(_mm_srli_epi64(sig, static_cast<int>(S)),
                         mask));
    if constexpr (S + Bits < 64)
        return fold2Step<Bits, S + Bits>(sig, mask, r);
    else
        return r;
}

/** xorFoldHot with the fold width fixed at compile time: the rounds
 *  fully unroll with immediate shift counts. */
template <unsigned Bits>
inline __m128i
fold2Fixed(__m128i sig)
{
    const __m128i mask =
        _mm_set1_epi64x(static_cast<long long>((1ULL << Bits) - 1));
    return fold2Step<Bits, 0>(sig, mask, _mm_setzero_si128());
}

/** xorFoldHot on two lanes. The common table widths dispatch to the
 *  unrolled fixed-width forms; the generic loop covers the rest. */
inline __m128i
fold2(__m128i sig, unsigned bits)
{
    switch (bits) {
      case 8: return fold2Fixed<8>(sig);
      case 9: return fold2Fixed<9>(sig);
      case 10: return fold2Fixed<10>(sig);
      case 11: return fold2Fixed<11>(sig);
      case 12: return fold2Fixed<12>(sig);
      case 13: return fold2Fixed<13>(sig);
      default: break;
    }
    const __m128i mask =
        _mm_set1_epi64x(static_cast<long long>((1ULL << bits) - 1));
    __m128i r = _mm_setzero_si128();
    for (unsigned s = 0; s < 64; s += bits) {
        const __m128i count = _mm_cvtsi32_si128(static_cast<int>(s));
        r = _mm_xor_si128(r,
                          _mm_and_si128(_mm_srl_epi64(sig, count), mask));
    }
    return r;
}

void
hashBlockSse42(const uint64_t *tables, unsigned bits,
               const Tuple *block, const uint32_t *pos, size_t m,
               uint32_t *out, uint32_t stride, uint32_t addend)
{
    const __m128i add =
        _mm_set1_epi64x(static_cast<long long>(addend));
    size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const size_t k0 = pos != nullptr ? pos[j] : j;
        const size_t k1 = pos != nullptr ? pos[j + 1] : j + 1;
        const __m128i idx = _mm_add_epi64(
            fold2(signature2(tables, block[k0], block[k1]), bits), add);
        out[k0 * stride] =
            static_cast<uint32_t>(_mm_extract_epi64(idx, 0));
        out[k1 * stride] =
            static_cast<uint32_t>(_mm_extract_epi64(idx, 1));
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        out[k * stride] =
            static_cast<uint32_t>(kernel_ref::index(tables, bits,
                                                    block[k])) +
            addend;
    }
}

/**
 * The per-byte table offsets of two lanes, extracted once so the
 * multi-table pass reuses them across hashers.
 */
struct ByteIndexes2
{
    uint8_t b0[8];
    uint8_t b1[8];
};

inline ByteIndexes2
byteIndexes2(uint64_t v0, uint64_t v1)
{
    ByteIndexes2 out;
    for (int i = 0; i < 8; ++i) {
        out.b0[i] = static_cast<uint8_t>(v0 >> (8 * i));
        out.b1[i] = static_cast<uint8_t>(v1 >> (8 * i));
    }
    return out;
}

/** One randomizeHot round from precomputed byte offsets. */
template <int I>
inline __m128i
randRoundPre(const uint64_t *tb, const ByteIndexes2 &b, __m128i r)
{
    const __m128i word =
        _mm_set_epi64x(static_cast<long long>(tb[b.b1[I]]),
                       static_cast<long long>(tb[b.b0[I]]));
    return _mm_xor_si128(r, rotl2<8 * I>(word));
}

/** RandomTable::randomizeHot on two lanes of precomputed bytes. */
inline __m128i
randomize2Pre(const uint64_t *tb, const ByteIndexes2 &b)
{
    __m128i r = _mm_set_epi64x(static_cast<long long>(tb[b.b1[0]]),
                               static_cast<long long>(tb[b.b0[0]]));
    r = randRoundPre<1>(tb, b, r);
    r = randRoundPre<2>(tb, b, r);
    r = randRoundPre<3>(tb, b, r);
    r = randRoundPre<4>(tb, b, r);
    r = randRoundPre<5>(tb, b, r);
    r = randRoundPre<6>(tb, b, r);
    r = randRoundPre<7>(tb, b, r);
    return r;
}

void
hashBlockMultiSse42(const uint64_t *tables, unsigned numTables,
                    unsigned bits, const Tuple *block,
                    const uint32_t *pos, size_t m, uint32_t *out,
                    uint32_t addendStride)
{
    size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const size_t k0 = pos != nullptr ? pos[j] : j;
        const size_t k1 = pos != nullptr ? pos[j + 1] : j + 1;
        const Tuple &t0 = block[k0];
        const Tuple &t1 = block[k1];
        const ByteIndexes2 pcBytes = byteIndexes2(t0.first, t1.first);
        const ByteIndexes2 valBytes =
            byteIndexes2(t0.second, t1.second);
        for (unsigned i = 0; i < numTables; ++i) {
            const uint64_t *tb = tables + i * kernel_ref::kTableWords;
            const __m128i npc =
                byteFlip2(randomize2Pre(tb, pcBytes));
            const __m128i nv = randomize2Pre(tb + 256, valBytes);
            const __m128i add = _mm_set1_epi64x(
                static_cast<long long>(i * addendStride));
            const __m128i idx = _mm_add_epi64(
                fold2(_mm_xor_si128(npc, nv), bits), add);
            out[k0 * numTables + i] =
                static_cast<uint32_t>(_mm_extract_epi64(idx, 0));
            out[k1 * numTables + i] =
                static_cast<uint32_t>(_mm_extract_epi64(idx, 1));
        }
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        kernel_ref::indexMulti(tables, numTables, bits, block[k],
                               addendStride, out + k * numTables);
    }
}

void
signatureBlockSse42(const uint64_t *tables, const Tuple *block,
                    size_t m, uint64_t *out)
{
    size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + j),
                         signature2(tables, block[j], block[j + 1]));
    }
    for (; j < m; ++j)
        out[j] = kernel_ref::signature(tables, block[j]);
}

/** Multiply each 64-bit lane by a 64-bit constant (low-64 result). */
inline __m128i
mul64c(__m128i a, uint64_t c)
{
    const __m128i clo =
        _mm_set1_epi64x(static_cast<long long>(c & 0xffffffffULL));
    const __m128i chi =
        _mm_set1_epi64x(static_cast<long long>(c >> 32));
    const __m128i ahi = _mm_srli_epi64(a, 32);
    const __m128i lo = _mm_mul_epu32(a, clo);
    const __m128i mid =
        _mm_add_epi64(_mm_mul_epu32(ahi, clo), _mm_mul_epu32(a, chi));
    return _mm_add_epi64(lo, _mm_slli_epi64(mid, 32));
}

void
tupleHashBlockSse42(const Tuple *block, size_t m, uint64_t *out)
{
    const __m128i one = _mm_set1_epi64x(1);
    size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m128i pc = _mm_set_epi64x(
            static_cast<long long>(block[j + 1].first),
            static_cast<long long>(block[j].first));
        const __m128i val = _mm_set_epi64x(
            static_cast<long long>(block[j + 1].second),
            static_cast<long long>(block[j].second));
        __m128i z = _mm_add_epi64(
            pc,
            mul64c(_mm_add_epi64(val, one), 0x9e3779b97f4a7c15ULL));
        z = mul64c(_mm_xor_si128(z, _mm_srli_epi64(z, 30)),
                   0xbf58476d1ce4e5b9ULL);
        z = mul64c(_mm_xor_si128(z, _mm_srli_epi64(z, 27)),
                   0x94d049bb133111ebULL);
        z = _mm_xor_si128(z, _mm_srli_epi64(z, 31));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + j), z);
    }
    for (; j < m; ++j)
        out[j] = kernel_ref::tupleHash(block[j]);
}

/** Lane-wise signed min (counters stay below 2^62). */
inline __m128i
min2(__m128i a, __m128i b)
{
    return _mm_blendv_epi8(a, b, _mm_cmpgt_epi64(a, b));
}

inline uint64_t
hmin2(__m128i v)
{
    const uint64_t a = static_cast<uint64_t>(_mm_extract_epi64(v, 0));
    const uint64_t b = static_cast<uint64_t>(_mm_extract_epi64(v, 1));
    return a < b ? a : b;
}

constexpr uint64_t kSignedSafe = 1ULL << 62;

uint64_t
bumpMinSse42(uint64_t *soa, const uint32_t *idx, unsigned n,
             uint64_t saturation)
{
    if (n < 2 || saturation >= kSignedSafe)
        return kernel_ref::bumpMin(soa, idx, n, saturation);
    const __m128i satv =
        _mm_set1_epi64x(static_cast<long long>(saturation));
    __m128i minv = _mm_set1_epi64x(static_cast<long long>(kSignedSafe));
    unsigned i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i vals = _mm_set_epi64x(
            static_cast<long long>(soa[idx[i + 1]]),
            static_cast<long long>(soa[idx[i]]));
        const __m128i canInc = _mm_cmpgt_epi64(satv, vals);
        const __m128i newv = _mm_sub_epi64(vals, canInc);
        soa[idx[i]] =
            static_cast<uint64_t>(_mm_extract_epi64(newv, 0));
        soa[idx[i + 1]] =
            static_cast<uint64_t>(_mm_extract_epi64(newv, 1));
        minv = min2(minv, newv);
    }
    uint64_t newMin = hmin2(minv);
    for (; i < n; ++i) {
        uint64_t &c = soa[idx[i]];
        c += (c < saturation) ? 1 : 0;
        newMin = newMin < c ? newMin : c;
    }
    return newMin;
}

uint64_t
bumpMinConservativeSse42(uint64_t *soa, const uint32_t *idx, unsigned n,
                         uint64_t saturation)
{
    if (n < 2 || n > 16 || saturation >= kSignedSafe)
        return kernel_ref::bumpMinConservative(soa, idx, n, saturation);

    __m128i vals[8];
    __m128i minv = _mm_set1_epi64x(static_cast<long long>(kSignedSafe));
    unsigned i = 0;
    unsigned chunks = 0;
    for (; i + 2 <= n; i += 2, ++chunks) {
        vals[chunks] = _mm_set_epi64x(
            static_cast<long long>(soa[idx[i + 1]]),
            static_cast<long long>(soa[idx[i]]));
        minv = min2(minv, vals[chunks]);
    }
    uint64_t minVal = hmin2(minv);
    for (unsigned t = i; t < n; ++t) {
        const uint64_t v = soa[idx[t]];
        minVal = minVal < v ? minVal : v;
    }

    // Saturated floor: no lane can advance, the minimum is unchanged.
    if (minVal >= saturation)
        return minVal;

    // Advance exactly the lanes at the minimum (a min lane's compare
    // mask is all-ones, so subtracting it is the +1). No second
    // reduction: advanced lanes land on minVal + 1 and every other
    // lane was already >= minVal + 1.
    const __m128i minValv =
        _mm_set1_epi64x(static_cast<long long>(minVal));
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned base = c * 2;
        const __m128i isMin = _mm_cmpeq_epi64(vals[c], minValv);
        const __m128i newv = _mm_sub_epi64(vals[c], isMin);
        soa[idx[base]] =
            static_cast<uint64_t>(_mm_extract_epi64(newv, 0));
        soa[idx[base + 1]] =
            static_cast<uint64_t>(_mm_extract_epi64(newv, 1));
    }
    for (unsigned t = i; t < n; ++t) {
        if (soa[idx[t]] == minVal)
            soa[idx[t]] = minVal + 1;
    }
    return minVal + 1;
}

/**
 * The rare leg of the probe: the home group either held a tag
 * collision (multiple match candidates) or was full with no hit, so
 * walk the chain generically from the home group.
 */
__attribute__((noinline)) uint32_t
accumProbeChainSse42(const AccumProbeView &view, const Tuple &t,
                     __m128i tagv, size_t g)
{
    using namespace accum_layout;
    const __m128i emptyv = _mm_setzero_si128();
    for (;;) {
        const size_t base = g * kGroupLanes;
        const __m128i tv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(view.tags + base));
        unsigned match = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(tv, tagv)));
        while (match != 0) {
            const unsigned l =
                static_cast<unsigned>(__builtin_ctz(match));
            if (view.keys[base + l] == t)
                return view.slotOf[base + l];
            match &= match - 1;
        }
        if (_mm_movemask_epi8(_mm_cmpeq_epi8(tv, emptyv)) != 0)
            return UINT32_MAX;
        g = (g + 1) & view.groupMask;
    }
}

/**
 * Tag-group probe for a whole block: one 16-byte compare finds every
 * candidate lane of a group at once (the software form of the paper's
 * CAM tag match), the first candidate's key confirms the hit, and a
 * group with an empty lane ends the chain. The fast path is
 * branch-free — the candidate lane index defaults to the pad lane
 * (AccumProbeView) and the hit/miss distinction is a conditional move,
 * so the 30/70 hit/absent mix of a shielded stream costs no
 * mispredictions. Only tag collisions and overfull home groups fall
 * into the chain walker.
 */
size_t
accumProbeBlockSse42(const AccumProbeView &view, const Tuple *block,
                     const uint64_t *hashes, size_t m, uint32_t *__restrict slots,
                     uint32_t *__restrict absentPos,
                      Tuple *__restrict absentTuples, uint32_t *__restrict hitPos)
{
    // Hoisted so the unconditional list stores (which GCC must
    // otherwise assume alias the view arrays and the view struct
    // itself) cannot force per-event reloads of the index pointers.
    const uint8_t *const tags = view.tags;
    const Tuple *const keys = view.keys;
    const uint32_t *const slotOf = view.slotOf;
    const uint64_t groupMask = view.groupMask;
    using namespace accum_layout;
    if ((groupMask + 1) * kGroupLanes > 8192) {
        for (size_t k = 0; k < m; ++k) {
            __builtin_prefetch(tags +
                                   groupOf(hashes[k], groupMask) *
                                       kGroupLanes,
                               0, 1);
        }
    }
    const __m128i emptyv = _mm_setzero_si128();
    size_t numAbsent = 0;
    for (size_t k = 0; k < m; ++k) {
        const uint64_t h = hashes[k];
        const __m128i tagv =
            _mm_set1_epi8(static_cast<char>(fullTag(h)));
        const size_t g = groupOf(h, groupMask);
        const size_t base = g * kGroupLanes;
        const __m128i tv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + base));
        const unsigned match = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(tv, tagv)));
        const unsigned empty = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(tv, emptyv)));
        const unsigned l = static_cast<unsigned>(
            __builtin_ctz(match | (1u << kGroupLanes)));
        // XOR-OR key compare instead of operator== so the comparison
        // cannot be compiled as short-circuit branches; the whole
        // hit/miss decision must stay a conditional move.
        const Tuple &cand = keys[base + l];
        const uint64_t keyDiff = (cand.first ^ block[k].first) |
                                 (cand.second ^ block[k].second);
        const uint32_t hit =
            static_cast<uint32_t>(match != 0) &
            static_cast<uint32_t>(keyDiff == 0);
        // slot | 0 on a hit, slot | ~0 on a miss: the select is pure
        // arithmetic, so no branch exists for the 30/70 hit/absent mix
        // to mispredict.
        uint32_t s = slotOf[base + l] | (hit - 1);
        // The chain is only needed when the single-candidate answer can
        // be wrong: a multi-candidate tag collision, or a full group
        // with no first-candidate hit. Both are rare, so this is the
        // one branch in the loop and it predicts not-taken. The empty
        // asm keeps GCC from re-splitting the compound predicate into a
        // separate (mispredicting) branch on `hit`.
        unsigned needChain =
            (static_cast<unsigned>((match & (match - 1)) != 0) |
             static_cast<unsigned>(empty == 0)) &
            (hit ^ 1u);
        asm("" : "+r"(needChain));
        if (__builtin_expect(needChain != 0, 0))
            s = accumProbeChainSse42(view, block[k], tagv, g);
        slots[k] = s;
        // Every event lands on exactly one list, so both appends are
        // unconditional stores (a dead store at the losing list's
        // cursor is overwritten by the next event of that kind).
        absentPos[numAbsent] = static_cast<uint32_t>(k);
        absentTuples[numAbsent] = block[k];
        hitPos[k - numAbsent] = static_cast<uint32_t>(k);
        numAbsent += (s == UINT32_MAX) ? 1 : 0;
    }
    return numAbsent;
}

size_t
bumpMinBlockSse42(uint64_t *soa, const uint32_t *idx, unsigned n,
                  size_t start, size_t numAbsent, uint64_t saturation,
                  uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinSse42(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

size_t
bumpMinConservativeBlockSse42(uint64_t *soa, const uint32_t *idx,
                              unsigned n, size_t start,
                              size_t numAbsent, uint64_t saturation,
                              uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinConservativeSse42(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

} // namespace

const IngestKernels *
ingestKernelsSse42()
{
    static const IngestKernels table = {
        IsaTier::Sse42,
        hashBlockSse42,
        hashBlockMultiSse42,
        signatureBlockSse42,
        tupleHashBlockSse42,
        bumpMinSse42,
        bumpMinConservativeSse42,
        accumProbeBlockSse42,
        bumpMinBlockSse42,
        bumpMinConservativeBlockSse42,
    };
    return &table;
}

} // namespace mhp

#else // !__SSE4_2__

namespace mhp {

const IngestKernels *
ingestKernelsSse42()
{
    return nullptr;
}

} // namespace mhp

#endif
