/**
 * @file
 * Periodic / random sampling profilers — the hardware-counter-assisted
 * baseline class of paper Section 4.1.2 (DCPI-style).
 *
 * A sampler observes every Nth event (periodic) or each event with
 * probability 1/N (random), hands the sample to "software", and the
 * software profile scales each sample by N. This is the design the
 * Stratified Sampler improved upon ("this periodic or random sampler
 * will experience less error rate as its input substream is biased"),
 * and the natural floor baseline for the paper's profilers.
 */

#ifndef MHP_CORE_SAMPLING_PROFILER_H
#define MHP_CORE_SAMPLING_PROFILER_H

#include <string>
#include <unordered_map>

#include "core/profiler.h"
#include "support/rng.h"
#include "trace/tuple.h"

namespace mhp {

/** Sampling discipline. */
enum class SamplingMode
{
    Periodic, ///< every Nth event exactly
    Random,   ///< each event independently with probability 1/N
};

/** DCPI-style sampling profiler with software accumulation. */
class SamplingProfiler : public HardwareProfiler
{
  public:
    /**
     * @param samplingPeriod N: one sample per N events (expected).
     * @param thresholdCount Candidate threshold for snapshots.
     * @param mode Periodic or random sampling.
     * @param seed Seed for the random mode.
     */
    SamplingProfiler(uint64_t samplingPeriod, uint64_t thresholdCount,
                     SamplingMode mode = SamplingMode::Periodic,
                     uint64_t seed = 0x5a3b1e);

    void onEvent(const Tuple &t) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override;

    /**
     * One event register + a period counter; the accumulation lives in
     * software, so hardware area is a handful of bytes.
     */
    uint64_t areaBytes() const override { return 32; }

    /** Samples delivered to software so far (interrupt cost proxy). */
    uint64_t samplesTaken() const { return samples; }

  private:
    uint64_t period;
    uint64_t threshold;
    SamplingMode mode;
    Rng rng;
    uint64_t untilNext;
    uint64_t samples = 0;
    std::unordered_map<Tuple, uint64_t, TupleHash> software;
};

} // namespace mhp

#endif // MHP_CORE_SAMPLING_PROFILER_H
