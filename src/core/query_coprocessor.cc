#include "core/query_coprocessor.h"

#include <cmath>

#include "support/panic.h"

namespace mhp {

QueryCoprocessor::QueryCoprocessor(const CoprocessorConfig &config_,
                                   uint64_t thresholdCount_)
    : config(config_), thresholdCount(thresholdCount_)
{
    MHP_REQUIRE(config.queueEntries >= 1, "queue needs capacity");
    MHP_REQUIRE(config.processRate > 0.0, "processRate must be > 0");
    MHP_REQUIRE(thresholdCount >= 1, "threshold must be positive");
}

void
QueryCoprocessor::drainOne()
{
    if (queue.empty())
        return;
    const Tuple t = queue.front();
    queue.pop_front();
    ++processedEvents;
    ++processedInterval;
    if (!config.query.matches(t))
        return;
    ++matchedInterval;
    Tuple key = t;
    switch (config.query.groupBy) {
      case QueryGroupBy::WholeTuple:
        break;
      case QueryGroupBy::First:
        key = Tuple{t.first, 0};
        break;
      case QueryGroupBy::Second:
        key = Tuple{0, t.second};
        break;
    }
    ++counts[key];
}

void
QueryCoprocessor::onEvent(const Tuple &t)
{
    ++arrivedEvents;
    if (queue.size() >= config.queueEntries) {
        ++droppedEvents; // the main processor never stalls for us
    } else {
        queue.push_back(t);
    }
    // Spend the per-event processing budget.
    credit += config.processRate;
    while (credit >= 1.0) {
        credit -= 1.0;
        drainOne();
    }
}

IntervalSnapshot
QueryCoprocessor::endInterval()
{
    // Interval boundary: the co-processor gets to drain its queue
    // (the original backs its buffer to memory on demand).
    while (!queue.empty())
        drainOne();

    // Scale the sub-stream counts back to the full stream.
    const double scale =
        processedInterval == 0
            ? 0.0
            : static_cast<double>(arrivedEvents) /
                  static_cast<double>(processedInterval);
    IntervalSnapshot out;
    for (const auto &[key, count] : counts) {
        const auto scaled = static_cast<uint64_t>(
            std::llround(static_cast<double>(count) * scale));
        if (scaled >= thresholdCount)
            out.push_back({key, scaled});
    }
    canonicalize(out);

    counts.clear();
    arrivedEvents = 0;
    processedInterval = 0;
    matchedInterval = 0;
    credit = 0.0;
    return out;
}

void
QueryCoprocessor::reset()
{
    queue.clear();
    counts.clear();
    credit = 0.0;
    arrivedEvents = 0;
    processedEvents = 0;
    processedInterval = 0;
    matchedInterval = 0;
    droppedEvents = 0;
}

uint64_t
QueryCoprocessor::areaBytes() const
{
    // The queue plus the co-processor core; its counting memory is
    // ordinary main memory (that generality is the design's point),
    // so only the queue is dedicated profiling hardware.
    return config.queueEntries * 16 + 64;
}

} // namespace mhp
