#include "core/ingest_kernels.h"

#include "core/ingest_kernels_tiers.h"
#include "support/cpu.h"

namespace mhp {

const IngestKernels *
ingestKernelsFor(IsaTier tier)
{
    if (!isaTierSupported(tier))
        return tier == IsaTier::Scalar ? ingestKernelsScalar() : nullptr;
    switch (tier) {
      case IsaTier::Scalar:
        return ingestKernelsScalar();
      case IsaTier::Sse42:
        return ingestKernelsSse42();
      case IsaTier::Avx2:
        return ingestKernelsAvx2();
      case IsaTier::Avx512:
        return ingestKernelsAvx512();
      case IsaTier::Neon:
        return ingestKernelsNeon();
    }
    return nullptr;
}

const IngestKernels &
ingestKernels()
{
    // Walk down from the active tier until a compiled-in table is
    // found: a supported CPU feature whose kernels were compiled out
    // (compiler without the ISA flag) degrades gracefully instead of
    // crashing. Scalar is always present.
    IsaTier tier = activeIsaTier();
    for (;;) {
        if (const IngestKernels *k = ingestKernelsFor(tier))
            return *k;
        tier = isaTierFallback(tier);
    }
}

} // namespace mhp
