/**
 * @file
 * Configuration of the interval-based hardware profilers.
 *
 * The paper's architecture knobs, all in one aggregate:
 *
 *  - interval length and candidate threshold (Section 5.1);
 *  - total hash-table entries and how many tables they are split
 *    across (Section 6: n tables of totalHashEntries / n each);
 *  - the P/R/C optimizations — retaining, resetting, conservative
 *    update (Sections 5.4 and 6.1);
 *  - counter width (the paper uses 3-byte counters) and the derived
 *    accumulator-table size bound of Section 5.1.
 */

#ifndef MHP_CORE_CONFIG_H
#define MHP_CORE_CONFIG_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "support/panic.h"
#include "support/status.h"

namespace mhp {

/** All knobs of a single- or multi-hash profiler instance. */
struct ProfilerConfig
{
    /** Profile interval length in events (paper: 10K and 1M). */
    uint64_t intervalLength = 10'000;

    /**
     * Candidate threshold as a fraction of the interval length
     * (paper: 0.01 and 0.001). An event is a candidate when it occurs
     * at least thresholdCount() times within one interval.
     */
    double candidateThreshold = 0.01;

    /** Total counters across all hash tables (paper: 2K). */
    uint64_t totalHashEntries = 2048;

    /** Number of hash tables the entries are split across (1 = single). */
    unsigned numHashTables = 4;

    /** Width of each hash-table counter (paper: 3 bytes). */
    unsigned counterBits = 24;

    /** P: retain above-threshold candidates across intervals (5.4.1). */
    bool retaining = true;

    /** R: zero the hash counter(s) when a tuple is promoted (5.4.2). */
    bool resetOnPromote = false;

    /** C: conservative update — bump only the minimum counters (6.1). */
    bool conservativeUpdate = true;

    /** Shielding: accumulated tuples bypass the hash tables (5.2). */
    bool shielding = true;

    /**
     * Flush (zero) the hash tables at every interval end, as the
     * paper specifies ("At the end of an interval, the hash table is
     * flushed"). Disabling this is an ablation: stale counts from
     * prior intervals leak across the boundary and inflate false
     * positives (see bench/ablation_interval_flush).
     */
    bool flushHashTables = true;

    /**
     * Accumulator capacity; 0 derives the paper's worst-case bound of
     * ceil(1 / candidateThreshold) entries.
     */
    uint64_t accumulatorEntries = 0;

    /** Seed for the hash-function family's random tables. */
    uint64_t seed = 0xcafef00dULL;

    /** Occurrences needed within an interval to become a candidate. */
    uint64_t
    thresholdCount() const
    {
        const double t =
            static_cast<double>(intervalLength) * candidateThreshold;
        const auto count = static_cast<uint64_t>(std::ceil(t));
        return count == 0 ? 1 : count;
    }

    /** Effective accumulator capacity (the Section 5.1 bound). */
    uint64_t
    accumulatorSize() const
    {
        if (accumulatorEntries != 0)
            return accumulatorEntries;
        const auto bound =
            static_cast<uint64_t>(std::ceil(1.0 / candidateThreshold));
        return bound == 0 ? 1 : bound;
    }

    /** Entries in each individual hash table. */
    uint64_t
    entriesPerTable() const
    {
        return totalHashEntries / numHashTables;
    }

    /**
     * Validate the configuration; an InvalidArgument Status names the
     * offending knob. This is the path for user-supplied configs
     * (tool flags); internal callers with trusted configs can keep
     * using validate().
     */
    Status
    check() const
    {
        if (intervalLength == 0)
            return Status::invalidArgument(
                "intervalLength must be positive");
        if (!(candidateThreshold > 0.0 && candidateThreshold <= 1.0))
            return Status::invalidArgument(
                "candidateThreshold must be in (0, 1]");
        if (numHashTables < 1)
            return Status::invalidArgument(
                "need at least one hash table");
        if (entriesPerTable() < 1)
            return Status::invalidArgument(
                "more hash tables than total entries");
        if (counterBits < 1 || counterBits > 64)
            return Status::invalidArgument("counterBits out of range");
        return Status::ok();
    }

    /** Abort on nonsensical parameter combinations. */
    void
    validate() const
    {
        const Status status = check();
        MHP_REQUIRE(status.isOk(), status.message().c_str());
    }

    /** Compact description, e.g. "mh4 C1R0P1 2048e 1M/0.1%". */
    std::string
    describe() const
    {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%s%u C%dR%dP%d %llue %llu/%.4g%%",
                      numHashTables == 1 ? "sh" : "mh", numHashTables,
                      conservativeUpdate ? 1 : 0, resetOnPromote ? 1 : 0,
                      retaining ? 1 : 0,
                      static_cast<unsigned long long>(totalHashEntries),
                      static_cast<unsigned long long>(intervalLength),
                      candidateThreshold * 100.0);
        return buf;
    }
};

} // namespace mhp

#endif // MHP_CORE_CONFIG_H
