/**
 * @file
 * AVX2 ingest kernels: four 64-bit lanes per instruction.
 *
 * The hash pipeline processes four tuples per iteration for one
 * hasher: the eight per-byte random-table lookups become
 * vpgatherqq's over the 2 KiB (L1-resident) table, the byte-position
 * rotates are constant-amount vector shifts, the paper's "flip" is a
 * per-lane vpshufb byte reverse, and the xor-fold runs as vector
 * shift/and/xor rounds. The counter kernels gather the n
 * structure-of-arrays counters of one event, do the saturating add
 * (and the C1 min-select) as vector compare/sub, and write back with
 * scalar lane extracts (AVX2 has no scatter).
 *
 * Everything here must match ingest_kernels_ref.h bit for bit; ragged
 * tails (m % 4, n % 4) run the reference bodies directly.
 */

#include "core/ingest_kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "core/ingest_kernels_ref.h"

namespace mhp {
namespace {

static_assert(sizeof(Tuple) == 16,
              "AVX2 tuple loads assume a packed pair of u64");

/** Rotate each 64-bit lane left by a compile-time amount. */
template <int R>
inline __m256i
rotl4(__m256i v)
{
    if constexpr (R == 0)
        return v;
    return _mm256_or_si256(_mm256_slli_epi64(v, R),
                           _mm256_srli_epi64(v, 64 - R));
}

/** One randomizeHot round: lookup byte I of v, rotate, accumulate.
 *  The byte index is extracted per round rather than hoisted: eight
 *  live byte vectors per input would exhaust the 16-register ymm file
 *  and spill around every gather. */
template <int I>
inline __m256i
randRound(const long long *tb, __m256i v, __m256i byteMask, __m256i r)
{
    const __m256i byte =
        _mm256_and_si256(_mm256_srli_epi64(v, 8 * I), byteMask);
    const __m256i word = _mm256_i64gather_epi64(tb, byte, 8);
    return _mm256_xor_si256(r, rotl4<8 * I>(word));
}

/** RandomTable::randomizeHot on four lanes. */
inline __m256i
randomize4(const uint64_t *table, __m256i v)
{
    const long long *tb = reinterpret_cast<const long long *>(table);
    const __m256i byteMask = _mm256_set1_epi64x(0xff);
    __m256i r = _mm256_i64gather_epi64(
        tb, _mm256_and_si256(v, byteMask), 8);
    r = randRound<1>(tb, v, byteMask, r);
    r = randRound<2>(tb, v, byteMask, r);
    r = randRound<3>(tb, v, byteMask, r);
    r = randRound<4>(tb, v, byteMask, r);
    r = randRound<5>(tb, v, byteMask, r);
    r = randRound<6>(tb, v, byteMask, r);
    r = randRound<7>(tb, v, byteMask, r);
    return r;
}

/** byteFlip (bswap64) on each lane. */
inline __m256i
byteFlip4(__m256i v)
{
    const __m256i m = _mm256_setr_epi8(
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8);
    return _mm256_shuffle_epi8(v, m);
}

/** The unfolded signature for four tuples already split pc/value. */
inline __m256i
signature4(const uint64_t *tables, __m256i pc, __m256i val)
{
    const __m256i npc = byteFlip4(randomize4(tables, pc));
    const __m256i nv = randomize4(tables + 256, val);
    return _mm256_xor_si256(npc, nv);
}

/** One compile-time xorFoldHot round at shift S, recursing by Bits. */
template <unsigned Bits, unsigned S>
inline __m256i
fold4Step(__m256i sig, __m256i mask, __m256i r)
{
    r = _mm256_xor_si256(
        r, _mm256_and_si256(
               _mm256_srli_epi64(sig, static_cast<int>(S)), mask));
    if constexpr (S + Bits < 64)
        return fold4Step<Bits, S + Bits>(sig, mask, r);
    else
        return r;
}

/** xorFoldHot with the fold width fixed at compile time: the rounds
 *  fully unroll with immediate shift counts. */
template <unsigned Bits>
inline __m256i
fold4Fixed(__m256i sig)
{
    const __m256i mask =
        _mm256_set1_epi64x(static_cast<long long>((1ULL << Bits) - 1));
    return fold4Step<Bits, 0>(sig, mask, _mm256_setzero_si256());
}

/** xorFoldHot on four lanes (same round count for every lane). The
 *  common table widths dispatch to the unrolled fixed-width forms; the
 *  generic loop covers the rest. */
inline __m256i
fold4(__m256i sig, unsigned bits)
{
    switch (bits) {
      case 8: return fold4Fixed<8>(sig);
      case 9: return fold4Fixed<9>(sig);
      case 10: return fold4Fixed<10>(sig);
      case 11: return fold4Fixed<11>(sig);
      case 12: return fold4Fixed<12>(sig);
      case 13: return fold4Fixed<13>(sig);
      default: break;
    }
    const __m256i mask =
        _mm256_set1_epi64x(static_cast<long long>((1ULL << bits) - 1));
    __m256i r = _mm256_setzero_si256();
    for (unsigned s = 0; s < 64; s += bits) {
        const __m128i count = _mm_cvtsi32_si128(static_cast<int>(s));
        r = _mm256_xor_si256(
            r, _mm256_and_si256(_mm256_srl_epi64(sig, count), mask));
    }
    return r;
}

/** Split four consecutive tuples into a pc vector and a value vector. */
inline void
loadTuples4(const Tuple *p, __m256i &pc, __m256i &val)
{
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p + 2));
    // a = [f0 s0 f1 s1], b = [f2 s2 f3 s3]
    const __m256i pa = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(3, 1, 2, 0));
    const __m256i pb = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(3, 1, 2, 0));
    pc = _mm256_permute2x128_si256(pa, pb, 0x20);
    val = _mm256_permute2x128_si256(pa, pb, 0x31);
}

/** Same, but for four tuples picked out by a position list. */
inline void
loadTuples4At(const Tuple *block, const uint32_t *pos, __m256i &pc,
              __m256i &val)
{
    const __m128i t0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(block + pos[0]));
    const __m128i t1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(block + pos[1]));
    const __m128i t2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(block + pos[2]));
    const __m128i t3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(block + pos[3]));
    const __m256i a = _mm256_set_m128i(t1, t0);
    const __m256i b = _mm256_set_m128i(t3, t2);
    const __m256i pa = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(3, 1, 2, 0));
    const __m256i pb = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(3, 1, 2, 0));
    pc = _mm256_permute2x128_si256(pa, pb, 0x20);
    val = _mm256_permute2x128_si256(pa, pb, 0x31);
}

void
hashBlockAvx2(const uint64_t *tables, unsigned bits, const Tuple *block,
              const uint32_t *pos, size_t m, uint32_t *out,
              uint32_t stride, uint32_t addend)
{
    const __m256i add =
        _mm256_set1_epi64x(static_cast<long long>(addend));
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        __m256i pc, val;
        size_t k0, k1, k2, k3;
        if (pos != nullptr) {
            k0 = pos[j];
            k1 = pos[j + 1];
            k2 = pos[j + 2];
            k3 = pos[j + 3];
            loadTuples4At(block, pos + j, pc, val);
        } else {
            k0 = j;
            k1 = j + 1;
            k2 = j + 2;
            k3 = j + 3;
            loadTuples4(block + j, pc, val);
        }
        const __m256i idx = _mm256_add_epi64(
            fold4(signature4(tables, pc, val), bits), add);
        out[k0 * stride] =
            static_cast<uint32_t>(_mm256_extract_epi64(idx, 0));
        out[k1 * stride] =
            static_cast<uint32_t>(_mm256_extract_epi64(idx, 1));
        out[k2 * stride] =
            static_cast<uint32_t>(_mm256_extract_epi64(idx, 2));
        out[k3 * stride] =
            static_cast<uint32_t>(_mm256_extract_epi64(idx, 3));
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        out[k * stride] =
            static_cast<uint32_t>(kernel_ref::index(tables, bits,
                                                    block[k])) +
            addend;
    }
}

void
hashBlockMultiAvx2(const uint64_t *tables, unsigned numTables,
                   unsigned bits, const Tuple *block,
                   const uint32_t *pos, size_t m, uint32_t *out,
                   uint32_t addendStride)
{
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        __m256i pc, val;
        size_t k0, k1, k2, k3;
        if (pos != nullptr) {
            k0 = pos[j];
            k1 = pos[j + 1];
            k2 = pos[j + 2];
            k3 = pos[j + 3];
            loadTuples4At(block, pos + j, pc, val);
        } else {
            k0 = j;
            k1 = j + 1;
            k2 = j + 2;
            k3 = j + 3;
            loadTuples4(block + j, pc, val);
        }
        // The tuple load and lane split happen once; only the per-
        // table work (gathers from a different base, fold) repeats.
        // Two live vectors (pc, val) across the table loop keep the
        // register pressure identical to the single-table kernel.
        for (unsigned i = 0; i < numTables; ++i) {
            const uint64_t *tb = tables + i * kernel_ref::kTableWords;
            const __m256i add = _mm256_set1_epi64x(
                static_cast<long long>(i * addendStride));
            const __m256i idx = _mm256_add_epi64(
                fold4(signature4(tb, pc, val), bits), add);
            out[k0 * numTables + i] =
                static_cast<uint32_t>(_mm256_extract_epi64(idx, 0));
            out[k1 * numTables + i] =
                static_cast<uint32_t>(_mm256_extract_epi64(idx, 1));
            out[k2 * numTables + i] =
                static_cast<uint32_t>(_mm256_extract_epi64(idx, 2));
            out[k3 * numTables + i] =
                static_cast<uint32_t>(_mm256_extract_epi64(idx, 3));
        }
    }
    for (; j < m; ++j) {
        const size_t k = pos != nullptr ? pos[j] : j;
        kernel_ref::indexMulti(tables, numTables, bits, block[k],
                               addendStride, out + k * numTables);
    }
}

void
signatureBlockAvx2(const uint64_t *tables, const Tuple *block, size_t m,
                   uint64_t *out)
{
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        __m256i pc, val;
        loadTuples4(block + j, pc, val);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + j),
                            signature4(tables, pc, val));
    }
    for (; j < m; ++j)
        out[j] = kernel_ref::signature(tables, block[j]);
}

/** Multiply each 64-bit lane by a 64-bit constant (low-64 result). */
inline __m256i
mul64c(__m256i a, uint64_t c)
{
    const __m256i clo =
        _mm256_set1_epi64x(static_cast<long long>(c & 0xffffffffULL));
    const __m256i chi =
        _mm256_set1_epi64x(static_cast<long long>(c >> 32));
    const __m256i ahi = _mm256_srli_epi64(a, 32);
    const __m256i lo = _mm256_mul_epu32(a, clo);
    const __m256i mid = _mm256_add_epi64(_mm256_mul_epu32(ahi, clo),
                                         _mm256_mul_epu32(a, chi));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

void
tupleHashBlockAvx2(const Tuple *block, size_t m, uint64_t *out)
{
    const __m256i one = _mm256_set1_epi64x(1);
    size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        __m256i pc, val;
        loadTuples4(block + j, pc, val);
        __m256i z = _mm256_add_epi64(
            pc, mul64c(_mm256_add_epi64(val, one),
                       0x9e3779b97f4a7c15ULL));
        z = mul64c(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
                   0xbf58476d1ce4e5b9ULL);
        z = mul64c(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
                   0x94d049bb133111ebULL);
        z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + j), z);
    }
    for (; j < m; ++j)
        out[j] = kernel_ref::tupleHash(block[j]);
}

/** Lane-wise signed min (all counter values stay below 2^62). */
inline __m256i
min4(__m256i a, __m256i b)
{
    return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

/** Horizontal min of the four lanes. */
inline uint64_t
hmin4(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i m =
        _mm_blendv_epi8(lo, hi, _mm_cmpgt_epi64(lo, hi));
    const uint64_t a = static_cast<uint64_t>(_mm_extract_epi64(m, 0));
    const uint64_t b = static_cast<uint64_t>(_mm_extract_epi64(m, 1));
    return a < b ? a : b;
}

/** Counter magnitudes above this lose signed-compare safety. */
constexpr uint64_t kSignedSafe = 1ULL << 62;

uint64_t
bumpMinAvx2(uint64_t *soa, const uint32_t *idx, unsigned n,
            uint64_t saturation)
{
    if (n < 4 || saturation >= kSignedSafe)
        return kernel_ref::bumpMin(soa, idx, n, saturation);
    const __m256i satv =
        _mm256_set1_epi64x(static_cast<long long>(saturation));
    __m256i minv =
        _mm256_set1_epi64x(static_cast<long long>(kSignedSafe));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i iv = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i)));
        const __m256i vals = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(soa), iv, 8);
        // cmpgt is -1 where the counter may advance; subtracting the
        // mask adds exactly 1 to those lanes.
        const __m256i canInc = _mm256_cmpgt_epi64(satv, vals);
        const __m256i newv = _mm256_sub_epi64(vals, canInc);
        soa[idx[i]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 0));
        soa[idx[i + 1]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 1));
        soa[idx[i + 2]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 2));
        soa[idx[i + 3]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 3));
        minv = min4(minv, newv);
    }
    uint64_t newMin = hmin4(minv);
    for (; i < n; ++i) {
        uint64_t &c = soa[idx[i]];
        c += (c < saturation) ? 1 : 0;
        newMin = newMin < c ? newMin : c;
    }
    return newMin;
}

uint64_t
bumpMinConservativeAvx2(uint64_t *soa, const uint32_t *idx, unsigned n,
                        uint64_t saturation)
{
    if (n < 4 || n > 16 || saturation >= kSignedSafe)
        return kernel_ref::bumpMinConservative(soa, idx, n, saturation);

    // Pass 1: gather every counter and find the global minimum. All
    // reads complete before any write, exactly like the reference.
    __m256i vals[4];
    __m256i minv =
        _mm256_set1_epi64x(static_cast<long long>(kSignedSafe));
    unsigned i = 0;
    unsigned chunks = 0;
    for (; i + 4 <= n; i += 4, ++chunks) {
        const __m256i iv = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i)));
        vals[chunks] = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(soa), iv, 8);
        minv = min4(minv, vals[chunks]);
    }
    uint64_t minVal = hmin4(minv);
    for (unsigned t = i; t < n; ++t) {
        const uint64_t v = soa[idx[t]];
        minVal = minVal < v ? minVal : v;
    }

    // Saturated floor: no lane can advance, the minimum is unchanged.
    if (minVal >= saturation)
        return minVal;

    // Pass 2: advance exactly the lanes at the minimum (a min lane's
    // compare mask is all-ones, so subtracting it is the +1). No
    // second reduction: advanced lanes land on minVal + 1 and every
    // other lane was already >= minVal + 1.
    const __m256i minValv =
        _mm256_set1_epi64x(static_cast<long long>(minVal));
    for (unsigned c = 0; c < chunks; ++c) {
        const unsigned base = c * 4;
        const __m256i isMin = _mm256_cmpeq_epi64(vals[c], minValv);
        const __m256i newv = _mm256_sub_epi64(vals[c], isMin);
        soa[idx[base]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 0));
        soa[idx[base + 1]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 1));
        soa[idx[base + 2]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 2));
        soa[idx[base + 3]] =
            static_cast<uint64_t>(_mm256_extract_epi64(newv, 3));
    }
    for (unsigned t = i; t < n; ++t) {
        if (soa[idx[t]] == minVal)
            soa[idx[t]] = minVal + 1;
    }
    return minVal + 1;
}

/**
 * The rare leg of the probe: the home group either held a tag
 * collision (multiple match candidates) or was full with no hit, so
 * walk the chain generically from the home group.
 */
__attribute__((noinline)) uint32_t
accumProbeChainAvx2(const AccumProbeView &view, const Tuple &t,
                    __m128i tagv, size_t g)
{
    using namespace accum_layout;
    const __m128i emptyv = _mm_setzero_si128();
    for (;;) {
        const size_t base = g * kGroupLanes;
        const __m128i tv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(view.tags + base));
        unsigned match = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(tv, tagv)));
        while (match != 0) {
            const unsigned l =
                static_cast<unsigned>(__builtin_ctz(match));
            if (view.keys[base + l] == t)
                return view.slotOf[base + l];
            match &= match - 1;
        }
        if (_mm_movemask_epi8(_mm_cmpeq_epi8(tv, emptyv)) != 0)
            return UINT32_MAX;
        g = (g + 1) & view.groupMask;
    }
}

/**
 * Tag-group probe for a whole block. One 16-byte SSE compare per group
 * (AVX2 implies SSE4.2; a group is exactly one xmm register) finds all
 * candidate lanes at once, the first candidate's key confirms the hit,
 * and a group with an empty lane ends the chain. The fast path is
 * branch-free — the candidate lane index defaults to the pad lane
 * (AccumProbeView) and the hit/miss distinction is a conditional move,
 * so the 30/70 hit/absent mix of a shielded stream costs no
 * mispredictions. Only tag collisions and overfull home groups fall
 * into the chain walker.
 */
size_t
accumProbeBlockAvx2(const AccumProbeView &view, const Tuple *block,
                    const uint64_t *hashes, size_t m, uint32_t *__restrict slots,
                    uint32_t *__restrict absentPos,
                      Tuple *__restrict absentTuples, uint32_t *__restrict hitPos)
{
    // Hoisted so the unconditional list stores (which GCC must
    // otherwise assume alias the view arrays and the view struct
    // itself) cannot force per-event reloads of the index pointers.
    const uint8_t *const tags = view.tags;
    const Tuple *const keys = view.keys;
    const uint32_t *const slotOf = view.slotOf;
    const uint64_t groupMask = view.groupMask;
    using namespace accum_layout;
    if ((groupMask + 1) * kGroupLanes > 8192) {
        for (size_t k = 0; k < m; ++k) {
            __builtin_prefetch(tags +
                                   groupOf(hashes[k], groupMask) *
                                       kGroupLanes,
                               0, 1);
        }
    }
    const __m128i emptyv = _mm_setzero_si128();
    size_t numAbsent = 0;
    for (size_t k = 0; k < m; ++k) {
        const uint64_t h = hashes[k];
        const __m128i tagv =
            _mm_set1_epi8(static_cast<char>(fullTag(h)));
        const size_t g = groupOf(h, groupMask);
        const size_t base = g * kGroupLanes;
        const __m128i tv = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + base));
        const unsigned match = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(tv, tagv)));
        const unsigned empty = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(tv, emptyv)));
        const unsigned l = static_cast<unsigned>(
            __builtin_ctz(match | (1u << kGroupLanes)));
        // XOR-OR key compare instead of operator== so the comparison
        // cannot be compiled as short-circuit branches; the whole
        // hit/miss decision must stay a conditional move.
        const Tuple &cand = keys[base + l];
        const uint64_t keyDiff = (cand.first ^ block[k].first) |
                                 (cand.second ^ block[k].second);
        const uint32_t hit =
            static_cast<uint32_t>(match != 0) &
            static_cast<uint32_t>(keyDiff == 0);
        // slot | 0 on a hit, slot | ~0 on a miss: the select is pure
        // arithmetic, so no branch exists for the 30/70 hit/absent mix
        // to mispredict.
        uint32_t s = slotOf[base + l] | (hit - 1);
        // The chain is only needed when the single-candidate answer can
        // be wrong: a multi-candidate tag collision, or a full group
        // with no first-candidate hit. Both are rare, so this is the
        // one branch in the loop and it predicts not-taken. The empty
        // asm keeps GCC from re-splitting the compound predicate into a
        // separate (mispredicting) branch on `hit`.
        unsigned needChain =
            (static_cast<unsigned>((match & (match - 1)) != 0) |
             static_cast<unsigned>(empty == 0)) &
            (hit ^ 1u);
        asm("" : "+r"(needChain));
        if (__builtin_expect(needChain != 0, 0))
            s = accumProbeChainAvx2(view, block[k], tagv, g);
        slots[k] = s;
        // Every event lands on exactly one list, so both appends are
        // unconditional stores (a dead store at the losing list's
        // cursor is overwritten by the next event of that kind).
        absentPos[numAbsent] = static_cast<uint32_t>(k);
        absentTuples[numAbsent] = block[k];
        hitPos[k - numAbsent] = static_cast<uint32_t>(k);
        numAbsent += (s == UINT32_MAX) ? 1 : 0;
    }
    return numAbsent;
}

size_t
bumpMinBlockAvx2(uint64_t *soa, const uint32_t *idx, unsigned n,
                 size_t start, size_t numAbsent, uint64_t saturation,
                 uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinAvx2(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

size_t
bumpMinConservativeBlockAvx2(uint64_t *soa, const uint32_t *idx,
                             unsigned n, size_t start,
                             size_t numAbsent, uint64_t saturation,
                             uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinConservativeAvx2(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

} // namespace

const IngestKernels *
ingestKernelsAvx2()
{
    static const IngestKernels table = {
        IsaTier::Avx2,
        hashBlockAvx2,
        hashBlockMultiAvx2,
        signatureBlockAvx2,
        tupleHashBlockAvx2,
        bumpMinAvx2,
        bumpMinConservativeAvx2,
        accumProbeBlockAvx2,
        bumpMinBlockAvx2,
        bumpMinConservativeBlockAvx2,
    };
    return &table;
}

} // namespace mhp

#else // !__AVX2__

namespace mhp {

const IngestKernels *
ingestKernelsAvx2()
{
    return nullptr;
}

} // namespace mhp

#endif
