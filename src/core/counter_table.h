/**
 * @file
 * An untagged table of saturating counters — the filtering stage of
 * both the single- and multi-hash architectures.
 *
 * The table deliberately has no tags (Section 5.2), so distinct tuples
 * can alias to the same counter; the profiler architectures above it
 * are what turn this cheap, lossy structure into accurate profiles.
 *
 * A table either owns its counters or views a slice of an external
 * structure-of-arrays block (docs/PERF.md): MultiHashProfiler keeps
 * its n tables in one contiguous CounterBank so the SIMD ingest
 * kernels can gather and update all of a tuple's counters from one
 * base pointer, while each table object remains individually
 * addressable for flushes, fault injection, and tests.
 */

#ifndef MHP_CORE_COUNTER_TABLE_H
#define MHP_CORE_COUNTER_TABLE_H

#include <bit>
#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "support/huge_page.h"
#include "support/status.h"

namespace mhp {

/** Fixed-size array of width-limited saturating up-counters. */
class CounterTable
{
  public:
    /**
     * @param entries Number of counters.
     * @param counterBits Width of each counter (saturation point).
     */
    CounterTable(uint64_t entries, unsigned counterBits);

    /**
     * View over `entries` externally owned counters at `storage`
     * (zeroed by this constructor). The storage must outlive the
     * table.
     */
    CounterTable(uint64_t *storage, uint64_t entries,
                 unsigned counterBits);

    // The view form aliases external storage, so copying cannot be
    // made uniformly safe; moving is (the owning buffer is on the
    // heap, so its address survives the move).
    CounterTable(const CounterTable &) = delete;
    CounterTable &operator=(const CounterTable &) = delete;
    CounterTable(CounterTable &&) = default;
    CounterTable &operator=(CounterTable &&) = default;

    /** Increment a counter by one (saturating); returns the new value. */
    uint64_t increment(uint64_t index);

    /** Current value of a counter. */
    uint64_t value(uint64_t index) const { return counts[index]; }

    /** Zero one counter (the paper's resetting optimization). */
    void reset(uint64_t index) { counts[index] = 0; }

    /** Zero every counter (end-of-interval flush). */
    void flush();

    uint64_t size() const { return numEntries; }
    uint64_t maxValue() const { return saturation; }

    /** Physical width of each counter in bits. */
    unsigned counterBits() const { return std::bit_width(saturation); }

    /**
     * Soft-error hook (sim/fault_injector): XOR one physical bit of a
     * counter. bit must lie within the counter's width, so the value
     * stays representable in hardware (<= maxValue()).
     */
    void flipBit(uint64_t index, unsigned bit);

    /**
     * Raw counter storage for batched ingest kernels. Updates through
     * this pointer must preserve the saturating-increment semantics of
     * increment(); the pointer stays valid for the table's lifetime.
     */
    uint64_t *raw() { return counts; }
    const uint64_t *raw() const { return counts; }

    /** Number of counters currently at or above a value (analysis). */
    uint64_t countAtLeast(uint64_t value) const;

    /** Serialize every counter value (entry count + raw values). */
    void saveState(ByteBuffer &out) const;

    /**
     * Restore counter values captured by saveState() on a table of
     * identical geometry. CorruptData when the entry count differs or
     * a stored value exceeds this table's saturation point.
     */
    Status loadState(ByteCursor &in);

  private:
    /**
     * Backing storage when owning; empty when viewing. Huge-page
     * preferred (support/huge_page.h) — an owning table is the
     * single-hash filter's whole hash-indexed working set.
     */
    HugeVector<uint64_t> own;
    /** own.data() or the external slice. */
    uint64_t *counts;
    uint64_t numEntries;
    uint64_t saturation;
};

} // namespace mhp

#endif // MHP_CORE_COUNTER_TABLE_H
