#include "core/theory.h"

#include <cmath>

#include "support/panic.h"

namespace mhp {

double
falsePositiveProbability(uint64_t totalEntries, unsigned numTables,
                         double thresholdPercent)
{
    MHP_REQUIRE(totalEntries >= 1, "need at least one entry");
    MHP_REQUIRE(numTables >= 1, "need at least one table");
    MHP_REQUIRE(thresholdPercent > 0.0, "threshold must be positive");

    const double z = static_cast<double>(totalEntries);
    const double n = static_cast<double>(numTables);
    const double perTable = 100.0 * n / (thresholdPercent * z);
    if (perTable >= 1.0)
        return 1.0;
    return std::pow(perTable, n);
}

unsigned
optimalTableCount(uint64_t totalEntries, double thresholdPercent,
                  unsigned maxTables)
{
    unsigned best = 1;
    double bestP = falsePositiveProbability(totalEntries, 1,
                                            thresholdPercent);
    for (unsigned n = 2; n <= maxTables; ++n) {
        const double p =
            falsePositiveProbability(totalEntries, n, thresholdPercent);
        if (p < bestP) {
            bestP = p;
            best = n;
        }
    }
    return best;
}

} // namespace mhp
