#include "core/factory.h"

#include "core/multi_hash_profiler.h"
#include "core/single_hash_profiler.h"

namespace mhp {

std::unique_ptr<HardwareProfiler>
makeProfiler(const ProfilerConfig &config)
{
    config.validate();
    if (config.numHashTables == 1)
        return std::make_unique<SingleHashProfiler>(config);
    return std::make_unique<MultiHashProfiler>(config);
}

ProfilerConfig
bestMultiHashConfig(uint64_t intervalLength, double candidateThreshold)
{
    ProfilerConfig c;
    c.intervalLength = intervalLength;
    c.candidateThreshold = candidateThreshold;
    c.totalHashEntries = 2048;
    c.numHashTables = 4;
    c.conservativeUpdate = true;
    c.resetOnPromote = false;
    c.retaining = true;
    c.shielding = true;
    return c;
}

ProfilerConfig
bestSingleHashConfig(uint64_t intervalLength, double candidateThreshold)
{
    ProfilerConfig c;
    c.intervalLength = intervalLength;
    c.candidateThreshold = candidateThreshold;
    c.totalHashEntries = 2048;
    c.numHashTables = 1;
    c.conservativeUpdate = false;
    c.resetOnPromote = true;
    c.retaining = true;
    c.shielding = true;
    return c;
}

} // namespace mhp
