/**
 * @file
 * The 256-entry random-number table behind the paper's hash function.
 *
 * Section 5.3: "The function randomize looks up for each byte of the
 * input value a random number from a 256-entry random number table."
 * In hardware this table is hardwired; here it is filled from a seeded
 * generator so each hash function in a multi-hash family gets its own
 * independent table ("We obtained such independent hash functions by
 * just choosing different random number tables").
 */

#ifndef MHP_CORE_RANDOM_TABLE_H
#define MHP_CORE_RANDOM_TABLE_H

#include <array>
#include <bit>
#include <cstdint>

namespace mhp {

/** A fixed 256-entry table of 64-bit random words. */
class RandomTable
{
  public:
    /** Fill the table deterministically from a seed. */
    explicit RandomTable(uint64_t seed);

    /** Look up the random word for a byte value. */
    uint64_t lookup(uint8_t byte) const { return table[byte]; }

    /**
     * The paper's "randomize": substitute every byte of v through the
     * table and compose the results. Composition rotates each byte's
     * random word by its byte position so different positions of the
     * same byte value contribute differently.
     *
     * Defined inline: this is the innermost operation of every hash
     * computation, and the batched ingest kernels rely on it folding
     * into their event loops.
     */
    uint64_t
    randomize(uint64_t v) const
    {
        uint64_t r = 0;
        for (unsigned i = 0; i < 8; ++i) {
            const auto byte = static_cast<uint8_t>(v >> (8 * i));
            const uint64_t word = table[byte];
            // Rotate by the byte position so "0x12 in byte 0" and
            // "0x12 in byte 3" map to different contributions.
            const unsigned rot = (8 * i) & 63u;
            r ^= (word << rot) | (word >> ((64 - rot) & 63u));
        }
        return r;
    }

    /**
     * randomize() with the eight byte positions unrolled by hand so
     * every rotate amount is a compile-time constant and the eight
     * table loads issue back to back (-O2 does not unroll the loop
     * form). Bit-identical to randomize(); used by the batched ingest
     * kernels via TupleHasher::indexHot() while the per-event path
     * keeps the reference loop.
     */
    uint64_t
    randomizeHot(uint64_t v) const
    {
        const uint64_t *const tb = table.data();
        uint64_t r = tb[static_cast<uint8_t>(v)];
        r ^= std::rotl(tb[static_cast<uint8_t>(v >> 8)], 8);
        r ^= std::rotl(tb[static_cast<uint8_t>(v >> 16)], 16);
        r ^= std::rotl(tb[static_cast<uint8_t>(v >> 24)], 24);
        r ^= std::rotl(tb[static_cast<uint8_t>(v >> 32)], 32);
        r ^= std::rotl(tb[static_cast<uint8_t>(v >> 40)], 40);
        r ^= std::rotl(tb[static_cast<uint8_t>(v >> 48)], 48);
        r ^= std::rotl(tb[static_cast<uint8_t>(v >> 56)], 56);
        return r;
    }

  private:
    std::array<uint64_t, 256> table;
};

} // namespace mhp

#endif // MHP_CORE_RANDOM_TABLE_H
