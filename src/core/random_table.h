/**
 * @file
 * The 256-entry random-number table behind the paper's hash function.
 *
 * Section 5.3: "The function randomize looks up for each byte of the
 * input value a random number from a 256-entry random number table."
 * In hardware this table is hardwired; here it is filled from a seeded
 * generator so each hash function in a multi-hash family gets its own
 * independent table ("We obtained such independent hash functions by
 * just choosing different random number tables").
 */

#ifndef MHP_CORE_RANDOM_TABLE_H
#define MHP_CORE_RANDOM_TABLE_H

#include <array>
#include <cstdint>

namespace mhp {

/** A fixed 256-entry table of 64-bit random words. */
class RandomTable
{
  public:
    /** Fill the table deterministically from a seed. */
    explicit RandomTable(uint64_t seed);

    /** Look up the random word for a byte value. */
    uint64_t lookup(uint8_t byte) const { return table[byte]; }

    /**
     * The paper's "randomize": substitute every byte of v through the
     * table and compose the results. Composition rotates each byte's
     * random word by its byte position so different positions of the
     * same byte value contribute differently.
     */
    uint64_t randomize(uint64_t v) const;

  private:
    std::array<uint64_t, 256> table;
};

} // namespace mhp

#endif // MHP_CORE_RANDOM_TABLE_H
