#include "core/perfect_profiler.h"

#include "support/panic.h"

namespace mhp {

PerfectProfiler::PerfectProfiler(uint64_t thresholdCount)
    : threshold(thresholdCount)
{
    MHP_REQUIRE(threshold >= 1, "threshold must be positive");
    table.reserve(1 << 16);
}

void
PerfectProfiler::onEvent(const Tuple &t)
{
    ++table[t];
}

void
PerfectProfiler::onEvents(const Tuple *events, size_t count)
{
    for (size_t i = 0; i < count; ++i)
        ++table[events[i]];
}

IntervalSnapshot
PerfectProfiler::endInterval()
{
    IntervalSnapshot out;
    for (const auto &[tuple, count] : table) {
        if (count >= threshold)
            out.push_back({tuple, count});
    }
    canonicalize(out);
    table.clear();
    return out;
}

void
PerfectProfiler::reset()
{
    table.clear();
}

} // namespace mhp
