/**
 * @file
 * Hardware area accounting (paper Section 7).
 *
 * The paper budgets 6 KB for the hash tables (2K entries of 3-byte
 * counters) plus 1 KB (1% threshold, 100 accumulator entries) or
 * 10 KB (0.1%, 1000 entries) for the accumulator — 7 to 16 KB total.
 * This model reproduces those numbers from a ProfilerConfig so benches
 * and tests can verify the claim.
 */

#ifndef MHP_CORE_AREA_MODEL_H
#define MHP_CORE_AREA_MODEL_H

#include <cstdint>

#include "core/config.h"

namespace mhp {

/** Byte breakdown of one profiler configuration. */
struct AreaEstimate
{
    uint64_t hashTableBytes = 0;
    uint64_t accumulatorBytes = 0;

    uint64_t total() const { return hashTableBytes + accumulatorBytes; }
};

/**
 * Storage bits of one accumulator entry: a tag wide enough to identify
 * the tuple, the exact counter, and valid/replaceable flags. The paper
 * arrives at ~10 bytes/entry; the default tag width matches that.
 */
constexpr unsigned kAccumulatorTagBits = 54;
constexpr unsigned kAccumulatorFlagBits = 2;

/** Area for a single- or multi-hash profiler configuration. */
AreaEstimate estimateArea(const ProfilerConfig &config);

/** Bytes per accumulator entry under the model above. */
uint64_t accumulatorBytesPerEntry(unsigned counterBits);

} // namespace mhp

#endif // MHP_CORE_AREA_MODEL_H
