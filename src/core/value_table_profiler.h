/**
 * @file
 * A per-PC top-N-values profiler — the classic value-profiling table
 * of Calder, Feller & Eustace (MICRO 1997), the software-profiling
 * class of paper Section 4.1.1, here with hardware-style capacity
 * bounds.
 *
 * Structure: a bounded table of PC entries; each entry keeps the top N
 * values seen at that PC with LFU counters. Replacement follows the
 * original's spirit: within a PC, a new value replaces the
 * least-frequent slot only if that slot's count is low (its count is
 * halved first, so stale values age out); across PCs, a new PC evicts
 * the PC with the smallest total count.
 *
 * Compared under the paper's interval metric, this design's errors
 * come from (a) per-PC slot pressure when a PC has many values and
 * (b) PC-table capacity pressure — both absent in the Multi-Hash
 * design, which spends its area on untagged counters instead.
 */

#ifndef MHP_CORE_VALUE_TABLE_PROFILER_H
#define MHP_CORE_VALUE_TABLE_PROFILER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/profiler.h"
#include "trace/tuple.h"

namespace mhp {

/** Knobs of the Calder-style value-profiling table. */
struct ValueTableConfig
{
    /** Maximum PCs tracked simultaneously. */
    uint64_t pcEntries = 256;

    /** Value slots per PC (the paper's TVPT keeps a handful). */
    unsigned valuesPerPc = 4;

    /**
     * A new value steals the weakest slot when that slot's halved
     * count falls to or below this.
     */
    uint64_t stealThreshold = 1;
};

/** Bounded per-PC top-N-values profiler. */
class ValueTableProfiler : public HardwareProfiler
{
  public:
    /**
     * @param config Table shape.
     * @param thresholdCount Candidate threshold for snapshots.
     */
    ValueTableProfiler(const ValueTableConfig &config,
                       uint64_t thresholdCount);

    void onEvent(const Tuple &t) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override { return "calder-tvpt"; }
    uint64_t areaBytes() const override;

    /** PC entries evicted for capacity (error source, for analysis). */
    uint64_t pcEvictions() const { return evictedPcs; }

    /** Value slots stolen within a PC (error source, for analysis). */
    uint64_t valueSteals() const { return stolenValues; }

  private:
    struct ValueSlot
    {
        uint64_t value = 0;
        uint64_t count = 0;
        bool valid = false;
    };

    struct PcEntry
    {
        std::vector<ValueSlot> slots;
        uint64_t totalCount = 0;
    };

    ValueTableConfig config;
    uint64_t thresholdCount;
    std::unordered_map<uint64_t, PcEntry> table;
    uint64_t evictedPcs = 0;
    uint64_t stolenValues = 0;
};

} // namespace mhp

#endif // MHP_CORE_VALUE_TABLE_PROFILER_H
