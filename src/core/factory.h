/**
 * @file
 * Construction of profilers from a ProfilerConfig.
 *
 * numHashTables == 1 yields a SingleHashProfiler, otherwise a
 * MultiHashProfiler; benches sweep configurations through this one
 * entry point.
 */

#ifndef MHP_CORE_FACTORY_H
#define MHP_CORE_FACTORY_H

#include <memory>

#include "core/config.h"
#include "core/profiler.h"

namespace mhp {

/** Build the profiler a config describes. */
std::unique_ptr<HardwareProfiler>
makeProfiler(const ProfilerConfig &config);

/** The paper's best configuration: 4 tables, C1, R0, P1 (Section 6.4). */
ProfilerConfig bestMultiHashConfig(uint64_t intervalLength,
                                   double candidateThreshold);

/** The paper's best single-hash configuration: R1, P1 (Section 5.6.2). */
ProfilerConfig bestSingleHashConfig(uint64_t intervalLength,
                                    double candidateThreshold);

} // namespace mhp

#endif // MHP_CORE_FACTORY_H
