/**
 * @file
 * A programmable profiling co-processor — the Section 4.1.4 class
 * (Zilles & Sohi's profiling co-processor; Heil & Smith's relational
 * profiling engine).
 *
 * The main processor deposits profiling events into a bounded queue;
 * a co-processor drains the queue at its own (limited) rate and runs a
 * programmable QUERY over each event: filter by masked match on either
 * tuple member, group by a key derived from the tuple, count per
 * group. Flexibility is the selling point; the modelled weakness is
 * bandwidth — when events arrive faster than the co-processor drains
 * them, the queue overflows and events are dropped, so counts must be
 * scaled up by the observed processing fraction (estimation noise the
 * paper's fixed-function design never incurs).
 *
 * Scoring uses the same interval metric as every other profiler: the
 * snapshot reports scaled per-group counts at or above the candidate
 * threshold.
 */

#ifndef MHP_CORE_QUERY_COPROCESSOR_H
#define MHP_CORE_QUERY_COPROCESSOR_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "core/profiler.h"
#include "trace/tuple.h"

namespace mhp {

/** The grouping key a query counts by. */
enum class QueryGroupBy
{
    WholeTuple, ///< count distinct <first, second> pairs
    First,      ///< count by tuple.first (e.g. per-PC totals)
    Second,     ///< count by tuple.second (e.g. per-value totals)
};

/** A filter+group-by+count query program. */
struct Query
{
    /** Event passes iff (first & firstMask) == firstMatch, same for
     *  second. Default masks of 0 accept everything. */
    uint64_t firstMask = 0;
    uint64_t firstMatch = 0;
    uint64_t secondMask = 0;
    uint64_t secondMatch = 0;

    QueryGroupBy groupBy = QueryGroupBy::WholeTuple;

    /** True iff the tuple passes the filter. */
    bool
    matches(const Tuple &t) const
    {
        return (t.first & firstMask) == firstMatch &&
               (t.second & secondMask) == secondMatch;
    }
};

/** Co-processor shape and bandwidth. */
struct CoprocessorConfig
{
    /** Event-queue capacity between processor and co-processor. */
    uint64_t queueEntries = 64;

    /**
     * Events the co-processor processes per incoming event (its
     * relative speed). 1.0 keeps up with everything; 0.25 models a
     * co-processor four times slower than the event rate.
     */
    double processRate = 0.5;

    /** The query program it runs. */
    Query query;
};

/** Bounded-bandwidth programmable profiling co-processor. */
class QueryCoprocessor : public HardwareProfiler
{
  public:
    /**
     * @param config Shape, bandwidth, and query.
     * @param thresholdCount Candidate threshold for snapshots
     *        (applied to the scaled estimates).
     */
    QueryCoprocessor(const CoprocessorConfig &config,
                     uint64_t thresholdCount);

    void onEvent(const Tuple &t) override;
    IntervalSnapshot endInterval() override;
    void reset() override;
    std::string name() const override { return "query-coproc"; }
    uint64_t areaBytes() const override;

    /** Events dropped on queue overflow so far. */
    uint64_t dropped() const { return droppedEvents; }

    /** Events the co-processor actually processed so far. */
    uint64_t processed() const { return processedEvents; }

  private:
    void drainOne();

    CoprocessorConfig config;
    uint64_t thresholdCount;

    std::deque<Tuple> queue;
    double credit = 0.0; ///< fractional processing budget

    /** Per-group exact counts over the processed sub-stream. */
    std::unordered_map<Tuple, uint64_t, TupleHash> counts;

    uint64_t arrivedEvents = 0;   // this interval
    uint64_t processedEvents = 0; // lifetime
    uint64_t processedInterval = 0;
    uint64_t matchedInterval = 0;
    uint64_t droppedEvents = 0;
};

} // namespace mhp

#endif // MHP_CORE_QUERY_COPROCESSOR_H
