#include "core/counter_table.h"

#include <algorithm>

#include "support/panic.h"

namespace mhp {

namespace {

uint64_t
checkedSaturation(uint64_t entries, unsigned counterBits)
{
    MHP_REQUIRE(entries >= 1, "counter table needs entries");
    MHP_REQUIRE(counterBits >= 1 && counterBits <= 64,
                "counter width out of range");
    return counterBits >= 64 ? ~0ULL : (1ULL << counterBits) - 1;
}

} // namespace

CounterTable::CounterTable(uint64_t entries, unsigned counterBits)
    : own(entries, 0), counts(own.data()), numEntries(entries),
      saturation(checkedSaturation(entries, counterBits))
{
}

CounterTable::CounterTable(uint64_t *storage, uint64_t entries,
                           unsigned counterBits)
    : counts(storage), numEntries(entries),
      saturation(checkedSaturation(entries, counterBits))
{
    std::fill_n(counts, numEntries, 0);
}

uint64_t
CounterTable::increment(uint64_t index)
{
    MHP_ASSERT(index < numEntries, "counter index out of range");
    uint64_t &c = counts[index];
    if (c < saturation)
        ++c;
    return c;
}

void
CounterTable::flipBit(uint64_t index, unsigned bit)
{
    MHP_ASSERT(index < numEntries, "fault index out of range");
    MHP_ASSERT(bit < counterBits(), "fault bit outside counter width");
    counts[index] ^= 1ULL << bit;
}

void
CounterTable::flush()
{
    std::fill_n(counts, numEntries, 0);
}

void
CounterTable::saveState(ByteBuffer &out) const
{
    out.u64(numEntries);
    for (uint64_t i = 0; i < numEntries; ++i)
        out.u64(counts[i]);
}

Status
CounterTable::loadState(ByteCursor &in)
{
    uint64_t entries = 0;
    if (!in.u64(entries))
        return Status::corruptData(
            "counter-table state is truncated");
    if (entries != numEntries)
        return Status::corruptDataf(
            "counter-table state holds %llu entries, this table %llu",
            static_cast<unsigned long long>(entries),
            static_cast<unsigned long long>(numEntries));
    for (uint64_t i = 0; i < numEntries; ++i) {
        uint64_t v = 0;
        if (!in.u64(v))
            return Status::corruptData(
                "counter-table state is truncated");
        if (v > saturation)
            return Status::corruptDataf(
                "counter-table state value %llu exceeds the %llu "
                "saturation point",
                static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(saturation));
        counts[i] = v;
    }
    return Status::ok();
}

uint64_t
CounterTable::countAtLeast(uint64_t value) const
{
    uint64_t n = 0;
    for (uint64_t i = 0; i < numEntries; ++i) {
        if (counts[i] >= value)
            ++n;
    }
    return n;
}

} // namespace mhp
