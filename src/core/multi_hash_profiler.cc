#include "core/multi_hash_profiler.h"

#include <algorithm>

#include "core/area_model.h"
#include "support/panic.h"

namespace mhp {

MultiHashProfiler::MultiHashProfiler(const ProfilerConfig &config_)
    : config(config_),
      hashers(config_.seed, config_.numHashTables,
              config_.entriesPerTable()),
      accumulator(config_.accumulatorSize(), config_.thresholdCount(),
                  config_.retaining),
      thresholdCount(config_.thresholdCount())
{
    config.validate();
    tables.reserve(config.numHashTables);
    for (unsigned i = 0; i < config.numHashTables; ++i)
        tables.emplace_back(config.entriesPerTable(), config.counterBits);
    indexScratch.resize(config.numHashTables);
}

void
MultiHashProfiler::onEvent(const Tuple &t)
{
    if (accumulator.incrementIfPresent(t)) {
        if (!config.shielding) {
            // Ablation only: keep pressuring the hash tables.
            for (unsigned i = 0; i < tables.size(); ++i)
                tables[i].increment(hashers.function(i).index(t));
        }
        return;
    }

    const unsigned n = tables.size();
    for (unsigned i = 0; i < n; ++i)
        indexScratch[i] = hashers.function(i).index(t);

    if (config.conservativeUpdate) {
        // Increment only the counter(s) at the current minimum; ties
        // all advance so the minimum strictly increases.
        uint64_t minVal = ~0ULL;
        for (unsigned i = 0; i < n; ++i)
            minVal = std::min(minVal, tables[i].value(indexScratch[i]));
        for (unsigned i = 0; i < n; ++i) {
            if (tables[i].value(indexScratch[i]) == minVal)
                tables[i].increment(indexScratch[i]);
        }
    } else {
        for (unsigned i = 0; i < n; ++i)
            tables[i].increment(indexScratch[i]);
    }

    // Promotion requires every table's counter to be at threshold.
    uint64_t newMin = ~0ULL;
    for (unsigned i = 0; i < n; ++i)
        newMin = std::min(newMin, tables[i].value(indexScratch[i]));
    if (newMin >= thresholdCount) {
        if (accumulator.insert(t, newMin) && config.resetOnPromote) {
            for (unsigned i = 0; i < n; ++i)
                tables[i].reset(indexScratch[i]);
        }
    }
}

IntervalSnapshot
MultiHashProfiler::endInterval()
{
    if (config.flushHashTables) {
        for (auto &table : tables)
            table.flush();
    }
    return accumulator.endInterval();
}

void
MultiHashProfiler::reset()
{
    for (auto &table : tables)
        table.flush();
    accumulator.reset();
}

std::string
MultiHashProfiler::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "mh%u-C%dR%dP%d",
                  config.numHashTables,
                  config.conservativeUpdate ? 1 : 0,
                  config.resetOnPromote ? 1 : 0,
                  config.retaining ? 1 : 0);
    return buf;
}

uint64_t
MultiHashProfiler::areaBytes() const
{
    return estimateArea(config).total();
}

uint64_t
MultiHashProfiler::estimateCount(const Tuple &t) const
{
    if (accumulator.contains(t))
        return accumulator.countOf(t);
    return minCounterFor(t);
}

uint64_t
MultiHashProfiler::counterValueIn(unsigned table, const Tuple &t) const
{
    MHP_ASSERT(table < tables.size(), "table index out of range");
    return tables[table].value(hashers.function(table).index(t));
}

uint64_t
MultiHashProfiler::minCounterFor(const Tuple &t) const
{
    uint64_t minVal = ~0ULL;
    for (unsigned i = 0; i < tables.size(); ++i) {
        minVal = std::min(minVal,
                          tables[i].value(hashers.function(i).index(t)));
    }
    return minVal;
}

} // namespace mhp
