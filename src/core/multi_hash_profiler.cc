#include "core/multi_hash_profiler.h"

#include "core/ingest_kernels_ref.h"

#include <algorithm>

#include "core/area_model.h"
#include "support/panic.h"

namespace mhp {

MultiHashProfiler::MultiHashProfiler(const ProfilerConfig &config_)
    : config(config_),
      hashers(config_.seed, config_.numHashTables,
              config_.entriesPerTable()),
      accumulator(config_.accumulatorSize(), config_.thresholdCount(),
                  config_.retaining),
      thresholdCount(config_.thresholdCount())
{
    config.validate();
    const uint64_t entries = config.entriesPerTable();
    const uint64_t bankSize = entries * config.numHashTables;
    // The batched kernels carry pre-offset bank indexes in 32 bits.
    MHP_REQUIRE(bankSize <= UINT32_MAX,
                "counter bank exceeds 32-bit indexing");
    counterBank.resize(bankSize);
    tables.reserve(config.numHashTables);
    for (unsigned i = 0; i < config.numHashTables; ++i) {
        tables.emplace_back(counterBank.data() + i * entries, entries,
                            config.counterBits);
    }
    kernels = &ingestKernels();
    indexScratch.resize(config.numHashTables);
    blockIndexScratch.resize(kIngestBlock * config.numHashTables);
    blockSlotScratch.resize(kIngestBlock);
    blockAbsentScratch.resize(kIngestBlock);
    blockHitScratch.resize(kIngestBlock);
    blockTupleHashScratch.resize(kIngestBlock);
    blockDenseScratch.resize(kIngestBlock);
    repairIndexScratch.resize(config.numHashTables);
}

void
MultiHashProfiler::onEvent(const Tuple &t)
{
    if (accumulator.incrementIfPresent(t)) {
        if (!config.shielding) {
            // Ablation only: keep pressuring the hash tables.
            for (unsigned i = 0; i < tables.size(); ++i)
                tables[i].increment(hashers.function(i).index(t));
        }
        return;
    }

    const unsigned n = tables.size();
    for (unsigned i = 0; i < n; ++i)
        indexScratch[i] = hashers.function(i).index(t);

    if (config.conservativeUpdate) {
        // Increment only the counter(s) at the current minimum; ties
        // all advance so the minimum strictly increases.
        uint64_t minVal = ~0ULL;
        for (unsigned i = 0; i < n; ++i)
            minVal = std::min(minVal, tables[i].value(indexScratch[i]));
        for (unsigned i = 0; i < n; ++i) {
            if (tables[i].value(indexScratch[i]) == minVal)
                tables[i].increment(indexScratch[i]);
        }
    } else {
        for (unsigned i = 0; i < n; ++i)
            tables[i].increment(indexScratch[i]);
    }

    // Promotion requires every table's counter to be at threshold.
    uint64_t newMin = ~0ULL;
    for (unsigned i = 0; i < n; ++i)
        newMin = std::min(newMin, tables[i].value(indexScratch[i]));
    if (newMin >= thresholdCount) {
        if (accumulator.insert(t, newMin) && config.resetOnPromote) {
            for (unsigned i = 0; i < n; ++i)
                tables[i].reset(indexScratch[i]);
        }
    }
}

template <bool Conservative, bool Reset, bool Shielding>
void
MultiHashProfiler::ingestBatch(const Tuple *events, size_t count)
{
    // Mirrors onEvent() exactly, with the config branches resolved at
    // compile time, the hash pipeline and counter updates vectorized
    // (the active ISA tier's ingest kernels), and the counter bank
    // accessed through one base pointer. Events are processed in
    // blocks of kIngestBlock: all hash indexes for a block are
    // computed first (a pure function of each tuple, so hoisting them
    // is invisible), then the event state machine replays in stream
    // order.
    const IngestKernels &kern = *kernels;
    const unsigned n = static_cast<unsigned>(tables.size());
    uint64_t *const bank = counterBank.data();
    uint32_t *const blk = blockIndexScratch.data();
    uint32_t *const slot = blockSlotScratch.data();
    uint32_t *const absent = blockAbsentScratch.data();
    uint32_t *const hits = blockHitScratch.data();
    uint64_t *const th = blockTupleHashScratch.data();
    const unsigned bits = hashers.function(0).indexBits();
    const uint32_t entries =
        static_cast<uint32_t>(config.entriesPerTable());
    const uint64_t saturation = tables[0].maxValue();
    const uint64_t threshold = thresholdCount;

    for (size_t base = 0; base < count; base += kIngestBlock) {
        const size_t m = std::min(kIngestBlock, count - base);
        const Tuple *const block = events + base;

        // Phase 1: accumulator membership for the whole block, so the
        // lookups' dependent load chains overlap instead of
        // interleaving with table updates. The tuple hashes come from
        // one vectorized pass, then the probe kernel prefetches every
        // home tag group and compares whole sixteen-lane groups per
        // instruction (the accum_layout SoA index). The probed slots
        // stay exact until the first promotion below (increments never
        // change membership), after which the rest of the block falls
        // back to live probes. Absent events come back as a dense
        // stream-order list so the hash phase runs without
        // data-dependent branches.
        kern.tupleHashBlock(block, m, th);
        Tuple *const dense = blockDenseScratch.data();
        const size_t numAbsent = kern.accumProbeBlock(
            accumulator.probeView(), block, th, m, slot, absent, dense,
            hits);
        const size_t numHits = m - numAbsent;

        // Phase 2: hash indexes. Pure per-tuple computation with no
        // profiler state, run as one fused kernel pass over all n
        // tables (the tuple lanes and byte decomposition are shared
        // across hashers); the i*entries addend stride pre-offsets
        // each index into the counter bank's structure-of-arrays
        // layout. Under shielding, accumulator-resident events never
        // touch the hash tables, so only absent events are hashed —
        // the probe kernel already emitted them densely compacted, so
        // the kernel's loads and stores are sequential instead of
        // gathered through the position list, and blk row j belongs to
        // absent event absent[j] (events whose probe goes stale
        // through an eviction are repaired in phase 3). The ablation
        // pressures the tables with every event, so everything is
        // hashed and blk stays event-indexed.
        if (Shielding) {
            kern.hashBlockMulti(hashers.tableWords(), n, bits, dense,
                                nullptr, numAbsent, blk, entries);
        } else {
            kern.hashBlockMulti(hashers.tableWords(), n, bits, block,
                                nullptr, m, blk, entries);
        }

        // Phase 3: the event state machine. Promotions change which
        // later events the accumulator shields, so crossings are
        // handled strictly in stream order. The n counters of an
        // event live at distinct bank offsets (disjoint per-table
        // segments), which is what lets the bump kernels gather,
        // update, and scatter them as a vector.
        if (Shielding) {
            // Under shielding, hits touch only the accumulator and
            // absent events touch only the counter bank, so the two
            // interleave freely *between* threshold crossings: the
            // block-bump kernel drains runs of absent events in one
            // call and stops at the first counter-minimum to reach the
            // threshold. Hits are then replayed up to the crossing
            // (their re-pinning must precede the promotion's eviction
            // choice) before the promotion itself is attempted. The
            // replay walks the probe kernel's dense hit list instead
            // of re-testing every event's slot — the per-event
            // hit-or-absent branch is unpredictable (the stream is a
            // ~30/70 mix), the list bound is not.
            size_t hi = 0; // next hit-list entry owed its increment
            size_t aj = 0; // next absent-list entry owed its bump
            for (;;) {
                uint64_t stopMin = 0;
                const size_t j =
                    Conservative
                        ? kern.bumpMinConservativeBlock(
                              bank, blk, n, aj, numAbsent, saturation,
                              threshold, &stopMin)
                        : kern.bumpMinBlock(bank, blk, n, aj, numAbsent,
                                            saturation, threshold,
                                            &stopMin);
                const size_t stopEvent =
                    j < numAbsent ? absent[j] : m;
                for (; hi < numHits && hits[hi] < stopEvent; ++hi)
                    accumulator.incrementSlotHot(slot[hits[hi]]);
                if (j >= numAbsent)
                    break;

                // Event stopEvent crossed the threshold in every
                // table (its bump was applied by the kernel).
                const Tuple &t = block[stopEvent];
                uint32_t *const idx = blk + j * n;
                aj = j + 1;
                if (!accumulator.insert(t, stopMin))
                    continue; // dropped: membership unchanged
                if (Reset) {
                    for (unsigned i = 0; i < n; ++i)
                        bank[idx[i]] = 0;
                }

                // Membership changed (insertion, possibly an
                // eviction): the probed slots and the absent list are
                // stale. Finish the block sequentially on live probes
                // (rare — a handful of promotions per interval). jj
                // tracks the event's dense row in blk; it advances for
                // every event that was absent at probe time, even one
                // the just-inserted tuple now shields.
                size_t jj = j + 1;
                for (size_t k = stopEvent + 1; k < m; ++k) {
                    const Tuple &tk = block[k];
                    uint32_t *kidx = nullptr;
                    if (jj < numAbsent && absent[jj] == k)
                        kidx = blk + (jj++) * n;
                    const uint32_t s = accumulator.probeSlot(tk);
                    if (s != AccumulatorTable::kNoSlot) {
                        accumulator.incrementSlotHot(s);
                        continue;
                    }
                    if (kidx == nullptr) {
                        // Shielded at probe time but evicted above:
                        // phase 2 skipped its indexes.
                        kidx = repairIndexScratch.data();
                        kernel_ref::indexMulti(hashers.tableWords(), n,
                                               bits, tk, entries, kidx);
                    }
                    const uint64_t newMin =
                        Conservative
                            ? kern.bumpMinConservative(bank, kidx, n,
                                                       saturation)
                            : kern.bumpMin(bank, kidx, n, saturation);
                    if (newMin >= threshold) {
                        if (accumulator.insert(tk, newMin) && Reset) {
                            for (unsigned i = 0; i < n; ++i)
                                bank[kidx[i]] = 0;
                        }
                    }
                }
                break;
            }
            continue;
        }

        // Ablation (!Shielding): hits also pressure the hash tables,
        // and the conservative update reads the minima hits produce,
        // so hit and absent bank updates cannot be reordered — the
        // state machine replays strictly event by event.
        bool reprobe = false;
        for (size_t k = 0; k < m; ++k) {
            const Tuple &t = block[k];
            uint32_t *const idx = blk + k * n;
            const uint32_t s =
                reprobe ? accumulator.probeSlot(t) : slot[k];
            if (s != AccumulatorTable::kNoSlot) {
                accumulator.incrementSlotHot(s);
                // Keep pressuring the hash tables.
                kern.bumpMin(bank, idx, n, saturation);
                continue;
            }

            const uint64_t newMin =
                Conservative
                    ? kern.bumpMinConservative(bank, idx, n, saturation)
                    : kern.bumpMin(bank, idx, n, saturation);

            // Promotion requires every table's counter at threshold.
            if (newMin >= threshold) {
                if (accumulator.insert(t, newMin)) {
                    // Membership changed: the block's probed slots are
                    // no longer trustworthy (insertion or eviction).
                    reprobe = true;
                    if (Reset) {
                        for (unsigned i = 0; i < n; ++i)
                            bank[idx[i]] = 0;
                    }
                }
            }
        }
    }
}

void
MultiHashProfiler::onEvents(const Tuple *events, size_t count)
{
    const unsigned key = (config.conservativeUpdate ? 4u : 0u) |
                         (config.resetOnPromote ? 2u : 0u) |
                         (config.shielding ? 1u : 0u);
    switch (key) {
      case 0u: ingestBatch<false, false, false>(events, count); break;
      case 1u: ingestBatch<false, false, true>(events, count); break;
      case 2u: ingestBatch<false, true, false>(events, count); break;
      case 3u: ingestBatch<false, true, true>(events, count); break;
      case 4u: ingestBatch<true, false, false>(events, count); break;
      case 5u: ingestBatch<true, false, true>(events, count); break;
      case 6u: ingestBatch<true, true, false>(events, count); break;
      case 7u: ingestBatch<true, true, true>(events, count); break;
    }
}

IntervalSnapshot
MultiHashProfiler::endInterval()
{
    if (config.flushHashTables) {
        for (auto &table : tables)
            table.flush();
    }
    return accumulator.endInterval();
}

void
MultiHashProfiler::reset()
{
    for (auto &table : tables)
        table.flush();
    accumulator.reset();
}

std::string
MultiHashProfiler::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "mh%u-C%dR%dP%d",
                  config.numHashTables,
                  config.conservativeUpdate ? 1 : 0,
                  config.resetOnPromote ? 1 : 0,
                  config.retaining ? 1 : 0);
    return buf;
}

uint64_t
MultiHashProfiler::areaBytes() const
{
    return estimateArea(config).total();
}

uint64_t
MultiHashProfiler::estimateCount(const Tuple &t) const
{
    if (accumulator.contains(t))
        return accumulator.countOf(t);
    return minCounterFor(t);
}

uint64_t
MultiHashProfiler::counterValueIn(unsigned table, const Tuple &t) const
{
    MHP_ASSERT(table < tables.size(), "table index out of range");
    return tables[table].value(hashers.function(table).index(t));
}

uint64_t
MultiHashProfiler::minCounterFor(const Tuple &t) const
{
    uint64_t minVal = ~0ULL;
    for (unsigned i = 0; i < tables.size(); ++i) {
        minVal = std::min(minVal,
                          tables[i].value(hashers.function(i).index(t)));
    }
    return minVal;
}

namespace {
/** saveState layout revision for MultiHashProfiler. */
constexpr uint8_t kMhStateVersion = 1;
} // namespace

Status
MultiHashProfiler::saveState(ByteBuffer &out) const
{
    out.u8(kMhStateVersion);
    out.u32(static_cast<uint32_t>(tables.size()));
    for (const CounterTable &table : tables)
        table.saveState(out);
    accumulator.saveState(out);
    return Status::ok();
}

Status
MultiHashProfiler::loadState(ByteCursor &in)
{
    uint8_t version = 0;
    uint32_t tableCount = 0;
    if (!in.u8(version) || !in.u32(tableCount))
        return Status::corruptData(
            "multi-hash profiler state is truncated");
    if (version != kMhStateVersion)
        return Status::corruptDataf(
            "multi-hash profiler state version %u, this build "
            "writes %u",
            version, kMhStateVersion);
    if (tableCount != tables.size())
        return Status::corruptDataf(
            "multi-hash profiler state holds %u tables, this "
            "configuration %zu",
            tableCount, tables.size());
    for (CounterTable &table : tables)
        MHP_RETURN_IF_ERROR(table.loadState(in));
    return accumulator.loadState(in);
}

} // namespace mhp
