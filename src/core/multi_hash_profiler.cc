#include "core/multi_hash_profiler.h"

#include <algorithm>

#include "core/area_model.h"
#include "support/panic.h"

namespace mhp {

MultiHashProfiler::MultiHashProfiler(const ProfilerConfig &config_)
    : config(config_),
      hashers(config_.seed, config_.numHashTables,
              config_.entriesPerTable()),
      accumulator(config_.accumulatorSize(), config_.thresholdCount(),
                  config_.retaining),
      thresholdCount(config_.thresholdCount())
{
    config.validate();
    tables.reserve(config.numHashTables);
    for (unsigned i = 0; i < config.numHashTables; ++i)
        tables.emplace_back(config.entriesPerTable(), config.counterBits);
    indexScratch.resize(config.numHashTables);
    valueScratch.resize(config.numHashTables);
    rawCounters.reserve(config.numHashTables);
    for (auto &table : tables)
        rawCounters.push_back(table.raw());
    blockIndexScratch.resize(kIngestBlock * config.numHashTables);
    blockSlotScratch.resize(kIngestBlock);
    blockAbsentScratch.resize(kIngestBlock);
}

void
MultiHashProfiler::onEvent(const Tuple &t)
{
    if (accumulator.incrementIfPresent(t)) {
        if (!config.shielding) {
            // Ablation only: keep pressuring the hash tables.
            for (unsigned i = 0; i < tables.size(); ++i)
                tables[i].increment(hashers.function(i).index(t));
        }
        return;
    }

    const unsigned n = tables.size();
    for (unsigned i = 0; i < n; ++i)
        indexScratch[i] = hashers.function(i).index(t);

    if (config.conservativeUpdate) {
        // Increment only the counter(s) at the current minimum; ties
        // all advance so the minimum strictly increases.
        uint64_t minVal = ~0ULL;
        for (unsigned i = 0; i < n; ++i)
            minVal = std::min(minVal, tables[i].value(indexScratch[i]));
        for (unsigned i = 0; i < n; ++i) {
            if (tables[i].value(indexScratch[i]) == minVal)
                tables[i].increment(indexScratch[i]);
        }
    } else {
        for (unsigned i = 0; i < n; ++i)
            tables[i].increment(indexScratch[i]);
    }

    // Promotion requires every table's counter to be at threshold.
    uint64_t newMin = ~0ULL;
    for (unsigned i = 0; i < n; ++i)
        newMin = std::min(newMin, tables[i].value(indexScratch[i]));
    if (newMin >= thresholdCount) {
        if (accumulator.insert(t, newMin) && config.resetOnPromote) {
            for (unsigned i = 0; i < n; ++i)
                tables[i].reset(indexScratch[i]);
        }
    }
}

template <bool Conservative, bool Reset, bool Shielding>
void
MultiHashProfiler::ingestBatch(const Tuple *events, size_t count)
{
    // Mirrors onEvent() exactly, with the config branches resolved at
    // compile time, the full hash pipeline inlined (indexHot), and the
    // counter arrays accessed directly. Events are processed in blocks
    // of kIngestBlock: all hash indexes for a block are computed first
    // (a pure function of each tuple, so hoisting them is invisible),
    // then the event state machine replays in stream order.
    const unsigned n = static_cast<unsigned>(tables.size());
    uint64_t *const val = valueScratch.data();
    uint32_t *const blk = blockIndexScratch.data();
    uint32_t *const slot = blockSlotScratch.data();
    uint32_t *const absent = blockAbsentScratch.data();
    uint64_t *const *const counters = rawCounters.data();
    const uint64_t saturation = tables[0].maxValue();
    const uint64_t threshold = thresholdCount;

    for (size_t base = 0; base < count; base += kIngestBlock) {
        const size_t m = std::min(kIngestBlock, count - base);
        const Tuple *const block = events + base;

        // Phase 1: accumulator membership for the whole block, so the
        // lookups' dependent load chains overlap instead of
        // interleaving with table updates. The probed slots stay exact
        // until the first promotion below (increments never change
        // membership), after which the rest of the block falls back to
        // live probes. Absent events are compacted into a dense list
        // (branchlessly) so the hash phase runs without data-dependent
        // branches.
        size_t numAbsent = 0;
        for (size_t k = 0; k < m; ++k) {
            slot[k] = accumulator.probeSlot(block[k]);
            absent[numAbsent] = static_cast<uint32_t>(k);
            numAbsent += (slot[k] == AccumulatorTable::kNoSlot) ? 1 : 0;
        }

        // Phase 2: hash indexes. Pure per-tuple computation with no
        // profiler state, so consecutive events' hash pipelines
        // overlap in the core instead of serializing behind table
        // updates. Under shielding, accumulator-resident events never
        // touch the hash tables, so only absent events need indexes
        // (events whose probe goes stale through an eviction are
        // repaired in phase 3); the ablation pressures the tables with
        // every event, so everything is hashed.
        const size_t hashCount = Shielding ? numAbsent : m;
        for (size_t j = 0; j < hashCount; ++j) {
            const size_t k = Shielding ? absent[j] : j;
            for (unsigned i = 0; i < n; ++i) {
                blk[k * n + i] = static_cast<uint32_t>(
                    hashers.function(i).indexHot(block[k]));
            }
        }

        // Phase 3: the event state machine. Promotions change which
        // later events the accumulator shields, so this phase is
        // strictly sequential in stream order.
        bool reprobe = false;
        for (size_t k = 0; k < m; ++k) {
            const Tuple &t = block[k];
            uint32_t *const idx = blk + k * n;
            const uint32_t s =
                reprobe ? accumulator.probeSlot(t) : slot[k];
            if (s != AccumulatorTable::kNoSlot) {
                accumulator.incrementSlotHot(s);
                if (!Shielding) {
                    // Ablation only: keep pressuring the hash tables.
                    for (unsigned i = 0; i < n; ++i) {
                        uint64_t &c = counters[i][idx[i]];
                        c += (c < saturation) ? 1 : 0;
                    }
                }
                continue;
            }
            if (Shielding && slot[k] != AccumulatorTable::kNoSlot) {
                // Shielded at probe time but evicted by a mid-block
                // promotion: phase 2 skipped its indexes, so compute
                // them here (rare — needs an eviction in this block).
                for (unsigned i = 0; i < n; ++i) {
                    idx[i] = static_cast<uint32_t>(
                        hashers.function(i).indexHot(t));
                }
            }

            uint64_t newMin = ~0ULL;
            if (Conservative) {
                // Increment only the counter(s) at the current
                // minimum; ties all advance so the minimum strictly
                // increases.
                uint64_t minVal = ~0ULL;
                for (unsigned i = 0; i < n; ++i) {
                    val[i] = counters[i][idx[i]];
                    minVal = std::min(minVal, val[i]);
                }
                for (unsigned i = 0; i < n; ++i) {
                    uint64_t v = val[i];
                    if (v == minVal) {
                        v += (v < saturation) ? 1 : 0;
                        counters[i][idx[i]] = v;
                    }
                    newMin = std::min(newMin, v);
                }
            } else {
                for (unsigned i = 0; i < n; ++i) {
                    uint64_t &c = counters[i][idx[i]];
                    c += (c < saturation) ? 1 : 0;
                    newMin = std::min(newMin, c);
                }
            }

            // Promotion requires every table's counter at threshold.
            if (newMin >= threshold) {
                if (accumulator.insert(t, newMin)) {
                    // Membership changed: the block's probed slots are
                    // no longer trustworthy (insertion or eviction).
                    reprobe = true;
                    if (Reset) {
                        for (unsigned i = 0; i < n; ++i)
                            counters[i][idx[i]] = 0;
                    }
                }
            }
        }
    }
}

void
MultiHashProfiler::onEvents(const Tuple *events, size_t count)
{
    const unsigned key = (config.conservativeUpdate ? 4u : 0u) |
                         (config.resetOnPromote ? 2u : 0u) |
                         (config.shielding ? 1u : 0u);
    switch (key) {
      case 0u: ingestBatch<false, false, false>(events, count); break;
      case 1u: ingestBatch<false, false, true>(events, count); break;
      case 2u: ingestBatch<false, true, false>(events, count); break;
      case 3u: ingestBatch<false, true, true>(events, count); break;
      case 4u: ingestBatch<true, false, false>(events, count); break;
      case 5u: ingestBatch<true, false, true>(events, count); break;
      case 6u: ingestBatch<true, true, false>(events, count); break;
      case 7u: ingestBatch<true, true, true>(events, count); break;
    }
}

IntervalSnapshot
MultiHashProfiler::endInterval()
{
    if (config.flushHashTables) {
        for (auto &table : tables)
            table.flush();
    }
    return accumulator.endInterval();
}

void
MultiHashProfiler::reset()
{
    for (auto &table : tables)
        table.flush();
    accumulator.reset();
}

std::string
MultiHashProfiler::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "mh%u-C%dR%dP%d",
                  config.numHashTables,
                  config.conservativeUpdate ? 1 : 0,
                  config.resetOnPromote ? 1 : 0,
                  config.retaining ? 1 : 0);
    return buf;
}

uint64_t
MultiHashProfiler::areaBytes() const
{
    return estimateArea(config).total();
}

uint64_t
MultiHashProfiler::estimateCount(const Tuple &t) const
{
    if (accumulator.contains(t))
        return accumulator.countOf(t);
    return minCounterFor(t);
}

uint64_t
MultiHashProfiler::counterValueIn(unsigned table, const Tuple &t) const
{
    MHP_ASSERT(table < tables.size(), "table index out of range");
    return tables[table].value(hashers.function(table).index(t));
}

uint64_t
MultiHashProfiler::minCounterFor(const Tuple &t) const
{
    uint64_t minVal = ~0ULL;
    for (unsigned i = 0; i < tables.size(); ++i) {
        minVal = std::min(minVal,
                          tables[i].value(hashers.function(i).index(t)));
    }
    return minVal;
}

} // namespace mhp
