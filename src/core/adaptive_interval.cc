#include "core/adaptive_interval.h"

#include <algorithm>

#include "support/panic.h"

namespace mhp {

AdaptiveIntervalController::AdaptiveIntervalController(
        const AdaptiveIntervalConfig &config_, uint64_t initialLength)
    : config(config_)
{
    MHP_REQUIRE(config.minLength >= 1, "minLength must be positive");
    MHP_REQUIRE(config.minLength <= config.maxLength,
                "empty length range");
    MHP_REQUIRE(config.growBelowPercent <= config.shrinkAbovePercent,
                "grow/shrink thresholds overlap");
    MHP_REQUIRE(config.holdIntervals >= 1, "holdIntervals >= 1");
    length = std::clamp(initialLength, config.minLength,
                        config.maxLength);
}

uint64_t
AdaptiveIntervalController::onIntervalEnd(const IntervalSnapshot &snapshot)
{
    std::unordered_set<Tuple, TupleHash> cur;
    cur.reserve(snapshot.size() * 2);
    for (const auto &cand : snapshot)
        cur.insert(cand.tuple);

    if (!havePrev) {
        prev = std::move(cur);
        havePrev = true;
        return length;
    }

    if (prev.empty() && cur.empty()) {
        variation = 0.0;
    } else {
        uint64_t inter = 0;
        for (const auto &t : cur)
            inter += prev.count(t);
        const uint64_t uni = prev.size() + cur.size() - inter;
        variation = 100.0 * (1.0 - static_cast<double>(inter) /
                                       static_cast<double>(uni));
    }
    prev = std::move(cur);

    if (variation < config.growBelowPercent) {
        ++growStreak;
        shrinkStreak = 0;
    } else if (variation > config.shrinkAbovePercent) {
        ++shrinkStreak;
        growStreak = 0;
    } else {
        growStreak = 0;
        shrinkStreak = 0;
    }

    if (growStreak >= config.holdIntervals &&
        length < config.maxLength) {
        length = std::min(length * 2, config.maxLength);
        ++changeCount;
        growStreak = 0;
        havePrev = false; // don't compare across a length change
    } else if (shrinkStreak >= config.holdIntervals &&
               length > config.minLength) {
        length = std::max(length / 2, config.minLength);
        ++changeCount;
        shrinkStreak = 0;
        havePrev = false;
    }
    return length;
}

} // namespace mhp
