/**
 * @file
 * The paper's closed-form false-positive analysis (Section 6.2 and
 * Figure 9).
 *
 * With candidate threshold t% there can be at most 100/t counters at
 * or above the threshold; a tuple hashing into one of Z counters is a
 * false positive with probability 100/(tZ). Splitting Z total entries
 * across n independent tables of Z/n entries each, the tuple must hit
 * an above-threshold counter in *every* table:
 *
 *     p_fp(Z, n, t) = (100 * n / (t * Z))^n
 *
 * This is a loose upper bound — it ignores the tuple distribution and
 * the retaining/shielding/conservative-update optimizations — but it
 * explains the U-shape: more tables help until each table becomes so
 * small that per-table aliasing dominates.
 */

#ifndef MHP_CORE_THEORY_H
#define MHP_CORE_THEORY_H

#include <cstdint>

namespace mhp {

/**
 * Upper bound on the probability that an input tuple becomes a false
 * positive.
 *
 * @param totalEntries Total counters across all tables (Z).
 * @param numTables Number of hash tables (n >= 1).
 * @param thresholdPercent Candidate threshold in percent (t).
 * @return Probability in [0, 1] (clamped).
 */
double falsePositiveProbability(uint64_t totalEntries, unsigned numTables,
                                double thresholdPercent);

/**
 * The table count minimizing the bound for a given budget, scanning
 * n in [1, maxTables].
 */
unsigned optimalTableCount(uint64_t totalEntries, double thresholdPercent,
                           unsigned maxTables = 16);

} // namespace mhp

#endif // MHP_CORE_THEORY_H
