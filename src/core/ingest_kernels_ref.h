/**
 * @file
 * Scalar reference bodies for the batched-ingest kernels — the single
 * source of truth every SIMD tier must match bit for bit.
 *
 * The hash helpers restate TupleHasher::indexHot() (randomizeHot →
 * byteFlip → xorFoldHot) over a raw 512-word table block; the counter
 * helpers restate the saturating-update loops of the profilers'
 * ingestBatch() state machines. The scalar kernel table uses these
 * directly, and the SIMD kernels use them for ragged tails and narrow
 * fallbacks, so "portable scalar" and "vector remainder" can never
 * drift apart.
 */

#ifndef MHP_CORE_INGEST_KERNELS_REF_H
#define MHP_CORE_INGEST_KERNELS_REF_H

#include <cstddef>
#include <cstdint>

#include "support/bit_util.h"
#include "trace/tuple.h"

namespace mhp {
namespace kernel_ref {

/** RandomTable::randomizeHot over a raw 256-word table. */
inline uint64_t
randomize(const uint64_t *tb, uint64_t v)
{
    uint64_t r = tb[static_cast<uint8_t>(v)];
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 8)], 8);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 16)], 16);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 24)], 24);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 32)], 32);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 40)], 40);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 48)], 48);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 56)], 56);
    return r;
}

/** TupleHasher::signature over a 512-word pc||value table block. */
inline uint64_t
signature(const uint64_t *tables, const Tuple &t)
{
    return byteFlip(randomize(tables, t.first)) ^
           randomize(tables + 256, t.second);
}

/** TupleHasher::indexHot over a 512-word pc||value table block. */
inline uint64_t
index(const uint64_t *tables, unsigned bits, const Tuple &t)
{
    return xorFoldHot(signature(tables, t), bits);
}

/** Words in one hasher's table block (TupleHasher::kTableWords). */
inline constexpr size_t kTableWords = 512;

/**
 * One tuple hashed through numTables packed hasher blocks: member i's
 * pre-offset index (+ i*addendStride) lands in out[i].
 */
inline void
indexMulti(const uint64_t *tables, unsigned numTables, unsigned bits,
           const Tuple &t, uint32_t addendStride, uint32_t *out)
{
    for (unsigned i = 0; i < numTables; ++i) {
        out[i] = static_cast<uint32_t>(
                     index(tables + i * kTableWords, bits, t)) +
                 i * addendStride;
    }
}

/** trace/tuple.h TupleHash, restated for the kernel layer. */
inline uint64_t
tupleHash(const Tuple &t)
{
    uint64_t z = t.first + 0x9e3779b97f4a7c15ULL * (t.second + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Saturating +1 on n SoA counters; post-increment minimum. */
inline uint64_t
bumpMin(uint64_t *soa, const uint32_t *idx, unsigned n,
        uint64_t saturation)
{
    uint64_t newMin = ~0ULL;
    for (unsigned i = 0; i < n; ++i) {
        uint64_t &c = soa[idx[i]];
        c += (c < saturation) ? 1 : 0;
        newMin = newMin < c ? newMin : c;
    }
    return newMin;
}

/**
 * Conservative update: only counters at the pre-increment minimum
 * advance (saturating); post-update minimum over all n counters.
 */
inline uint64_t
bumpMinConservative(uint64_t *soa, const uint32_t *idx, unsigned n,
                    uint64_t saturation)
{
    uint64_t minVal = ~0ULL;
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t v = soa[idx[i]];
        minVal = minVal < v ? minVal : v;
    }
    uint64_t newMin = ~0ULL;
    for (unsigned i = 0; i < n; ++i) {
        uint64_t v = soa[idx[i]];
        if (v == minVal) {
            v += (v < saturation) ? 1 : 0;
            soa[idx[i]] = v;
        }
        newMin = newMin < v ? newMin : v;
    }
    return newMin;
}

} // namespace kernel_ref
} // namespace mhp

#endif // MHP_CORE_INGEST_KERNELS_REF_H
