/**
 * @file
 * Scalar reference bodies for the batched-ingest kernels — the single
 * source of truth every SIMD tier must match bit for bit.
 *
 * The hash helpers restate TupleHasher::indexHot() (randomizeHot →
 * byteFlip → xorFoldHot) over a raw 512-word table block; the counter
 * helpers restate the saturating-update loops of the profilers'
 * ingestBatch() state machines. The scalar kernel table uses these
 * directly, and the SIMD kernels use them for ragged tails and narrow
 * fallbacks, so "portable scalar" and "vector remainder" can never
 * drift apart.
 */

#ifndef MHP_CORE_INGEST_KERNELS_REF_H
#define MHP_CORE_INGEST_KERNELS_REF_H

#include <cstddef>
#include <cstdint>

#include "core/ingest_kernels.h"
#include "support/bit_util.h"
#include "trace/tuple.h"

namespace mhp {
namespace kernel_ref {

/** RandomTable::randomizeHot over a raw 256-word table. */
inline uint64_t
randomize(const uint64_t *tb, uint64_t v)
{
    uint64_t r = tb[static_cast<uint8_t>(v)];
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 8)], 8);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 16)], 16);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 24)], 24);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 32)], 32);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 40)], 40);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 48)], 48);
    r ^= std::rotl(tb[static_cast<uint8_t>(v >> 56)], 56);
    return r;
}

/** TupleHasher::signature over a 512-word pc||value table block. */
inline uint64_t
signature(const uint64_t *tables, const Tuple &t)
{
    return byteFlip(randomize(tables, t.first)) ^
           randomize(tables + 256, t.second);
}

/** TupleHasher::indexHot over a 512-word pc||value table block. */
inline uint64_t
index(const uint64_t *tables, unsigned bits, const Tuple &t)
{
    return xorFoldHot(signature(tables, t), bits);
}

/** Words in one hasher's table block (TupleHasher::kTableWords). */
inline constexpr size_t kTableWords = 512;

/**
 * One tuple hashed through numTables packed hasher blocks: member i's
 * pre-offset index (+ i*addendStride) lands in out[i].
 */
inline void
indexMulti(const uint64_t *tables, unsigned numTables, unsigned bits,
           const Tuple &t, uint32_t addendStride, uint32_t *out)
{
    for (unsigned i = 0; i < numTables; ++i) {
        out[i] = static_cast<uint32_t>(
                     index(tables + i * kTableWords, bits, t)) +
                 i * addendStride;
    }
}

/** trace/tuple.h TupleHash, restated for the kernel layer. */
inline uint64_t
tupleHash(const Tuple &t)
{
    uint64_t z = t.first + 0x9e3779b97f4a7c15ULL * (t.second + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Saturating +1 on n SoA counters; post-increment minimum. */
inline uint64_t
bumpMin(uint64_t *soa, const uint32_t *idx, unsigned n,
        uint64_t saturation)
{
    uint64_t newMin = ~0ULL;
    for (unsigned i = 0; i < n; ++i) {
        uint64_t &c = soa[idx[i]];
        c += (c < saturation) ? 1 : 0;
        newMin = newMin < c ? newMin : c;
    }
    return newMin;
}

/**
 * Conservative update: only counters at the pre-increment minimum
 * advance (saturating); post-update minimum over all n counters.
 */
inline uint64_t
bumpMinConservative(uint64_t *soa, const uint32_t *idx, unsigned n,
                    uint64_t saturation)
{
    uint64_t minVal = ~0ULL;
    for (unsigned i = 0; i < n; ++i) {
        const uint64_t v = soa[idx[i]];
        minVal = minVal < v ? minVal : v;
    }
    uint64_t newMin = ~0ULL;
    for (unsigned i = 0; i < n; ++i) {
        uint64_t v = soa[idx[i]];
        if (v == minVal) {
            v += (v < saturation) ? 1 : 0;
            soa[idx[i]] = v;
        }
        newMin = newMin < v ? newMin : v;
    }
    return newMin;
}

/**
 * One tag-group probe (AccumulatorTable::probeSlotHashed): the slot
 * holding tuple t, or UINT32_MAX. `hash` must equal TupleHash{}(t).
 */
inline uint32_t
accumProbeOne(const AccumProbeView &view, const Tuple &t, uint64_t hash)
{
    using namespace accum_layout;
    const uint8_t tag = fullTag(hash);
    size_t g = groupOf(hash, view.groupMask);
    for (;;) {
        const size_t base = g * kGroupLanes;
        bool anyEmpty = false;
        for (size_t l = 0; l < kGroupLanes; ++l) {
            const uint8_t laneTag = view.tags[base + l];
            if (laneTag == tag && view.keys[base + l] == t)
                return view.slotOf[base + l];
            anyEmpty |= laneTag == kEmptyTag;
        }
        if (anyEmpty)
            return UINT32_MAX;
        g = (g + 1) & view.groupMask;
    }
}

/** IngestKernels::accumProbeBlock, restated as plain loops. */
inline size_t
accumProbeBlock(const AccumProbeView &view, const Tuple *block,
                const uint64_t *hashes, size_t m, uint32_t *slots,
                uint32_t *absentPos, Tuple *absentTuples,
                uint32_t *hitPos)
{
    using namespace accum_layout;
    // The home-group prefetch pass only pays for itself when the tag
    // array can actually fall out of cache; typical accumulators
    // (a few hundred lanes) are permanently L1-resident and the pass
    // would be pure overhead.
    if ((view.groupMask + 1) * kGroupLanes > 8192) {
        for (size_t k = 0; k < m; ++k) {
            __builtin_prefetch(view.tags +
                                   groupOf(hashes[k], view.groupMask) *
                                       kGroupLanes,
                               0, 1);
        }
    }
    size_t numAbsent = 0;
    for (size_t k = 0; k < m; ++k) {
        slots[k] = accumProbeOne(view, block[k], hashes[k]);
        // Every event lands on exactly one list, so both appends are
        // unconditional stores (a dead store at the losing list's
        // cursor is overwritten by the next event of that kind).
        absentPos[numAbsent] = static_cast<uint32_t>(k);
        absentTuples[numAbsent] = block[k];
        hitPos[k - numAbsent] = static_cast<uint32_t>(k);
        numAbsent += (slots[k] == UINT32_MAX) ? 1 : 0;
    }
    return numAbsent;
}

/** IngestKernels::bumpMinBlock, restated as a plain loop. */
inline size_t
bumpMinBlock(uint64_t *soa, const uint32_t *idx, unsigned n,
             size_t start, size_t numAbsent, uint64_t saturation,
             uint64_t threshold, uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin = bumpMin(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

/** IngestKernels::bumpMinConservativeBlock, restated as a plain loop. */
inline size_t
bumpMinConservativeBlock(uint64_t *soa, const uint32_t *idx, unsigned n,
                         size_t start, size_t numAbsent,
                         uint64_t saturation, uint64_t threshold,
                         uint64_t *stopMin)
{
    for (size_t j = start; j < numAbsent; ++j) {
        const uint64_t newMin =
            bumpMinConservative(soa, idx + j * n, n, saturation);
        if (newMin >= threshold) {
            *stopMin = newMin;
            return j;
        }
    }
    return numAbsent;
}

} // namespace kernel_ref
} // namespace mhp

#endif // MHP_CORE_INGEST_KERNELS_REF_H
