/**
 * @file
 * An EventSource over an in-memory vector of tuples.
 *
 * Mostly used by tests (hand-crafted streams with known answers) and by
 * code that replays a recorded interval.
 */

#ifndef MHP_TRACE_VECTOR_SOURCE_H
#define MHP_TRACE_VECTOR_SOURCE_H

#include <string>
#include <vector>

#include "trace/source.h"
#include "trace/tuple_span.h"

namespace mhp {

/** Finite event source backed by a std::vector. */
class VectorSource : public EventSource
{
  public:
    /**
     * @param tuples The stream, replayed in order.
     * @param kind What the tuples represent.
     * @param name Stream identifier for reports.
     */
    VectorSource(std::vector<Tuple> tuples,
                 ProfileKind kind = ProfileKind::Value,
                 std::string name = "vector");

    Tuple next() override;
    bool done() const override { return pos >= tuples.size(); }
    ProfileKind kind() const override { return profileKind; }
    std::string name() const override { return sourceName; }

    /** Rewind to the beginning of the stream. */
    void reset() { pos = 0; }

    /** View of the whole backing stream (for batched consumers). */
    TupleSpan span() const { return TupleSpan(tuples); }

    size_t size() const { return tuples.size(); }

  private:
    std::vector<Tuple> tuples;
    ProfileKind profileKind;
    std::string sourceName;
    size_t pos = 0;
};

} // namespace mhp

#endif // MHP_TRACE_VECTOR_SOURCE_H
