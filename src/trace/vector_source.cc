#include "trace/vector_source.h"

#include "support/panic.h"

namespace mhp {

VectorSource::VectorSource(std::vector<Tuple> tuples_, ProfileKind kind_,
                           std::string name_)
    : tuples(std::move(tuples_)), profileKind(kind_),
      sourceName(std::move(name_))
{
}

Tuple
VectorSource::next()
{
    MHP_ASSERT(pos < tuples.size(), "next() past end of vector source");
    return tuples[pos++];
}

} // namespace mhp
