/**
 * @file
 * mmap-backed .mht trace source: the zero-copy end of the streaming
 * data plane (see docs/STREAMING.md).
 *
 * TraceMap opens a trace file read-only, validates the header with the
 * same Status machinery as TraceReader, and maps the whole file into
 * the address space. On little-endian hosts the record region — count
 * * { first (8 LE), second (8 LE) } — already has the in-memory layout
 * of a Tuple array, so consumers read the kernel page cache directly:
 * no decode, no copy, and any number of readers (parallel sweep cells)
 * can share one immutable mapping. On big-endian hosts the same API
 * works through a chunked byte-swap fallback that decodes into a
 * caller-owned scratch buffer, keeping memory O(chunk).
 *
 * TraceMapSource is the per-consumer cursor over a shared TraceMap:
 * an EventSource for per-event consumers and a StreamCursor for
 * batched ones. The map itself is immutable and thread-safe; each
 * concurrent consumer owns its own source.
 *
 * When mmap itself fails — most commonly an address-space cap
 * (ulimit -v) smaller than the trace — open() reports an IoError and
 * callers fall back to the buffered TraceReader, which replays the
 * same bytes in O(64 KiB) memory. tools/mhprof_run wires up exactly
 * that fallback; the CI bounded-memory leg exercises it.
 */

#ifndef MHP_TRACE_TRACE_MAP_H
#define MHP_TRACE_TRACE_MAP_H

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/status.h"
#include "trace/source.h"

namespace mhp {

/** An immutable, shareable read-only mapping of a .mht trace. */
class TraceMap
{
  public:
    /**
     * Open, validate (magic, kind, declared count vs. file size), and
     * map a trace read-only. Returns CorruptData/NotFound for invalid
     * input and IoError when the mapping itself fails (e.g. the file
     * exceeds an address-space limit) — callers that can stream
     * should treat IoError as "fall back to TraceReader".
     */
    static StatusOr<std::shared_ptr<const TraceMap>>
    open(const std::string &path);

    ~TraceMap();

    TraceMap(const TraceMap &) = delete;
    TraceMap &operator=(const TraceMap &) = delete;

    ProfileKind kind() const { return profileKind; }
    uint64_t totalEvents() const { return total; }
    const std::string &path() const { return filePath; }

    /** True when records can be viewed in place on this host. */
    static constexpr bool
    zeroCopy()
    {
        return std::endian::native == std::endian::little;
    }

    /**
     * Zero-copy view of every record, valid for the map's lifetime.
     * Disengaged on big-endian hosts — use read() there.
     */
    std::optional<TupleSpan> span() const;

    /**
     * View up to maxCount records starting at event `offset`. On
     * little-endian hosts this is a view into the mapping and
     * `scratch` is untouched; otherwise the records are byte-swapped
     * into `scratch` (resized to the chunk, reused across calls) and
     * the returned span aliases it. Either way the result is invalid
     * after `scratch` is next modified or the map destroyed.
     */
    TupleSpan read(uint64_t offset, size_t maxCount,
                   std::vector<Tuple> &scratch) const;

    /** Decode one record (endian-independent; offset < totalEvents). */
    Tuple at(uint64_t offset) const;

    /**
     * Content fingerprint for sweep-checkpoint compatibility: kind,
     * record count, and the first and last 64 KiB of records. Not a
     * full-file checksum — a resume against a trace doctored in the
     * middle is on the operator — but it catches the realistic
     * mistakes (different trace, re-recorded trace, truncation).
     */
    uint64_t fingerprint() const;

  private:
    TraceMap() = default;

    const uint8_t *records() const;

    std::string filePath;
    ProfileKind profileKind = ProfileKind::Value;
    uint64_t total = 0;
    void *base = nullptr; ///< whole-file mapping
    size_t mapLength = 0;
};

/**
 * Cursor over a shared TraceMap: EventSource for per-event consumers,
 * StreamCursor for batched ones. Holds a reference on the map, so the
 * mapping outlives every source over it.
 */
class TraceMapSource final : public EventSource, public StreamCursor
{
  public:
    explicit TraceMapSource(std::shared_ptr<const TraceMap> map);

    Tuple next() override;
    bool done() const override { return pos >= map->totalEvents(); }
    ProfileKind kind() const override { return map->kind(); }
    std::string name() const override { return map->path(); }

    /**
     * Pull the next chunk: a zero-copy view of the mapping on
     * little-endian hosts, a byte-swapped copy in the source's own
     * reused scratch buffer otherwise (valid until the next take()).
     */
    TupleSpan take(size_t maxEvents) override;

    /** Rewind to the beginning of the trace. */
    void rewind() { pos = 0; }

    uint64_t size() const { return map->totalEvents(); }
    uint64_t position() const { return pos; }

  private:
    std::shared_ptr<const TraceMap> map;
    uint64_t pos = 0;
    std::vector<Tuple> scratch; ///< big-endian decode buffer only
};

} // namespace mhp

#endif // MHP_TRACE_TRACE_MAP_H
