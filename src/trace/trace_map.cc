#include "trace/trace_map.h"

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/bytes.h"
#include "support/failpoint.h"
#include "support/huge_page.h"
#include "support/panic.h"
#include "trace/trace_io.h"

namespace mhp {

namespace {

// The zero-copy path reinterprets the mapped little-endian record
// region as a Tuple array, so the in-memory layout must match the
// on-disk one exactly: two unpadded 64-bit words.
static_assert(sizeof(Tuple) == kTraceRecordSize,
              "Tuple must match the .mht record layout");
static_assert(std::is_trivially_copyable_v<Tuple>);
static_assert(offsetof(Tuple, first) == 0 &&
              offsetof(Tuple, second) == 8);

/** Cap one big-endian decode chunk so scratch stays bounded. */
constexpr size_t kMaxDecodeChunk = 1u << 16;

} // namespace

StatusOr<std::shared_ptr<const TraceMap>>
TraceMap::open(const std::string &path)
{
    // Injectable mmap failure: callers are expected to fall back to
    // the buffered TraceReader, and this site lets tests prove they
    // actually do.
    if (failpointFires("trace.map.open")) {
        return Status::ioError(
            path + ": injected mmap failure (failpoint "
                   "trace.map.open); stream it with TraceReader "
                   "instead");
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return Status::notFound(path + ": cannot open trace file");

    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return Status::ioError(path + ": cannot stat trace file");
    }
    const auto fileSize = static_cast<uint64_t>(st.st_size);

    uint8_t header[kTraceHeaderSize];
    ssize_t got = ::pread(fd, header, kTraceHeaderSize, 0);
    if (got != static_cast<ssize_t>(kTraceHeaderSize)) {
        ::close(fd);
        return Status::corruptData(path + ": truncated trace header");
    }

    std::shared_ptr<TraceMap> map(new TraceMap);
    map->filePath = path;
    if (Status bad = validateTraceHeader(path, header, fileSize,
                                         map->profileKind, map->total);
        !bad.isOk()) {
        ::close(fd);
        return bad;
    }

    // Map the whole file (header included, so the record region sits
    // at a fixed 8-byte-aligned offset). A valid trace is never empty
    // — the header alone is kTraceHeaderSize bytes — so length > 0.
    void *base =
        ::mmap(nullptr, static_cast<size_t>(fileSize), PROT_READ,
               MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (base == MAP_FAILED) {
        return Status::ioError(
            path + ": cannot mmap trace (" +
            std::string(std::strerror(errno)) +
            "); stream it with TraceReader instead");
    }
    map->base = base;
    map->mapLength = static_cast<size_t>(fileSize);
    // Best effort: a paper-scale trace is read back hash-order-random
    // by sweep cells sharing this one mapping, so huge pages cut the
    // per-reader dTLB cost. File-backed THP needs kernel support; a
    // refusal changes nothing.
    adviseHugeSpan(base, map->mapLength);
    return std::shared_ptr<const TraceMap>(std::move(map));
}

TraceMap::~TraceMap()
{
    if (base != nullptr)
        ::munmap(base, mapLength);
}

const uint8_t *
TraceMap::records() const
{
    return static_cast<const uint8_t *>(base) + kTraceHeaderSize;
}

std::optional<TupleSpan>
TraceMap::span() const
{
    if (!zeroCopy())
        return std::nullopt;
    return TupleSpan(reinterpret_cast<const Tuple *>(records()), total);
}

TupleSpan
TraceMap::read(uint64_t offset, size_t maxCount,
               std::vector<Tuple> &scratch) const
{
    MHP_ASSERT(offset <= total, "read past end of mapped trace");
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(maxCount, total - offset));
    if (zeroCopy()) {
        return TupleSpan(
            reinterpret_cast<const Tuple *>(records()) + offset, n);
    }
    const size_t chunk = std::min(n, kMaxDecodeChunk);
    scratch.resize(chunk);
    const uint8_t *p = records() + offset * kTraceRecordSize;
    for (size_t i = 0; i < chunk; ++i, p += kTraceRecordSize) {
        scratch[i].first = getLe64(p);
        scratch[i].second = getLe64(p + 8);
    }
    return TupleSpan(scratch.data(), chunk);
}

Tuple
TraceMap::at(uint64_t offset) const
{
    MHP_ASSERT(offset < total, "at() past end of mapped trace");
    const uint8_t *p = records() + offset * kTraceRecordSize;
    return Tuple{getLe64(p), getLe64(p + 8)};
}

uint64_t
TraceMap::fingerprint() const
{
    ByteBuffer id;
    id.u8(static_cast<uint8_t>(profileKind));
    id.u64(total);
    uint64_t h = fnv1a64(id.data(), id.size());
    const uint64_t bodyBytes = total * kTraceRecordSize;
    const uint64_t window = std::min<uint64_t>(bodyBytes, 1u << 16);
    h ^= fnv1a64(records(), static_cast<size_t>(window));
    h ^= fnv1a64(records() + (bodyBytes - window),
                 static_cast<size_t>(window)) *
         0x100000001b3ULL;
    return h;
}

TraceMapSource::TraceMapSource(std::shared_ptr<const TraceMap> map_)
    : map(std::move(map_))
{
    MHP_REQUIRE(map != nullptr, "TraceMapSource needs a map");
}

Tuple
TraceMapSource::next()
{
    MHP_ASSERT(!done(), "next() past end of mapped trace");
    return map->at(pos++);
}

TupleSpan
TraceMapSource::take(size_t maxEvents)
{
    const TupleSpan chunk = map->read(pos, maxEvents, scratch);
    pos += chunk.size();
    return chunk;
}

} // namespace mhp
