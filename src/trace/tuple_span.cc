#include "trace/tuple_span.h"

#include <algorithm>

#include "support/panic.h"

namespace mhp {

TupleSpanSource::TupleSpanSource(TupleSpan span_, ProfileKind kind_,
                                 std::string name_)
    : span(span_), profileKind(kind_), sourceName(std::move(name_))
{
}

Tuple
TupleSpanSource::next()
{
    MHP_ASSERT(pos < span.size(), "next() on an exhausted span source");
    return span[pos++];
}

TupleSpan
TupleSpanSource::take(size_t maxEvents)
{
    const size_t n = std::min(maxEvents, span.size() - pos);
    const TupleSpan block = span.subspan(pos, n);
    pos += n;
    return block;
}

} // namespace mhp
