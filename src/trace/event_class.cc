#include "trace/event_class.h"

#include "support/panic.h"

namespace mhp {

const std::vector<EventClassInfo> &eventClasses()
{
    static const std::vector<EventClassInfo> kClasses = {
        {ProfileKind::Value, "value", "loadPC", "value",
         "load-value pairs from instruction profiling (paper Section 2)"},
        {ProfileKind::Edge, "edge", "branchPC", "targetPC",
         "taken control-flow edges (branch PC, target PC)"},
        {ProfileKind::CacheMiss, "cache-miss", "loadPC", "lineAddr",
         "data-cache misses (load PC, missing line address)"},
        {ProfileKind::Mispredict, "mispredict", "branchPC", "targetPC",
         "mispredicted branches (branch PC, resolved target)"},
        {ProfileKind::Path, "path", "routineId", "pathId",
         "Ball-Larus acyclic / k-iteration paths (routine entry PC, path id)"},
        {ProfileKind::Unknown, "unknown", "a", "b",
         "semantics lost (legacy container or foreign producer)"},
    };
    return kClasses;
}

const std::vector<ProfileKind> &allProfileKinds()
{
    static const std::vector<ProfileKind> kKinds = [] {
        std::vector<ProfileKind> kinds;
        for (const EventClassInfo &info : eventClasses())
            kinds.push_back(info.kind);
        return kinds;
    }();
    return kKinds;
}

const EventClassInfo &eventClassInfo(ProfileKind kind)
{
    for (const EventClassInfo &info : eventClasses()) {
        if (info.kind == kind)
            return info;
    }
    MHP_PANIC("unregistered ProfileKind value");
}

const char *profileKindName(ProfileKind kind)
{
    return eventClassInfo(kind).name;
}

std::optional<ProfileKind> parseProfileKind(const std::string &name)
{
    for (const EventClassInfo &info : eventClasses()) {
        if (name == info.name)
            return info.kind;
    }
    return std::nullopt;
}

std::optional<ProfileKind> profileKindFromByte(uint8_t byte)
{
    if (byte == kProfileKindUnknownByte)
        return ProfileKind::Unknown;
    for (const EventClassInfo &info : eventClasses()) {
        if (info.kind != ProfileKind::Unknown &&
            static_cast<uint8_t>(info.kind) == byte)
            return info.kind;
    }
    return std::nullopt;
}

uint8_t profileKindToByte(ProfileKind kind)
{
    if (kind == ProfileKind::Unknown)
        return kProfileKindUnknownByte;
    return static_cast<uint8_t>(eventClassInfo(kind).kind);
}

bool profileKindsComparable(ProfileKind a, ProfileKind b)
{
    return a == b || a == ProfileKind::Unknown || b == ProfileKind::Unknown;
}

} // namespace mhp
