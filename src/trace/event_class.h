/**
 * @file
 * The event-class registry: one authoritative table describing every
 * ProfileKind the system understands.
 *
 * The profilers themselves are tuple-opaque (paper Section 3) — they
 * hash and count <a, b> pairs without interpreting them. Everything
 * *around* the profilers, however, needs to know what a stream's
 * tuples mean: file headers stamp the kind, tools refuse to compare
 * profiles of different kinds, workload factories pick a model, and
 * diagnostics name the tuple members. This registry centralizes that
 * knowledge:
 *
 *  - checked name <-> enum conversion (profileKindName() aborts on an
 *    unregistered value instead of returning "?"; parseProfileKind()
 *    returns nullopt for unknown names);
 *  - per-kind tuple-member semantics (what `first` and `second` mean),
 *    consumed by workload/tuple_naming's describeTuple();
 *  - header-byte conversion for the .mhp / .mht container formats,
 *    where ProfileKind::Unknown is represented as 0xff and any other
 *    out-of-registry byte is rejected as corrupt.
 *
 * ProfileKind::Unknown is a first-class member: it marks streams whose
 * semantics were lost (a legacy container, a foreign producer). It is
 * comparable with everything (a wildcard), prints as "unknown", and
 * its tuples render as raw hex.
 */

#ifndef MHP_TRACE_EVENT_CLASS_H
#define MHP_TRACE_EVENT_CLASS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/tuple.h"

namespace mhp {

/** One registered event class. */
struct EventClassInfo
{
    ProfileKind kind = ProfileKind::Unknown;

    /** Canonical parse/print name ("value", "edge", "path", ...). */
    const char *name = "unknown";

    /** What Tuple::first means for this kind ("loadPC", ...). */
    const char *firstMember = "a";

    /** What Tuple::second means for this kind ("value", ...). */
    const char *secondMember = "b";

    /** One-line description for --help output and docs. */
    const char *description = "";
};

/**
 * Every registered event class, including Unknown, in registry order
 * (Value, Edge, CacheMiss, Mispredict, Path, Unknown).
 */
const std::vector<EventClassInfo> &eventClasses();

/**
 * All kinds, in registry order — the domain of the round-trip tests
 * and of exhaustive per-kind loops.
 */
const std::vector<ProfileKind> &allProfileKinds();

/**
 * Registry row for a kind. Fatal on an unregistered enum value — a
 * kind that reaches here without being in the registry is a
 * programming error, not input.
 */
const EventClassInfo &eventClassInfo(ProfileKind kind);

/** Checked canonical name (never "?"; fatal on unregistered values). */
const char *profileKindName(ProfileKind kind);

/** Parse a canonical name; nullopt if it names no registered kind. */
std::optional<ProfileKind> parseProfileKind(const std::string &name);

/** The byte that represents ProfileKind::Unknown in file headers. */
constexpr uint8_t kProfileKindUnknownByte = 0xff;

/**
 * Decode a container-header kind byte. Registered kinds map to
 * themselves, kProfileKindUnknownByte maps to Unknown, anything else
 * is nullopt (the caller reports corrupt data).
 */
std::optional<ProfileKind> profileKindFromByte(uint8_t byte);

/** Encode a kind for a container header (inverse of FromByte). */
uint8_t profileKindToByte(ProfileKind kind);

/**
 * True when profiles of these kinds may be compared: equal kinds, or
 * either side Unknown (a legacy file whose semantics were lost is
 * comparable with anything — the caller opted into that ambiguity by
 * keeping the file).
 */
bool profileKindsComparable(ProfileKind a, ProfileKind b);

} // namespace mhp

#endif // MHP_TRACE_EVENT_CLASS_H
