/**
 * @file
 * Abstract interfaces for producers and consumers of profiling events.
 *
 * A hardware profiler consumes an EventSource one tuple at a time; the
 * sources are synthetic workload models, trace files, or the mini-CPU
 * simulator's instrumentation probes.
 */

#ifndef MHP_TRACE_SOURCE_H
#define MHP_TRACE_SOURCE_H

#include <cstdint>
#include <string>

#include "trace/tuple.h"

namespace mhp {

/**
 * A pull-style stream of profiling tuples.
 *
 * Sources may be unbounded (synthetic generators) or finite (trace
 * files); consumers must check done() before calling next().
 */
class EventSource
{
  public:
    virtual ~EventSource() = default;

    /** Produce the next tuple. Undefined if done() is true. */
    virtual Tuple next() = 0;

    /** True when the stream is exhausted (always false if unbounded). */
    virtual bool done() const = 0;

    /** What the tuples represent (value vs. edge profiling). */
    virtual ProfileKind kind() const = 0;

    /** A short human-readable identifier for reports. */
    virtual std::string name() const = 0;
};

/** A push-style consumer of profiling tuples. */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** Consume one tuple. */
    virtual void accept(const Tuple &t) = 0;
};

/**
 * Pump up to maxEvents tuples from a source into a sink.
 * @return The number of tuples actually transferred (less than
 *         maxEvents only if the source ran dry).
 */
inline uint64_t
pump(EventSource &source, EventSink &sink, uint64_t maxEvents)
{
    uint64_t moved = 0;
    while (moved < maxEvents && !source.done()) {
        sink.accept(source.next());
        ++moved;
    }
    return moved;
}

} // namespace mhp

#endif // MHP_TRACE_SOURCE_H
