/**
 * @file
 * Abstract interfaces for producers and consumers of profiling events.
 *
 * A hardware profiler consumes an EventSource one tuple at a time; the
 * sources are synthetic workload models, trace files, or the mini-CPU
 * simulator's instrumentation probes.
 *
 * Batched consumers pull contiguous blocks through a StreamCursor
 * instead; the cursor is the narrow waist of the streaming data plane
 * (see docs/STREAMING.md). Cursor implementations either hand out
 * views of storage they already hold (TupleSpanSource, TraceMapSource
 * — zero-copy) or stage events into one reused bounded buffer
 * (EventSourceCursor), so memory stays O(chunk) no matter how long the
 * stream runs.
 */

#ifndef MHP_TRACE_SOURCE_H
#define MHP_TRACE_SOURCE_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/tuple.h"

namespace mhp {

/** A non-owning view of a contiguous run of profiling events. */
using TupleSpan = std::span<const Tuple>;

/**
 * A pull-style stream of profiling tuples.
 *
 * Sources may be unbounded (synthetic generators) or finite (trace
 * files); consumers must check done() before calling next().
 */
class EventSource
{
  public:
    virtual ~EventSource() = default;

    /** Produce the next tuple. Undefined if done() is true. */
    virtual Tuple next() = 0;

    /** True when the stream is exhausted (always false if unbounded). */
    virtual bool done() const = 0;

    /** What the tuples represent (value vs. edge profiling). */
    virtual ProfileKind kind() const = 0;

    /** A short human-readable identifier for reports. */
    virtual std::string name() const = 0;
};

/** A push-style consumer of profiling tuples. */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** Consume one tuple. */
    virtual void accept(const Tuple &t) = 0;
};

/**
 * Pump up to maxEvents tuples from a source into a sink.
 * @return The number of tuples actually transferred (less than
 *         maxEvents only if the source ran dry).
 */
inline uint64_t
pump(EventSource &source, EventSink &sink, uint64_t maxEvents)
{
    uint64_t moved = 0;
    while (moved < maxEvents && !source.done()) {
        sink.accept(source.next());
        ++moved;
    }
    return moved;
}

/**
 * A chunk-pull stream of profiling tuples: the batched counterpart of
 * EventSource and the input side of the streaming data plane.
 *
 * take() hands out contiguous blocks of at most maxEvents tuples. A
 * returned span stays valid only until the next take() call — cursors
 * backed by a reused staging buffer overwrite it — so consumers must
 * finish with one chunk before pulling the next. A short (but
 * non-empty) chunk does not mean the stream is dry; only an empty
 * span does, and take() keeps returning empty once exhausted.
 */
class StreamCursor
{
  public:
    virtual ~StreamCursor() = default;

    /**
     * Pull the next contiguous chunk of at most maxEvents tuples.
     * @return An empty span once the stream is exhausted.
     */
    virtual TupleSpan take(size_t maxEvents) = 0;
};

/**
 * StreamCursor over any per-event EventSource: stages up to `capacity`
 * events into one buffer allocated at construction and reused for
 * every chunk, so an unbounded stream is consumed in O(capacity)
 * memory with no per-chunk allocation.
 */
class EventSourceCursor final : public StreamCursor
{
  public:
    /**
     * @param source The wrapped stream (not owned; consumed).
     * @param capacity Staging-buffer size in events (chunk upper
     *        bound).
     */
    EventSourceCursor(EventSource &source, size_t capacity)
        : source(source), buffer(capacity == 0 ? 1 : capacity)
    {
    }

    TupleSpan
    take(size_t maxEvents) override
    {
        const size_t want = std::min(maxEvents, buffer.size());
        size_t n = 0;
        while (n < want && !source.done())
            buffer[n++] = source.next();
        return TupleSpan(buffer.data(), n);
    }

  private:
    EventSource &source;
    std::vector<Tuple> buffer;
};

} // namespace mhp

#endif // MHP_TRACE_SOURCE_H
