/**
 * @file
 * The profiling-event identifier: a tuple of two 64-bit values.
 *
 * Following Section 3 of the paper, every profiling event is named by a
 * pair of values — <loadPC, value> for value profiling, <branchPC,
 * targetPC> for edge profiling. The profiler never interprets the
 * members; it only needs equality and hashing.
 */

#ifndef MHP_TRACE_TUPLE_H
#define MHP_TRACE_TUPLE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace mhp {

/**
 * The kind of profile a tuple stream represents.
 *
 * Parse/print, per-kind tuple-member semantics, and container-header
 * byte encoding live in the event-class registry
 * (trace/event_class.h) — this enum is only the identity.
 */
enum class ProfileKind : uint8_t
{
    Value,      ///< <loadPC, loadedValue> pairs
    Edge,       ///< <branchPC, targetPC> pairs
    CacheMiss,  ///< <loadPC, missedLineAddress> pairs
    Mispredict, ///< <branchPC, actualTargetPC> on mispredictions
    Path,       ///< <routineEntryPC, pathId> Ball-Larus paths
    Unknown = 255, ///< semantics lost (legacy container, foreign producer)
};

/**
 * A profiling event identifier: an ordered pair of 64-bit values.
 *
 * For value profiling, first = load PC and second = loaded value; for
 * edge profiling, first = branch PC and second = branch target PC.
 */
struct Tuple
{
    uint64_t first = 0;
    uint64_t second = 0;

    friend bool operator==(const Tuple &, const Tuple &) = default;

    /** Render as "<a, b>" in hex for logs and debugging. */
    std::string
    toString() const
    {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "<%#llx, %#llx>",
                      static_cast<unsigned long long>(first),
                      static_cast<unsigned long long>(second));
        return buf;
    }
};

/**
 * Simulator-side hash for std containers (NOT the hardware hash; the
 * hardware hash family lives in core/hash_function.h).
 */
struct TupleHash
{
    size_t
    operator()(const Tuple &t) const
    {
        // Mix the two halves with a 64-bit finalizer (splitmix-style).
        uint64_t z = t.first + 0x9e3779b97f4a7c15ULL * (t.second + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<size_t>(z ^ (z >> 31));
    }
};

} // namespace mhp

#endif // MHP_TRACE_TUPLE_H
