#include "trace/trace_io.h"

#include <cstring>

#include "support/panic.h"

namespace mhp {

namespace {

constexpr char kMagic[8] = {'M', 'H', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr size_t kHeaderSize = 24;
constexpr size_t kRecordSize = 16;
constexpr size_t kBufferRecords = 4096;

void
putLe64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
getLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, ProfileKind kind)
    : out(path, std::ios::binary)
{
    buffer.reserve(kBufferRecords * kRecordSize);
    if (!out)
        return;
    uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    header[8] = static_cast<uint8_t>(kind);
    putLe64(header + 16, 0); // count, back-patched in close()
    out.write(reinterpret_cast<const char *>(header), kHeaderSize);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::accept(const Tuple &t)
{
    MHP_ASSERT(!closed, "write after close");
    uint8_t rec[kRecordSize];
    putLe64(rec, t.first);
    putLe64(rec + 8, t.second);
    buffer.insert(buffer.end(), rec, rec + kRecordSize);
    ++count;
    if (buffer.size() >= kBufferRecords * kRecordSize)
        flushBuffer();
}

void
TraceWriter::flushBuffer()
{
    if (!buffer.empty() && out) {
        out.write(reinterpret_cast<const char *>(buffer.data()),
                  static_cast<std::streamsize>(buffer.size()));
        buffer.clear();
    }
}

void
TraceWriter::close()
{
    if (closed)
        return;
    closed = true;
    flushBuffer();
    if (out) {
        out.seekp(16);
        uint8_t le[8];
        putLe64(le, count);
        out.write(reinterpret_cast<const char *>(le), 8);
        out.flush();
    }
}

TraceReader::TraceReader(const std::string &path_)
    : path(path_), in(path_, std::ios::binary)
{
    MHP_REQUIRE(static_cast<bool>(in), "cannot open trace file");
    uint8_t header[kHeaderSize];
    in.read(reinterpret_cast<char *>(header), kHeaderSize);
    MHP_REQUIRE(in.gcount() == kHeaderSize, "truncated trace header");
    MHP_REQUIRE(std::memcmp(header, kMagic, sizeof(kMagic)) == 0,
                "bad trace magic");
    MHP_REQUIRE(header[8] <=
                    static_cast<uint8_t>(ProfileKind::Mispredict),
                "unknown profile kind in trace header");
    profileKind = static_cast<ProfileKind>(header[8]);
    total = getLe64(header + 16);
    buffer.resize(kBufferRecords * kRecordSize);
}

void
TraceReader::refill()
{
    in.read(reinterpret_cast<char *>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
    bufLen = static_cast<size_t>(in.gcount());
    bufPos = 0;
    MHP_REQUIRE(bufLen >= kRecordSize, "truncated trace body");
}

Tuple
TraceReader::next()
{
    MHP_ASSERT(!done(), "next() past end of trace");
    if (bufPos + kRecordSize > bufLen)
        refill();
    Tuple t;
    t.first = getLe64(buffer.data() + bufPos);
    t.second = getLe64(buffer.data() + bufPos + 8);
    bufPos += kRecordSize;
    ++delivered;
    return t;
}

} // namespace mhp
