#include "trace/trace_io.h"

#include <cstdio>
#include <cstring>

#include "support/bytes.h"
#include "support/durable.h"
#include "support/failpoint.h"
#include "support/panic.h"
#include "trace/event_class.h"

namespace mhp {

namespace {

constexpr char kMagic[8] = {'M', 'H', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr size_t kHeaderSize = kTraceHeaderSize;
constexpr size_t kRecordSize = kTraceRecordSize;
constexpr size_t kBufferRecords = 4096;

} // namespace

Status
validateTraceHeader(const std::string &path, const uint8_t *header,
                    uint64_t fileSize, ProfileKind &kind,
                    uint64_t &count)
{
    if (fileSize < kHeaderSize)
        return Status::corruptData(path + ": truncated trace header");
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        return Status::corruptData(path + ": bad trace magic");
    // The kind byte's domain is the event-class registry (including
    // 0xff = Unknown for streams whose semantics were lost).
    std::optional<ProfileKind> decoded = profileKindFromByte(header[8]);
    if (!decoded)
        return Status::corruptData(path +
                                   ": unknown profile kind in header");
    kind = *decoded;
    count = getLe64(header + 16);

    // Validate the declared count against the bytes actually present,
    // so replay can never read past the file or trust a corrupt count.
    const uint64_t body = fileSize - kHeaderSize;
    if (count > body / kRecordSize) {
        return Status::corruptDataf(
            "%s: header promises %llu events but only %llu bytes of "
            "records follow (offset %zu)",
            path.c_str(), static_cast<unsigned long long>(count),
            static_cast<unsigned long long>(body), kHeaderSize);
    }
    if (body % kRecordSize != 0 || count != body / kRecordSize) {
        return Status::corruptDataf(
            "%s: trace body is %llu bytes; header promises exactly "
            "%llu records of %zu bytes",
            path.c_str(), static_cast<unsigned long long>(body),
            static_cast<unsigned long long>(count), kRecordSize);
    }
    return Status::ok();
}

TraceWriter::TraceWriter(const std::string &path_, ProfileKind kind)
    : finalPath(path_), tempPath(path_ + ".tmp"),
      out(tempPath, std::ios::binary | std::ios::trunc)
{
    buffer.reserve(kBufferRecords * kRecordSize);
    if (!out)
        return;
    uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    header[8] = profileKindToByte(kind);
    putLe64(header + 16, 0); // count, back-patched in close()
    out.write(reinterpret_cast<const char *>(header), kHeaderSize);
}

TraceWriter::~TraceWriter()
{
    Status s = close();
    (void)s;
}

void
TraceWriter::accept(const Tuple &t)
{
    MHP_ASSERT(!closed, "write after close");
    uint8_t rec[kRecordSize];
    putLe64(rec, t.first);
    putLe64(rec + 8, t.second);
    buffer.insert(buffer.end(), rec, rec + kRecordSize);
    ++count;
    if (buffer.size() >= kBufferRecords * kRecordSize)
        flushBuffer();
}

void
TraceWriter::flushBuffer()
{
    if (buffer.empty() || !out || !firstError.isOk())
        return;
    const uint64_t flushIndex = flushes++;
    if (failpointFires("trace.write.enospc", flushIndex)) {
        firstError = Status::ioError(
            tempPath +
            ": injected ENOSPC (failpoint trace.write.enospc)");
        buffer.clear();
        return;
    }
    if (failpointFires("trace.write.short", flushIndex)) {
        // Land half the block, like a device that filled mid-write.
        out.write(reinterpret_cast<const char *>(buffer.data()),
                  static_cast<std::streamsize>(buffer.size() / 2));
        out.flush();
        firstError = Status::ioError(
            tempPath +
            ": injected short write (failpoint trace.write.short)");
        buffer.clear();
        return;
    }
    out.write(reinterpret_cast<const char *>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
    if (!out)
        firstError =
            Status::ioError(tempPath + ": short write in trace body");
    buffer.clear();
}

Status
TraceWriter::close()
{
    if (closed)
        return Status::ok();
    closed = true;
    if (!out) {
        std::remove(tempPath.c_str());
        return Status::ioError(tempPath +
                               ": cannot open trace for writing");
    }
    flushBuffer();
    if (!firstError.isOk()) {
        out.close();
        std::remove(tempPath.c_str());
        return firstError;
    }
    out.seekp(16);
    uint8_t le[8];
    putLe64(le, count);
    out.write(reinterpret_cast<const char *>(le), 8);
    out.flush();
    const bool wrote = static_cast<bool>(out);
    out.close();
    if (!wrote) {
        std::remove(tempPath.c_str());
        return Status::ioError(tempPath + ": short write closing trace");
    }

    // Same durability dance as ProfileWriter: data to disk before the
    // rename publishes the name, directory sync after so the rename
    // itself survives a crash.
    Status synced =
        failpointFires("trace.fsync")
            ? Status::ioError(tempPath + ": injected fsync failure "
                                         "(failpoint trace.fsync)")
            : fsyncFile(tempPath);
    if (!synced.isOk()) {
        std::remove(tempPath.c_str());
        return synced;
    }
    if (failpointFires("trace.rename") ||
        std::rename(tempPath.c_str(), finalPath.c_str()) != 0) {
        std::remove(tempPath.c_str());
        return Status::ioError("cannot rename " + tempPath + " to " +
                               finalPath);
    }
    Status dirSynced = fsyncParentDir(finalPath);
    if (!dirSynced.isOk())
        return dirSynced; // file is complete, just not durable yet
    return Status::ok();
}

TraceReader::TraceReader(const std::string &path_)
    : path(path_), in(path_, std::ios::binary)
{
}

StatusOr<std::unique_ptr<TraceReader>>
TraceReader::open(const std::string &path)
{
    std::unique_ptr<TraceReader> r(new TraceReader(path));
    if (failpointFires("trace.open.eio"))
        return Status::ioError(
            path + ": injected EIO (failpoint trace.open.eio)");
    if (!r->in)
        return Status::notFound(path + ": cannot open trace file");

    r->in.seekg(0, std::ios::end);
    const uint64_t fileSize = static_cast<uint64_t>(r->in.tellg());
    r->in.seekg(0);

    uint8_t header[kHeaderSize];
    r->in.read(reinterpret_cast<char *>(header), kHeaderSize);
    if (r->in.gcount() != static_cast<std::streamsize>(kHeaderSize))
        return Status::corruptData(path + ": truncated trace header");
    if (Status bad = validateTraceHeader(path, header, fileSize,
                                         r->profileKind, r->total);
        !bad.isOk())
        return bad;

    r->buffer.resize(kBufferRecords * kRecordSize);
    return r;
}

void
TraceReader::refill()
{
    in.read(reinterpret_cast<char *>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
    bufLen = static_cast<size_t>(in.gcount());
    bufPos = 0;
    // open() proved the file holds every declared record, so a short
    // refill means the file changed underneath us — an invariant
    // violation, not an input error.
    MHP_ASSERT(bufLen >= kRecordSize,
               "trace shrank while being replayed");
}

Tuple
TraceReader::next()
{
    MHP_ASSERT(!done(), "next() past end of trace");
    if (bufPos + kRecordSize > bufLen)
        refill();
    Tuple t;
    t.first = getLe64(buffer.data() + bufPos);
    t.second = getLe64(buffer.data() + bufPos + 8);
    bufPos += kRecordSize;
    ++delivered;
    return t;
}

} // namespace mhp
