/**
 * @file
 * Binary trace-file format (.mht — "multi-hash trace").
 *
 * ATOM-instrumented runs in the paper produced event streams offline;
 * the equivalent here is recording a workload or mini-CPU run to a
 * trace file and replaying it through any profiler configuration. The
 * format is:
 *
 *   header:  magic "MHTRACE1" (8 bytes)
 *            kind (1 byte: 0 = value, 1 = edge)
 *            reserved (7 bytes, zero)
 *            count (8 bytes, little-endian)
 *   records: count * { first (8 bytes LE), second (8 bytes LE) }
 *
 * Records are buffered in 64 KiB chunks in both directions.
 */

#ifndef MHP_TRACE_TRACE_IO_H
#define MHP_TRACE_TRACE_IO_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/source.h"

namespace mhp {

/** Writes a tuple stream to a .mht file. */
class TraceWriter : public EventSink
{
  public:
    /**
     * Open a trace file for writing; the header's count field is
     * back-patched on close().
     */
    TraceWriter(const std::string &path, ProfileKind kind);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** True if the file opened successfully. */
    bool ok() const { return static_cast<bool>(out); }

    /** Append one tuple to the trace. */
    void accept(const Tuple &t) override;

    /** Flush buffers and finalize the header. Idempotent. */
    void close();

    uint64_t eventsWritten() const { return count; }

  private:
    void flushBuffer();

    std::ofstream out;
    std::vector<uint8_t> buffer;
    uint64_t count = 0;
    bool closed = false;
};

/** Replays a .mht file as an EventSource. */
class TraceReader : public EventSource
{
  public:
    /** Open a trace file; fatal on a missing/corrupt header. */
    explicit TraceReader(const std::string &path);

    Tuple next() override;
    bool done() const override { return delivered >= total; }
    ProfileKind kind() const override { return profileKind; }
    std::string name() const override { return path; }

    uint64_t totalEvents() const { return total; }

  private:
    void refill();

    std::string path;
    std::ifstream in;
    ProfileKind profileKind = ProfileKind::Value;
    uint64_t total = 0;
    uint64_t delivered = 0;
    std::vector<uint8_t> buffer;
    size_t bufPos = 0;
    size_t bufLen = 0;
};

} // namespace mhp

#endif // MHP_TRACE_TRACE_IO_H
