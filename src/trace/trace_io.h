/**
 * @file
 * Binary trace-file format (.mht — "multi-hash trace").
 *
 * ATOM-instrumented runs in the paper produced event streams offline;
 * the equivalent here is recording a workload or mini-CPU run to a
 * trace file and replaying it through any profiler configuration. The
 * format is:
 *
 *   header:  magic "MHTRACE1" (8 bytes)
 *            kind (1 byte: 0 = value, 1 = edge)
 *            reserved (7 bytes, zero)
 *            count (8 bytes, little-endian)
 *   records: count * { first (8 bytes LE), second (8 bytes LE) }
 *
 * Records are buffered in 64 KiB chunks in both directions. The writer
 * streams to "<path>.tmp" and publishes the finished trace with an
 * fsync + rename + directory-fsync on close(), mirroring ProfileWriter.
 *
 * Trace files are untrusted input: TraceReader::open() validates the
 * header and checks the declared record count against the actual file
 * size before any replay starts, so a truncated or corrupt trace is a
 * returned Status (path + reason), never a crash or an oversized
 * allocation (see docs/ROBUSTNESS.md).
 */

#ifndef MHP_TRACE_TRACE_IO_H
#define MHP_TRACE_TRACE_IO_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "support/status.h"
#include "trace/source.h"

namespace mhp {

/** Fixed .mht layout shared by every trace backend. */
inline constexpr size_t kTraceHeaderSize = 24;
inline constexpr size_t kTraceRecordSize = 16;

/**
 * Validate a .mht header against the file's actual size: magic, kind
 * byte, and the declared record count versus the bytes present. The
 * one validator behind TraceReader (buffered reads) and TraceMap
 * (mmap), so the two backends can never disagree on what a well-formed
 * trace is.
 *
 * @param path File name, for diagnostics only.
 * @param header The first kTraceHeaderSize bytes of the file.
 * @param fileSize Total file size in bytes.
 * @param kind [out] The declared profile kind.
 * @param count [out] The declared record count.
 */
Status validateTraceHeader(const std::string &path,
                           const uint8_t *header, uint64_t fileSize,
                           ProfileKind &kind, uint64_t &count);

/** Writes a tuple stream to a .mht file. */
class TraceWriter : public EventSink
{
  public:
    /**
     * Open "<path>.tmp" for writing; the finished trace appears under
     * the final name only when close() succeeds (count back-patched,
     * fsync'd, renamed into place, parent directory fsync'd). A crash
     * or write failure therefore never leaves a partial trace under
     * the final name.
     */
    TraceWriter(const std::string &path, ProfileKind kind);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** True if the file opened successfully. */
    bool ok() const { return static_cast<bool>(out); }

    /**
     * Append one tuple to the trace. Write failures latch internally
     * (the EventSink interface is void); close() reports the first.
     */
    void accept(const Tuple &t) override;

    /**
     * Flush buffers, finalize the header, and atomically publish the
     * trace. Idempotent; returns the first error seen anywhere in the
     * write path (the destructor calls this but must swallow the
     * Status). On failure the temp file is removed and no file
     * appears under the final name.
     */
    Status close();

    uint64_t eventsWritten() const { return count; }

  private:
    void flushBuffer();

    std::string finalPath;
    std::string tempPath;
    std::ofstream out;
    std::vector<uint8_t> buffer;
    uint64_t count = 0;
    uint64_t flushes = 0;
    bool closed = false;
    Status firstError;
};

/** Replays a .mht file as an EventSource. */
class TraceReader : public EventSource
{
  public:
    /**
     * Open and fully validate a trace: magic, kind, and the declared
     * event count against the file's actual size. Returns a Status
     * naming the path and reason on any mismatch.
     */
    static StatusOr<std::unique_ptr<TraceReader>>
    open(const std::string &path);

    Tuple next() override;
    bool done() const override { return delivered >= total; }
    ProfileKind kind() const override { return profileKind; }
    std::string name() const override { return path; }

    uint64_t totalEvents() const { return total; }

  private:
    explicit TraceReader(const std::string &path);

    void refill();

    std::string path;
    std::ifstream in;
    ProfileKind profileKind = ProfileKind::Value;
    uint64_t total = 0;
    uint64_t delivered = 0;
    std::vector<uint8_t> buffer;
    size_t bufPos = 0;
    size_t bufLen = 0;
};

} // namespace mhp

#endif // MHP_TRACE_TRACE_IO_H
