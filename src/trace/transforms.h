/**
 * @file
 * Stream transforms: adapters that wrap one EventSource into another.
 *
 * TakeSource caps an unbounded generator to a finite run length;
 * InterleaveSource merges several streams (e.g. a multiprogrammed mix
 * of workloads sharing one profiler); MapSource applies a tuple
 * rewriting function (e.g. masking value bits).
 */

#ifndef MHP_TRACE_TRANSFORMS_H
#define MHP_TRACE_TRANSFORMS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "trace/source.h"

namespace mhp {

/** Caps a source at a fixed number of events. */
class TakeSource : public EventSource
{
  public:
    /**
     * @param inner The wrapped source (not owned).
     * @param limit Maximum number of events to deliver.
     */
    TakeSource(EventSource &inner, uint64_t limit);

    Tuple next() override;
    bool done() const override;
    ProfileKind kind() const override { return inner.kind(); }
    std::string name() const override;

  private:
    EventSource &inner;
    uint64_t limit;
    uint64_t taken = 0;
};

/**
 * Randomly interleaves several sources with given weights; the merged
 * stream ends when every still-selected source is exhausted.
 */
class InterleaveSource : public EventSource
{
  public:
    /**
     * @param inputs The merged sources (not owned; all the same kind).
     * @param weights Relative selection weights, one per input.
     * @param seed Seed for the interleaving choices.
     */
    InterleaveSource(std::vector<EventSource *> inputs,
                     std::vector<double> weights, uint64_t seed);

    Tuple next() override;
    bool done() const override;
    ProfileKind kind() const override { return inputs[0]->kind(); }
    std::string name() const override { return "interleave"; }

  private:
    std::vector<EventSource *> inputs;
    std::vector<double> weights;
    Rng rng;
};

/** Applies a function to every tuple of an inner source. */
class MapSource : public EventSource
{
  public:
    using Fn = std::function<Tuple(const Tuple &)>;

    /**
     * @param inner The wrapped source (not owned).
     * @param fn Rewriting function applied to each tuple.
     */
    MapSource(EventSource &inner, Fn fn);

    Tuple next() override { return fn(inner.next()); }
    bool done() const override { return inner.done(); }
    ProfileKind kind() const override { return inner.kind(); }
    std::string name() const override { return inner.name() + "+map"; }

  private:
    EventSource &inner;
    Fn fn;
};

/** Collect up to maxEvents tuples from a source into a vector. */
std::vector<Tuple> collect(EventSource &source, uint64_t maxEvents);

} // namespace mhp

#endif // MHP_TRACE_TRANSFORMS_H
