#include "trace/transforms.h"

#include "support/discrete_distribution.h"
#include "support/panic.h"

namespace mhp {

TakeSource::TakeSource(EventSource &inner_, uint64_t limit_)
    : inner(inner_), limit(limit_)
{
}

Tuple
TakeSource::next()
{
    MHP_ASSERT(!done(), "next() past take limit");
    ++taken;
    return inner.next();
}

bool
TakeSource::done() const
{
    return taken >= limit || inner.done();
}

std::string
TakeSource::name() const
{
    return inner.name() + "+take";
}

InterleaveSource::InterleaveSource(std::vector<EventSource *> inputs_,
                                   std::vector<double> weights_,
                                   uint64_t seed)
    : inputs(std::move(inputs_)), weights(std::move(weights_)), rng(seed)
{
    MHP_REQUIRE(!inputs.empty(), "interleave needs at least one source");
    MHP_REQUIRE(inputs.size() == weights.size(),
                "one weight per interleaved source");
    for (const auto *src : inputs) {
        MHP_REQUIRE(src != nullptr, "null interleaved source");
        MHP_REQUIRE(src->kind() == inputs[0]->kind(),
                    "interleaved sources must share a profile kind");
    }
}

bool
InterleaveSource::done() const
{
    for (const auto *src : inputs) {
        if (!src->done())
            return false;
    }
    return true;
}

Tuple
InterleaveSource::next()
{
    MHP_ASSERT(!done(), "next() on exhausted interleave");
    // Draw among non-exhausted sources, weighted.
    double live = 0.0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (!inputs[i]->done())
            live += weights[i];
    }
    double pick = rng.nextDouble() * live;
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i]->done())
            continue;
        if (pick < weights[i] || i + 1 == inputs.size())
            return inputs[i]->next();
        pick -= weights[i];
    }
    // Fall back to the last live source (floating-point edge).
    for (size_t i = inputs.size(); i-- > 0;) {
        if (!inputs[i]->done())
            return inputs[i]->next();
    }
    MHP_PANIC("interleave found no live source");
}

MapSource::MapSource(EventSource &inner_, Fn fn_)
    : inner(inner_), fn(std::move(fn_))
{
    MHP_REQUIRE(static_cast<bool>(fn), "map function must be callable");
}

std::vector<Tuple>
collect(EventSource &source, uint64_t maxEvents)
{
    std::vector<Tuple> out;
    out.reserve(maxEvents);
    while (out.size() < maxEvents && !source.done())
        out.push_back(source.next());
    return out;
}

} // namespace mhp
