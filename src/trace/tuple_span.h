/**
 * @file
 * Span-based views over contiguous tuple streams.
 *
 * The batched ingest path (HardwareProfiler::onEvents) consumes events
 * in contiguous blocks. TupleSpan is the non-owning view those blocks
 * travel as, and TupleSpanSource adapts a span to the pull-style
 * EventSource interface while also exposing block-wise draining
 * (take()) so batched consumers never fall back to one-virtual-call-
 * per-event pumping.
 */

#ifndef MHP_TRACE_TUPLE_SPAN_H
#define MHP_TRACE_TUPLE_SPAN_H

#include <string>

#include "trace/source.h"
#include "trace/tuple.h"

namespace mhp {

/**
 * EventSource and StreamCursor adapter over a TupleSpan (the alias
 * itself lives in trace/source.h).
 *
 * Works with any per-event consumer through next()/done(), and with
 * batched consumers through take(), which hands out contiguous
 * zero-copy sub-spans and advances the cursor. Mixing the two styles
 * is fine; both consume from the same position.
 */
class TupleSpanSource final : public EventSource, public StreamCursor
{
  public:
    /**
     * @param span The viewed stream; the underlying storage must
     *        outlive the source.
     * @param kind What the tuples represent.
     * @param name Stream identifier for reports.
     */
    explicit TupleSpanSource(TupleSpan span,
                             ProfileKind kind = ProfileKind::Value,
                             std::string name = "span");

    Tuple next() override;
    bool done() const override { return pos >= span.size(); }
    ProfileKind kind() const override { return profileKind; }
    std::string name() const override { return sourceName; }

    /**
     * Consume up to maxEvents events as one contiguous block. Returns
     * an empty span once the stream is exhausted. Unlike staging
     * cursors, the returned view stays valid for the source's
     * lifetime (it aliases the backing storage).
     */
    TupleSpan take(size_t maxEvents) override;

    /** The not-yet-consumed tail of the stream. */
    TupleSpan remaining() const { return span.subspan(pos); }

    /** Rewind to the beginning of the stream. */
    void rewind() { pos = 0; }

    size_t size() const { return span.size(); }
    size_t position() const { return pos; }

  private:
    TupleSpan span;
    ProfileKind profileKind;
    std::string sourceName;
    size_t pos = 0;
};

} // namespace mhp

#endif // MHP_TRACE_TUPLE_SPAN_H
