/**
 * @file
 * Naming events with more than two variables (paper Section 3).
 *
 * "If our profiling architecture is to be used in a generalized
 * profiling engine, it can easily be extended to create unique names
 * for events with multiple variables (more than two)."
 *
 * makeTuple() folds any number of 64-bit fields into a Tuple: the
 * first field (conventionally the PC) is kept verbatim in
 * Tuple::first — so reports stay attributable to an instruction — and
 * the remaining fields are mixed into Tuple::second with a strong
 * 64-bit combiner. Distinct field vectors collide in the second member
 * with probability ~2^-64, which is far below the profiler's own
 * hash-table aliasing and therefore invisible in the error metric.
 */

#ifndef MHP_TRACE_TUPLE_BUILDER_H
#define MHP_TRACE_TUPLE_BUILDER_H

#include <cstdint>
#include <initializer_list>

#include "trace/tuple.h"

namespace mhp {

/** Order-sensitive 64-bit field combiner (FNV/splitmix hybrid). */
inline uint64_t
combineFields(std::initializer_list<uint64_t> fields)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t f : fields) {
        h ^= f + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0x00000100000001b3ULL;
        h ^= h >> 29;
    }
    // splitmix finalizer for avalanche.
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

/**
 * Name a multi-variable event.
 * @param pc The anchoring instruction address (kept verbatim).
 * @param fields The event's remaining variables, order-sensitive.
 */
inline Tuple
makeTuple(uint64_t pc, std::initializer_list<uint64_t> fields)
{
    return Tuple{pc, combineFields(fields)};
}

/** Two-variable convenience (the paper's standard case). */
inline Tuple
makeTuple(uint64_t pc, uint64_t value)
{
    return Tuple{pc, value};
}

} // namespace mhp

#endif // MHP_TRACE_TUPLE_BUILDER_H
