#include "workload/tuple_naming.h"

#include <cinttypes>
#include <cstdio>

#include "trace/event_class.h"

namespace mhp {

uint64_t
mixIdentity(uint64_t a, uint64_t b, uint64_t c)
{
    uint64_t z = a * 0x9e3779b97f4a7c15ULL + b * 0xc2b2ae3d27d4eb4fULL +
                 c * 0x165667b19e3779f9ULL + 0x27d4eb2f165667c5ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Tuple
hotValueTuple(uint64_t seed, uint64_t rank, uint64_t salt,
              uint64_t staticPcs)
{
    const uint64_t id = mixIdentity(seed, rank + 1, salt);
    Tuple t;
    t.first = kHotPcBase + (id % staticPcs) * 4;
    // Real frequent values are often small integers or pointers; keep
    // a bias toward small values so hash functions see realistic data.
    const uint64_t v = mixIdentity(seed ^ 0x5ca1eULL, rank + 1, salt);
    t.second = (v % 4 == 0) ? (v & 0xff) : v;
    return t;
}

Tuple
coldValueTuple(uint64_t seed, uint64_t id, uint64_t staticPcs)
{
    const uint64_t h = mixIdentity(seed, id + 1, 0x0c01dULL);
    Tuple t;
    t.first = kColdPcBase + (h % staticPcs) * 4;
    t.second = mixIdentity(seed, id + 1, 0xda7aULL);
    return t;
}

uint64_t
branchPc(uint64_t seed, uint64_t index)
{
    const uint64_t h = mixIdentity(seed, index + 1, 0xb4a2cULL);
    return kBranchPcBase + (h % (1ULL << 22)) * 4;
}

Tuple
edgeTuple(uint64_t seed, uint64_t branchIndex, bool taken)
{
    const uint64_t pc = branchPc(seed, branchIndex);
    Tuple t;
    t.first = pc;
    if (taken) {
        // Derived jump displacement, 4-byte aligned, mostly short.
        const uint64_t disp =
            (mixIdentity(seed, branchIndex + 1, 0x7a2e7ULL) % 4096) * 4;
        t.second = pc + 8 + disp;
    } else {
        t.second = pc + 4;
    }
    return t;
}

uint64_t
routinePc(uint64_t seed, uint64_t index)
{
    const uint64_t h = mixIdentity(seed, index + 1, 0x70a7eULL);
    return kRoutinePcBase + (h % (1ULL << 22)) * 4;
}

Tuple
pathTuple(uint64_t seed, uint64_t routineIndex, uint64_t pathId)
{
    Tuple t;
    t.first = routinePc(seed, routineIndex);
    t.second = pathId;
    return t;
}

std::string
describeTuple(ProfileKind kind, const Tuple &tuple)
{
    if (kind == ProfileKind::Unknown)
        return tuple.toString();
    const EventClassInfo &info = eventClassInfo(kind);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "<%s=0x%" PRIx64 ", %s=0x%" PRIx64 ">",
                  info.firstMember, tuple.first, info.secondMember,
                  tuple.second);
    return buf;
}

} // namespace mhp
