/**
 * @file
 * Synthetic branch-edge profiling workload.
 *
 * Produces <branchPC, targetPC> tuples from a population of static
 * branches with Zipf-distributed execution frequency and per-branch
 * taken/not-taken bias. Each static branch contributes at most two
 * distinct edges, so edge streams naturally have far fewer distinct
 * tuples than value streams — exactly the property the paper notes in
 * Section 6.4.2.
 */

#ifndef MHP_WORKLOAD_EDGE_WORKLOAD_H
#define MHP_WORKLOAD_EDGE_WORKLOAD_H

#include <string>
#include <vector>

#include "support/rng.h"
#include "support/zipf.h"
#include "trace/source.h"

namespace mhp {

/** Parameterization of a synthetic edge-profiling workload. */
struct EdgeWorkloadConfig
{
    std::string name = "synthetic-edges";

    /** Seed; the stream is a pure function of (config, seed). */
    uint64_t seed = 1;

    /** Frequently executed static branches (Zipf ranks). */
    uint64_t hotBranches = 600;

    /** Zipf exponent over hot-branch execution frequency. */
    double hotSkew = 1.05;

    /** Probability an event comes from the hot branches. */
    double hotFraction = 0.80;

    /** Rarely executed static branches (noise). */
    uint64_t coldBranches = 200'000;

    /** Zipf exponent over cold branches. */
    double coldSkew = 0.3;

    /**
     * Fraction of hot branches that are strongly biased (taken
     * probability ~0.95); the rest are mixed (~0.5-0.8). Real edge
     * profiles are dominated by loop back-edges and error checks.
     */
    double biasedFraction = 0.7;

    /**
     * Phase renaming, as in ValueWorkloadConfig: every phaseLength
     * events the non-stable hot branches are renamed. 0 disables.
     */
    uint64_t phaseLength = 0;
    uint64_t stableRanks = 16;
};

/** Unbounded EventSource of branch edges. */
class EdgeWorkload : public EventSource
{
  public:
    explicit EdgeWorkload(const EdgeWorkloadConfig &config);

    Tuple next() override;
    bool done() const override { return false; }
    ProfileKind kind() const override { return ProfileKind::Edge; }
    std::string name() const override { return config.name; }

    uint64_t eventCount() const { return events; }

    /** Taken probability assigned to a hot branch rank (for tests). */
    double takenProbability(uint64_t rank) const;

    const EdgeWorkloadConfig &configuration() const { return config; }

  private:
    uint64_t hotBranchIndex(uint64_t rank) const;

    EdgeWorkloadConfig config;
    Rng rng;
    ZipfDistribution hotDist;
    ZipfDistribution coldDist;
    uint64_t events = 0;
};

} // namespace mhp

#endif // MHP_WORKLOAD_EDGE_WORKLOAD_H
