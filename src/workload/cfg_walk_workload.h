/**
 * @file
 * Control-flow-graph random-walk edge workload.
 *
 * EdgeWorkload draws branches i.i.d. from a Zipf — statistically
 * calibrated, but real edge streams come from a *walk* over a CFG:
 * which branch executes next depends on where control currently is,
 * so edges arrive in correlated runs (loop bodies repeat, call chains
 * recur). This generator builds a random CFG — loop headers with
 * biased back-edges, if-diamonds, multiway switch nodes — and emits
 * the <branchPC, targetPC> sequence of an endless walk.
 *
 * Used as a structural realism check: the profiler results of Fig. 14
 * must hold on correlated streams too (tests/integration and
 * bench/fig14 shapes are threshold-based, so temporal correlation is
 * exactly what could break a lesser design).
 */

#ifndef MHP_WORKLOAD_CFG_WALK_WORKLOAD_H
#define MHP_WORKLOAD_CFG_WALK_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"
#include "trace/source.h"

namespace mhp {

/** Shape of the generated CFG. */
struct CfgWalkConfig
{
    std::string name = "cfg-walk";

    /** Seed for both CFG construction and the walk. */
    uint64_t seed = 1;

    /** Number of branch nodes in the graph. */
    uint64_t nodes = 2000;

    /** Fraction of nodes that are loop headers (biased back-edges). */
    double loopFraction = 0.3;

    /** Fraction of nodes that are 4-way switches. */
    double switchFraction = 0.1;

    /** Taken probability of loop back-edges (loop trip bias). */
    double loopBias = 0.9;

    /**
     * Locality of forward targets: successors are drawn within this
     * distance of the node (small = tight clusters = hot regions).
     */
    uint64_t forwardWindow = 64;
};

/** Unbounded EventSource of CFG-walk branch edges. */
class CfgWalkWorkload : public EventSource
{
  public:
    explicit CfgWalkWorkload(const CfgWalkConfig &config);

    Tuple next() override;
    bool done() const override { return false; }
    ProfileKind kind() const override { return ProfileKind::Edge; }
    std::string name() const override { return config.name; }

    uint64_t eventCount() const { return events; }

    /** Number of nodes in the generated CFG (tests). */
    uint64_t nodeCount() const { return nodes.size(); }

    /** The PC assigned to a node (tests). */
    uint64_t pcOf(uint64_t node) const { return nodes[node].pc; }

  private:
    struct Node
    {
        uint64_t pc = 0;
        /** Successor node ids (2 for branches, 4 for switches). */
        std::vector<uint32_t> successors;
        /** Cumulative successor probabilities (same size). */
        std::vector<double> cumProb;
    };

    CfgWalkConfig config;
    Rng rng;
    std::vector<Node> nodes;
    uint32_t current = 0;
    uint64_t events = 0;
};

} // namespace mhp

#endif // MHP_WORKLOAD_CFG_WALK_WORKLOAD_H
