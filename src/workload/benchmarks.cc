#include "workload/benchmarks.h"

#include "support/panic.h"
#include "workload/tuple_naming.h"

namespace mhp {

namespace {

/** Mix a benchmark name into a seed so the suite's streams differ. */
uint64_t
benchSeed(const std::string &name, uint64_t seed)
{
    uint64_t h = 0;
    for (const char ch : name)
        h = h * 131 + static_cast<unsigned char>(ch);
    return mixIdentity(h, seed, 0xbe6c4ULL);
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "burg", "deltablue", "gcc", "go",
        "li", "m88ksim", "sis", "vortex",
    };
    return names;
}

bool
isBenchmarkName(const std::string &name)
{
    for (const auto &n : benchmarkNames()) {
        if (n == name)
            return true;
    }
    return false;
}

ValueWorkloadConfig
valueConfigFor(const std::string &name, uint64_t seed)
{
    ValueWorkloadConfig c;
    c.name = name;
    c.seed = benchSeed(name, seed);

    if (name == "burg") {
        // Medium noise. A short recurring phase floods the stream with
        // many near-threshold candidates: the source of the single
        // spiking interval the paper attributes to conservative-update
        // piggy-backing (Fig. 13 right).
        c.hotSetSize = 800;
        c.hotSkew = 1.0;
        c.hotFraction = 0.62;
        c.headSize = 8;
        c.headFraction = 0.30;
        c.coldUniverseSize = 200'000;
        c.coldSkew = 0.45;
        // A short recurring phase ~9M events in floods the stream
        // with renamed near-threshold candidates -- the single
        // spiking interval of the paper's Figure 13 right panel.
        c.phases = {{9'000'000, 0}, {1'200'000, 0xbu}};
        c.stableRanks = 4;
    } else if (name == "deltablue") {
        // Constraint solver with large-scale phases: each phase works
        // on a different constraint graph, renaming most candidates.
        c.hotSetSize = 600;
        c.hotSkew = 1.0;
        c.hotFraction = 0.60;
        c.headSize = 5;
        c.headFraction = 0.28;
        c.coldUniverseSize = 150'000;
        c.coldSkew = 0.45;
        c.phases = {{2'000'000, 1}, {2'000'000, 2}, {2'000'000, 3},
                    {2'000'000, 4}, {2'000'000, 5}};
        c.stableRanks = 2;
    } else if (name == "gcc") {
        // Huge static footprint; early compilation stages churn the
        // hot set before settling (drives Fig. 13's early spikes).
        c.hotSetSize = 5000;
        c.hotSkew = 1.0;
        c.hotFraction = 0.50;
        c.headSize = 15;
        c.headFraction = 0.30;
        c.coldUniverseSize = 2'000'000;
        c.coldSkew = 0.35;
        c.phases = {{1'500'000, 1}, {1'500'000, 2}, {1'500'000, 3},
                    {1'500'000, 4}, {1'500'000, 5}, {1'500'000, 6},
                    {1'500'000, 7}, {1'500'000, 8},
                    {1ULL << 62, 0}};
        c.loopPhases = false;
        c.stableRanks = 4;
    } else if (name == "go") {
        // The noisiest program: enormous cold universe and weakly
        // dominant candidates riding just above the threshold.
        c.hotSetSize = 6000;
        c.hotSkew = 1.05;
        c.hotFraction = 0.50;
        c.headSize = 20;
        c.headFraction = 0.34;
        c.coldUniverseSize = 3'000'000;
        c.coldSkew = 0.30;
    } else if (name == "li") {
        // Lisp interpreter: small, hot, well-behaved working set.
        c.hotSetSize = 500;
        c.hotSkew = 1.05;
        c.hotFraction = 0.68;
        c.headSize = 10;
        c.headFraction = 0.32;
        c.coldUniverseSize = 100'000;
        c.coldSkew = 0.50;
    } else if (name == "m88ksim") {
        // Bursty simulator main loop: candidates recur on a ~40K-event
        // cycle, so 10K intervals see rotating subsets while 1M
        // intervals are extremely stable.
        c.hotSetSize = 400;
        c.hotSkew = 1.10;
        c.hotFraction = 0.75;
        c.headSize = 5;
        c.headFraction = 0.28;
        c.coldUniverseSize = 40'000;
        c.coldSkew = 0.60;
        // One boost rotation per 10K interval: consecutive short
        // intervals see different candidate subsets; a 1M interval
        // covers 5 full cycles and is extremely stable (Fig. 6).
        c.numGroups = 20;
        c.rotatePeriod = 10'000;
        c.boostProb = 0.30;
    } else if (name == "sis") {
        // Circuit synthesis: medium everything, mild bursting.
        c.hotSetSize = 1500;
        c.hotSkew = 1.0;
        c.hotFraction = 0.60;
        c.headSize = 10;
        c.headFraction = 0.30;
        c.coldUniverseSize = 500'000;
        c.coldSkew = 0.40;
        c.numGroups = 60;
        c.rotatePeriod = 25'000;
        c.boostProb = 0.45;
    } else if (name == "vortex") {
        // OO database: very stable at 1M, bursty at 10K.
        c.hotSetSize = 700;
        c.hotSkew = 1.05;
        c.hotFraction = 0.70;
        c.headSize = 8;
        c.headFraction = 0.30;
        c.coldUniverseSize = 250'000;
        c.coldSkew = 0.50;
        // Groups small enough that a boosted member clears the 1%
        // threshold within its 10K window (0.7 * 0.35 / 17 ~= 1.4%).
        c.numGroups = 40;
        c.rotatePeriod = 12'000;
        c.boostProb = 0.35;
    } else {
        MHP_FATAL("unknown benchmark name");
    }
    return c;
}

EdgeWorkloadConfig
edgeConfigFor(const std::string &name, uint64_t seed)
{
    EdgeWorkloadConfig c;
    c.name = name + "-edges";
    c.seed = benchSeed(name, seed * 3 + 1);

    // Edge streams have far fewer distinct tuples than value streams
    // (two edges per static branch); scale each benchmark's branch
    // population off its value-profiling footprint.
    if (name == "burg") {
        c.hotBranches = 500;
        c.hotFraction = 0.82;
        c.coldBranches = 60'000;
    } else if (name == "deltablue") {
        c.hotBranches = 400;
        c.hotFraction = 0.84;
        c.coldBranches = 40'000;
        c.phaseLength = 2'000'000;
        c.stableRanks = 8;
    } else if (name == "gcc") {
        c.hotBranches = 3000;
        c.hotSkew = 1.0;
        c.hotFraction = 0.72;
        c.coldBranches = 400'000;
    } else if (name == "go") {
        c.hotBranches = 3500;
        c.hotSkew = 1.0;
        c.hotFraction = 0.70;
        c.coldBranches = 500'000;
        c.biasedFraction = 0.5;
    } else if (name == "li") {
        c.hotBranches = 350;
        c.hotFraction = 0.88;
        c.coldBranches = 25'000;
    } else if (name == "m88ksim") {
        c.hotBranches = 300;
        c.hotFraction = 0.90;
        c.coldBranches = 15'000;
    } else if (name == "sis") {
        c.hotBranches = 1000;
        c.hotFraction = 0.80;
        c.coldBranches = 120'000;
    } else if (name == "vortex") {
        c.hotBranches = 600;
        c.hotFraction = 0.86;
        c.coldBranches = 70'000;
    } else {
        MHP_FATAL("unknown benchmark name");
    }
    return c;
}

PathWorkloadConfig
pathConfigFor(const std::string &name, uint64_t seed)
{
    PathWorkloadConfig c;
    c.name = name + "-paths";
    c.seed = benchSeed(name, seed * 5 + 2);

    // Path streams sit between values and edges in distinct-tuple
    // count: each hot routine contributes a small dense hot-path set,
    // but the acyclic-path universe (cold tail) is enormous for
    // branchy code. Routine populations scale off each benchmark's
    // static footprint; hot-path concentration follows how regular its
    // control flow is.
    if (name == "burg") {
        c.hotRoutines = 100;
        c.hotFraction = 0.88;
        c.coldPathUniverse = 30'000;
    } else if (name == "deltablue") {
        // Phase behaviour carries into paths: each constraint graph
        // exercises a different path set through the solver.
        c.hotRoutines = 80;
        c.hotFraction = 0.88;
        c.coldPathUniverse = 20'000;
        c.phaseLength = 2'000'000;
        c.stableRanks = 4;
    } else if (name == "gcc") {
        // Branchy beyond all others: many routines, shallow path
        // concentration, huge cold-path tail.
        c.hotRoutines = 600;
        c.routineSkew = 1.0;
        c.hotPathsPerRoutine = 24;
        c.pathSkew = 1.05;
        c.hotFraction = 0.76;
        c.coldPathUniverse = 400'000;
    } else if (name == "go") {
        c.hotRoutines = 500;
        c.routineSkew = 1.0;
        c.hotPathsPerRoutine = 28;
        c.pathSkew = 1.0;
        c.hotFraction = 0.74;
        c.coldPathUniverse = 500'000;
    } else if (name == "li") {
        // Interpreter dispatch loop: few routines, highly concentrated
        // paths.
        c.hotRoutines = 60;
        c.hotPathsPerRoutine = 8;
        c.hotFraction = 0.92;
        c.coldPathUniverse = 12'000;
    } else if (name == "m88ksim") {
        c.hotRoutines = 50;
        c.hotPathsPerRoutine = 8;
        c.hotFraction = 0.93;
        c.coldPathUniverse = 8'000;
    } else if (name == "sis") {
        c.hotRoutines = 200;
        c.hotPathsPerRoutine = 16;
        c.hotFraction = 0.84;
        c.coldPathUniverse = 80'000;
    } else if (name == "vortex") {
        c.hotRoutines = 120;
        c.hotFraction = 0.89;
        c.coldPathUniverse = 40'000;
    } else {
        MHP_FATAL("unknown benchmark name");
    }
    return c;
}

std::unique_ptr<ValueWorkload>
makeValueWorkload(const std::string &name, uint64_t seed)
{
    return std::make_unique<ValueWorkload>(valueConfigFor(name, seed));
}

std::unique_ptr<EdgeWorkload>
makeEdgeWorkload(const std::string &name, uint64_t seed)
{
    return std::make_unique<EdgeWorkload>(edgeConfigFor(name, seed));
}

std::unique_ptr<PathWorkload>
makePathWorkload(const std::string &name, uint64_t seed)
{
    return std::make_unique<PathWorkload>(pathConfigFor(name, seed));
}

} // namespace mhp
