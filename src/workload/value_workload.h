/**
 * @file
 * Synthetic load-value profiling workload.
 *
 * Stands in for the paper's ATOM-instrumented SPEC/C++ programs (see
 * DESIGN.md for the substitution argument). The generator produces an
 * unbounded stream of <pc, value> tuples with the statistical structure
 * that drives profiler accuracy:
 *
 *  - A Zipf-distributed HOT SET whose top ranks are the candidate
 *    tuples (frequency above the candidate threshold).
 *  - A large COLD UNIVERSE of noise tuples, so the number of distinct
 *    tuples per interval grows with interval length (paper Fig. 4)
 *    while the candidate count stays roughly flat (Fig. 5).
 *  - BURST GROUPS: a rotating "boosted" subset of the hot set, so
 *    short intervals see different candidate subsets than long ones
 *    (the m88ksim/vortex pattern of Fig. 6).
 *  - PHASES: scheduled renaming of the non-stable hot ranks, modelling
 *    large-scale program phase changes (the deltablue/gcc patterns of
 *    Figs. 6 and 13).
 */

#ifndef MHP_WORKLOAD_VALUE_WORKLOAD_H
#define MHP_WORKLOAD_VALUE_WORKLOAD_H

#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "support/zipf.h"
#include "trace/source.h"

namespace mhp {

/** One program phase: a duration and a renaming salt. */
struct PhaseSpec
{
    /** Phase length in events. */
    uint64_t length = 0;
    /** Salt mixed into non-stable hot tuple names during this phase. */
    uint64_t salt = 0;
};

/** Full parameterization of a synthetic value-profiling workload. */
struct ValueWorkloadConfig
{
    std::string name = "synthetic";

    /** Seed; every stream is a pure function of (config, seed). */
    uint64_t seed = 1;

    /** Hot-set size (number of Zipf ranks). */
    uint64_t hotSetSize = 1000;

    /** Zipf exponent over the hot set; higher = fewer, hotter tuples. */
    double hotSkew = 1.0;

    /** Probability an event is drawn from the hot set. */
    double hotFraction = 0.55;

    /**
     * A flat "head": with probability headFraction, a hot event picks
     * uniformly among ranks [0, headSize) instead of sampling the Zipf.
     * This decouples the number of candidate tuples from the Zipf
     * shape, letting each benchmark model match the paper's candidate
     * counts (Fig. 5). headSize == 0 disables the head.
     */
    uint64_t headSize = 0;
    double headFraction = 0.0;

    /** Number of distinct cold (noise) tuples. */
    uint64_t coldUniverseSize = 1'000'000;

    /** Zipf exponent over the cold universe (mild reuse). */
    double coldSkew = 0.4;

    /** Distinct static load PCs that hot tuples are spread across. */
    uint64_t hotStaticPcs = 4096;

    /** Distinct static load PCs for cold tuples. */
    uint64_t coldStaticPcs = 1 << 20;

    /**
     * Burst groups: the hot set is split into numGroups groups and one
     * group at a time is "boosted" — events redirect into it with
     * probability boostProb. 0 groups disables bursting.
     */
    uint32_t numGroups = 0;
    uint64_t rotatePeriod = 50'000;
    double boostProb = 0.0;

    /**
     * Phase schedule, looped if loopPhases. Empty = one infinite phase
     * with salt 0.
     */
    std::vector<PhaseSpec> phases;
    bool loopPhases = true;

    /** Hot ranks below this are never renamed by phase changes. */
    uint64_t stableRanks = 8;
};

/** Unbounded EventSource implementing the model above. */
class ValueWorkload : public EventSource
{
  public:
    explicit ValueWorkload(const ValueWorkloadConfig &config);

    Tuple next() override;
    bool done() const override { return false; }
    ProfileKind kind() const override { return ProfileKind::Value; }
    std::string name() const override { return config.name; }

    /** Events generated so far. */
    uint64_t eventCount() const { return events; }

    /** The active phase salt (for tests). */
    uint64_t currentPhaseSalt() const;

    const ValueWorkloadConfig &configuration() const { return config; }

    /**
     * The tuple a given hot rank produces under the current phase
     * (exposed so tests can verify candidate identities).
     */
    Tuple tupleForHotRank(uint64_t rank) const;

  private:
    void advancePhase();

    ValueWorkloadConfig config;
    Rng rng;
    ZipfDistribution hotDist;
    ZipfDistribution coldDist;

    uint64_t events = 0;

    // Phase machine state.
    size_t phaseIndex = 0;
    uint64_t phaseRemaining = 0;
    uint64_t activeSalt = 0;
};

} // namespace mhp

#endif // MHP_WORKLOAD_VALUE_WORKLOAD_H
