/**
 * @file
 * Deterministic construction of realistic-looking profiling tuples.
 *
 * The synthetic workloads need stable mappings from abstract identities
 * ("hot rank 3 in phase 7", "cold id 123456") to concrete <pc, value>
 * or <branchPC, targetPC> tuples. The mappings here are pure functions
 * of their inputs, so the same identity always produces the same tuple
 * and distinct identities collide only with 2^-64 probability.
 *
 * PCs are drawn from disjoint, 4-byte-aligned text-segment-style
 * regions so hot and cold tuples can never alias by construction.
 */

#ifndef MHP_WORKLOAD_TUPLE_NAMING_H
#define MHP_WORKLOAD_TUPLE_NAMING_H

#include <cstdint>
#include <string>

#include "trace/tuple.h"

namespace mhp {

/** Stateless 64-bit mixing (splitmix finalizer over combined input). */
uint64_t mixIdentity(uint64_t a, uint64_t b, uint64_t c = 0);

/** Base of the synthetic text segment for "hot" load instructions. */
constexpr uint64_t kHotPcBase = 0x0000000120000000ULL;

/** Base of the synthetic text segment for "cold" load instructions. */
constexpr uint64_t kColdPcBase = 0x0000000128000000ULL;

/** Base of the synthetic text segment for branch instructions. */
constexpr uint64_t kBranchPcBase = 0x0000000130000000ULL;

/**
 * Build a <pc, value> tuple for a hot identity.
 *
 * @param seed Workload seed (decorrelates different benchmarks).
 * @param rank Hot-set rank of the tuple.
 * @param salt Phase salt; changing it renames the tuple (models a
 *             program phase touching different data).
 * @param staticPcs Number of distinct static load PCs to spread hot
 *             tuples across (several hot values may share a PC, as
 *             real value profiles do).
 */
Tuple hotValueTuple(uint64_t seed, uint64_t rank, uint64_t salt,
                    uint64_t staticPcs);

/** Build a <pc, value> tuple for a cold (noise) identity. */
Tuple coldValueTuple(uint64_t seed, uint64_t id, uint64_t staticPcs);

/** PC of the branch with the given index. */
uint64_t branchPc(uint64_t seed, uint64_t index);

/**
 * Build a <branchPC, targetPC> tuple.
 * @param taken Taken edges jump to a derived target; not-taken edges
 *              fall through to pc + 4.
 */
Tuple edgeTuple(uint64_t seed, uint64_t branchIndex, bool taken);

/** Base of the synthetic text segment for routine entry points. */
constexpr uint64_t kRoutinePcBase = 0x0000000138000000ULL;

/** Entry PC of the routine with the given index. */
uint64_t routinePc(uint64_t seed, uint64_t index);

/** Build a <routineEntryPC, pathId> Ball–Larus path tuple. */
Tuple pathTuple(uint64_t seed, uint64_t routineIndex, uint64_t pathId);

/**
 * Render a tuple with its members named per the event-class registry
 * ("<loadPC=0x..., value=0x...>"); Unknown kinds fall back to the
 * plain hex rendering of Tuple::toString().
 */
std::string describeTuple(ProfileKind kind, const Tuple &tuple);

} // namespace mhp

#endif // MHP_WORKLOAD_TUPLE_NAMING_H
