/**
 * @file
 * Synthetic Ball–Larus path-profiling workload.
 *
 * Produces <routineEntryPC, pathId> tuples from a population of
 * routines with Zipf-distributed invocation frequency; within a
 * routine, executed paths are themselves Zipf-distributed over a small
 * hot path set (real path profiles concentrate heavily: a handful of
 * acyclic paths per routine cover most executions). A cold tail of
 * rarely taken paths — error handling, init code — supplies the noise
 * floor the hardware profiler has to reject, and optional phase
 * renaming models the program moving to a different hot-path working
 * set, exactly as in the value and edge workloads.
 */

#ifndef MHP_WORKLOAD_PATH_WORKLOAD_H
#define MHP_WORKLOAD_PATH_WORKLOAD_H

#include <string>

#include "support/rng.h"
#include "support/zipf.h"
#include "trace/source.h"

namespace mhp {

/** Parameterization of a synthetic path-profiling workload. */
struct PathWorkloadConfig
{
    std::string name = "synthetic-paths";

    /** Seed; the stream is a pure function of (config, seed). */
    uint64_t seed = 1;

    /** Frequently invoked routines (Zipf ranks). */
    uint64_t hotRoutines = 120;

    /** Zipf exponent over routine invocation frequency. */
    double routineSkew = 1.1;

    /** Distinct hot acyclic paths per routine (Zipf ranks). */
    uint64_t hotPathsPerRoutine = 12;

    /** Zipf exponent over the per-routine hot path set. */
    double pathSkew = 1.2;

    /** Probability an event takes one of the routine's hot paths. */
    double hotFraction = 0.90;

    /** Distinct cold (noise) path ids per routine. */
    uint64_t coldPathUniverse = 20'000;

    /**
     * Phase renaming: every phaseLength events the non-stable hot
     * paths are renamed (the routine keeps its identity; its hot path
     * set shifts). 0 disables.
     */
    uint64_t phaseLength = 0;
    uint64_t stableRanks = 8;
};

/** Unbounded EventSource of Ball–Larus path tuples. */
class PathWorkload : public EventSource
{
  public:
    explicit PathWorkload(const PathWorkloadConfig &config);

    Tuple next() override;
    bool done() const override { return false; }
    ProfileKind kind() const override { return ProfileKind::Path; }
    std::string name() const override { return config.name; }

    uint64_t eventCount() const { return events; }

    const PathWorkloadConfig &configuration() const { return config; }

  private:
    uint64_t hotPathId(uint64_t routine, uint64_t rank) const;

    PathWorkloadConfig config;
    Rng rng;
    ZipfDistribution routineDist;
    ZipfDistribution pathDist;
    ZipfDistribution coldDist;
    uint64_t events = 0;
};

} // namespace mhp

#endif // MHP_WORKLOAD_PATH_WORKLOAD_H
