#include "workload/value_workload.h"

#include "support/panic.h"
#include "workload/tuple_naming.h"

namespace mhp {

ValueWorkload::ValueWorkload(const ValueWorkloadConfig &config_)
    : config(config_), rng(config_.seed),
      hotDist(config_.hotSetSize, config_.hotSkew),
      coldDist(config_.coldUniverseSize, config_.coldSkew)
{
    MHP_REQUIRE(config.hotSetSize >= 1, "empty hot set");
    MHP_REQUIRE(config.coldUniverseSize >= 1, "empty cold universe");
    MHP_REQUIRE(config.hotFraction >= 0.0 && config.hotFraction <= 1.0,
                "hotFraction must be a probability");
    MHP_REQUIRE(config.boostProb >= 0.0 && config.boostProb <= 1.0,
                "boostProb must be a probability");
    if (config.numGroups > 0) {
        MHP_REQUIRE(config.numGroups <= config.hotSetSize,
                    "more burst groups than hot tuples");
        MHP_REQUIRE(config.rotatePeriod > 0,
                    "rotatePeriod must be positive");
    }
    MHP_REQUIRE(config.headSize <= config.hotSetSize,
                "head larger than hot set");
    MHP_REQUIRE(config.headFraction >= 0.0 && config.headFraction <= 1.0,
                "headFraction must be a probability");
    if (!config.phases.empty()) {
        phaseRemaining = config.phases[0].length;
        activeSalt = config.phases[0].salt;
        MHP_REQUIRE(phaseRemaining > 0, "zero-length phase");
    }
}

uint64_t
ValueWorkload::currentPhaseSalt() const
{
    return activeSalt;
}

Tuple
ValueWorkload::tupleForHotRank(uint64_t rank) const
{
    // Stable ranks keep their identity across phases; the rest are
    // renamed per phase (the phase touches different data).
    const uint64_t salt = rank < config.stableRanks ? 0 : activeSalt;
    return hotValueTuple(config.seed, rank, salt, config.hotStaticPcs);
}

void
ValueWorkload::advancePhase()
{
    if (config.phases.empty())
        return;
    if (phaseRemaining > 0) {
        --phaseRemaining;
        return;
    }
    ++phaseIndex;
    if (phaseIndex >= config.phases.size()) {
        if (!config.loopPhases) {
            // Stay in the final phase forever.
            phaseIndex = config.phases.size() - 1;
        } else {
            phaseIndex = 0;
        }
    }
    phaseRemaining = config.phases[phaseIndex].length;
    activeSalt = config.phases[phaseIndex].salt;
    MHP_ASSERT(phaseRemaining > 0, "zero-length phase");
    --phaseRemaining;
}

Tuple
ValueWorkload::next()
{
    advancePhase();
    const uint64_t now = events++;

    if (!rng.nextBool(config.hotFraction)) {
        // Cold/noise event.
        const uint64_t id = coldDist.sample(rng);
        return coldValueTuple(config.seed, id, config.coldStaticPcs);
    }

    uint64_t rank;
    if (config.headSize > 0 && rng.nextBool(config.headFraction))
        rank = rng.nextBelow(config.headSize);
    else
        rank = hotDist.sample(rng);

    if (config.numGroups > 0 && rng.nextBool(config.boostProb)) {
        // Redirect into the currently boosted burst group: short
        // intervals over-sample this group, long intervals average
        // over all groups.
        const uint64_t group =
            (now / config.rotatePeriod) % config.numGroups;
        const uint64_t group_size =
            config.hotSetSize / config.numGroups;
        if (group_size > 0) {
            const uint64_t within = rng.nextBelow(group_size);
            rank = group * group_size + within;
        }
    }

    return tupleForHotRank(rank);
}

} // namespace mhp
