#include "workload/path_workload.h"

#include "support/panic.h"
#include "workload/tuple_naming.h"

namespace mhp {

PathWorkload::PathWorkload(const PathWorkloadConfig &config_)
    : config(config_), rng(config_.seed ^ 0x9a7edULL),
      routineDist(config_.hotRoutines, config_.routineSkew),
      pathDist(config_.hotPathsPerRoutine, config_.pathSkew),
      coldDist(config_.coldPathUniverse, 0.3)
{
    MHP_REQUIRE(config.hotRoutines >= 1, "no hot routines");
    MHP_REQUIRE(config.hotPathsPerRoutine >= 1,
                "no hot paths per routine");
    MHP_REQUIRE(config.coldPathUniverse >= 1, "no cold paths");
    MHP_REQUIRE(config.hotFraction >= 0.0 && config.hotFraction <= 1.0,
                "hotFraction must be a probability");
}

uint64_t
PathWorkload::hotPathId(uint64_t routine, uint64_t rank) const
{
    // Hot path ids are small and dense, as Ball-Larus numbering makes
    // them: derive a stable id in [0, 4 * hotPathsPerRoutine) so
    // different routines hash their hot sets differently but stay in
    // the low id range.
    uint64_t slot = rank;
    if (config.phaseLength != 0 && rank >= config.stableRanks) {
        // Rename non-stable hot paths once per phase.
        const uint64_t phase = events / config.phaseLength;
        slot = mixIdentity(config.seed, rank + 1, phase);
    }
    return mixIdentity(config.seed ^ routine, slot + 1, 0x9a7dULL) %
           (config.hotPathsPerRoutine * 4);
}

Tuple
PathWorkload::next()
{
    ++events;
    const uint64_t routine = routineDist.sample(rng);
    if (rng.nextBool(config.hotFraction)) {
        const uint64_t rank = pathDist.sample(rng);
        return pathTuple(config.seed, routine, hotPathId(routine, rank));
    }
    // Cold path: offset past the hot id range so the two populations
    // can never alias within a routine.
    const uint64_t id = coldDist.sample(rng) + (1ULL << 20);
    return pathTuple(config.seed, routine, id);
}

} // namespace mhp
