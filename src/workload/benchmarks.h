/**
 * @file
 * The calibrated benchmark suite.
 *
 * The paper evaluates on SPEC95 (go, li, m88ksim), SPEC2000 (gcc,
 * vortex), and three C++ programs (deltablue, sis, burg), all
 * ATOM-instrumented on Alpha. We cannot run those binaries, so each is
 * replaced by a synthetic workload model whose tuple-stream statistics
 * are calibrated to the per-benchmark characteristics the paper itself
 * reports (Figures 4-6 and 13):
 *
 *  - burg      medium noise; one recurring interval with a burst of
 *              extra candidates (source of the Fig. 13 multi-hash
 *              spike).
 *  - deltablue large-scale phase behaviour: low 10K variation, high 1M
 *              variation (Fig. 6 bottom).
 *  - gcc       very large distinct-tuple counts; unstable early phases
 *              then steady (Fig. 13's early error spikes).
 *  - go        the noisiest program: largest cold universe, weakly
 *              dominant candidates.
 *  - li        small, well-behaved hot set.
 *  - m88ksim   bursty mid-period behaviour: high 10K variation, very
 *              low 1M variation (Fig. 6).
 *  - sis       medium-size sets with mild bursting.
 *  - vortex    like m88ksim: stable at 1M, bursty at 10K; sensitive to
 *              single-hash resetting (Fig. 7's FN increase).
 */

#ifndef MHP_WORKLOAD_BENCHMARKS_H
#define MHP_WORKLOAD_BENCHMARKS_H

#include <memory>
#include <string>
#include <vector>

#include "workload/edge_workload.h"
#include "workload/path_workload.h"
#include "workload/value_workload.h"

namespace mhp {

/** Names of the eight benchmarks in the paper's presentation order. */
const std::vector<std::string> &benchmarkNames();

/** True if name is one of the suite's benchmarks. */
bool isBenchmarkName(const std::string &name);

/** The calibrated value-profiling model for a benchmark. */
ValueWorkloadConfig valueConfigFor(const std::string &name,
                                   uint64_t seed = 1);

/** The calibrated edge-profiling model for a benchmark. */
EdgeWorkloadConfig edgeConfigFor(const std::string &name,
                                 uint64_t seed = 1);

/** The calibrated path-profiling model for a benchmark. */
PathWorkloadConfig pathConfigFor(const std::string &name,
                                 uint64_t seed = 1);

/** Construct a ready-to-run value workload for a benchmark. */
std::unique_ptr<ValueWorkload>
makeValueWorkload(const std::string &name, uint64_t seed = 1);

/** Construct a ready-to-run edge workload for a benchmark. */
std::unique_ptr<EdgeWorkload>
makeEdgeWorkload(const std::string &name, uint64_t seed = 1);

/** Construct a ready-to-run path workload for a benchmark. */
std::unique_ptr<PathWorkload>
makePathWorkload(const std::string &name, uint64_t seed = 1);

} // namespace mhp

#endif // MHP_WORKLOAD_BENCHMARKS_H
