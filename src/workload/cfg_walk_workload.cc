#include "workload/cfg_walk_workload.h"

#include <algorithm>

#include "support/panic.h"
#include "workload/tuple_naming.h"

namespace mhp {

CfgWalkWorkload::CfgWalkWorkload(const CfgWalkConfig &config_)
    : config(config_), rng(config_.seed ^ 0xcf6a1cULL)
{
    MHP_REQUIRE(config.nodes >= 2, "CFG needs at least two nodes");
    MHP_REQUIRE(config.loopFraction >= 0.0 && config.loopFraction <= 1.0,
                "loopFraction must be a probability");
    MHP_REQUIRE(config.switchFraction >= 0.0 &&
                    config.switchFraction <= 1.0,
                "switchFraction must be a probability");
    MHP_REQUIRE(config.loopBias > 0.0 && config.loopBias < 1.0,
                "loopBias must be in (0, 1)");
    MHP_REQUIRE(config.forwardWindow >= 1, "forwardWindow >= 1");

    const uint64_t n = config.nodes;
    nodes.resize(n);

    // A forward successor near the node (wrapping), never the node
    // itself, so every walk keeps moving.
    auto forwardOf = [&](uint64_t i) {
        const uint64_t hop = 1 + rng.nextBelow(config.forwardWindow);
        return static_cast<uint32_t>((i + hop) % n);
    };
    // A backward target for loop back-edges.
    auto backwardOf = [&](uint64_t i) {
        const uint64_t hop =
            1 + rng.nextBelow(std::min<uint64_t>(config.forwardWindow,
                                                 i == 0 ? 1 : i));
        return static_cast<uint32_t>((i + n - hop) % n);
    };

    for (uint64_t i = 0; i < n; ++i) {
        Node &node = nodes[i];
        node.pc = branchPc(config.seed, i);
        if (rng.nextBool(config.switchFraction)) {
            // 4-way switch with a skewed case distribution.
            double remaining = 1.0, cum = 0.0;
            for (int c = 0; c < 4; ++c) {
                node.successors.push_back(forwardOf(i));
                const double p =
                    c == 3 ? remaining : remaining * 0.5;
                remaining -= p;
                cum += p;
                node.cumProb.push_back(cum);
            }
            node.cumProb.back() = 1.0;
        } else if (rng.nextBool(config.loopFraction)) {
            // Loop header: biased back-edge + fall-through exit.
            node.successors = {backwardOf(i), forwardOf(i)};
            node.cumProb = {config.loopBias, 1.0};
        } else {
            // If-diamond: two forward targets with a random bias.
            const double bias = 0.5 + 0.45 * rng.nextDouble();
            node.successors = {forwardOf(i), forwardOf(i)};
            node.cumProb = {bias, 1.0};
        }
    }
}

Tuple
CfgWalkWorkload::next()
{
    ++events;
    const Node &node = nodes[current];
    const double u = rng.nextDouble();
    size_t pick = 0;
    while (pick + 1 < node.cumProb.size() && u >= node.cumProb[pick])
        ++pick;
    const uint32_t succ = node.successors[pick];
    const Tuple edge{node.pc, nodes[succ].pc};
    current = succ;
    return edge;
}

} // namespace mhp
