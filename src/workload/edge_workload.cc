#include "workload/edge_workload.h"

#include "support/panic.h"
#include "workload/tuple_naming.h"

namespace mhp {

EdgeWorkload::EdgeWorkload(const EdgeWorkloadConfig &config_)
    : config(config_), rng(config_.seed ^ 0xed6e5ULL),
      hotDist(config_.hotBranches, config_.hotSkew),
      coldDist(config_.coldBranches, config_.coldSkew)
{
    MHP_REQUIRE(config.hotBranches >= 1, "no hot branches");
    MHP_REQUIRE(config.coldBranches >= 1, "no cold branches");
    MHP_REQUIRE(config.hotFraction >= 0.0 && config.hotFraction <= 1.0,
                "hotFraction must be a probability");
    MHP_REQUIRE(config.biasedFraction >= 0.0 &&
                    config.biasedFraction <= 1.0,
                "biasedFraction must be a probability");
}

double
EdgeWorkload::takenProbability(uint64_t rank) const
{
    // Deterministic per-branch bias: a biasedFraction of branches are
    // strongly taken (~0.95); the rest fall anywhere in [0.5, 0.8].
    const uint64_t h = mixIdentity(config.seed, rank + 1, 0xb1a5ULL);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < config.biasedFraction)
        return 0.95;
    const double v =
        static_cast<double>(mixIdentity(h, rank, 3) >> 11) * 0x1.0p-53;
    return 0.5 + 0.3 * v;
}

uint64_t
EdgeWorkload::hotBranchIndex(uint64_t rank) const
{
    if (config.phaseLength == 0 || rank < config.stableRanks)
        return rank;
    // Rename non-stable hot branches once per phase.
    const uint64_t phase = events / config.phaseLength;
    return mixIdentity(config.seed, rank + 1, phase) |
           (1ULL << 40); // keep renamed indices out of the base range
}

Tuple
EdgeWorkload::next()
{
    ++events;
    if (rng.nextBool(config.hotFraction)) {
        const uint64_t rank = hotDist.sample(rng);
        const uint64_t branch = hotBranchIndex(rank);
        const bool taken = rng.nextBool(takenProbability(rank));
        return edgeTuple(config.seed, branch, taken);
    }
    // Cold branch; outcome is a coin flip around a mild bias.
    const uint64_t id = coldDist.sample(rng) + (1ULL << 50);
    const bool taken = rng.nextBool(0.6);
    return edgeTuple(config.seed, id, taken);
}

} // namespace mhp
