#include "service/service_wire.h"

#include "trace/event_class.h"

namespace mhp {
namespace {

Status
truncated(const char *what)
{
    return Status::corruptData(
        std::string(what) + " payload is truncated or malformed");
}

void
encodeRow(ByteBuffer &out, const TenantStatsRow &row)
{
    out.u64(row.id);
    out.str(row.name);
    out.str(row.state);
    out.u32(row.priority);
    out.u64(row.arrived);
    out.u64(row.accepted);
    out.u64(row.ingested);
    out.u64(row.intervals);
    out.u64(row.droppedQueueFull);
    out.u64(row.droppedRate);
    out.u64(row.droppedQuota);
    out.u64(row.droppedShed);
    out.u64(row.droppedQuarantine);
    out.u64(row.pushbacks);
    out.u64(row.poisonStrikes);
    out.u64(row.epoch);
    out.u64(row.memoryBytes);
}

bool
decodeRow(ByteCursor &cursor, TenantStatsRow &row)
{
    return cursor.u64(row.id) && cursor.str(row.name) &&
           cursor.str(row.state) && cursor.u32(row.priority) &&
           cursor.u64(row.arrived) && cursor.u64(row.accepted) &&
           cursor.u64(row.ingested) && cursor.u64(row.intervals) &&
           cursor.u64(row.droppedQueueFull) &&
           cursor.u64(row.droppedRate) &&
           cursor.u64(row.droppedQuota) &&
           cursor.u64(row.droppedShed) &&
           cursor.u64(row.droppedQuarantine) &&
           cursor.u64(row.pushbacks) &&
           cursor.u64(row.poisonStrikes) && cursor.u64(row.epoch) &&
           cursor.u64(row.memoryBytes);
}

} // namespace

const char *
serviceMsgName(uint8_t type)
{
    switch (static_cast<ServiceMsg>(type)) {
      case ServiceMsg::Hello: return "Hello";
      case ServiceMsg::HelloAck: return "HelloAck";
      case ServiceMsg::Reject: return "Reject";
      case ServiceMsg::Events: return "Events";
      case ServiceMsg::EventsAck: return "EventsAck";
      case ServiceMsg::Pushback: return "Pushback";
      case ServiceMsg::Query: return "Query";
      case ServiceMsg::Snapshot: return "Snapshot";
      case ServiceMsg::Stats: return "Stats";
      case ServiceMsg::Shed: return "Shed";
      case ServiceMsg::Quarantine: return "Quarantine";
      case ServiceMsg::Heartbeat: return "Heartbeat";
      case ServiceMsg::Goodbye: return "Goodbye";
      case ServiceMsg::GoodbyeAck: return "GoodbyeAck";
    }
    return "unknown";
}

void
encodeProfilerConfig(ByteBuffer &out, const ProfilerConfig &c)
{
    out.u64(c.intervalLength);
    out.f64(c.candidateThreshold);
    out.u64(c.totalHashEntries);
    out.u32(c.numHashTables);
    out.u32(c.counterBits);
    out.u8(c.retaining ? 1 : 0);
    out.u8(c.resetOnPromote ? 1 : 0);
    out.u8(c.conservativeUpdate ? 1 : 0);
    out.u8(c.shielding ? 1 : 0);
    out.u8(c.flushHashTables ? 1 : 0);
    out.u64(c.accumulatorEntries);
    out.u64(c.seed);
}

bool
decodeProfilerConfig(ByteCursor &cursor, ProfilerConfig &c)
{
    uint32_t tables = 0;
    uint32_t bits = 0;
    uint8_t retaining = 0;
    uint8_t resetOnPromote = 0;
    uint8_t conservative = 0;
    uint8_t shielding = 0;
    uint8_t flush = 0;
    if (!(cursor.u64(c.intervalLength) &&
          cursor.f64(c.candidateThreshold) &&
          cursor.u64(c.totalHashEntries) && cursor.u32(tables) &&
          cursor.u32(bits) && cursor.u8(retaining) &&
          cursor.u8(resetOnPromote) && cursor.u8(conservative) &&
          cursor.u8(shielding) && cursor.u8(flush) &&
          cursor.u64(c.accumulatorEntries) && cursor.u64(c.seed)))
        return false;
    c.numHashTables = tables;
    c.counterBits = bits;
    c.retaining = retaining != 0;
    c.resetOnPromote = resetOnPromote != 0;
    c.conservativeUpdate = conservative != 0;
    c.shielding = shielding != 0;
    c.flushHashTables = flush != 0;
    return true;
}

void
encodeTenantQuota(ByteBuffer &out, const TenantQuota &q)
{
    out.u32(q.priority);
    out.u64(q.maxQueueEvents);
    out.u64(q.maxBytesPerSec);
    out.u64(q.maxIntervals);
    out.u64(q.maxMemoryBytes);
}

bool
decodeTenantQuota(ByteCursor &cursor, TenantQuota &q)
{
    return cursor.u32(q.priority) && cursor.u64(q.maxQueueEvents) &&
           cursor.u64(q.maxBytesPerSec) && cursor.u64(q.maxIntervals) &&
           cursor.u64(q.maxMemoryBytes);
}

void
encodeHello(ByteBuffer &out, const WireTenantHello &hello)
{
    out.u32(hello.protoVersion);
    out.str(hello.tenant);
    out.u8(hello.kind);
    encodeProfilerConfig(out, hello.config);
    encodeTenantQuota(out, hello.quota);
}

Status
decodeHello(const uint8_t *data, size_t size, WireTenantHello &hello)
{
    ByteCursor cursor(data, size);
    if (!(cursor.u32(hello.protoVersion) && cursor.str(hello.tenant) &&
          cursor.u8(hello.kind) &&
          decodeProfilerConfig(cursor, hello.config) &&
          decodeTenantQuota(cursor, hello.quota) && cursor.atEnd()))
        return truncated("Hello");
    if (hello.protoVersion != kServiceProtoVersion)
        return Status::invalidArgument(
            "peer speaks service protocol version " +
            std::to_string(hello.protoVersion) + ", this build " +
            std::to_string(kServiceProtoVersion));
    if (!profileKindFromByte(hello.kind))
        return Status::corruptData(
            "Hello carries an unknown profile kind");
    return Status::ok();
}

void
encodeHelloAck(ByteBuffer &out, const WireHelloAck &ack)
{
    out.u64(ack.tenantId);
    out.u8(ack.resumed);
    out.u64(ack.lastSeq);
    out.u64(ack.bootId);
}

Status
decodeHelloAck(const uint8_t *data, size_t size, WireHelloAck &ack)
{
    ByteCursor cursor(data, size);
    if (!(cursor.u64(ack.tenantId) && cursor.u8(ack.resumed) &&
          cursor.u64(ack.lastSeq) && cursor.u64(ack.bootId) &&
          cursor.atEnd()))
        return truncated("HelloAck");
    return Status::ok();
}

void
encodeStatusMsg(ByteBuffer &out, const WireStatusMsg &msg)
{
    out.u8(msg.code);
    out.str(msg.message);
}

Status
decodeStatusMsg(const uint8_t *data, size_t size, WireStatusMsg &msg)
{
    ByteCursor cursor(data, size);
    if (!(cursor.u8(msg.code) && cursor.str(msg.message) &&
          cursor.atEnd()))
        return truncated("status");
    return Status::ok();
}

Status
statusFromMsg(const WireStatusMsg &msg)
{
    return Status(static_cast<StatusCode>(msg.code), msg.message);
}

void
encodeEvents(ByteBuffer &out, uint64_t seq, TupleSpan events)
{
    out.u64(seq);
    out.u64(events.size());
    for (const Tuple &t : events) {
        out.u64(t.first);
        out.u64(t.second);
    }
}

Status
decodeEvents(const uint8_t *data, size_t size, WireEvents &batch,
             uint64_t maxEvents)
{
    ByteCursor cursor(data, size);
    uint64_t count = 0;
    if (!cursor.u64(batch.seq) || !cursor.u64(count))
        return truncated("Events");
    if (cursor.remaining() % 16 != 0 ||
        count != cursor.remaining() / 16)
        return Status::corruptData(
            "Events batch declares " + std::to_string(count) +
            " tuples but carries " +
            std::to_string(cursor.remaining()) + " payload bytes");
    if (count > maxEvents)
        return Status::corruptData(
            "Events batch of " + std::to_string(count) +
            " tuples exceeds this endpoint's " +
            std::to_string(maxEvents) + "-event batch ceiling");
    batch.events.resize(static_cast<size_t>(count));
    for (Tuple &t : batch.events)
        if (!cursor.u64(t.first) || !cursor.u64(t.second))
            return truncated("Events");
    return Status::ok();
}

void
encodeEventsAck(ByteBuffer &out, const WireEventsAck &ack)
{
    out.u64(ack.seq);
    out.u64(ack.accepted);
    out.u64(ack.dropped);
    out.u64(ack.queuedEvents);
    out.u64(ack.retryAfterMs);
    out.str(ack.reason);
}

Status
decodeEventsAck(const uint8_t *data, size_t size, WireEventsAck &ack)
{
    ByteCursor cursor(data, size);
    if (!(cursor.u64(ack.seq) && cursor.u64(ack.accepted) &&
          cursor.u64(ack.dropped) && cursor.u64(ack.queuedEvents) &&
          cursor.u64(ack.retryAfterMs) && cursor.str(ack.reason) &&
          cursor.atEnd()))
        return truncated("EventsAck");
    return Status::ok();
}

void
encodeQuery(ByteBuffer &out, const WireQuery &query)
{
    out.u8(query.what);
    out.str(query.tenant);
    out.u64(query.top);
    out.u64(query.program.firstMask);
    out.u64(query.program.firstMatch);
    out.u64(query.program.secondMask);
    out.u64(query.program.secondMatch);
    out.u8(static_cast<uint8_t>(query.program.groupBy));
}

Status
decodeQuery(const uint8_t *data, size_t size, WireQuery &query)
{
    ByteCursor cursor(data, size);
    uint8_t groupBy = 0;
    if (!(cursor.u8(query.what) && cursor.str(query.tenant) &&
          cursor.u64(query.top) &&
          cursor.u64(query.program.firstMask) &&
          cursor.u64(query.program.firstMatch) &&
          cursor.u64(query.program.secondMask) &&
          cursor.u64(query.program.secondMatch) &&
          cursor.u8(groupBy) && cursor.atEnd()))
        return truncated("Query");
    if (groupBy > static_cast<uint8_t>(QueryGroupBy::Second))
        return Status::corruptData(
            "Query group-by " + std::to_string(groupBy) +
            " is not a QueryGroupBy");
    query.program.groupBy = static_cast<QueryGroupBy>(groupBy);
    return Status::ok();
}

void
encodeSnapshot(ByteBuffer &out, const WireSnapshot &snapshot)
{
    out.u64(snapshot.tenantId);
    out.u64(snapshot.epoch);
    out.u64(snapshot.intervals);
    out.u8(snapshot.kind);
    out.u64(snapshot.candidates.size());
    for (const CandidateCount &c : snapshot.candidates) {
        out.u64(c.tuple.first);
        out.u64(c.tuple.second);
        out.u64(c.count);
    }
}

Status
decodeSnapshot(const uint8_t *data, size_t size, WireSnapshot &snapshot,
               uint64_t maxCandidates)
{
    ByteCursor cursor(data, size);
    uint64_t count = 0;
    if (!(cursor.u64(snapshot.tenantId) && cursor.u64(snapshot.epoch) &&
          cursor.u64(snapshot.intervals) && cursor.u8(snapshot.kind) &&
          cursor.u64(count)))
        return truncated("Snapshot");
    if (!profileKindFromByte(snapshot.kind))
        return Status::corruptData(
            "Snapshot carries an unknown profile kind");
    if (cursor.remaining() % 24 != 0 ||
        count != cursor.remaining() / 24 || count > maxCandidates)
        return Status::corruptData(
            "Snapshot declares " + std::to_string(count) +
            " candidates but carries " +
            std::to_string(cursor.remaining()) + " payload bytes");
    snapshot.candidates.resize(static_cast<size_t>(count));
    for (CandidateCount &c : snapshot.candidates)
        if (!(cursor.u64(c.tuple.first) && cursor.u64(c.tuple.second) &&
              cursor.u64(c.count)))
            return truncated("Snapshot");
    return Status::ok();
}

void
encodeStats(ByteBuffer &out, const std::vector<TenantStatsRow> &rows)
{
    out.u64(rows.size());
    for (const TenantStatsRow &row : rows)
        encodeRow(out, row);
}

Status
decodeStats(const uint8_t *data, size_t size,
            std::vector<TenantStatsRow> &rows)
{
    ByteCursor cursor(data, size);
    uint64_t count = 0;
    if (!cursor.u64(count))
        return truncated("Stats");
    // Each row is at least 17 fixed fields; bound the allocation by
    // what the payload could possibly hold.
    if (count > cursor.remaining() / 32)
        return Status::corruptData(
            "Stats declares " + std::to_string(count) +
            " rows but carries only " +
            std::to_string(cursor.remaining()) + " payload bytes");
    rows.clear();
    rows.resize(static_cast<size_t>(count));
    for (TenantStatsRow &row : rows)
        if (!decodeRow(cursor, row))
            return truncated("Stats");
    if (!cursor.atEnd())
        return truncated("Stats");
    return Status::ok();
}

void
encodeGoodbyeAck(ByteBuffer &out, const TenantStatsRow &row)
{
    encodeRow(out, row);
}

Status
decodeGoodbyeAck(const uint8_t *data, size_t size, TenantStatsRow &row)
{
    ByteCursor cursor(data, size);
    if (!decodeRow(cursor, row) || !cursor.atEnd())
        return truncated("GoodbyeAck");
    return Status::ok();
}

} // namespace mhp
