/**
 * @file
 * Crash-only durability for mhprofd: the per-daemon write-ahead
 * tenant journal, incremental checkpoints, and restart recovery.
 *
 * ServiceState owns a state directory holding exactly one checkpoint
 * generation at a time:
 *
 *   ckpt-<E>        the epoch-E checkpoint: every tenant's config,
 *                   quota, and full mutable state (TenantSession::
 *                   saveState), manifest + footer framed
 *   wal-<E>.log     decisions made since ckpt-<E>: admissions,
 *                   ingest outcomes, state changes, final accounting
 *   hist-<id>.hlog  one tenant's completed intervals, appended
 *                   incrementally so checkpoints stay O(live state)
 *
 * Every file is a sequence of CRC-framed records (support/wire.h
 * framing — the same `length, type, payload, crc32` envelope the
 * service socket speaks), so the corruption-corpus machinery of PR 2
 * applies to the journal verbatim.
 *
 * ## What is logged, and what is replayed
 *
 * Admission decisions and ingest *outcomes* are journaled; drains are
 * not. An offer()'s split of a batch depends on the crashed boot's
 * clock (the rate bucket) and drain interleaving (queue occupancy),
 * so replay applies the recorded outcome verbatim
 * (TenantSession::applyIngest) instead of re-deciding it. Draining —
 * profiler ingest and interval closes — is a pure function of the
 * accepted event sequence, so recovery simply re-drains; the interval
 * history file dedups re-closed intervals by index.
 *
 * ## Commit ordering
 *
 * commit() appends and fsyncs the WAL. History appends are buffered
 * in memory and only reach disk (and fsync) inside checkpoint(),
 * *after* the WAL they derive from is durable — the history file can
 * therefore lag the WAL but never lead it, and a lagging history is
 * rebuilt by replay. Acks are flushed to clients only after commit()
 * returns, which is what makes a client-visible ack durable and the
 * ingest path exactly-once across a crash (docs/SERVICE.md).
 *
 * ## Failure handling
 *
 * A torn tail — a record cut mid-write by a crash — is truncated and
 * replay continues; that is the expected crash signature. Anything
 * else (CRC mismatch, semantic violation, duplicate admission) is
 * CorruptData carrying `path@offset: why`, and the daemon refuses to
 * start rather than serve a partial rebuild.
 *
 * Failpoint sites (docs/ROBUSTNESS.md): `wal.write.eio`,
 * `wal.fsync.eio`, `wal.rotate.eio`, `snapshot.checkpoint.eio`
 * (injected I/O errors), and the crash points `daemon.crash.commit`,
 * `daemon.crash.postcommit`, `daemon.crash.checkpoint`,
 * `daemon.crash.rotate`, which SIGKILL the process at the exact
 * commit/rotation boundaries the recovery protocol must survive.
 */

#ifndef MHP_SERVICE_WAL_H
#define MHP_SERVICE_WAL_H

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/tenant.h"
#include "support/status.h"

namespace mhp {

class ServiceCore;

/** Record type bytes of the service journal's framed files. */
enum class WalRecord : uint8_t
{
    SegmentHeader = 1, ///< wal-<E>.log: magic, format, epoch, bootId
    Admit = 2,         ///< a tenant was admitted (config + quota)
    Ingest = 3,        ///< one offer() outcome (splits + accepted)
    StateChange = 4,   ///< shed/quarantine/close (authoritative)
    Final = 5,         ///< fully-drained accounting (drain-and-verify)

    HistHeader = 16,   ///< hist-<id>.hlog: magic, format, id, name
    HistInterval = 17, ///< one closed interval (index + candidates)

    CkptManifest = 32, ///< ckpt-<E>: magic, format, epoch, count
    CkptTenant = 33,   ///< one tenant: identity + saveState blob
    CkptFooter = 34,   ///< completeness marker (count again)
};

/** What recovery found and how long it took (startup report). */
struct RecoveryReport
{
    bool recovered = false; ///< false: cold start, nothing on disk
    uint64_t checkpointEpoch = 0;
    uint64_t tenantsRestored = 0;   ///< sessions rebuilt (any state)
    uint64_t intervalsLoaded = 0;   ///< history frames adopted
    uint64_t walRecordsReplayed = 0;
    uint64_t walBytesReplayed = 0;
    uint64_t replayMs = 0; ///< wall time of the whole recover()
};

/**
 * The daemon's durable spine: WAL writer, checkpoint writer, history
 * sink, and the recovery that stitches them back into a ServiceCore.
 * Single-threaded like the daemon it serves; every method is called
 * from the poll loop.
 */
class ServiceState : public TenantHistorySink
{
  public:
    /**
     * `dir` must exist (mhprofd creates it). `checkpointWalBytes`
     * bounds how much WAL accumulates before wantCheckpoint() trips —
     * i.e. the recovery-time budget.
     */
    ServiceState(std::string dir, uint64_t checkpointWalBytes);
    ~ServiceState() override;
    ServiceState(const ServiceState &) = delete;
    ServiceState &operator=(const ServiceState &) = delete;

    /** This process's random identity (HelloAck bootId). */
    uint64_t bootId() const { return bootIdValue; }

    /**
     * Rebuild `core` from the state directory: load the newest
     * complete checkpoint, re-attach interval history, replay the
     * WAL, drain every Active tenant to a deterministic point, verify
     * the accounting invariants, republish the read side, and cut a
     * fresh checkpoint + WAL segment. On a cold start (empty
     * directory) it just writes the initial generation. CorruptData
     * (`path@offset: why`) means the state is damaged beyond the
     * torn-tail contract and the daemon must exit rather than serve.
     */
    Status recover(ServiceCore &core, RecoveryReport &report);

    // -- Decision logging (buffered until commit()) --------------

    void logAdmit(const TenantSession &session);
    void logIngest(const TenantSession &session, uint64_t seq,
                   uint64_t arrived,
                   const TenantSession::Offer &outcome,
                   TupleSpan accepted);
    void logStateChange(const TenantSession &session);
    void logFinal(const TenantSession &session);

    /** TenantHistorySink: buffer one closed interval for `hist-`. */
    void onIntervalClosed(const TenantSession &session, uint64_t index,
                          const IntervalSnapshot &snap) override;

    /** True when commit() has buffered records to make durable. */
    bool dirty() const { return !walPending.empty(); }

    /**
     * Group commit: append every buffered WAL record and fsync the
     * segment. The caller flushes client acks only after this
     * returns Ok. An injected or real write/fsync failure is IoError
     * — the daemon treats it as fatal (crash-only: better to die and
     * recover than to ack what is not durable).
     */
    Status commit();

    /** WAL grew past the checkpoint threshold since the last cut. */
    bool wantCheckpoint() const
    {
        return walBytesSinceCheckpoint >= checkpointEvery;
    }

    /**
     * Cut checkpoint epoch+1: flush history appends, write
     * ckpt-<E+1> beside the live generation, atomically publish it,
     * start wal-<E+1>.log, and delete the epoch-E pair. A failure
     * is returned but is not fatal: the epoch-E generation is still
     * complete, so the daemon keeps serving and retries later
     * (wantCheckpoint() stays true).
     */
    Status checkpoint(ServiceCore &core);

    uint64_t epoch() const { return currentEpoch; }

  private:
    Status loadCheckpoint(ServiceCore &core, uint64_t epoch,
                          RecoveryReport &report);
    Status loadHistory(TenantSession &session,
                       RecoveryReport &report);
    Status replayWal(ServiceCore &core, uint64_t epoch,
                     RecoveryReport &report);
    Status writeCheckpointFile(ServiceCore &core, uint64_t epoch);
    Status openWalSegment(uint64_t epoch);
    Status flushHistory(ServiceCore &core);

    std::string stateDir;
    uint64_t checkpointEvery;
    uint64_t bootIdValue;
    uint64_t currentEpoch = 0;
    uint64_t walBytesSinceCheckpoint = 0;
    std::string walPath;
    std::ofstream walOut;

    /** Encoded frames awaiting the next commit(). */
    std::vector<uint8_t> walPending;

    /**
     * Bytes of walPending already written (but not yet fsynced) to
     * the journal: a commit() retried after an fsync failure must
     * not append the same records twice.
     */
    size_t walPendingWritten = 0;

    /** Per-tenant encoded HistInterval frames awaiting checkpoint. */
    std::unordered_map<uint64_t, std::vector<uint8_t>> histPending;

    /** Frames per tenant already in its history file or pending. */
    std::unordered_map<uint64_t, uint64_t> histFrames;

    /** Recovery replay in progress: suppress decision logging. */
    bool replaying = false;
};

} // namespace mhp

#endif // MHP_SERVICE_WAL_H
