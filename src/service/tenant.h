/**
 * @file
 * One tenant of the profiling service: a sharded profiler instance
 * behind a bounded ingest queue, with per-tenant quotas and exact
 * drop accounting.
 *
 * The robustness contract (docs/SERVICE.md):
 *
 *  - the ingest queue is *bounded* — when it is full, events are
 *    dropped at admission and counted, never buffered without limit;
 *  - every arrived event is either accepted or attributed to exactly
 *    one drop reason (queue overflow, rate quota, interval/memory
 *    quota, shed, quarantine), so arrived == accepted + dropped()
 *    always holds;
 *  - ingest failures (the `service.tenant.ingest` failpoint, keyed by
 *    tenant id) strike the tenant; a strike streak past the allowance
 *    quarantines *this tenant only* — the daemon and every other
 *    tenant keep running;
 *  - time never comes from the wall clock: offer() takes an explicit
 *    `nowMs`, so rate-limiting decisions replay identically in tests.
 *
 * Interval semantics mirror runIntervalsStream() exactly: the
 * profiler sees accepted events in arrival order, endInterval() fires
 * precisely every intervalLength ingested events, and a partial
 * trailing interval is discarded — so a drained tenant's .mhp file is
 * byte-identical to an mhprof_run over the same accepted stream.
 */

#ifndef MHP_SERVICE_TENANT_H
#define MHP_SERVICE_TENANT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/snapshot_text.h"
#include "core/config.h"
#include "core/profiler.h"
#include "service/snapshot_store.h"
#include "support/bytes.h"
#include "support/status.h"
#include "trace/source.h"
#include "trace/tuple.h"

namespace mhp {

class TenantSession;

/**
 * Observer of interval closes, implemented by the service WAL layer
 * (src/service/wal.h): each closed interval is appended to the
 * tenant's incremental on-disk history so checkpoints stay O(live
 * state) instead of O(total intervals). Null sink = no persistence.
 */
class TenantHistorySink
{
  public:
    virtual ~TenantHistorySink() = default;

    /** `index` is the 1-based interval number just closed. */
    virtual void onIntervalClosed(const TenantSession &session,
                                  uint64_t index,
                                  const IntervalSnapshot &snap) = 0;
};

/** Per-tenant resource quotas; 0 means "no limit" where noted. */
struct TenantQuota
{
    /** Shedding victim order: lower priority is shed first. */
    uint32_t priority = 0;

    /** Ingest-queue capacity in events (the backpressure bound). */
    uint64_t maxQueueEvents = 65536;

    /** Ingest byte-rate quota (16 bytes/event); 0 = unlimited. */
    uint64_t maxBytesPerSec = 0;

    /** Completed-interval quota; 0 = unlimited. */
    uint64_t maxIntervals = 0;

    /** Per-tenant memory quota in bytes; 0 = unlimited. */
    uint64_t maxMemoryBytes = 0;
};

/** Lifecycle of a tenant session. */
enum class TenantState : uint8_t
{
    Active,      ///< ingesting and serving queries
    Shed,        ///< dropped under resource pressure (admission ctrl)
    Quarantined, ///< isolated after repeated ingest failures
    Closed,      ///< evicted after idle timeout / clean shutdown
};

/** Printable state name (matches TenantStatsRow::state). */
const char *tenantStateName(TenantState state);

/** Exact per-tenant event accounting (see TenantStatsRow). */
struct TenantCounters
{
    uint64_t arrived = 0;
    uint64_t accepted = 0;
    uint64_t ingested = 0;
    uint64_t intervals = 0;
    uint64_t droppedQueueFull = 0;
    uint64_t droppedRate = 0;
    uint64_t droppedQuota = 0;
    uint64_t droppedShed = 0;
    uint64_t droppedQuarantine = 0;
    uint64_t pushbacks = 0;
    uint64_t poisonStrikes = 0;

    uint64_t
    dropped() const
    {
        return droppedQueueFull + droppedRate + droppedQuota +
               droppedShed + droppedQuarantine;
    }
};

/** One tenant: profiler + bounded queue + quotas + counters. */
class TenantSession
{
  public:
    /**
     * Build the tenant's profiler from `config` (must have passed
     * check()). `name` is the client-chosen identity (validated by
     * the registry) and `id` the registry-assigned index.
     */
    TenantSession(uint64_t id, std::string name, ProfileKind kind,
                  const ProfilerConfig &config, const TenantQuota &quota);

    TenantSession(const TenantSession &) = delete;
    TenantSession &operator=(const TenantSession &) = delete;

    /** Outcome of one offer(): exact split of the batch. */
    struct Offer
    {
        uint64_t accepted = 0;
        uint64_t dropped = 0;
        bool pushback = false; ///< the client should back off
        std::string reason;    ///< why, when pushback is set

        /**
         * Per-reason split of `dropped` (sums to it). The WAL ingest
         * record persists the split so crash replay can re-apply the
         * decision instead of re-deriving it under a different clock.
         */
        uint64_t droppedRate = 0;
        uint64_t droppedQueueFull = 0;
        uint64_t droppedQuota = 0;
        uint64_t droppedShed = 0;
        uint64_t droppedQuarantine = 0;
    };

    /**
     * Admit a batch into the bounded ingest queue. Every event is
     * either accepted or dropped-and-counted here — admission is the
     * only place events are lost, which is what makes the drop
     * counters exact. `nowMs` drives the rate-quota token bucket.
     */
    Offer offer(TupleSpan events, uint64_t nowMs);

    /**
     * Ingest up to `maxEvents` queued events into the profiler,
     * closing intervals at exact intervalLength boundaries and
     * publishing each closed interval to `store` (which may be
     * null). An ingest failure (failpoint `service.tenant.ingest`,
     * key = tenant id, attempt = current strike streak) leaves the
     * queue intact and strikes the tenant; `strikesAllowed`
     * consecutive strikes quarantine it.
     *
     * @return Events actually ingested.
     */
    uint64_t drain(uint64_t maxEvents, unsigned strikesAllowed,
                   EpochSnapshotStore *store);

    /**
     * Shed this tenant: drop its queue (counted), free the profiler,
     * its history, and its memory charge. Admission control calls
     * this on the lowest-priority tenants under global pressure.
     */
    void shed(std::string reason);

    /** Evict after idle timeout or clean shutdown (memory freed). */
    void close(std::string reason);

    /**
     * Write the completed-interval history as a durable .mhp profile
     * at `dir`/`name`.mhp (write-to-temp + fsync + rename). A partial
     * trailing interval is never written — drain the queue first.
     * Failpoint `service.snapshot.enospc` (key = tenant id) injects
     * the out-of-space failure the smoke test exercises.
     */
    Status flushDurable(const std::string &dir) const;

    uint64_t id() const { return tenantId; }
    const std::string &name() const { return tenantName; }
    ProfileKind kind() const { return profileKind; }
    TenantState state() const { return lifecycle; }
    const std::string &stateReason() const { return reason; }
    const TenantQuota &quota() const { return limits; }
    const TenantCounters &counters() const { return stats; }
    const ProfilerConfig &config() const { return profilerConfig; }

    /** Events waiting in the ingest queue. */
    uint64_t
    queuedEvents() const
    {
        return queue.size() - queueHead;
    }

    /** Completed intervals retained for the durable flush. */
    const std::vector<IntervalSnapshot> &history() const
    {
        return snapshots;
    }

    /**
     * Live bytes charged against memory budgets: profiler hardware
     * area + queued events + retained interval candidates. Shed and
     * closed tenants charge nothing.
     */
    uint64_t memoryBytes() const;

    /** Highest client batch sequence number acknowledged so far. */
    uint64_t lastSeq() const { return lastAckedSeq; }
    void setLastSeq(uint64_t seq) { lastAckedSeq = seq; }

    // ---- Durable state (crash recovery; see docs/SERVICE.md) ----

    /**
     * Serialize the full mutable session state — lifecycle, exact
     * counters, quota/rate bookkeeping, queued events, and the
     * profiler's hardware state — into a checkpoint blob. The
     * completed-interval history is persisted incrementally through
     * the TenantHistorySink instead and re-attached with
     * restoreHistory(), so checkpoints stay O(live state).
     */
    void saveState(ByteBuffer &out) const;

    /**
     * Restore from a saveState() blob. The session must be freshly
     * constructed with the same config and quota (both are recorded
     * in the WAL admit record, not here). The rate bucket restarts on
     * the next offer() — monotonic clocks do not survive reboots, so
     * the saved rateLastMs would be meaningless.
     */
    Status loadState(ByteCursor &in);

    /**
     * Replay one WAL ingest record: re-apply the recorded admission
     * outcome verbatim — drop splits, accepted prefix into the queue,
     * post-offer token balance, ack watermark — instead of re-running
     * offer(), whose rate and queue decisions depended on the crashed
     * boot's clock and drain interleaving.
     */
    void applyIngest(uint64_t seq, uint64_t arrived,
                     const Offer &outcome, TupleSpan accepted,
                     uint64_t rateTokensAfter);

    /**
     * Replay one WAL state-change record: adopt the recorded
     * lifecycle, reason, and counters as authoritative and release
     * the (no longer Active) session's memory.
     */
    void applyStateChange(TenantState state, std::string why,
                          const TenantCounters &recorded);

    /**
     * Adopt completed intervals loaded from the tenant's on-disk
     * history during recovery. The caller (ServiceState) has already
     * verified the count matches intervalsDone.
     */
    void restoreHistory(std::vector<IntervalSnapshot> intervals);

    /** Interval-close observer for incremental history persistence. */
    void setHistorySink(TenantHistorySink *sink) { historySink = sink; }

    /** Post-offer token balance, persisted in WAL ingest records. */
    uint64_t rateTokensNow() const { return rateTokens; }

    /** Completed intervals so far (history-file cursor). */
    uint64_t intervalCount() const { return intervalsDone; }

    /**
     * Accounting invariants, checked after recovery replay: arrived
     * == accepted + dropped(), and for Active tenants accepted ==
     * ingested + queued. Returns CorruptData naming the violated
     * equation.
     */
    Status verifyInvariants() const;

  private:
    void closeInterval(EpochSnapshotStore *store);
    void quarantine(std::string why);
    void releaseMemory();

    uint64_t tenantId;
    std::string tenantName;
    ProfileKind profileKind;
    ProfilerConfig profilerConfig;
    TenantQuota limits;
    TenantState lifecycle = TenantState::Active;
    std::string reason; ///< why shed/quarantined/closed

    std::unique_ptr<HardwareProfiler> profiler;
    uint64_t profilerArea = 0;

    /** FIFO as vector + head index: drain reads contiguous spans. */
    std::vector<Tuple> queue;
    size_t queueHead = 0;

    std::vector<IntervalSnapshot> snapshots;
    uint64_t snapshotCandidates = 0; ///< total retained candidates
    uint64_t eventsInInterval = 0;
    uint64_t intervalsDone = 0;

    /** Set once an interval/memory quota trips; offers then bounce. */
    std::string quotaReason;

    /** Token bucket for the byte-rate quota. */
    uint64_t rateTokens = 0;
    uint64_t rateLastMs = 0;
    bool rateStarted = false;

    unsigned strikes = 0;
    uint64_t lastAckedSeq = 0;
    TenantCounters stats;

    /** Interval-close observer (null = no persistence). */
    TenantHistorySink *historySink = nullptr;
};

} // namespace mhp

#endif // MHP_SERVICE_TENANT_H
