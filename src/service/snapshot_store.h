/**
 * @file
 * The daemon's read side: the latest published interval snapshot per
 * tenant, versioned by a monotonically increasing epoch.
 *
 * Tenant sessions publish into the store every time they close an
 * interval; queries read from it without ever touching ingest state,
 * so a slow or hostile reader cannot stall the write path. Each
 * publication bumps a global epoch, giving clients a total order to
 * reason about staleness ("this answer reflects publication #42").
 *
 * Query evaluation reuses the query co-processor's program shape
 * (core/query_coprocessor.h) via applySnapshotQuery() — the service
 * answers the same filter/group-by/count questions the paper's
 * programmable co-processor runs in hardware, but over captured
 * candidates instead of the raw event stream.
 */

#ifndef MHP_SERVICE_SNAPSHOT_STORE_H
#define MHP_SERVICE_SNAPSHOT_STORE_H

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "analysis/snapshot_text.h"
#include "core/profiler.h"
#include "core/query_coprocessor.h"

namespace mhp {

/** One tenant's latest published snapshot plus its provenance. */
struct PublishedSnapshot
{
    uint64_t epoch = 0;     ///< global publication sequence number
    uint64_t intervals = 0; ///< completed intervals at publication
    IntervalSnapshot candidates;
};

/** Latest-snapshot-per-tenant store with a global publication epoch. */
class EpochSnapshotStore
{
  public:
    /** Replace tenant's published snapshot; bumps the global epoch. */
    void
    publish(uint64_t tenantId, uint64_t intervals,
            const IntervalSnapshot &candidates)
    {
        PublishedSnapshot &slot = latest[tenantId];
        slot.epoch = ++epochCounter;
        slot.intervals = intervals;
        slot.candidates = candidates;
    }

    /** The tenant's latest publication, if it has ever published. */
    std::optional<PublishedSnapshot>
    read(uint64_t tenantId) const
    {
        const auto it = latest.find(tenantId);
        if (it == latest.end())
            return std::nullopt;
        return it->second;
    }

    /**
     * Run a query program over the tenant's latest publication. The
     * returned snapshot keeps the publication's epoch and interval
     * count so the client knows exactly which state it queried.
     */
    std::optional<PublishedSnapshot>
    query(uint64_t tenantId, const Query &program, uint64_t top) const
    {
        std::optional<PublishedSnapshot> base = read(tenantId);
        if (!base)
            return std::nullopt;
        base->candidates =
            applySnapshotQuery(base->candidates, program, top);
        return base;
    }

    /** Latest epoch published for the tenant (0 = never). */
    uint64_t
    epochOf(uint64_t tenantId) const
    {
        const auto it = latest.find(tenantId);
        return it == latest.end() ? 0 : it->second.epoch;
    }

    /** Forget a tenant's publication (shed/evicted tenants). */
    void evict(uint64_t tenantId) { latest.erase(tenantId); }

    /** The global epoch: total publications so far. */
    uint64_t epoch() const { return epochCounter; }

    size_t size() const { return latest.size(); }

  private:
    uint64_t epochCounter = 0;
    std::unordered_map<uint64_t, PublishedSnapshot> latest;
};

} // namespace mhp

#endif // MHP_SERVICE_SNAPSHOT_STORE_H
