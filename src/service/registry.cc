#include "service/registry.h"

namespace mhp {
namespace {

bool
nameChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '-';
}

} // namespace

Status
checkTenantName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return Status::invalidArgument(
            "tenant name must be 1-64 characters");
    for (char c : name)
        if (!nameChar(c))
            return Status::invalidArgument(
                "tenant name '" + name +
                "' has characters outside [A-Za-z0-9_-]");
    return Status::ok();
}

StatusOr<TenantSession *>
TenantRegistry::create(const std::string &name, ProfileKind kind,
                       const ProfilerConfig &config,
                       const TenantQuota &quota)
{
    MHP_RETURN_IF_ERROR(checkTenantName(name));
    MHP_RETURN_IF_ERROR(config.check());
    if (ids.contains(name))
        return Status::failedPrecondition(
            "tenant '" + name + "' already exists");

    const uint64_t id = sessions.size();
    sessions.push_back(std::make_unique<TenantSession>(
        id, name, kind, config, quota));
    ids.emplace(name, id);
    return sessions.back().get();
}

TenantSession *
TenantRegistry::byName(const std::string &name)
{
    const auto it = ids.find(name);
    return it == ids.end() ? nullptr : sessions[it->second].get();
}

TenantSession *
TenantRegistry::byId(uint64_t id)
{
    return id < sessions.size() ? sessions[id].get() : nullptr;
}

const TenantSession *
TenantRegistry::byId(uint64_t id) const
{
    return id < sessions.size() ? sessions[id].get() : nullptr;
}

std::vector<TenantSession *>
TenantRegistry::active()
{
    std::vector<TenantSession *> out;
    for (const auto &session : sessions)
        if (session->state() == TenantState::Active)
            out.push_back(session.get());
    return out;
}

std::vector<const TenantSession *>
TenantRegistry::all() const
{
    std::vector<const TenantSession *> out;
    out.reserve(sessions.size());
    for (const auto &session : sessions)
        out.push_back(session.get());
    return out;
}

uint64_t
TenantRegistry::totalMemoryBytes() const
{
    uint64_t total = 0;
    for (const auto &session : sessions)
        if (session->state() == TenantState::Active)
            total += session->memoryBytes();
    return total;
}

size_t
TenantRegistry::activeCount() const
{
    size_t n = 0;
    for (const auto &session : sessions)
        if (session->state() == TenantState::Active)
            ++n;
    return n;
}

} // namespace mhp
