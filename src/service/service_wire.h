/**
 * @file
 * Message layer of the multi-tenant profiling service: the typed
 * payloads that travel inside wire frames (support/wire.h) between
 * mhprofd and its clients. The tenant lifecycle, backpressure
 * contract, and reconnect protocol are documented in docs/SERVICE.md.
 *
 * Everything here is untrusted input on arrival: every decode is
 * bounds-checked through ByteCursor, event counts are validated
 * against the frame size before any allocation, and a malformed
 * payload is a one-line CorruptData Status — never a crash, never
 * trust in a peer's length field.
 *
 * Service frames are small by design (an Events batch tops out well
 * under a megabyte), so endpoints tighten the transport's frame cap
 * to kServiceFrameCap — a confused or hostile peer cannot make the
 * daemon buffer the transport-default 64 MiB.
 */

#ifndef MHP_SERVICE_SERVICE_WIRE_H
#define MHP_SERVICE_SERVICE_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/snapshot_text.h"
#include "core/config.h"
#include "core/profiler.h"
#include "core/query_coprocessor.h"
#include "service/tenant.h"
#include "support/bytes.h"
#include "support/status.h"
#include "trace/source.h"
#include "trace/tuple.h"

namespace mhp {

/** Protocol revision; bumped on any frame-payload change. */
constexpr uint32_t kServiceProtoVersion = 3; // v3: HelloAck carries
                                             // the daemon's boot id

/** Per-endpoint frame cap for service connections: 1 MiB. */
constexpr uint32_t kServiceFrameCap = 1u << 20;

/** Frame types of the service protocol (wire frame `type` byte). */
enum class ServiceMsg : uint8_t
{
    Hello = 1,       ///< c→d: admission request (config + quotas)
    HelloAck = 2,    ///< d→c: admitted/resumed; carries lastSeq
    Reject = 3,      ///< d→c: request refused (status code + reason)
    Events = 4,      ///< c→d: one seq-numbered batch of tuples
    EventsAck = 5,   ///< d→c: exact accepted/dropped for that seq
    Pushback = 6,    ///< d→c: ack + explicit backoff (retryAfterMs)
    Query = 7,       ///< c→d: snapshot or stats request
    Snapshot = 8,    ///< d→c: epoch-versioned candidate snapshot
    Stats = 9,       ///< d→c: per-tenant accounting table
    Shed = 10,       ///< d→c: your tenant was shed (reason)
    Quarantine = 11, ///< d→c: your tenant was quarantined (reason)
    Heartbeat = 12,  ///< c→d: liveness while the client is idle
    Goodbye = 13,    ///< c→d done streaming / d→c daemon draining
    GoodbyeAck = 14, ///< d→c: final counters for the tenant
};

/** Printable frame-type name for diagnostics. */
const char *serviceMsgName(uint8_t type);

/** Hello payload: who I am and what I need. */
struct WireTenantHello
{
    uint32_t protoVersion = kServiceProtoVersion;
    std::string tenant;
    uint8_t kind = 0; ///< ProfileKind
    ProfilerConfig config;
    TenantQuota quota;
};

void encodeHello(ByteBuffer &out, const WireTenantHello &hello);
Status decodeHello(const uint8_t *data, size_t size,
                   WireTenantHello &hello);

/**
 * The profiler-config and quota field encodings shared by the Hello
 * payload and the service journal's admit/checkpoint records
 * (service/wal.h) — one codec, so a config admitted over the wire
 * and one replayed from the journal can never disagree.
 */
void encodeProfilerConfig(ByteBuffer &out, const ProfilerConfig &c);
bool decodeProfilerConfig(ByteCursor &cursor, ProfilerConfig &c);
void encodeTenantQuota(ByteBuffer &out, const TenantQuota &q);
bool decodeTenantQuota(ByteCursor &cursor, TenantQuota &q);

/** HelloAck payload. */
struct WireHelloAck
{
    uint64_t tenantId = 0;
    uint8_t resumed = 0;  ///< 1: reattached to an existing tenant
    uint64_t lastSeq = 0; ///< highest Events seq already accounted
    /**
     * Random identity of this daemon process, drawn at startup. A
     * reconnecting client that sees a different bootId than last time
     * knows the daemon restarted and must trust `lastSeq` (recovered
     * from the journal) over its own — see docs/SERVICE.md, "Crash
     * recovery".
     */
    uint64_t bootId = 0;
};

void encodeHelloAck(ByteBuffer &out, const WireHelloAck &ack);
Status decodeHelloAck(const uint8_t *data, size_t size,
                      WireHelloAck &ack);

/** Reject / Shed / Quarantine / Goodbye payload: a Status. */
struct WireStatusMsg
{
    uint8_t code = 0; ///< StatusCode
    std::string message;
};

void encodeStatusMsg(ByteBuffer &out, const WireStatusMsg &msg);
Status decodeStatusMsg(const uint8_t *data, size_t size,
                       WireStatusMsg &msg);

/** Turn a decoded Reject back into the Status it carried. */
Status statusFromMsg(const WireStatusMsg &msg);

/** Encode an Events batch: seq + the tuples. */
void encodeEvents(ByteBuffer &out, uint64_t seq, TupleSpan events);

/** Decoded Events batch. */
struct WireEvents
{
    uint64_t seq = 0;
    std::vector<Tuple> events;
};

/**
 * Decode an Events batch; the declared event count is validated
 * against the payload size before any allocation, and against
 * `maxEvents` (the endpoint's batch ceiling).
 */
Status decodeEvents(const uint8_t *data, size_t size,
                    WireEvents &batch, uint64_t maxEvents);

/** EventsAck / Pushback payload: exact accounting for one batch. */
struct WireEventsAck
{
    uint64_t seq = 0;
    uint64_t accepted = 0;
    uint64_t dropped = 0;
    uint64_t queuedEvents = 0; ///< queue depth after admission
    uint64_t retryAfterMs = 0; ///< Pushback only: backoff hint
    std::string reason;        ///< Pushback only: why
};

void encodeEventsAck(ByteBuffer &out, const WireEventsAck &ack);
Status decodeEventsAck(const uint8_t *data, size_t size,
                       WireEventsAck &ack);

/** What a Query frame asks for. */
enum class ServiceQueryWhat : uint8_t
{
    Snapshot = 0, ///< the tenant's latest published candidates
    Stats = 1,    ///< the per-tenant accounting table
};

/** Query payload: a co-processor query program over the read side. */
struct WireQuery
{
    uint8_t what = 0;   ///< ServiceQueryWhat
    std::string tenant; ///< empty: the connection's own tenant
    uint64_t top = 0;   ///< keep only the heaviest N groups (0=all)
    Query program;      ///< filter + group-by (Snapshot only)
};

void encodeQuery(ByteBuffer &out, const WireQuery &query);
Status decodeQuery(const uint8_t *data, size_t size, WireQuery &query);

/** Snapshot payload: query result + provenance. */
struct WireSnapshot
{
    uint64_t tenantId = 0;
    uint64_t epoch = 0;     ///< publication epoch answered from
    uint64_t intervals = 0; ///< completed intervals at publication
    /**
     * The tenant's ProfileKind (registry byte encoding): what the
     * candidate tuples mean. Validated against the event-class
     * registry on decode.
     */
    uint8_t kind = 0;
    IntervalSnapshot candidates;
};

void encodeSnapshot(ByteBuffer &out, const WireSnapshot &snapshot);
Status decodeSnapshot(const uint8_t *data, size_t size,
                      WireSnapshot &snapshot, uint64_t maxCandidates);

/** Stats payload: the whole accounting table. */
void encodeStats(ByteBuffer &out,
                 const std::vector<TenantStatsRow> &rows);
Status decodeStats(const uint8_t *data, size_t size,
                   std::vector<TenantStatsRow> &rows);

/** GoodbyeAck payload: the tenant's final accounting row. */
void encodeGoodbyeAck(ByteBuffer &out, const TenantStatsRow &row);
Status decodeGoodbyeAck(const uint8_t *data, size_t size,
                        TenantStatsRow &row);

} // namespace mhp

#endif // MHP_SERVICE_SERVICE_WIRE_H
