/**
 * @file
 * Admission control and load shedding for the profiling service.
 *
 * The daemon serves many tenants from one global memory budget. Two
 * mechanisms keep it inside that budget (docs/SERVICE.md):
 *
 *  - *admission*: a new tenant's requested quotas are vetted against
 *    hard ceilings, and room is made for its profiler by shedding
 *    strictly-lower-priority tenants — or the request is refused with
 *    ResourceExhausted, never queued;
 *  - *pressure shedding*: after every ingest tick, if live memory
 *    exceeds the budget, whole tenants are shed lowest-priority
 *    first (ties broken youngest-first, so long-running tenants
 *    survive their newer equals) until the budget holds again.
 *
 * Shedding is deliberately whole-tenant: surviving tenants' profiles
 * stay bit-identical to an unloaded run, because pressure never
 * touches their event streams — a degraded service returns fewer
 * profiles, not subtly wrong ones.
 */

#ifndef MHP_SERVICE_ADMISSION_H
#define MHP_SERVICE_ADMISSION_H

#include <cstdint>
#include <string>
#include <vector>

#include "service/registry.h"
#include "support/status.h"

namespace mhp {

/** Global ceilings the daemon enforces across all tenants. */
struct AdmissionLimits
{
    /** Maximum concurrently Active tenants. */
    uint64_t maxTenants = 64;

    /** Global live-memory budget across all Active tenants. */
    uint64_t globalMemoryBudget = 256ull << 20;

    /** Hard ceiling on any tenant's requested queue bound. */
    uint64_t maxQueueEvents = 1ull << 20;

    /** Hard ceiling on any tenant's interval quota (0 = none). */
    uint64_t maxIntervalsCeiling = 0;

    /** Consecutive ingest failures before a tenant is quarantined. */
    unsigned poisonStrikes = 3;
};

/** Vets admissions and sheds tenants under global pressure. */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionLimits &limits)
        : ceilings(limits)
    {
    }

    /**
     * Validate a tenant's requested config and quotas against the
     * ceilings; InvalidArgument names the offending knob and the cap.
     */
    Status vet(const ProfilerConfig &config,
               const TenantQuota &quota) const;

    /**
     * Make room to admit a tenant needing `bytes` at `priority`:
     * sheds strictly-lower-priority Active tenants (lowest priority
     * first, youngest first within a priority) until both the memory
     * budget and the tenant-count ceiling hold. ResourceExhausted
     * when room cannot be made without touching an equal-or-higher
     * priority tenant.
     *
     * @return Ids of the tenants shed to make room.
     */
    StatusOr<std::vector<uint64_t>>
    makeRoom(TenantRegistry &registry, uint64_t bytes,
             uint32_t priority);

    /**
     * Enforce the global budget after ingest growth: shed lowest-
     * priority Active tenants until total live memory fits. Never
     * fails; an empty result means no pressure.
     */
    std::vector<uint64_t> enforceBudget(TenantRegistry &registry);

    const AdmissionLimits &limits() const { return ceilings; }

  private:
    /** The next shedding victim below `maxPriority`, or null. */
    static TenantSession *victimBelow(TenantRegistry &registry,
                                      uint64_t maxPriority);

    AdmissionLimits ceilings;
};

} // namespace mhp

#endif // MHP_SERVICE_ADMISSION_H
