/**
 * @file
 * The profiling daemon: ServiceCore (the socket-free brain, driven
 * directly by the overload tests) and runDaemon() (the poll loop that
 * serves it over a Unix socket).
 *
 * ServiceCore owns the tenant registry, the admission controller, and
 * the epoch-versioned snapshot store, and exposes exactly the
 * operations a connection handler needs: admit a tenant, ingest a
 * batch, tick the ingest plane, answer queries, and drain everything
 * durably. It takes time as an explicit `nowMs` argument and never
 * spawns a thread, so every overload scenario in
 * tests/service/test_service_overload replays deterministically.
 *
 * runDaemon() is a single-threaded poll loop — one process, one
 * thread, no locks. Isolation between tenants comes from the core's
 * quarantine and shedding, not from process-per-tenant machinery:
 * a poisoned tenant is fenced off while the loop keeps serving
 * everyone else. On SIGTERM (the `stop` flag) the loop notifies every
 * connected client, drains all queues, flushes each tenant's durable
 * snapshot, and returns Ok — the clean-drain exit the soak test
 * asserts.
 *
 * Failpoint sites (all deterministic; see docs/ROBUSTNESS.md):
 * `service.accept.eio`, `service.read.eio`, `service.write.eio`
 * (counter-keyed), `service.tenant.ingest` and
 * `service.snapshot.enospc` (keyed by tenant id).
 */

#ifndef MHP_SERVICE_DAEMON_H
#define MHP_SERVICE_DAEMON_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "service/admission.h"
#include "service/registry.h"
#include "service/service_wire.h"
#include "service/snapshot_store.h"
#include "support/status.h"

namespace mhp {

class ServiceState;

/** Everything runDaemon() needs to serve. */
struct ServiceOptions
{
    /** Unix socket path to listen on. */
    std::string socketPath;

    /** Durable snapshot directory; empty = no flush on drain. */
    std::string snapshotDir;

    /**
     * Crash-recovery state directory (WAL + checkpoints, see
     * service/wal.h); empty = run stateless, as before. With a state
     * dir the daemon recovers on start, journals every admission and
     * ingest decision, and flushes client acks only after the journal
     * fsync — exactly-once across a kill -9.
     */
    std::string stateDir;

    /** WAL bytes between checkpoints (recovery-time budget). */
    uint64_t checkpointWalBytes = 4ull << 20;

    /** Global ceilings and budgets. */
    AdmissionLimits limits;

    /** Events ingested across all tenants per loop tick. */
    uint64_t drainBudgetPerTick = 65536;

    /**
     * Round-robin drain quantum: the most events one tenant ingests
     * before the tick moves to the next tenant's queue. Sized to the
     * profilers' ingest block (256) so the one drain thread
     * interleaves every active tenant's stream at block granularity —
     * while one tenant's counter-bank gathers wait on memory, the
     * core is hashing the next tenant's block (the same
     * latency-hiding trick as runIntervalsInterleaved). Per-tenant
     * event order is untouched, so drained snapshots are byte-
     * identical at any quantum.
     */
    uint64_t drainQuantum = 256;

    /** Disconnect (and evict) tenants idle longer than this. */
    uint64_t idleTimeoutMs = 30'000;

    /** Backoff hint carried in Pushback frames. */
    uint64_t pushbackRetryMs = 20;

    /** Per-endpoint wire frame cap for every connection. */
    uint32_t maxFrameBytes = kServiceFrameCap;

    /** Log admission/shed/quarantine decisions to stderr. */
    bool verbose = false;
};

/** A shed/quarantine decision the socket layer must relay. */
struct TenantEvent
{
    uint64_t tenantId = 0;
    bool quarantined = false; ///< false: shed
    std::string reason;
};

/** The daemon's state machine, free of sockets and wall clocks. */
class ServiceCore
{
  public:
    explicit ServiceCore(const ServiceOptions &options);

    /**
     * Admit the tenant a Hello describes, shedding lower-priority
     * tenants if that is what admission takes; or resume an existing
     * Active tenant of the same name (the reconnect path — the ack
     * carries the last accounted batch seq so the client can dedup).
     * Shed/quarantined/closed tenants are refused with
     * ResourceExhausted/Unavailable.
     */
    StatusOr<WireHelloAck> connectTenant(const WireTenantHello &hello);

    /**
     * Ingest one seq-numbered batch for a tenant. A replayed seq
     * (<= the tenant's last) is acknowledged without re-ingesting —
     * reconnect-safe exactly-once accounting. Returns the exact
     * accepted/dropped split; `retryAfterMs` is set when the tenant
     * should back off.
     */
    StatusOr<WireEventsAck> ingest(uint64_t tenantId, uint64_t seq,
                                   TupleSpan events, uint64_t nowMs);

    /**
     * One ingest tick: round-robin the drain budget over Active
     * tenants, then enforce the global memory budget. Shed and
     * quarantine decisions land in takeEvents().
     *
     * @return Events ingested this tick.
     */
    uint64_t tick();

    /** True while any tenant still has queued events. */
    bool backlog();

    /**
     * Drain one tenant's queue to completion, as when its client
     * says Goodbye: the farewell stats row must be final, not a
     * snapshot of a half-drained queue.
     *
     * @return Events ingested.
     */
    uint64_t finishTenant(uint64_t tenantId);

    /** Answer a Snapshot query from the published read side. */
    StatusOr<WireSnapshot> query(uint64_t tenantId,
                                 const WireQuery &request) const;

    /** The full accounting table, one row per tenant ever admitted. */
    std::vector<TenantStatsRow> stats() const;

    /** One tenant's accounting row. */
    TenantStatsRow statsRow(const TenantSession &session) const;

    /** Shed/quarantine decisions since the last call. */
    std::vector<TenantEvent> takeEvents();

    /**
     * Drain every Active tenant's queue completely and flush each
     * durable snapshot to `dir`. Every tenant is attempted; the
     * first error is returned.
     */
    Status drainAll(const std::string &dir);

    TenantRegistry &registry() { return tenants; }
    AdmissionController &admission() { return controller; }
    const EpochSnapshotStore &store() const { return published; }

    /** Mutable read side, for recovery's republish (service/wal.h). */
    EpochSnapshotStore &publishedStore() { return published; }

    /**
     * Attach the durability layer: every admission, ingest outcome,
     * state change, and final accounting from here on is journaled
     * through `state` (null detaches — the stateless default).
     */
    void attachState(ServiceState *state) { durable = state; }

  private:
    /** Journal a shed/quarantine/close if durability is attached. */
    void recordStateChange(uint64_t tenantId);

    ServiceOptions options;
    TenantRegistry tenants;
    AdmissionController controller;
    EpochSnapshotStore published;
    std::vector<TenantEvent> pending;
    uint64_t nextDrainTenant = 0; ///< round-robin fairness cursor
    ServiceState *durable = nullptr; ///< null: no crash recovery
};

/**
 * Serve ServiceCore over `options.socketPath` until `*stop` becomes
 * true, then drain cleanly. Returns Ok after a clean drain; the
 * first bind or drain-flush error otherwise.
 */
Status runDaemon(const ServiceOptions &options,
                 const std::atomic<bool> &stop);

} // namespace mhp

#endif // MHP_SERVICE_DAEMON_H
