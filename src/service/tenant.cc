#include "service/tenant.h"

#include <algorithm>
#include <cstdio>

#include "analysis/profile_io.h"
#include "core/factory.h"
#include "support/failpoint.h"

namespace mhp {
namespace {

/** Wire/accounting size of one profiling event. */
constexpr uint64_t kBytesPerEvent = sizeof(Tuple);

/** Pushback watermark: queue at or above 3/4 full asks for backoff. */
bool
nearlyFull(uint64_t queued, uint64_t capacity)
{
    return queued * 4 >= capacity * 3;
}

} // namespace

const char *
tenantStateName(TenantState state)
{
    switch (state) {
      case TenantState::Active: return "active";
      case TenantState::Shed: return "shed";
      case TenantState::Quarantined: return "quarantined";
      case TenantState::Closed: return "closed";
    }
    return "?";
}

TenantSession::TenantSession(uint64_t id, std::string name,
                             ProfileKind kind,
                             const ProfilerConfig &config,
                             const TenantQuota &quota)
    : tenantId(id), tenantName(std::move(name)), profileKind(kind),
      profilerConfig(config), limits(quota),
      profiler(makeProfiler(config)),
      profilerArea(profiler->areaBytes()),
      rateTokens(quota.maxBytesPerSec)
{
}

TenantSession::Offer
TenantSession::offer(TupleSpan events, uint64_t nowMs)
{
    Offer result;
    const uint64_t n = events.size();
    stats.arrived += n;

    if (lifecycle != TenantState::Active) {
        if (lifecycle == TenantState::Quarantined)
            stats.droppedQuarantine += n;
        else
            stats.droppedShed += n;
        result.dropped = n;
        result.pushback = true;
        result.reason = std::string("tenant '") + tenantName + "' is " +
                        tenantStateName(lifecycle) + ": " + reason;
        ++stats.pushbacks;
        return result;
    }

    if (!quotaReason.empty()) {
        stats.droppedQuota += n;
        result.dropped = n;
        result.pushback = true;
        result.reason = quotaReason;
        ++stats.pushbacks;
        return result;
    }

    // Byte-rate quota: a token bucket refilled from the caller's
    // clock, with one second of burst capacity.
    uint64_t allowed = n;
    if (limits.maxBytesPerSec != 0) {
        if (!rateStarted) {
            rateStarted = true;
            rateLastMs = nowMs;
        } else if (nowMs > rateLastMs) {
            const uint64_t refill =
                (nowMs - rateLastMs) * limits.maxBytesPerSec / 1000;
            rateTokens =
                std::min(limits.maxBytesPerSec, rateTokens + refill);
            rateLastMs = nowMs;
        }
        allowed = std::min(allowed, rateTokens / kBytesPerEvent);
    }
    const uint64_t rateDropped = n - allowed;
    stats.droppedRate += rateDropped;

    // Bounded queue: admission is all-or-counted, never unbounded.
    const uint64_t queued = queuedEvents();
    const uint64_t free =
        queued >= limits.maxQueueEvents
            ? 0
            : limits.maxQueueEvents - queued;
    const uint64_t take = std::min(allowed, free);
    const uint64_t queueDropped = allowed - take;
    stats.droppedQueueFull += queueDropped;

    if (take > 0) {
        queue.insert(queue.end(), events.begin(),
                     events.begin() + static_cast<ptrdiff_t>(take));
        stats.accepted += take;
        if (limits.maxBytesPerSec != 0)
            rateTokens -= take * kBytesPerEvent;
    }

    result.accepted = take;
    result.dropped = rateDropped + queueDropped;
    if (result.dropped > 0 ||
        nearlyFull(queuedEvents(), limits.maxQueueEvents)) {
        result.pushback = true;
        ++stats.pushbacks;
        char buf[192];
        if (queueDropped > 0)
            std::snprintf(buf, sizeof(buf),
                          "tenant '%s' ingest queue full "
                          "(%llu-event bound)",
                          tenantName.c_str(),
                          static_cast<unsigned long long>(
                              limits.maxQueueEvents));
        else if (rateDropped > 0)
            std::snprintf(buf, sizeof(buf),
                          "tenant '%s' over its %llu-byte/s rate "
                          "quota",
                          tenantName.c_str(),
                          static_cast<unsigned long long>(
                              limits.maxBytesPerSec));
        else
            std::snprintf(buf, sizeof(buf),
                          "tenant '%s' ingest queue at %llu/%llu "
                          "events",
                          tenantName.c_str(),
                          static_cast<unsigned long long>(
                              queuedEvents()),
                          static_cast<unsigned long long>(
                              limits.maxQueueEvents));
        result.reason = buf;
    }
    return result;
}

uint64_t
TenantSession::drain(uint64_t maxEvents, unsigned strikesAllowed,
                     EpochSnapshotStore *store)
{
    if (lifecycle != TenantState::Active)
        return 0;

    uint64_t processed = 0;
    while (processed < maxEvents && queueHead < queue.size()) {
        if (!quotaReason.empty()) {
            // A quota tripped mid-queue: the remainder can never be
            // ingested. Reclassify it from accepted to dropped so
            // arrived == accepted + dropped() keeps holding.
            const uint64_t rest = queuedEvents();
            stats.droppedQuota += rest;
            stats.accepted -= rest;
            queueHead = queue.size();
            break;
        }

        if (failpointsArmed() &&
            failpointFires("service.tenant.ingest", tenantId,
                           strikes)) {
            ++strikes;
            ++stats.poisonStrikes;
            if (strikes >= strikesAllowed) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "%u consecutive ingest failures",
                              strikes);
                quarantine(buf);
            }
            return processed;
        }

        uint64_t chunk = std::min<uint64_t>(
            maxEvents - processed, queue.size() - queueHead);
        chunk = std::min(
            chunk, profilerConfig.intervalLength - eventsInInterval);
        profiler->onEvents(queue.data() + queueHead,
                           static_cast<size_t>(chunk));
        queueHead += static_cast<size_t>(chunk);
        processed += chunk;
        stats.ingested += chunk;
        eventsInInterval += chunk;
        strikes = 0; // a successful chunk ends the strike streak

        if (eventsInInterval == profilerConfig.intervalLength)
            closeInterval(store);
    }

    // Compact the consumed prefix once it dominates the vector.
    if (queueHead > 4096 && queueHead * 2 >= queue.size()) {
        queue.erase(queue.begin(),
                    queue.begin() +
                        static_cast<ptrdiff_t>(queueHead));
        queueHead = 0;
    }
    return processed;
}

void
TenantSession::closeInterval(EpochSnapshotStore *store)
{
    IntervalSnapshot snap = profiler->endInterval();
    eventsInInterval = 0;
    ++intervalsDone;
    ++stats.intervals;
    snapshotCandidates += snap.size();
    if (store != nullptr)
        store->publish(tenantId, intervalsDone, snap);
    snapshots.push_back(std::move(snap));

    if (limits.maxIntervals != 0 &&
        intervalsDone >= limits.maxIntervals) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "tenant '%s' reached its %llu-interval quota",
                      tenantName.c_str(),
                      static_cast<unsigned long long>(
                          limits.maxIntervals));
        quotaReason = buf;
    } else if (limits.maxMemoryBytes != 0 &&
               memoryBytes() > limits.maxMemoryBytes) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "tenant '%s' exceeded its %llu-byte memory "
                      "quota",
                      tenantName.c_str(),
                      static_cast<unsigned long long>(
                          limits.maxMemoryBytes));
        quotaReason = buf;
    }
}

void
TenantSession::quarantine(std::string why)
{
    lifecycle = TenantState::Quarantined;
    reason = std::move(why);
    stats.droppedQuarantine += queuedEvents();
    stats.accepted -= queuedEvents();
    releaseMemory();
}

void
TenantSession::shed(std::string why)
{
    if (lifecycle != TenantState::Active)
        return;
    lifecycle = TenantState::Shed;
    reason = std::move(why);
    stats.droppedShed += queuedEvents();
    stats.accepted -= queuedEvents();
    releaseMemory();
}

void
TenantSession::close(std::string why)
{
    if (lifecycle != TenantState::Active)
        return;
    lifecycle = TenantState::Closed;
    reason = std::move(why);
    stats.droppedShed += queuedEvents();
    stats.accepted -= queuedEvents();
    releaseMemory();
}

void
TenantSession::releaseMemory()
{
    queue.clear();
    queue.shrink_to_fit();
    queueHead = 0;
    snapshots.clear();
    snapshots.shrink_to_fit();
    snapshotCandidates = 0;
    profiler.reset();
    profilerArea = 0;
}

uint64_t
TenantSession::memoryBytes() const
{
    return profilerArea + queuedEvents() * kBytesPerEvent +
           snapshotCandidates * sizeof(CandidateCount);
}

Status
TenantSession::flushDurable(const std::string &dir) const
{
    const std::string path = dir + "/" + tenantName + ".mhp";
    if (failpointsArmed() &&
        failpointFires("service.snapshot.enospc", tenantId))
        return Status::ioError(
            path + ": injected out-of-space failure (failpoint "
                   "service.snapshot.enospc)");

    ProfileWriter writer(path, profileKind,
                         profilerConfig.intervalLength,
                         profilerConfig.thresholdCount());
    for (const IntervalSnapshot &snap : snapshots)
        MHP_RETURN_IF_ERROR(writer.writeInterval(snap));
    return writer.close();
}

} // namespace mhp
